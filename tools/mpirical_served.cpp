// Standalone serving daemon: mmap a world snapshot once, serve translate
// requests over a Unix-domain socket until a client sends kServeShutdown.
//
//   mpirical_served <snapshot> [<socket>] [--tcp host:port] [--wave N]
//                   [--barrier]
//
//   <snapshot>   world snapshot file (eval or dataset shape; see
//                core/world_snapshot.hpp). The model weights stay zero-copy
//                views into the mapping for the daemon's lifetime.
//   <socket>     Unix-domain socket path to listen on (created; a file a
//                LIVE daemon answers at is refused loudly, only a stale one
//                is replaced; unlinked on clean exit).
//   --tcp h:p    listen on TCP host:port instead of a socket file (port 0 =
//                pick an ephemeral port). Exactly one of <socket> / --tcp.
//   --wave N     cap on concurrently-decoding requests (default: the
//                MPIRICAL_DECODE_WAVE wave size translate_batch uses).
//   --barrier    per-wave-barrier admission instead of continuous refill
//                (the baseline bench_serve measures against).

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/daemon.hpp"
#include "support/check.hpp"
#include "support/env.hpp"

int main(int argc, char** argv) {
  using mpirical::serve::DaemonOptions;
  using mpirical::serve::ServerStats;

  DaemonOptions options;
  try {
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--barrier") {
        options.barrier_mode = true;
      } else if (arg == "--tcp") {
        MR_CHECK(i + 1 < argc, "--tcp needs a host:port value");
        options.tcp_addr = argv[++i];
      } else if (arg == "--wave") {
        MR_CHECK(i + 1 < argc, "--wave needs a value");
        char* end = nullptr;
        const long v = std::strtol(argv[++i], &end, 10);
        MR_CHECK(end != argv[i] && *end == '\0' && v >= 1 && v <= 4096,
                 "--wave must be an integer in [1, 4096]");
        options.max_wave = static_cast<std::size_t>(v);
      } else if (positional == 0) {
        options.snapshot_path = arg;
        ++positional;
      } else if (positional == 1) {
        options.socket_path = arg;
        ++positional;
      } else {
        MR_CHECK(false, "unexpected argument: " + arg);
      }
    }
    MR_CHECK(!options.snapshot_path.empty() &&
                 (options.socket_path.empty() != options.tcp_addr.empty()),
             "usage: mpirical_served <snapshot> [<socket>] "
             "[--tcp host:port] [--wave N] [--barrier]");
    const std::string where = options.tcp_addr.empty()
                                  ? options.socket_path
                                  : "tcp " + options.tcp_addr;
    std::fprintf(stderr, "[mpirical_served] serving %s on %s%s\n",
                 options.snapshot_path.c_str(), where.c_str(),
                 options.barrier_mode ? " (barrier mode)" : "");
    const ServerStats stats = mpirical::serve::run_daemon(options);
    std::fprintf(stderr,
                 "[mpirical_served] served=%llu joined_running_wave=%llu "
                 "aborted_connections=%llu\n",
                 static_cast<unsigned long long>(stats.served),
                 static_cast<unsigned long long>(stats.joined_running_wave),
                 static_cast<unsigned long long>(stats.aborted_connections));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[mpirical_served] fatal: %s\n", e.what());
    return 1;
  }
}
