// Standalone TCP eval worker: what runs on a REMOTE machine in the
// MPIRICAL_EVAL_HOSTS deployment.
//
//   mpirical_eval_worker --listen <host:port> [--once]
//
// Listens on host:port (port 0 = pick an ephemeral port; the bound port is
// printed on stdout so launch scripts can capture it), accepts one driver
// connection at a time, and serves it with run_worker_from_snapshot: the
// driver streams the world snapshot IN-BAND (kSnapshotBegin / chunked
// kSnapshotChunk / kSnapshotEnd, both checksum layers verified here), the
// worker mmaps it from a local temp file, then speaks the normal task loop.
// Nothing about the driver's filesystem or environment is assumed.
//
// By default the worker goes back to accepting after each driver
// disconnects, so one long-lived process can serve successive eval runs;
// --once exits after the first connection (what the tests and one-shot CI
// jobs want).

#include <cstdio>
#include <string>

#include <unistd.h>

#include "shard/eval.hpp"
#include "shard/transport.hpp"
#include "support/check.hpp"
#include "support/process.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace mpirical;
  try {
    std::string listen_spec;
    bool once = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--listen") {
        MR_CHECK(i + 1 < argc, "--listen needs a host:port value");
        listen_spec = argv[++i];
      } else if (arg == "--once") {
        once = true;
      } else {
        MR_CHECK(false, "unexpected argument: " + arg);
      }
    }
    MR_CHECK(!listen_spec.empty(),
             "usage: mpirical_eval_worker --listen <host:port> [--once]");
    support::ignore_sigpipe();
    Timer boot;
    const auto [host, port] = shard::split_host_port(listen_spec);
    std::uint16_t bound = 0;
    const int listen_fd = shard::tcp_listen(host, port, /*backlog=*/4, &bound);
    // Machine-readable port line for launchers that asked for port 0.
    std::printf("%u\n", static_cast<unsigned>(bound));
    std::fflush(stdout);
    std::fprintf(stderr, "[mpirical_eval_worker] listening on %s port %u\n",
                 host.empty() ? "*" : host.c_str(),
                 static_cast<unsigned>(bound));
    const double boot_ms = boot.seconds() * 1e3;
    for (;;) {
      const int fd = shard::tcp_accept(listen_fd);
      if (fd < 0) break;
      shard::SocketTransport transport(fd);
      // Serves this driver to completion (or its death); a corrupt stream
      // ends the connection quietly and the next accept starts fresh.
      shard::run_worker_from_snapshot(transport, boot_ms);
      if (once) break;
    }
    ::close(listen_fd);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[mpirical_eval_worker] fatal: %s\n", e.what());
    return 1;
  }
}
