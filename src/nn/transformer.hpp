// Transformer encoder-decoder (the SPT-Code architecture, scaled to the
// synthetic task and CPU training).
//
// Pre-LN residual blocks (stable without long warmup), sinusoidal positional
// encodings, fused multi-head attention, GELU feed-forward. The training
// forward pass is batched: token ids are padded to a common length per batch
// and sequence lengths carry the padding masks into attention.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nn/linear.hpp"
#include "support/rng.hpp"
#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"

namespace mpirical::snapshot {
class Builder;
class Snapshot;
}

namespace mpirical::nn {

/// Quantized-weights decode mode gate: MPIRICAL_DECODE_INT8 set to anything
/// but "0" routes the batched encode/decode panel projections through the
/// int8 kernel path (weights quantized per wave, or mapped zero-copy from a
/// quantized snapshot). Default off: the f32 path stays the oracle. Re-read
/// on every wave, so tests and benches can flip it per call.
bool decode_int8_enabled();

/// Packs a Linear's [in, out] weight for the int8 GEMM: zero-copy from its
/// q8 snapshot view when the shapes match (the stored int8 bytes are used
/// verbatim), otherwise quantizing the f32 weights at pack time.
tensor::kernels::PackedPanelBI8 pack_linear_i8(const Linear& lin);

struct TransformerConfig {
  int vocab_size = 512;
  int d_model = 96;
  int heads = 4;
  int ffn_dim = 192;
  int encoder_layers = 2;
  int decoder_layers = 2;
  int max_len = 384;       // positional table size
  float dropout = 0.1f;
};

struct LayerNormParams {
  LayerNormParams() = default;
  explicit LayerNormParams(int d)
      : gamma(tensor::Tensor::full({d}, 1.0f, true)),
        beta(tensor::Tensor::zeros({d}, true)) {}
  tensor::Tensor apply(const tensor::Tensor& x) const {
    return tensor::layer_norm(x, gamma, beta);
  }
  tensor::Tensor gamma;
  tensor::Tensor beta;
};

struct AttentionBlock {
  AttentionBlock() = default;
  AttentionBlock(int d, Rng& rng)
      : wq(d, d, rng), wk(d, d, rng), wv(d, d, rng), wo(d, d, rng) {}
  explicit AttentionBlock(int d) : wq(d, d), wk(d, d), wv(d, d), wo(d, d) {}
  Linear wq, wk, wv, wo;
};

struct FfnBlock {
  FfnBlock() = default;
  FfnBlock(int d, int hidden, Rng& rng)
      : up(d, hidden, rng), down(hidden, d, rng) {}
  FfnBlock(int d, int hidden) : up(d, hidden), down(hidden, d) {}
  Linear up, down;
};

struct EncoderLayer {
  EncoderLayer() = default;
  EncoderLayer(const TransformerConfig& cfg, Rng& rng)
      : ln1(cfg.d_model),
        ln2(cfg.d_model),
        attn(cfg.d_model, rng),
        ffn(cfg.d_model, cfg.ffn_dim, rng) {}
  explicit EncoderLayer(const TransformerConfig& cfg)
      : ln1(cfg.d_model),
        ln2(cfg.d_model),
        attn(cfg.d_model),
        ffn(cfg.d_model, cfg.ffn_dim) {}
  LayerNormParams ln1, ln2;
  AttentionBlock attn;
  FfnBlock ffn;
};

class PackedModel;
struct PackedLinear;

namespace detail {

struct PackCacheSlots;

/// Per-model anchor for the process-lifetime packed-weight cache
/// (nn/packed_model.hpp). Holds the model's shared PackedModel slot pair
/// (one per int8 mode); PackedModel::acquire installs into it under a
/// process-global mutex in packed_model.cpp, which keeps this anchor -- and
/// therefore the Transformer -- movable (a mutex member would pin it).
/// Copying a model DETACHES the cache (the copy's weights are new storage,
/// so it packs its own panels); moving transfers it along with the weights.
class PackCacheAnchor {
 public:
  PackCacheAnchor() = default;
  PackCacheAnchor(const PackCacheAnchor&) noexcept {}
  PackCacheAnchor& operator=(const PackCacheAnchor&) noexcept {
    slots.reset();
    return *this;
  }
  PackCacheAnchor(PackCacheAnchor&&) noexcept = default;
  PackCacheAnchor& operator=(PackCacheAnchor&&) noexcept = default;

  std::shared_ptr<PackCacheSlots> slots;
};

}  // namespace detail

struct DecoderLayer {
  DecoderLayer() = default;
  DecoderLayer(const TransformerConfig& cfg, Rng& rng)
      : ln1(cfg.d_model),
        ln2(cfg.d_model),
        ln3(cfg.d_model),
        self_attn(cfg.d_model, rng),
        cross_attn(cfg.d_model, rng),
        ffn(cfg.d_model, cfg.ffn_dim, rng) {}
  explicit DecoderLayer(const TransformerConfig& cfg)
      : ln1(cfg.d_model),
        ln2(cfg.d_model),
        ln3(cfg.d_model),
        self_attn(cfg.d_model),
        cross_attn(cfg.d_model),
        ffn(cfg.d_model, cfg.ffn_dim) {}
  LayerNormParams ln1, ln2, ln3;
  AttentionBlock self_attn;
  AttentionBlock cross_attn;
  FfnBlock ffn;
};

class Transformer {
 public:
  Transformer() = default;
  Transformer(const TransformerConfig& config, Rng& rng);
  /// Zero-initialized parameters: the cheap construction for loaders
  /// (deserialize / from_view) that overwrite or repoint every parameter
  /// anyway -- worker startup must not pay a full Gaussian init.
  explicit Transformer(const TransformerConfig& config);

  const TransformerConfig& config() const { return config_; }

  /// Encoder over a padded batch. `src_ids` has batch*src_len entries.
  /// Returns [batch*src_len, d_model].
  tensor::Tensor encode(const std::vector<int>& src_ids, int batch,
                        int src_len, const std::vector<int>& src_lens,
                        bool training, Rng& rng) const;

  /// Decoder + output projection. `tgt_ids` is the shifted-right target
  /// ([SOS] prepended), batch*tgt_len entries. Returns logits
  /// [batch*tgt_len, vocab].
  tensor::Tensor decode(const tensor::Tensor& enc_out,
                        const std::vector<int>& tgt_ids, int batch,
                        int tgt_len, const std::vector<int>& tgt_lens,
                        int src_len, const std::vector<int>& src_lens,
                        bool training, Rng& rng) const;

  /// All trainable parameters (stable order; used by Adam and serialization).
  std::vector<tensor::Tensor> parameters() const;
  std::size_t parameter_count() const;

  /// Binary checkpoint I/O (config + all parameter values). Legacy format,
  /// kept as the differential oracle for the snapshot path.
  std::string serialize() const;
  static Transformer deserialize(std::string_view data);

  /// Snapshot sections: "transformer_config" + "tensor_index" + one "t<i>"
  /// data section per parameter (64-byte aligned in the finished file).
  /// With `quantize_weights`, every 2D Linear weight is emitted as a
  /// kTensorDataI8 section (u32 rows, u32 cols, f32 scales[cols], int8
  /// payload) instead of raw f32 -- ~4x smaller; embeddings, layer norms,
  /// and biases stay f32. A weight whose q8 view already matches (a model
  /// loaded from a quantized snapshot) re-emits the stored bytes verbatim,
  /// so quantized save -> load -> save round-trips byte-identically.
  void to_snapshot(snapshot::Builder& builder,
                   bool quantize_weights = false) const;
  /// Rebuilds a transformer whose parameter values are ZERO-COPY views into
  /// the snapshot's tensor sections; `owner` pins the backing mapping.
  /// Parameters stay trainable -- first mutable access (e.g. an Adam step)
  /// materializes an owned copy. Quantized (kTensorDataI8) weight sections
  /// are dequantized into owned f32 storage on load -- every existing f32
  /// consumer keeps working -- while the int8 payload is also attached to
  /// the owning Linear's q8 view, so the int8 decode path packs its wave
  /// panels straight from the mapping.
  static Transformer from_view(const snapshot::Snapshot& snap,
                               std::shared_ptr<const void> owner);

  // Internals exposed for the incremental decoder (read-only use).
  const tensor::Tensor& token_embedding() const { return tok_embed_; }
  const std::vector<float>& positional_row(int pos) const;
  const std::vector<EncoderLayer>& encoder_layers() const { return enc_; }
  const std::vector<DecoderLayer>& decoder_layers() const { return dec_; }
  const LayerNormParams& encoder_final_ln() const { return enc_ln_; }
  const LayerNormParams& decoder_final_ln() const { return dec_ln_; }
  const Linear& output_projection() const { return out_proj_; }

  /// Drops this model's cached PackedModel instances (both int8 modes).
  /// Must be called after anything mutates parameter values -- run_epoch
  /// calls it once per epoch, after the last Adam step. In-flight streams
  /// holding the old shared_ptr keep their (pre-mutation) panels alive;
  /// the next acquire packs fresh ones.
  void invalidate_pack_cache();

 private:
  friend class PackedModel;

  tensor::Tensor embed(const std::vector<int>& ids, int batch, int len,
                       bool training, Rng& rng) const;

  /// Single source of truth for the parameter traversal order (parameters(),
  /// serialization, snapshot I/O all agree by construction). Calls
  /// fn(tensor, linear) for every parameter; `linear` is the owning Linear
  /// for a 2D weight (the quantizable set), null for everything else.
  template <typename Self, typename Fn>
  static void visit_params(Self& self, Fn&& fn);

  TransformerConfig config_;
  tensor::Tensor tok_embed_;             // [vocab, d]
  std::vector<std::vector<float>> pos_;  // sinusoidal rows [max_len][d]
  std::vector<EncoderLayer> enc_;
  std::vector<DecoderLayer> dec_;
  LayerNormParams enc_ln_;
  LayerNormParams dec_ln_;
  Linear out_proj_;  // [d, vocab]
  // Packed-weight cache anchor (nn/packed_model.hpp); not a parameter.
  mutable detail::PackCacheAnchor pack_cache_;
};

// ---- batched decode-step primitives -----------------------------------------
//
// Row-batched building blocks for the batched incremental decode engine
// (infer.cpp): every operand is a row-major [rows, width] panel holding one
// row per live hypothesis, and the matrix products route through
// tensor::kernels so a single GEMM serves every hypothesis in the wave
// instead of one GEMV each.
namespace decode_step {

/// Row-wise layer norm: out[r] = LN(x[r]) for each of the [rows, d] rows.
void layer_norm_rows(const float* x, const LayerNormParams& ln, int rows,
                     int d, float* out);

/// out[rows, out_dim] = x[rows, in_dim] @ W + b as one GEMM (bias broadcast
/// per row). `x` and `out` must not alias.
void linear_rows(const float* x, const Linear& lin, int rows, float* out);

/// Same product against a PREPACKED weight panel
/// (tensor::kernels::pack_b_panels) -- bit-identical to the Linear overload
/// at every shape, but the weight packing that gemm_acc would redo inside
/// every decode step is hoisted out entirely: with the packed-weight cache
/// on (nn/packed_model.hpp, the default) panels pack once per process
/// lifetime and are shared by every stream; with MPIRICAL_PACK_CACHE=0 each
/// DecodeStream packs its own at construction.
void linear_rows(const float* x, const tensor::kernels::PackedPanelB& w,
                 const float* bias, int rows, float* out);

/// The packed f32 product, but ROWSTABLE: routed through
/// gemm_acc_packed_rowstable, so out row r's bits depend only on x row r,
/// the panel, and the bias -- never on `rows`. This is what the decode
/// engine steps through: with every step projection rowstable, a request's
/// decoded tokens are bitwise independent of which other requests share its
/// waves, which is what lets the serve path admit requests into a RUNNING
/// wave and still match translate_batch token-for-token (the
/// test_serve_equivalence differential). Bit-identical to the plain packed
/// overload above the kernel's small-problem threshold; below it the plain
/// overload takes the naive fallback while this stays blocked.
void linear_rows_rowstable(const float* x,
                           const tensor::kernels::PackedPanelB& w,
                           const float* bias, int rows, float* out);

/// Int8-weights sibling: the same packed product against an int8 panel
/// (pack_linear_i8, cached for the process lifetime via nn::PackedModel
/// like the f32 panels above). Rowstable like the kernel beneath it -- a
/// row's bits never depend on the wave's other rows -- but NOT bit-identical
/// to the f32 overload (quantization error); the f32 path stays the oracle.
void linear_rows(const float* x, const tensor::kernels::PackedPanelBI8& w,
                 const float* bias, int rows, float* out);

/// In-place tanh-approximation GELU over a flat buffer.
void gelu_rows(float* x, std::size_t n);

/// Ragged multi-head attention: row r's query attends over its own cache
/// ks[r]/vs[r] of kv_lens[r] positions (each a [kv_len, d] row-major
/// buffer). Used for beam-search self-attention where every hypothesis owns
/// a distinct (forked) K/V history.
void attention_ragged(const float* q, int rows, int d, int heads,
                      const float* const* ks, const float* const* vs,
                      const int* kv_lens, float* out);

/// Multi-head attention of a contiguous query block over one shared K/V
/// panel. `kt` is the K panel stored TRANSPOSED, [d, kv_len] row-major (row
/// i = K column i), so score accumulation is unit-stride over kv and
/// autovectorizes; `v` stays [kv_len, d]. Used for cross-attention where
/// all hypotheses of a request share the precomputed encoder K/V (the
/// transpose is paid once per request at precompute time). Beam-sized row
/// blocks run fused one-pass loops; larger blocks route the score and PV
/// products through kernel-layer GEMMs.
void attention_shared(const float* q, int rows, int d, int heads,
                      const float* kt, const float* v, int kv_len,
                      float* out);

}  // namespace decode_step

// ---- padded batched encoder -------------------------------------------------
//
// The serving-path encoder: a whole wave of variable-length sources packed
// into one padded [batch * max_len, d] panel and advanced through the full
// encoder stack with a single GEMM per projection per layer. Padding
// semantics: row b * max_len + t holds source b's position t; rows with
// t >= lens[b] are padding -- they ride through the row-wise ops (cheap, and
// keeps every projection one dense GEMM) but are masked out of attention, so
// no valid row ever reads a padded one. All panel projections go through
// kernels::gemm_acc_rowstable and the masked attention mirrors the training
// path's per-(source, head) loop shapes, which together make each source's
// rows bitwise identical to encoding it alone in a padding-free batch of one
// -- the property tests/test_encode_equivalence.cpp locks in.

/// One wave's shared encoder output panel. `panel` holds the final
/// layer-normed encoder states, [batch * max_len, d] row-major; rows at
/// positions >= lens[b] within source b's block are padding (never read by
/// consumers, which use lens[b]).
struct EncodedBatch {
  int batch = 0;
  int max_len = 0;
  int d = 0;
  std::vector<int> lens;     // valid length per source
  std::vector<float> panel;  // [batch * max_len, d]

  /// Source b's contiguous valid rows ([lens[b], d], leading dimension d).
  const float* rows_of(int b) const {
    return panel.data() +
           static_cast<std::size_t>(b) * max_len * d;
  }
};

/// Per-request handle into a wave's shared panel: holding a view keeps the
/// panel alive (shared_ptr), so concurrent consumers of different sources
/// share one allocation instead of copying their slices out.
struct EncodedView {
  std::shared_ptr<const EncodedBatch> wave;
  int index = 0;

  int len() const { return wave->lens[static_cast<std::size_t>(index)]; }
  const float* rows() const { return wave->rows_of(index); }
};

/// Encodes a wave of sources through the padded batched encoder. Sources
/// must be non-empty and no longer than the model's max_len. Intermediate
/// panels come from the calling thread's ScratchArena (reset here), so a
/// pool thread processing many waves reuses the same scratch memory; only
/// the returned output panel is owned by the EncodedBatch.
std::shared_ptr<const EncodedBatch> encode_batch(
    const Transformer& model,
    const std::vector<const std::vector<int>*>& sources);

/// Convenience overload for owned source vectors (tests, simple callers).
std::shared_ptr<const EncodedBatch> encode_batch(
    const Transformer& model, const std::vector<std::vector<int>>& sources);

// ---- batched encoder-panel primitives ---------------------------------------
//
// Row-panel building blocks for encode_batch, the encoder-side siblings of
// the decode_step primitives above. They operate on padded [rows, width]
// panels and are deliberately bit-row-stable: a row's output bits depend
// only on that row's inputs (and, for attention, its own source's valid
// rows), never on the panel height or the row's position.
namespace encode_step {

/// out[rows, out_dim] = x[rows, in_dim] @ W + b as one
/// kernels::gemm_acc_rowstable GEMM. The bias is preloaded as each output
/// row's accumulator init -- for k <= 256 (one kernel k-block) that rounds
/// bit-identically to the training path's matmul-then-add_bias order, since
/// float addition is commutative and the k-sum accumulates in a register
/// before the single add.
void linear_panel(const float* x, const Linear& lin, int rows, float* out);

/// Residual-fused projection: x[rows, d] += in @ W + b. The GEMM
/// accumulates directly into the residual stream (no intermediate panel, no
/// zeroing pass); the bias is added in one trailing pass.
void linear_panel_residual(const float* in, const Linear& lin, int rows,
                           float* x);

/// In-place tanh-approximation GELU over the padded panel, with tanh
/// computed through the in-house vectorizable exp_fast polynomial
/// (tanh u = 1 - 2/(e^2u + 1); exp_fast is a degree-6 2^f expansion,
/// ~1e-7 relative / ~2 ULP off glibc expf -- the same order as the kernel
/// layer's reassociation noise) instead of scalar tanhf. An elementwise
/// map, so rows stay bit-stable. The decode engine keeps the exact
/// decode_step::gelu_rows.
void gelu_panel(float* x, std::size_t n);

/// Fused attention-input projection: qkv[rows, 3d] = x @ [Wq|Wk|Wv] + bias
/// as ONE GEMM (columns [0,d) = Q, [d,2d) = K, [2d,3d) = V, leading
/// dimension 3d). Column-for-column bit-identical to three separate
/// linear_panel calls -- n-tiling never changes an output element's k-order.
void qkv_panel(const float* x, const AttentionBlock& attn, int rows, int d,
               float* qkv);

/// Int8-weights variants of the panel projections, used by encode_batch when
/// decode_int8_enabled() and the packed-weight cache is off. Each packs its
/// weight once per CALL via pack_linear_i8 -- zero-copy from a quantized
/// snapshot's q8 view when present. (The old claim that per-call packing
/// "is once-per-wave exactly like the decode engine's panels" was wrong on
/// both sides: encode_batch calls each panel function once per LAYER per
/// wave, and the decode engine packed once per STREAM, not per call. With
/// the cache on -- the default -- both stacks now pack once per process
/// lifetime through nn::PackedModel and these per-call variants are the
/// MPIRICAL_PACK_CACHE=0 fallback oracle.) Activations, biases, attention,
/// GELU, and layer norms stay f32, so the padding-invariance argument
/// carries over unchanged: the int8 GEMM is rowstable and everything else
/// is row-local.
void linear_panel_i8(const float* x, const Linear& lin, int rows, float* out);
void linear_panel_residual_i8(const float* in, const Linear& lin, int rows,
                              float* x);
void qkv_panel_i8(const float* x, const AttentionBlock& attn, int rows, int d,
                  float* qkv);

/// Cached-panel overloads: the same projections against a PackedLinear from
/// the process-lifetime cache (nn/packed_model.hpp). One overload set serves
/// both weight encodings -- the PackedLinear carries its mode and routes to
/// the rowstable f32 or int8 kernel, each bit-identical to the per-call
/// variant of the same mode above (packing never changes an output
/// element's k-accumulation order). encode_batch uses these whenever
/// pack_cache_enabled().
void linear_panel(const float* x, const PackedLinear& lin, int rows,
                  float* out);
void linear_panel_residual(const float* in, const PackedLinear& lin, int rows,
                           float* x);
void qkv_panel(const float* x, const PackedLinear& fused, int rows, int d,
               float* qkv);

/// Padding-masked bidirectional multi-head self-attention over a padded
/// panel: query row (b, t < lens[b]) attends over key rows (b, j < lens[b])
/// only; padded rows of `out` are zeroed. `q`/`k`/`v` rows share leading
/// dimension `ld` (3d when sliced from a qkv_panel); `out` is [.., d],
/// leading dimension d. Per (source, head): one Q.K^T score GEMM over the
/// source's valid rows, the training path's exact masked-softmax row loop,
/// then one probs.V GEMM -- every shape depends only on lens[b], d, and
/// heads, never on max_len or batch, which is what makes the padded pass
/// padding-invariant per source.
void self_attention_padded(const float* q, const float* k, const float* v,
                           int ld, int batch, int max_len, const int* lens,
                           int d, int heads, float* out);

}  // namespace encode_step

}  // namespace mpirical::nn
