// Transformer encoder-decoder (the SPT-Code architecture, scaled to the
// synthetic task and CPU training).
//
// Pre-LN residual blocks (stable without long warmup), sinusoidal positional
// encodings, fused multi-head attention, GELU feed-forward. The training
// forward pass is batched: token ids are padded to a common length per batch
// and sequence lengths carry the padding masks into attention.
#pragma once

#include <string>
#include <vector>

#include "nn/linear.hpp"
#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace mpirical::nn {

struct TransformerConfig {
  int vocab_size = 512;
  int d_model = 96;
  int heads = 4;
  int ffn_dim = 192;
  int encoder_layers = 2;
  int decoder_layers = 2;
  int max_len = 384;       // positional table size
  float dropout = 0.1f;
};

struct LayerNormParams {
  LayerNormParams() = default;
  explicit LayerNormParams(int d)
      : gamma(tensor::Tensor::full({d}, 1.0f, true)),
        beta(tensor::Tensor::zeros({d}, true)) {}
  tensor::Tensor apply(const tensor::Tensor& x) const {
    return tensor::layer_norm(x, gamma, beta);
  }
  tensor::Tensor gamma;
  tensor::Tensor beta;
};

struct AttentionBlock {
  AttentionBlock() = default;
  AttentionBlock(int d, Rng& rng)
      : wq(d, d, rng), wk(d, d, rng), wv(d, d, rng), wo(d, d, rng) {}
  Linear wq, wk, wv, wo;
};

struct FfnBlock {
  FfnBlock() = default;
  FfnBlock(int d, int hidden, Rng& rng)
      : up(d, hidden, rng), down(hidden, d, rng) {}
  Linear up, down;
};

struct EncoderLayer {
  EncoderLayer() = default;
  EncoderLayer(const TransformerConfig& cfg, Rng& rng)
      : ln1(cfg.d_model),
        ln2(cfg.d_model),
        attn(cfg.d_model, rng),
        ffn(cfg.d_model, cfg.ffn_dim, rng) {}
  LayerNormParams ln1, ln2;
  AttentionBlock attn;
  FfnBlock ffn;
};

struct DecoderLayer {
  DecoderLayer() = default;
  DecoderLayer(const TransformerConfig& cfg, Rng& rng)
      : ln1(cfg.d_model),
        ln2(cfg.d_model),
        ln3(cfg.d_model),
        self_attn(cfg.d_model, rng),
        cross_attn(cfg.d_model, rng),
        ffn(cfg.d_model, cfg.ffn_dim, rng) {}
  LayerNormParams ln1, ln2, ln3;
  AttentionBlock self_attn;
  AttentionBlock cross_attn;
  FfnBlock ffn;
};

class Transformer {
 public:
  Transformer() = default;
  Transformer(const TransformerConfig& config, Rng& rng);

  const TransformerConfig& config() const { return config_; }

  /// Encoder over a padded batch. `src_ids` has batch*src_len entries.
  /// Returns [batch*src_len, d_model].
  tensor::Tensor encode(const std::vector<int>& src_ids, int batch,
                        int src_len, const std::vector<int>& src_lens,
                        bool training, Rng& rng) const;

  /// Decoder + output projection. `tgt_ids` is the shifted-right target
  /// ([SOS] prepended), batch*tgt_len entries. Returns logits
  /// [batch*tgt_len, vocab].
  tensor::Tensor decode(const tensor::Tensor& enc_out,
                        const std::vector<int>& tgt_ids, int batch,
                        int tgt_len, const std::vector<int>& tgt_lens,
                        int src_len, const std::vector<int>& src_lens,
                        bool training, Rng& rng) const;

  /// All trainable parameters (stable order; used by Adam and serialization).
  std::vector<tensor::Tensor> parameters() const;
  std::size_t parameter_count() const;

  /// Binary checkpoint I/O (config + all parameter values).
  std::string serialize() const;
  static Transformer deserialize(const std::string& data);

  // Internals exposed for the incremental decoder (read-only use).
  const tensor::Tensor& token_embedding() const { return tok_embed_; }
  const std::vector<float>& positional_row(int pos) const;
  const std::vector<EncoderLayer>& encoder_layers() const { return enc_; }
  const std::vector<DecoderLayer>& decoder_layers() const { return dec_; }
  const LayerNormParams& encoder_final_ln() const { return enc_ln_; }
  const LayerNormParams& decoder_final_ln() const { return dec_ln_; }
  const Linear& output_projection() const { return out_proj_; }

 private:
  tensor::Tensor embed(const std::vector<int>& ids, int batch, int len,
                       bool training, Rng& rng) const;

  TransformerConfig config_;
  tensor::Tensor tok_embed_;             // [vocab, d]
  std::vector<std::vector<float>> pos_;  // sinusoidal rows [max_len][d]
  std::vector<EncoderLayer> enc_;
  std::vector<DecoderLayer> dec_;
  LayerNormParams enc_ln_;
  LayerNormParams dec_ln_;
  Linear out_proj_;  // [d, vocab]
};

// ---- batched decode-step primitives -----------------------------------------
//
// Row-batched building blocks for the batched incremental decode engine
// (infer.cpp): every operand is a row-major [rows, width] panel holding one
// row per live hypothesis, and the matrix products route through
// tensor::kernels so a single GEMM serves every hypothesis in the wave
// instead of one GEMV each.
namespace decode_step {

/// Row-wise layer norm: out[r] = LN(x[r]) for each of the [rows, d] rows.
void layer_norm_rows(const float* x, const LayerNormParams& ln, int rows,
                     int d, float* out);

/// out[rows, out_dim] = x[rows, in_dim] @ W + b as one GEMM (bias broadcast
/// per row). `x` and `out` must not alias.
void linear_rows(const float* x, const Linear& lin, int rows, float* out);

/// In-place tanh-approximation GELU over a flat buffer.
void gelu_rows(float* x, std::size_t n);

/// Ragged multi-head attention: row r's query attends over its own cache
/// ks[r]/vs[r] of kv_lens[r] positions (each a [kv_len, d] row-major
/// buffer). Used for beam-search self-attention where every hypothesis owns
/// a distinct (forked) K/V history.
void attention_ragged(const float* q, int rows, int d, int heads,
                      const float* const* ks, const float* const* vs,
                      const int* kv_lens, float* out);

/// Multi-head attention of a contiguous query block over one shared K/V
/// panel. `kt` is the K panel stored TRANSPOSED, [d, kv_len] row-major (row
/// i = K column i), so score accumulation is unit-stride over kv and
/// autovectorizes; `v` stays [kv_len, d]. Used for cross-attention where
/// all hypotheses of a request share the precomputed encoder K/V (the
/// transpose is paid once per request at precompute time). Beam-sized row
/// blocks run fused one-pass loops; larger blocks route the score and PV
/// products through kernel-layer GEMMs.
void attention_shared(const float* q, int rows, int d, int heads,
                      const float* kt, const float* v, int kv_len,
                      float* out);

}  // namespace decode_step

}  // namespace mpirical::nn
