#include "nn/adam.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace mpirical::nn {

Adam::Adam(std::vector<tensor::Tensor> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    MR_CHECK(p.requires_grad(), "Adam parameter does not require grad");
    m_.emplace_back(p.numel(), 0.0f);
    v_.emplace_back(p.numel(), 0.0f);
  }
}

float Adam::current_lr() const {
  if (config_.warmup_steps <= 0) return config_.lr;
  const float step = static_cast<float>(std::max(t_, 1));
  const float warmup = static_cast<float>(config_.warmup_steps);
  if (step < warmup) return config_.lr * step / warmup;
  return config_.lr * std::sqrt(warmup / step);
}

void Adam::step() {
  ++t_;
  const float lr = current_lr();
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));

  // Global-norm gradient clipping.
  float clip_scale = 1.0f;
  if (config_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (auto& p : params_) {
      for (float g : p.grad()) norm_sq += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.grad_clip) {
      clip_scale = static_cast<float>(config_.grad_clip / norm);
    }
  }

  parallel_for(0, params_.size(), [&](std::size_t i) {
    auto& p = params_[i];
    auto& value = p.value();
    auto& grad = p.grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      float g = grad[j] * clip_scale;
      if (config_.weight_decay > 0.0f) g += config_.weight_decay * value[j];
      m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * g;
      v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      value[j] -= lr * mhat / (std::sqrt(vhat) + config_.eps);
      grad[j] = 0.0f;
    }
  });
}

void Adam::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

}  // namespace mpirical::nn
