// Adam optimizer with linear warmup + inverse-sqrt decay (the standard
// transformer schedule, as used for SPT-Code fine-tuning).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace mpirical::nn {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.98f;
  float eps = 1e-9f;
  float weight_decay = 0.0f;
  int warmup_steps = 200;  // 0 disables the schedule (constant lr)
  float grad_clip = 1.0f;  // global-norm clip; <= 0 disables
};

class Adam {
 public:
  Adam(std::vector<tensor::Tensor> params, AdamConfig config);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

  /// Zeroes gradients without stepping.
  void zero_grad();

  int steps_taken() const { return t_; }
  /// Effective learning rate at the current step (after warmup schedule).
  float current_lr() const;

 private:
  std::vector<tensor::Tensor> params_;
  AdamConfig config_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  int t_ = 0;
};

}  // namespace mpirical::nn
