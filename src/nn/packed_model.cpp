#include "nn/packed_model.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/recorder.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace mpirical::nn {

namespace {

// One process-wide mutex guards anchor-slot install/reset. Creation is rare
// (once per model per mode, plus invalidations); every later acquire is a
// lock + shared_ptr copy, far off the wave hot path.
std::mutex& cache_mutex() {
  static std::mutex m;
  return m;
}

std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_panels_packed{0};
std::atomic<std::uint64_t> g_pack_ns{0};

void note_pack(double seconds) {
  const auto ns = static_cast<std::uint64_t>(seconds * 1e9);
  g_panels_packed.fetch_add(1, std::memory_order_relaxed);
  g_pack_ns.fetch_add(ns, std::memory_order_relaxed);
  obs::Recorder& rec = obs::Recorder::global();
  if (rec.enabled()) rec.record_phase("nn/pack/panel", ns);
}

void note_acquire(bool hit) {
  (hit ? g_hits : g_misses).fetch_add(1, std::memory_order_relaxed);
  obs::Recorder& rec = obs::Recorder::global();
  if (rec.enabled()) rec.counter_add(hit ? "nn/pack/hit" : "nn/pack/miss", 1);
}

// Interleaves an attention block's three projection weights row-wise
// ([d, 3d] = [Wq|Wk|Wv]) and concatenates the biases -- the exact fused
// operand encode_step::qkv_panel builds per call.
void build_fused_qkv(const AttentionBlock& attn, int d, std::vector<float>& w3,
                     std::vector<float>& b3) {
  const int n3 = 3 * d;
  w3.resize(static_cast<std::size_t>(d) * n3);
  b3.resize(static_cast<std::size_t>(n3));
  const float* wq = attn.wq.w.value().data();
  const float* wk = attn.wk.w.value().data();
  const float* wv = attn.wv.w.value().data();
  for (int i = 0; i < d; ++i) {
    float* row = w3.data() + static_cast<std::size_t>(i) * n3;
    std::memcpy(row, wq + static_cast<std::size_t>(i) * d,
                sizeof(float) * static_cast<std::size_t>(d));
    std::memcpy(row + d, wk + static_cast<std::size_t>(i) * d,
                sizeof(float) * static_cast<std::size_t>(d));
    std::memcpy(row + 2 * d, wv + static_cast<std::size_t>(i) * d,
                sizeof(float) * static_cast<std::size_t>(d));
  }
  std::memcpy(b3.data(), attn.wq.b.value().data(),
              sizeof(float) * static_cast<std::size_t>(d));
  std::memcpy(b3.data() + d, attn.wk.b.value().data(),
              sizeof(float) * static_cast<std::size_t>(d));
  std::memcpy(b3.data() + 2 * d, attn.wv.b.value().data(),
              sizeof(float) * static_cast<std::size_t>(d));
}

}  // namespace

bool pack_cache_enabled() {
  const char* e = std::getenv("MPIRICAL_PACK_CACHE");
  if (e == nullptr || e[0] == '\0') return true;
  return e[0] != '0';
}

PackCacheStats pack_cache_stats() {
  PackCacheStats s;
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.misses = g_misses.load(std::memory_order_relaxed);
  s.panels_packed = g_panels_packed.load(std::memory_order_relaxed);
  s.pack_ns = g_pack_ns.load(std::memory_order_relaxed);
  return s;
}

void PackedLinear::run(const float* x, int rows, float* out) const {
  if (quant) {
    decode_step::linear_rows(x, i8, bias, rows, out);
  } else {
    decode_step::linear_rows_rowstable(x, f32, bias, rows, out);
  }
}

void PackedLinear::run_residual(const float* in, int rows, float* x) const {
  const int n = out_dim();
  if (quant) {
    tensor::kernels::gemm_acc_packed_i8(tensor::kernels::Trans::N, rows, in,
                                        i8.k, i8, x, n);
  } else {
    tensor::kernels::gemm_acc_packed_rowstable(tensor::kernels::Trans::N, rows,
                                               in, f32.k, f32, x, n);
  }
  for (int r = 0; r < rows; ++r) {
    float* xrow = x + static_cast<std::size_t>(r) * n;
    for (int j = 0; j < n; ++j) xrow[j] += bias[j];
  }
}

struct PackedModel::Lazy {
  std::once_flag once;
  PackedLinear lin;
};

PackedModel::PackedModel(const Transformer& model, bool int8_mode)
    : model_(&model),
      quant_(int8_mode),
      dec_layers_(model.decoder_layers().size()),
      enc_layers_(model.encoder_layers().size()),
      dec_slots_(std::make_unique<Lazy[]>(dec_layers_ * 8)),
      enc_slots_(std::make_unique<Lazy[]>(enc_layers_ * 4)),
      tail_slots_(std::make_unique<Lazy[]>(2)) {}

PackedModel::~PackedModel() = default;

const PackedLinear& PackedModel::ensure(Lazy& slot, const Linear& lin) const {
  std::call_once(slot.once, [&] {
    Timer timer;
    PackedLinear& p = slot.lin;
    p.bias = lin.b.value().data();
    p.quant = quant_;
    if (quant_) {
      p.i8 = pack_linear_i8(lin);
    } else {
      p.f32 = tensor::kernels::pack_b_panels(
          tensor::kernels::Trans::N, lin.w.dim(1), lin.w.dim(0),
          lin.w.value().data(), lin.w.dim(1));
    }
    note_pack(timer.seconds());
  });
  return slot.lin;
}

const PackedLinear& PackedModel::ensure_qkv(Lazy& slot,
                                            const AttentionBlock& attn) const {
  std::call_once(slot.once, [&] {
    Timer timer;
    PackedLinear& p = slot.lin;
    const int d = attn.wq.w.dim(0);
    const int n3 = 3 * d;
    build_fused_qkv(attn, d, p.fused_w, p.fused_b);
    p.bias = p.fused_b.data();
    p.quant = quant_;
    if (quant_) {
      // Quantize the fused dequantized-f32 matrix, NOT the stored q8 bytes:
      // this is the exact computation the per-call qkv_panel_i8 runs, so
      // cache-on stays bit-identical to cache-off even when 127*scale/127
      // would not round-trip a stored scale exactly. (Per-column scales of
      // the fused matrix equal the separate projections' scales -- columns
      // are independent.)
      p.i8 = tensor::kernels::pack_b_panels_i8(tensor::kernels::Trans::N, n3,
                                               d, p.fused_w.data(), n3);
    } else {
      p.f32 = tensor::kernels::pack_b_panels(tensor::kernels::Trans::N, n3, d,
                                             p.fused_w.data(), n3);
    }
    note_pack(timer.seconds());
  });
  return slot.lin;
}

const PackedLinear& PackedModel::ensure_cross_kv(Lazy& slot) const {
  std::call_once(slot.once, [&] {
    Timer timer;
    PackedLinear& p = slot.lin;
    const int d = model_->config().d_model;
    const auto& dec_layers = model_->decoder_layers();
    const int ncols = static_cast<int>(dec_layers.size()) * 2 * d;
    p.quant = false;  // the cross-K/V projection stays f32 in int8 mode
    if (ncols == 0) return;
    p.fused_w.resize(static_cast<std::size_t>(d) * ncols);
    p.fused_b.resize(static_cast<std::size_t>(ncols));
    for (std::size_t li = 0; li < dec_layers.size(); ++li) {
      const auto& attn = dec_layers[li].cross_attn;
      const float* wk = attn.wk.w.value().data();
      const float* wv = attn.wv.w.value().data();
      const int base = static_cast<int>(li) * 2 * d;
      for (int i = 0; i < d; ++i) {
        float* row = p.fused_w.data() + static_cast<std::size_t>(i) * ncols +
                     base;
        std::memcpy(row, wk + static_cast<std::size_t>(i) * d,
                    sizeof(float) * static_cast<std::size_t>(d));
        std::memcpy(row + d, wv + static_cast<std::size_t>(i) * d,
                    sizeof(float) * static_cast<std::size_t>(d));
      }
      std::memcpy(p.fused_b.data() + base, attn.wk.b.value().data(),
                  sizeof(float) * static_cast<std::size_t>(d));
      std::memcpy(p.fused_b.data() + base + d, attn.wv.b.value().data(),
                  sizeof(float) * static_cast<std::size_t>(d));
    }
    p.bias = p.fused_b.data();
    p.f32 = tensor::kernels::pack_b_panels(tensor::kernels::Trans::N, ncols, d,
                                           p.fused_w.data(), ncols);
    note_pack(timer.seconds());
  });
  return slot.lin;
}

PackedModel::DecoderPanels PackedModel::decoder_layer(std::size_t li) const {
  MR_CHECK(li < dec_layers_, "decoder layer index out of range");
  const DecoderLayer& layer = model_->decoder_layers()[li];
  Lazy* s = dec_slots_.get() + li * 8;
  return DecoderPanels{ensure(s[0], layer.self_attn.wq),
                       ensure(s[1], layer.self_attn.wk),
                       ensure(s[2], layer.self_attn.wv),
                       ensure(s[3], layer.self_attn.wo),
                       ensure(s[4], layer.cross_attn.wq),
                       ensure(s[5], layer.cross_attn.wo),
                       ensure(s[6], layer.ffn.up),
                       ensure(s[7], layer.ffn.down)};
}

const PackedLinear& PackedModel::output_projection() const {
  return ensure(tail_slots_[0], model_->output_projection());
}

PackedModel::EncoderPanels PackedModel::encoder_layer(std::size_t li) const {
  MR_CHECK(li < enc_layers_, "encoder layer index out of range");
  const EncoderLayer& layer = model_->encoder_layers()[li];
  Lazy* s = enc_slots_.get() + li * 4;
  return EncoderPanels{ensure_qkv(s[0], layer.attn),
                       ensure(s[1], layer.attn.wo),
                       ensure(s[2], layer.ffn.up),
                       ensure(s[3], layer.ffn.down)};
}

const PackedLinear& PackedModel::cross_kv_fused() const {
  return ensure_cross_kv(tail_slots_[1]);
}

int PackedModel::cross_kv_cols() const {
  return static_cast<int>(dec_layers_) * 2 * model_->config().d_model;
}

void PackedModel::warm() const {
  for (std::size_t li = 0; li < dec_layers_; ++li) decoder_layer(li);
  output_projection();
  for (std::size_t li = 0; li < enc_layers_; ++li) encoder_layer(li);
  if (cross_kv_cols() > 0) cross_kv_fused();
}

std::shared_ptr<const PackedModel> PackedModel::acquire(
    const Transformer& model, bool int8_mode) {
  if (!pack_cache_enabled()) {
    // Uncached fallback: a fresh instance per acquire, so every stream packs
    // its own panels -- the legacy per-wave behavior the differential suite
    // uses as the oracle.
    note_acquire(/*hit=*/false);
    return std::shared_ptr<const PackedModel>(
        new PackedModel(model, int8_mode));
  }
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto& anchor = model.pack_cache_;
  if (!anchor.slots) anchor.slots = std::make_shared<detail::PackCacheSlots>();
  std::shared_ptr<const PackedModel>& slot =
      int8_mode ? anchor.slots->i8 : anchor.slots->f32;
  if (!slot) {
    note_acquire(/*hit=*/false);
    slot.reset(new PackedModel(model, int8_mode));
  } else {
    note_acquire(/*hit=*/true);
  }
  return slot;
}

void PackedModel::warm_cache(const Transformer& model) {
  if (!pack_cache_enabled()) return;
  acquire(model, decode_int8_enabled())->warm();
}

void Transformer::invalidate_pack_cache() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  pack_cache_.slots.reset();
}

}  // namespace mpirical::nn
