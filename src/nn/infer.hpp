// Forward-only incremental decoding with per-layer KV caches.
//
// Training uses the autograd path; generation would be quadratic-in-length if
// it re-ran the full decoder per emitted token. IncrementalDecoder encodes
// the source once, precomputes each decoder layer's cross-attention K/V (one
// GEMM per projection over the whole source), and then advances one token at
// a time in O(t * d) per step. The object is copyable, which is what beam
// search uses to fork hypotheses: the immutable per-source cross K/V lives
// behind a shared_ptr, so a fork copies only the growing self-attention
// cache.
#pragma once

#include <memory>
#include <vector>

#include "nn/transformer.hpp"

namespace mpirical::nn {

class IncrementalDecoder {
 public:
  /// Encodes `src_ids` (no padding; batch of one) and prepares caches.
  IncrementalDecoder(const Transformer& model, const std::vector<int>& src_ids);

  /// Feeds the next input token (the first call passes [SOS]) and returns
  /// logits over the vocabulary for the following position.
  const std::vector<float>& step(int token);

  /// Number of tokens consumed so far.
  int position() const { return t_; }

  const Transformer& model() const { return *model_; }

 private:
  struct LayerState {
    std::vector<float> self_k;  // [t, d] grows per step
    std::vector<float> self_v;
  };

  // Immutable once constructed; shared across all forks of a hypothesis so
  // beam search never deep-copies the cross K/V. (The encoder output itself
  // is consumed by the constructor's projections and not retained.)
  struct SourceState {
    struct LayerKV {
      std::vector<float> cross_k;  // [src_len, d]
      std::vector<float> cross_v;
    };
    std::vector<LayerKV> layers;
  };

  void attend(const float* q, const float* kcache, const float* vcache,
              int kv_len, float* out) const;

  const Transformer* model_ = nullptr;
  int d_ = 0;
  int heads_ = 0;
  int src_len_ = 0;
  int t_ = 0;
  std::shared_ptr<const SourceState> source_;
  std::vector<LayerState> layers_;
  std::vector<float> logits_;
};

/// Greedy decoding: emits up to `max_len` tokens, stopping at `eos`.
std::vector<int> greedy_decode(const Transformer& model,
                               const std::vector<int>& src_ids, int sos,
                               int eos, int max_len);

/// Beam-search decoding with length-normalized log-prob scoring.
std::vector<int> beam_decode(const Transformer& model,
                             const std::vector<int>& src_ids, int sos, int eos,
                             int max_len, int beam_width);

}  // namespace mpirical::nn
