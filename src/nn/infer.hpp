// Forward-only incremental decoding with per-layer KV caches.
//
// Two decode paths live here. The batched engine (decode_batch) encodes each
// wave's sources through one padded batched encoder pass (nn::encode_batch;
// MPIRICAL_ENCODE_BATCH=0 falls back to per-source encoding) and advances
// all live hypotheses of all concurrent requests through one [rows, d] GEMM
// per projection per layer; it is what greedy_decode / beam_decode route
// through. The per-hypothesis reference path (IncrementalDecoder +
// decode_reference) is the PR 1 implementation, kept as the oracle for the
// differential equivalence suites and the fallback for odd shapes.
//
// Training uses the autograd path; generation would be quadratic-in-length if
// it re-ran the full decoder per emitted token. IncrementalDecoder encodes
// the source once, precomputes each decoder layer's cross-attention K/V (one
// GEMM per projection over the whole source), and then advances one token at
// a time in O(t * d) per step. The object is copyable, which is what beam
// search uses to fork hypotheses: the immutable per-source cross K/V lives
// behind a shared_ptr, so a fork copies only the growing self-attention
// cache.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/packed_model.hpp"
#include "nn/transformer.hpp"

namespace mpirical::nn {

class IncrementalDecoder {
 public:
  /// Encodes `src_ids` (no padding; batch of one) and prepares caches.
  IncrementalDecoder(const Transformer& model, const std::vector<int>& src_ids);

  /// Feeds the next input token (the first call passes [SOS]) and returns
  /// logits over the vocabulary for the following position.
  const std::vector<float>& step(int token);

  /// Number of tokens consumed so far.
  int position() const { return t_; }

  const Transformer& model() const { return *model_; }

 private:
  struct LayerState {
    std::vector<float> self_k;  // [t, d] grows per step
    std::vector<float> self_v;
  };

  // Immutable once constructed; shared across all forks of a hypothesis so
  // beam search never deep-copies the cross K/V. (The encoder output itself
  // is consumed by the constructor's projections and not retained.)
  struct SourceState {
    struct LayerKV {
      std::vector<float> cross_k;  // [src_len, d]
      std::vector<float> cross_v;
    };
    std::vector<LayerKV> layers;
  };

  void attend(const float* q, const float* kcache, const float* vcache,
              int kv_len, float* out) const;

  const Transformer* model_ = nullptr;
  int d_ = 0;
  int heads_ = 0;
  int src_len_ = 0;
  int t_ = 0;
  std::shared_ptr<const SourceState> source_;
  std::vector<LayerState> layers_;
  std::vector<float> logits_;
};

// ---- batched beam-step decode engine ----------------------------------------
//
// The fast decode path. Instead of advancing each hypothesis through
// per-hypothesis GEMVs (one weight-matrix pass per live beam entry, as the
// reference path below does), decode_batch gathers every live hypothesis of
// every concurrent request into one [rows, d] panel per wave and advances
// them all through a single GEMM per projection per layer
// (nn::decode_step::*). Self-attention K/V caches are per-hypothesis ragged
// buffers behind shared_ptrs: a beam fork copies only the pointer, and the
// next wave's append clones lazily (fork-by-index copy-on-write), so
// surviving forks of one parent share history until they diverge.

/// One decode request: a source sequence plus its decoding parameters.
/// `beam_width == 1` is greedy (argmax, stop at `eos`); wider beams use
/// length-normalized log-prob scoring, identical to the reference path.
struct DecodeRequest {
  std::vector<int> src_ids;
  int sos = 0;
  int eos = 0;
  int max_len = 0;
  int beam_width = 1;
};

/// Decoded tokens (never containing `eos`) and the unnormalized sum of
/// per-token log-probs of the winning hypothesis (for beams this includes
/// the terminating `eos`, matching the reference scoring).
struct DecodeResult {
  std::vector<int> tokens;
  double log_prob = 0.0;
};

/// Per-request immutable cross-attention K/V, shared (behind shared_ptr)
/// across every hypothesis of a request's beam. K is stored TRANSPOSED
/// ([d, src_len] row-major), the layout decode_step::attention_shared
/// streams with unit stride; V stays [src_len, d].
struct SourceCrossKV {
  struct Layer {
    std::vector<float> kt;  // [d, src_len] -- K transposed
    std::vector<float> v;   // [src_len, d]
  };
  int src_len = 0;
  std::vector<Layer> layers;
};

/// True unless MPIRICAL_ENCODE_BATCH is set to a value starting with '0'
/// (read per call so benches can toggle mid-process). When enabled (the
/// default), decode_batch encodes each wave's sources through one padded
/// batched encoder pass (nn::encode_batch); when disabled it falls back to
/// the per-source padding-free batch-of-1 encode -- the oracle the
/// encode-equivalence suite differentials against.
bool encode_batch_enabled();

/// Precomputes each source's decoder cross-attention K/V: one GEMM per
/// projection per layer over that source's encoder rows, padded rows
/// excluded. `batched` selects the padded batched encoder (all sources in
/// one wave pass, per-request EncodedView slices of the shared panel) vs the
/// per-source oracle path. Exposed for the encode-equivalence and
/// padding-invariance suites; decode_batch routes through it.
std::vector<std::shared_ptr<const SourceCrossKV>> precompute_cross_kv_batch(
    const Transformer& model,
    const std::vector<const std::vector<int>*>& sources, bool batched);

/// Wall-time split of one decode_batch call, for the decode bench's
/// encode_ms/decode_ms reporting. Filled only by the batched engine (the
/// MPIRICAL_DECODE_REFERENCE fallback leaves it zeroed).
struct DecodeBatchStats {
  double encode_seconds = 0.0;  // source encoding + cross-K/V precompute
  double decode_seconds = 0.0;  // wave stepping + beam bookkeeping
};

// ---- continuous decode stream -----------------------------------------------

/// The batched decode engine as a long-lived object: weight panels come from
/// the process-lifetime packed cache (nn::PackedModel -- shared across every
/// stream; with MPIRICAL_PACK_CACHE=0 a private set is packed per stream),
/// then requests JOIN the running wave at any step boundary
/// (submit) and LEAVE as they finish (step's return) -- no per-wave barrier.
/// This is what the serve daemon steps continuously; decode_batch is a thin
/// wrapper around it (construct, submit once, step to idle).
///
/// Token identity across wave compositions is DETERMINISTIC, not
/// statistical: every full-wave f32 projection routes through
/// decode_step::linear_rows_rowstable (the int8 panels are rowstable by
/// construction), every other step op is per-row or per-request-span, and
/// the batched encoder is padding-invariant -- so a request's decoded tokens
/// and log-prob BITS are independent of which other requests share its
/// waves. Any arrival order reproduces decode_batch's results exactly
/// (tests/test_serve_equivalence.cpp is the differential harness).
///
/// Not thread-safe: one thread owns a stream (the serve daemon dedicates an
/// engine thread; other threads hand it requests through the scheduler).
class DecodeStream {
 public:
  /// Identifies one submitted request across submit()/step().
  using TicketId = std::uint64_t;

  struct Finished {
    TicketId id = 0;
    DecodeResult result;
  };

  /// Acquires the shared packed-weight cache for the current mode (f32, or
  /// int8 when MPIRICAL_DECODE_INT8 is set -- read once here, not per wave);
  /// panels pack lazily on first touch, so steady-state construction packs
  /// nothing. With MPIRICAL_PACK_CACHE=0 the stream packs a private set
  /// instead (the legacy per-stream behavior). The model must outlive the
  /// stream.
  explicit DecodeStream(const Transformer& model);
  /// Same, but stepping through a caller-provided packed cache instance
  /// (must belong to `model`; its int8 mode decides the kernel path).
  DecodeStream(const Transformer& model,
               std::shared_ptr<const PackedModel> packed);
  ~DecodeStream();
  DecodeStream(const DecodeStream&) = delete;
  DecodeStream& operator=(const DecodeStream&) = delete;

  /// Admits a group of requests; they start stepping at the next step()
  /// call. The group's sources are encoded through one padded batched
  /// encoder pass (per-source oracle when MPIRICAL_ENCODE_BATCH=0) --
  /// padding invariance makes the resulting cross-K/V bitwise independent
  /// of the grouping. Returns one ticket per request, in request order.
  std::vector<TicketId> submit(const std::vector<DecodeRequest>& requests);

  /// Advances every live request by one token position and returns the
  /// requests that finished (eos / beam exhaustion / max_len), in admission
  /// order within the step. Safe to call when idle (returns empty).
  std::vector<Finished> step();

  /// Requests admitted but not yet returned by step().
  std::size_t live() const;
  bool idle() const { return live() == 0; }

  const Transformer& model() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Decodes all requests in lockstep GEMM waves. Token-for-token equivalent
/// to running decode_reference per request (tests/test_decode_equivalence.cpp
/// is the differential harness). Setting MPIRICAL_DECODE_REFERENCE=1 in the
/// environment routes every request through the reference path instead.
std::vector<DecodeResult> decode_batch(const Transformer& model,
                                       const std::vector<DecodeRequest>& requests,
                                       DecodeBatchStats* stats = nullptr);

/// decode_batch stepping through a caller-provided packed cache instance
/// (e.g. one PackedModel::acquire'd once and reused across many waves).
std::vector<DecodeResult> decode_batch(
    const Transformer& model, const std::vector<DecodeRequest>& requests,
    std::shared_ptr<const PackedModel> packed, DecodeBatchStats* stats);

/// The PR 1 per-hypothesis decode path (IncrementalDecoder + one GEMV per
/// projection per hypothesis), kept as the oracle for the differential
/// equivalence suite and as the fallback for odd shapes. `beam_width == 1`
/// is greedy.
DecodeResult decode_reference(const Transformer& model,
                              const std::vector<int>& src_ids, int sos,
                              int eos, int max_len, int beam_width);

/// Greedy decoding: emits up to `max_len` tokens, stopping at `eos`.
/// Routed through the batched engine.
std::vector<int> greedy_decode(const Transformer& model,
                               const std::vector<int>& src_ids, int sos,
                               int eos, int max_len);

/// Beam-search decoding with length-normalized log-prob scoring.
/// Routed through the batched engine.
std::vector<int> beam_decode(const Transformer& model,
                             const std::vector<int>& src_ids, int sos, int eos,
                             int max_len, int beam_width);

}  // namespace mpirical::nn
