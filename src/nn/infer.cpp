#include "nn/infer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "support/arena.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"
#include "tensor/kernels.hpp"

namespace mpirical::nn {

namespace {

void layer_norm_raw(const float* x, const LayerNormParams& ln, int d,
                    float* out) {
  float mean = 0.0f;
  for (int i = 0; i < d; ++i) mean += x[i];
  mean /= static_cast<float>(d);
  float var = 0.0f;
  for (int i = 0; i < d; ++i) {
    const float diff = x[i] - mean;
    var += diff * diff;
  }
  var /= static_cast<float>(d);
  const float inv_std = 1.0f / std::sqrt(var + 1e-5f);
  const auto& gamma = ln.gamma.value();
  const auto& beta = ln.beta.value();
  for (int i = 0; i < d; ++i) {
    out[i] = (x[i] - mean) * inv_std * gamma[i] + beta[i];
  }
}

void linear_raw(const float* x, const Linear& lin, float* out) {
  const int in = lin.w.dim(0);
  const int n = lin.w.dim(1);
  tensor::gemv_row(x, lin.w.value().data(), lin.b.value().data(), out, in, n);
}

float gelu_raw(float v) {
  constexpr float kC = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  return 0.5f * v * (1.0f + std::tanh(kC * (v + kA * v * v * v)));
}

}  // namespace

IncrementalDecoder::IncrementalDecoder(const Transformer& model,
                                       const std::vector<int>& src_ids)
    : model_(&model),
      d_(model.config().d_model),
      heads_(model.config().heads),
      src_len_(static_cast<int>(src_ids.size())) {
  MR_CHECK(src_len_ > 0, "empty source sequence");
  MR_CHECK(src_len_ <= model.config().max_len, "source exceeds max_len");

  // Encode once using the batched path (batch of one, no dropout).
  Rng rng(0);
  const std::vector<int> lens = {src_len_};
  tensor::Tensor enc = model.encode(src_ids, /*batch=*/1, src_len_, lens,
                                    /*training=*/false, rng);

  // Precompute cross-attention K/V per decoder layer: one [src_len, d] x
  // [d, d] GEMM per projection instead of src_len GEMVs. The encoder output
  // is only needed here, so it is not retained in the shared state.
  const auto& enc_out = enc.value();
  auto source = std::make_shared<SourceState>();
  source->layers.resize(model.decoder_layers().size());
  using tensor::kernels::Trans;
  auto project = [&](const Linear& lin, std::vector<float>& dst) {
    dst.resize(static_cast<std::size_t>(src_len_) * d_);
    const auto& bias = lin.b.value();
    for (int s = 0; s < src_len_; ++s) {
      std::copy(bias.begin(), bias.end(),
                dst.begin() + static_cast<std::size_t>(s) * d_);
    }
    tensor::kernels::gemm_acc(Trans::N, Trans::N, src_len_, d_, d_,
                              enc_out.data(), d_, lin.w.value().data(), d_,
                              dst.data(), d_);
  };
  for (std::size_t li = 0; li < source->layers.size(); ++li) {
    const auto& layer = model.decoder_layers()[li];
    project(layer.cross_attn.wk, source->layers[li].cross_k);
    project(layer.cross_attn.wv, source->layers[li].cross_v);
  }
  source_ = std::move(source);
  layers_.resize(model.decoder_layers().size());
  logits_.resize(static_cast<std::size_t>(model.config().vocab_size));
}

void IncrementalDecoder::attend(const float* q, const float* kcache,
                                const float* vcache, int kv_len,
                                float* out) const {
  const int hd = d_ / heads_;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  std::vector<float> scores(static_cast<std::size_t>(kv_len));
  for (int h = 0; h < heads_; ++h) {
    const int off = h * hd;
    float mx = -1e30f;
    for (int j = 0; j < kv_len; ++j) {
      const float* krow = kcache + static_cast<std::size_t>(j) * d_ + off;
      float s = 0.0f;
      for (int c = 0; c < hd; ++c) s += q[off + c] * krow[c];
      s *= inv_sqrt;
      scores[static_cast<std::size_t>(j)] = s;
      mx = std::max(mx, s);
    }
    float sum = 0.0f;
    for (int j = 0; j < kv_len; ++j) {
      scores[static_cast<std::size_t>(j)] =
          std::exp(scores[static_cast<std::size_t>(j)] - mx);
      sum += scores[static_cast<std::size_t>(j)];
    }
    const float inv = 1.0f / sum;
    for (int c = 0; c < hd; ++c) out[off + c] = 0.0f;
    for (int j = 0; j < kv_len; ++j) {
      const float p = scores[static_cast<std::size_t>(j)] * inv;
      const float* vrow = vcache + static_cast<std::size_t>(j) * d_ + off;
      for (int c = 0; c < hd; ++c) out[off + c] += p * vrow[c];
    }
  }
}

const std::vector<float>& IncrementalDecoder::step(int token) {
  const auto& cfg = model_->config();
  MR_CHECK(t_ < cfg.max_len, "decode length exceeds max_len");
  MR_CHECK(token >= 0 && token < cfg.vocab_size, "token id out of range");

  // Embedding + positional encoding.
  std::vector<float> x(static_cast<std::size_t>(d_));
  const float* erow = model_->token_embedding().value().data() +
                      static_cast<std::size_t>(token) * d_;
  const float scale = std::sqrt(static_cast<float>(d_));
  const auto& pos = model_->positional_row(t_);
  for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] =
      erow[i] * scale + pos[static_cast<std::size_t>(i)];

  std::vector<float> normed(static_cast<std::size_t>(d_));
  std::vector<float> q(static_cast<std::size_t>(d_));
  std::vector<float> attn(static_cast<std::size_t>(d_));
  std::vector<float> proj(static_cast<std::size_t>(d_));
  std::vector<float> hidden;

  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto& layer = model_->decoder_layers()[li];
    auto& state = layers_[li];

    // Causal self-attention over the cache (which includes this step).
    layer_norm_raw(x.data(), layer.ln1, d_, normed.data());
    linear_raw(normed.data(), layer.self_attn.wq, q.data());
    const std::size_t cache_off = static_cast<std::size_t>(t_) * d_;
    state.self_k.resize(cache_off + static_cast<std::size_t>(d_));
    state.self_v.resize(cache_off + static_cast<std::size_t>(d_));
    linear_raw(normed.data(), layer.self_attn.wk,
               state.self_k.data() + cache_off);
    linear_raw(normed.data(), layer.self_attn.wv,
               state.self_v.data() + cache_off);
    attend(q.data(), state.self_k.data(), state.self_v.data(), t_ + 1,
           attn.data());
    linear_raw(attn.data(), layer.self_attn.wo, proj.data());
    for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] += proj[
        static_cast<std::size_t>(i)];

    // Cross attention over the shared precomputed encoder K/V.
    const auto& cross = source_->layers[li];
    layer_norm_raw(x.data(), layer.ln2, d_, normed.data());
    linear_raw(normed.data(), layer.cross_attn.wq, q.data());
    attend(q.data(), cross.cross_k.data(), cross.cross_v.data(), src_len_,
           attn.data());
    linear_raw(attn.data(), layer.cross_attn.wo, proj.data());
    for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] += proj[
        static_cast<std::size_t>(i)];

    // Feed-forward.
    layer_norm_raw(x.data(), layer.ln3, d_, normed.data());
    hidden.resize(static_cast<std::size_t>(layer.ffn.up.w.dim(1)));
    linear_raw(normed.data(), layer.ffn.up, hidden.data());
    for (auto& h : hidden) h = gelu_raw(h);
    linear_raw(hidden.data(), layer.ffn.down, proj.data());
    for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] += proj[
        static_cast<std::size_t>(i)];
  }

  layer_norm_raw(x.data(), model_->decoder_final_ln(), d_, normed.data());
  linear_raw(normed.data(), model_->output_projection(), logits_.data());
  ++t_;
  return logits_;
}

namespace {

struct Hypothesis {
  std::shared_ptr<IncrementalDecoder> decoder;
  std::vector<int> tokens;
  double log_prob = 0.0;
  bool finished = false;
  int next_input = -1;

  double score() const {
    const double len = static_cast<double>(tokens.size()) + 1.0;
    return log_prob / len;  // length-normalized
  }
};

// Token-identity between the reference and batched paths depends on both
// normalizing logits with this exact arithmetic (float max, double exp-sum,
// float subtraction), so it is defined once and shared.
void log_softmax_row(float* v, int n) {
  float mx = v[0];
  for (int i = 0; i < n; ++i) mx = std::max(mx, v[i]);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += std::exp(static_cast<double>(v[i]) - mx);
  }
  const float lse = mx + static_cast<float>(std::log(sum));
  for (int i = 0; i < n; ++i) v[i] -= lse;
}

void log_softmax_inplace(std::vector<float>& v) {
  log_softmax_row(v.data(), static_cast<int>(v.size()));
}

// Reference greedy: per-hypothesis GEMV path, tracking the log-prob sum of
// the emitted tokens (the terminating eos is not emitted and not scored).
DecodeResult greedy_reference(const Transformer& model,
                              const std::vector<int>& src_ids, int sos,
                              int eos, int max_len) {
  IncrementalDecoder dec(model, src_ids);
  DecodeResult res;
  int token = sos;
  for (int i = 0; i < max_len; ++i) {
    auto logits = dec.step(token);
    int best = 0;
    for (int j = 1; j < static_cast<int>(logits.size()); ++j) {
      if (logits[static_cast<std::size_t>(j)] >
          logits[static_cast<std::size_t>(best)]) {
        best = j;
      }
    }
    if (best == eos) break;
    log_softmax_inplace(logits);
    res.log_prob += static_cast<double>(logits[static_cast<std::size_t>(best)]);
    res.tokens.push_back(best);
    token = best;
  }
  return res;
}

}  // namespace

DecodeResult decode_reference(const Transformer& model,
                              const std::vector<int>& src_ids, int sos,
                              int eos, int max_len, int beam_width) {
  MR_CHECK(beam_width >= 1, "beam width must be >= 1");
  if (beam_width == 1) {
    return greedy_reference(model, src_ids, sos, eos, max_len);
  }

  std::vector<Hypothesis> beam;
  Hypothesis root;
  root.decoder = std::make_shared<IncrementalDecoder>(model, src_ids);
  root.next_input = sos;
  beam.push_back(std::move(root));

  for (int step = 0; step < max_len; ++step) {
    std::vector<Hypothesis> candidates;
    bool all_finished = true;
    for (auto& hyp : beam) {
      if (hyp.finished) {
        candidates.push_back(hyp);
        continue;
      }
      all_finished = false;
      auto logits = hyp.decoder->step(hyp.next_input);
      log_softmax_inplace(logits);
      // Top beam_width continuations of this hypothesis.
      std::vector<int> order(logits.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] =
          static_cast<int>(i);
      std::partial_sort(order.begin(),
                        order.begin() + std::min<std::size_t>(
                                            order.size(),
                                            static_cast<std::size_t>(
                                                beam_width)),
                        order.end(), [&](int a, int b) {
                          return logits[static_cast<std::size_t>(a)] >
                                 logits[static_cast<std::size_t>(b)];
                        });
      // The stepped decoder state is identical for every continuation (they
      // diverge only on the next input token), so the first live fork takes
      // the parent's decoder and only the remaining forks copy it. A copy is
      // cheap anyway: the per-source state is shared, so a fork duplicates
      // only the growing self-attention cache.
      std::shared_ptr<IncrementalDecoder> parent = std::move(hyp.decoder);
      bool parent_taken = false;
      for (int k = 0; k < beam_width &&
                      k < static_cast<int>(order.size());
           ++k) {
        const int tok = order[static_cast<std::size_t>(k)];
        Hypothesis next;
        next.tokens = hyp.tokens;
        next.log_prob =
            hyp.log_prob +
            static_cast<double>(logits[static_cast<std::size_t>(tok)]);
        if (tok == eos) {
          // Finished hypotheses never step again; holding no decoder keeps
          // wide beams from pinning dead KV caches in memory.
          next.finished = true;
        } else {
          if (parent_taken) {
            next.decoder = std::make_shared<IncrementalDecoder>(*parent);
          } else {
            next.decoder = parent;
            parent_taken = true;
          }
          next.tokens.push_back(tok);
          next.next_input = tok;
        }
        candidates.push_back(std::move(next));
      }
    }
    if (all_finished) break;
    std::sort(candidates.begin(), candidates.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.score() > b.score();
              });
    if (candidates.size() > static_cast<std::size_t>(beam_width)) {
      candidates.resize(static_cast<std::size_t>(beam_width));
    }
    beam = std::move(candidates);
  }

  const Hypothesis* best = &beam.front();
  for (const auto& hyp : beam) {
    if (hyp.score() > best->score()) best = &hyp;
  }
  DecodeResult res;
  res.tokens = best->tokens;
  res.log_prob = best->log_prob;
  return res;
}

// ---- batched beam-step decode engine ----------------------------------------

namespace {

bool use_reference_decode() {
  static const bool v = [] {
    const char* e = std::getenv("MPIRICAL_DECODE_REFERENCE");
    return e != nullptr && e[0] != '\0' && e[0] != '0';
  }();
  return v;
}

// Growing per-hypothesis self-attention K/V, all decoder layers in one
// allocation unit so a copy-on-write clone is a single object copy.
struct LaneCache {
  std::vector<std::vector<float>> k;  // [layer][t * d]
  std::vector<std::vector<float>> v;
};

// One live or finished hypothesis of a request's beam. `cache` is shared
// between forks of one parent until the next wave's append clones it
// (copy-on-write); finished hypotheses drop theirs.
struct BatchHyp {
  std::shared_ptr<LaneCache> cache;
  std::vector<int> tokens;
  double log_prob = 0.0;
  bool finished = false;
  int next_input = -1;

  double score() const {
    const double len = static_cast<double>(tokens.size()) + 1.0;
    return log_prob / len;  // length-normalized, as the reference scores
  }
};

struct RequestState {
  int src_len = 0;
  std::shared_ptr<const SourceCrossKV> cross;
  std::vector<BatchHyp> beam;
  bool done = false;
};

// Resize that keeps vector growth amortized: plain resize(n) reallocates to
// exactly n, which would re-copy the whole cache every wave.
void grow(std::vector<float>& v, std::size_t n) {
  if (v.capacity() < n) v.reserve(std::max(n, v.capacity() * 2));
  v.resize(n);
}

// Projects one source's contiguous encoder rows ([src_len, d], leading
// dimension d) into its per-layer cross-attention K/V: one
// [src_len, d] x [d, d] GEMM per projection. Serves the per-source oracle
// path only -- the batched path projects all sources through one fused
// row-stable GEMM instead (different accumulation path, same values within
// kernel noise; the equivalence suite bounds the difference).
std::shared_ptr<const SourceCrossKV> project_cross_kv(const Transformer& model,
                                                      const float* enc_rows,
                                                      int src_len) {
  const int d = model.config().d_model;
  auto cross = std::make_shared<SourceCrossKV>();
  cross->src_len = src_len;
  cross->layers.resize(model.decoder_layers().size());
  using tensor::kernels::Trans;
  auto project = [&](const Linear& lin, std::vector<float>& dst) {
    dst.resize(static_cast<std::size_t>(src_len) * d);
    const auto& bias = lin.b.value();
    for (int s = 0; s < src_len; ++s) {
      std::copy(bias.begin(), bias.end(),
                dst.begin() + static_cast<std::size_t>(s) * d);
    }
    tensor::kernels::gemm_acc(Trans::N, Trans::N, src_len, d, d, enc_rows, d,
                              lin.w.value().data(), d, dst.data(), d);
  };
  std::vector<float> k_rows;
  for (std::size_t li = 0; li < cross->layers.size(); ++li) {
    const auto& layer = model.decoder_layers()[li];
    project(layer.cross_attn.wk, k_rows);
    auto& kt = cross->layers[li].kt;
    kt.resize(static_cast<std::size_t>(d) * src_len);
    for (int s = 0; s < src_len; ++s) {
      for (int i = 0; i < d; ++i) {
        kt[static_cast<std::size_t>(i) * src_len + s] =
            k_rows[static_cast<std::size_t>(s) * d + i];
      }
    }
    project(layer.cross_attn.wv, cross->layers[li].v);
  }
  return cross;
}

// The PR 2 per-source encode: a padding-free batch of one through the
// training-path encoder, numerically identical to what the reference
// decoder's constructor computes. Retained as the oracle the batched padded
// encoder differentials against.
std::shared_ptr<const SourceCrossKV> precompute_cross_kv_per_source(
    const Transformer& model, const std::vector<int>& src_ids) {
  const auto& cfg = model.config();
  const int src_len = static_cast<int>(src_ids.size());
  MR_CHECK(src_len > 0, "empty source sequence");
  MR_CHECK(src_len <= cfg.max_len, "source exceeds max_len");

  Rng rng(0);
  const std::vector<int> lens = {src_len};
  tensor::Tensor enc = model.encode(src_ids, /*batch=*/1, src_len, lens,
                                    /*training=*/false, rng);
  return project_cross_kv(model, enc.value().data(), src_len);
}

}  // namespace

bool encode_batch_enabled() {
  const char* e = std::getenv("MPIRICAL_ENCODE_BATCH");
  if (e == nullptr || e[0] == '\0') return true;
  return e[0] != '0';
}

std::vector<std::shared_ptr<const SourceCrossKV>> precompute_cross_kv_batch(
    const Transformer& model,
    const std::vector<const std::vector<int>*>& sources, bool batched) {
  std::vector<std::shared_ptr<const SourceCrossKV>> out(sources.size());
  if (sources.empty()) return out;  // both paths agree on the empty wave
  if (!batched) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      out[i] = precompute_cross_kv_per_source(model, *sources[i]);
    }
    return out;
  }

  // One padded encoder pass for the whole wave, then ONE fused projection
  // GEMM for every source, layer, and K/V head: the sources' valid rows
  // (each contiguous at the head of its panel block -- padded rows are
  // excluded by this compaction) are gathered into a [sum_len, d] panel and
  // multiplied against the decoder layers' interleaved [d, layers * 2d]
  // cross-projection weights. gemm_acc_rowstable keeps each row's bits
  // independent of the wave composition, so a source's K/V is identical
  // however it is batched (the padding-invariance suite asserts this).
  const std::shared_ptr<const EncodedBatch> wave = encode_batch(model, sources);
  const int d = model.config().d_model;
  const auto& dec_layers = model.decoder_layers();
  const int ncols = static_cast<int>(dec_layers.size()) * 2 * d;
  std::size_t sum_len = 0;
  for (const auto& len : wave->lens) sum_len += static_cast<std::size_t>(len);

  if (ncols == 0) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      auto cross = std::make_shared<SourceCrossKV>();
      cross->src_len = wave->lens[i];
      out[i] = std::move(cross);
    }
    return out;
  }

  // Arena reuse: encode_batch's intermediates are dead once the wave panel
  // is out, so the projection scratch recycles the same memory.
  ScratchArena& arena = ScratchArena::local();
  arena.reset();
  float* compact = arena.floats(sum_len * static_cast<std::size_t>(d));
  float* w_fused = arena.floats(static_cast<std::size_t>(d) * ncols);
  float* b_fused = arena.floats(static_cast<std::size_t>(ncols));
  float* proj = arena.floats(sum_len * static_cast<std::size_t>(ncols));

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const EncodedView view{wave, static_cast<int>(i)};
    std::memcpy(compact + cursor * d, view.rows(),
                sizeof(float) * static_cast<std::size_t>(view.len()) * d);
    cursor += static_cast<std::size_t>(view.len());
  }
  for (std::size_t li = 0; li < dec_layers.size(); ++li) {
    const auto& attn = dec_layers[li].cross_attn;
    const float* wk = attn.wk.w.value().data();
    const float* wv = attn.wv.w.value().data();
    const int base = static_cast<int>(li) * 2 * d;
    for (int i = 0; i < d; ++i) {
      float* row = w_fused + static_cast<std::size_t>(i) * ncols + base;
      std::memcpy(row, wk + static_cast<std::size_t>(i) * d,
                  sizeof(float) * static_cast<std::size_t>(d));
      std::memcpy(row + d, wv + static_cast<std::size_t>(i) * d,
                  sizeof(float) * static_cast<std::size_t>(d));
    }
    std::memcpy(b_fused + base, attn.wk.b.value().data(),
                sizeof(float) * static_cast<std::size_t>(d));
    std::memcpy(b_fused + base + d, attn.wv.b.value().data(),
                sizeof(float) * static_cast<std::size_t>(d));
  }
  for (std::size_t r = 0; r < sum_len; ++r) {
    std::memcpy(proj + r * ncols, b_fused,
                sizeof(float) * static_cast<std::size_t>(ncols));
  }
  tensor::kernels::gemm_acc_rowstable(
      tensor::kernels::Trans::N, tensor::kernels::Trans::N,
      static_cast<int>(sum_len), ncols, d, compact, d, w_fused, ncols, proj,
      ncols);

  // Split the fused panel back out per source and layer: V rows copy out
  // contiguously, K transposes into the [d, src_len] layout
  // decode_step::attention_shared streams with unit stride. The transpose
  // runs in 32x32 tiles so both sides stay within cached lines instead of
  // taking one cache miss per scattered element.
  constexpr int kTile = 32;
  cursor = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const int len = wave->lens[i];
    auto cross = std::make_shared<SourceCrossKV>();
    cross->src_len = len;
    cross->layers.resize(dec_layers.size());
    for (std::size_t li = 0; li < dec_layers.size(); ++li) {
      const int base = static_cast<int>(li) * 2 * d;
      auto& kt = cross->layers[li].kt;
      auto& v = cross->layers[li].v;
      kt.resize(static_cast<std::size_t>(d) * len);
      v.resize(static_cast<std::size_t>(len) * d);
      for (int s0 = 0; s0 < len; s0 += kTile) {
        const int s1 = std::min(len, s0 + kTile);
        for (int c0 = 0; c0 < d; c0 += kTile) {
          const int c1 = std::min(d, c0 + kTile);
          for (int s = s0; s < s1; ++s) {
            const float* prow = proj + (cursor + s) * ncols + base;
            for (int c = c0; c < c1; ++c) {
              kt[static_cast<std::size_t>(c) * len + s] = prow[c];
            }
          }
        }
      }
      for (int s = 0; s < len; ++s) {
        std::memcpy(v.data() + static_cast<std::size_t>(s) * d,
                    proj + (cursor + s) * ncols + base + d,
                    sizeof(float) * static_cast<std::size_t>(d));
      }
    }
    out[i] = std::move(cross);
    cursor += static_cast<std::size_t>(len);
  }
  return out;
}

std::vector<DecodeResult> decode_batch(const Transformer& model,
                                       const std::vector<DecodeRequest>& requests,
                                       DecodeBatchStats* stats) {
  std::vector<DecodeResult> results(requests.size());
  if (requests.empty()) return results;
  if (use_reference_decode()) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const DecodeRequest& r = requests[i];
      results[i] = decode_reference(model, r.src_ids, r.sos, r.eos, r.max_len,
                                    r.beam_width);
    }
    return results;
  }

  const auto& cfg = model.config();
  const int d = cfg.d_model;
  const int heads = cfg.heads;
  const int vocab = cfg.vocab_size;
  const std::size_t layers = model.decoder_layers().size();
  const int ffn_dim = layers == 0
                          ? 0
                          : model.decoder_layers()[0].ffn.up.w.dim(1);
  const float embed_scale = std::sqrt(static_cast<float>(d));

  // Encode the whole wave's sources (one padded batched pass by default) and
  // hand each request its cross-attention K/V.
  Timer encode_timer;
  std::vector<const std::vector<int>*> sources(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    sources[i] = &requests[i].src_ids;
  }
  const auto crosses =
      precompute_cross_kv_batch(model, sources, encode_batch_enabled());
  std::vector<RequestState> states(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const DecodeRequest& req = requests[i];
    MR_CHECK(req.beam_width >= 1, "beam width must be >= 1");
    auto& st = states[i];
    st.src_len = static_cast<int>(req.src_ids.size());
    st.cross = crosses[i];
    BatchHyp root;
    root.cache = std::make_shared<LaneCache>();
    root.cache->k.resize(layers);
    root.cache->v.resize(layers);
    root.next_input = req.sos;
    st.beam.push_back(std::move(root));
  }
  if (stats) stats->encode_seconds = encode_timer.seconds();
  Timer decode_timer;

  // Pack every wave-stepped weight panel once: the step loop multiplies the
  // same matrices up to max_len times, and for beam-sized row counts the
  // per-call packing inside gemm_acc costs more traffic than the products.
  // Results are bit-identical to the unpacked calls (packing never changes
  // an element's k-step order; sub-threshold shapes take the same naive
  // fallback through the retained raw pointers).
  using tensor::kernels::pack_b_panels;
  using tensor::kernels::PackedPanelB;
  using tensor::kernels::PackedPanelBI8;
  using tensor::kernels::Trans;
  // Quantized-weights mode (MPIRICAL_DECODE_INT8, re-read per wave): the
  // stepped panels pack as int8 instead -- zero-copy from a quantized
  // snapshot's q8 views when present, else quantized here at pack time. The
  // f32 packing stays the oracle path.
  const bool int8_mode = decode_int8_enabled();
  struct PackedLin {
    PackedPanelB f32;
    PackedPanelBI8 i8;
    const float* bias = nullptr;
    bool quant = false;
    void run(const float* x, int rows, float* out) const {
      if (quant) {
        decode_step::linear_rows(x, i8, bias, rows, out);
      } else {
        decode_step::linear_rows(x, f32, bias, rows, out);
      }
    }
  };
  auto pack_lin = [int8_mode](const Linear& lin) {
    PackedLin p;
    p.bias = lin.b.value().data();
    p.quant = int8_mode;
    if (int8_mode) {
      p.i8 = pack_linear_i8(lin);
    } else {
      p.f32 = pack_b_panels(Trans::N, lin.w.dim(1), lin.w.dim(0),
                            lin.w.value().data(), lin.w.dim(1));
    }
    return p;
  };
  struct PackedDecoderLayer {
    PackedLin self_q, self_k, self_v, self_o;
    PackedLin cross_q, cross_o;
    PackedLin up, down;
  };
  std::vector<PackedDecoderLayer> packed(layers);
  for (std::size_t li = 0; li < layers; ++li) {
    const auto& layer = model.decoder_layers()[li];
    packed[li].self_q = pack_lin(layer.self_attn.wq);
    packed[li].self_k = pack_lin(layer.self_attn.wk);
    packed[li].self_v = pack_lin(layer.self_attn.wv);
    packed[li].self_o = pack_lin(layer.self_attn.wo);
    packed[li].cross_q = pack_lin(layer.cross_attn.wq);
    packed[li].cross_o = pack_lin(layer.cross_attn.wo);
    packed[li].up = pack_lin(layer.ffn.up);
    packed[li].down = pack_lin(layer.ffn.down);
  }
  const PackedLin out_proj_packed = pack_lin(model.output_projection());

  // Wave scratch: one row per live hypothesis across all requests.
  std::vector<float> x, normed, q, attn, proj, krows, vrows, hidden, logits;
  struct RowSpan {
    std::size_t req;  // request index
    int m0, m1;       // contiguous row range of its live hypotheses
  };
  std::vector<RowSpan> spans;
  std::vector<BatchHyp*> row_hyp;           // row -> stepping hypothesis
  std::vector<const float*> ks, vs;         // row -> self K/V cache base
  std::vector<int> kv_lens;

  for (int t = 0;; ++t) {
    // Gather this wave's rows, request-major, beam order within a request.
    spans.clear();
    row_hyp.clear();
    for (std::size_t ri = 0; ri < requests.size(); ++ri) {
      auto& st = states[ri];
      if (st.done) continue;
      if (t >= requests[ri].max_len) {
        st.done = true;
        continue;
      }
      const int m0 = static_cast<int>(row_hyp.size());
      for (auto& hyp : st.beam) {
        if (!hyp.finished) row_hyp.push_back(&hyp);
      }
      const int m1 = static_cast<int>(row_hyp.size());
      if (m0 == m1) {
        st.done = true;  // every hypothesis finished
        continue;
      }
      spans.push_back(RowSpan{ri, m0, m1});
    }
    const int rows = static_cast<int>(row_hyp.size());
    if (rows == 0) break;
    MR_CHECK(t < cfg.max_len, "decode length exceeds max_len");

    const std::size_t rd = static_cast<std::size_t>(rows) * d;
    x.resize(rd);
    normed.resize(rd);
    q.resize(rd);
    attn.resize(rd);
    proj.resize(rd);
    krows.resize(rd);
    vrows.resize(rd);
    hidden.resize(static_cast<std::size_t>(rows) * ffn_dim);
    logits.resize(static_cast<std::size_t>(rows) * vocab);
    ks.resize(static_cast<std::size_t>(rows));
    vs.resize(static_cast<std::size_t>(rows));
    kv_lens.assign(static_cast<std::size_t>(rows), t + 1);

    // Embedding + positional encoding, and copy-on-write unsharing: a cache
    // still shared with a sibling fork is cloned before this wave appends.
    const auto& pos = model.positional_row(t);
    for (int m = 0; m < rows; ++m) {
      BatchHyp& hyp = *row_hyp[static_cast<std::size_t>(m)];
      const int token = hyp.next_input;
      MR_CHECK(token >= 0 && token < vocab, "token id out of range");
      const float* erow = model.token_embedding().value().data() +
                          static_cast<std::size_t>(token) * d;
      float* xrow = x.data() + static_cast<std::size_t>(m) * d;
      for (int i = 0; i < d; ++i) {
        xrow[i] = erow[i] * embed_scale + pos[static_cast<std::size_t>(i)];
      }
      if (hyp.cache.use_count() > 1) {
        hyp.cache = std::make_shared<LaneCache>(*hyp.cache);
      }
    }

    for (std::size_t li = 0; li < layers; ++li) {
      const auto& layer = model.decoder_layers()[li];

      // Causal self-attention: one GEMM per projection over all rows, then
      // per-row ragged attention over each hypothesis's own cache.
      decode_step::layer_norm_rows(x.data(), layer.ln1, rows, d, normed.data());
      packed[li].self_q.run(normed.data(), rows, q.data());
      packed[li].self_k.run(normed.data(), rows, krows.data());
      packed[li].self_v.run(normed.data(), rows, vrows.data());
      const std::size_t cache_off = static_cast<std::size_t>(t) * d;
      for (int m = 0; m < rows; ++m) {
        LaneCache& cache = *row_hyp[static_cast<std::size_t>(m)]->cache;
        grow(cache.k[li], cache_off + static_cast<std::size_t>(d));
        grow(cache.v[li], cache_off + static_cast<std::size_t>(d));
        std::memcpy(cache.k[li].data() + cache_off,
                    krows.data() + static_cast<std::size_t>(m) * d,
                    sizeof(float) * static_cast<std::size_t>(d));
        std::memcpy(cache.v[li].data() + cache_off,
                    vrows.data() + static_cast<std::size_t>(m) * d,
                    sizeof(float) * static_cast<std::size_t>(d));
        ks[static_cast<std::size_t>(m)] = cache.k[li].data();
        vs[static_cast<std::size_t>(m)] = cache.v[li].data();
      }
      decode_step::attention_ragged(q.data(), rows, d, heads, ks.data(),
                                    vs.data(), kv_lens.data(), attn.data());
      packed[li].self_o.run(attn.data(), rows, proj.data());
      for (std::size_t i = 0; i < rd; ++i) x[i] += proj[i];

      // Cross attention: each request's contiguous row block attends over
      // its shared encoder K/V panel via per-head GEMMs.
      decode_step::layer_norm_rows(x.data(), layer.ln2, rows, d, normed.data());
      packed[li].cross_q.run(normed.data(), rows, q.data());
      for (const RowSpan& span : spans) {
        const auto& cross = states[span.req].cross->layers[li];
        decode_step::attention_shared(
            q.data() + static_cast<std::size_t>(span.m0) * d, span.m1 - span.m0,
            d, heads, cross.kt.data(), cross.v.data(), states[span.req].src_len,
            attn.data() + static_cast<std::size_t>(span.m0) * d);
      }
      packed[li].cross_o.run(attn.data(), rows, proj.data());
      for (std::size_t i = 0; i < rd; ++i) x[i] += proj[i];

      // Feed-forward.
      decode_step::layer_norm_rows(x.data(), layer.ln3, rows, d, normed.data());
      packed[li].up.run(normed.data(), rows, hidden.data());
      decode_step::gelu_rows(hidden.data(),
                             static_cast<std::size_t>(rows) * ffn_dim);
      packed[li].down.run(hidden.data(), rows, proj.data());
      for (std::size_t i = 0; i < rd; ++i) x[i] += proj[i];
    }

    decode_step::layer_norm_rows(x.data(), model.decoder_final_ln(), rows, d,
                                 normed.data());
    out_proj_packed.run(normed.data(), rows, logits.data());

    // Per-request beam bookkeeping, mirroring the reference path's candidate
    // order, scoring, and tie-breaking exactly.
    for (const RowSpan& span : spans) {
      auto& st = states[span.req];
      const DecodeRequest& req = requests[span.req];
      if (req.beam_width == 1) {
        BatchHyp& hyp = st.beam.front();
        float* row = logits.data() + static_cast<std::size_t>(span.m0) * vocab;
        int best = 0;
        for (int j = 1; j < vocab; ++j) {
          if (row[j] > row[best]) best = j;
        }
        if (best == req.eos) {
          hyp.finished = true;
          hyp.cache.reset();
          st.done = true;
          continue;
        }
        log_softmax_row(row, vocab);  // row is wave scratch, safe to clobber
        hyp.log_prob += static_cast<double>(row[best]);
        hyp.tokens.push_back(best);
        hyp.next_input = best;
        continue;
      }

      std::vector<BatchHyp> candidates;
      int row_cursor = span.m0;
      for (auto& hyp : st.beam) {
        if (hyp.finished) {
          candidates.push_back(hyp);
          continue;
        }
        float* row = logits.data() +
                     static_cast<std::size_t>(row_cursor++) * vocab;
        log_softmax_row(row, vocab);

        std::vector<int> order(static_cast<std::size_t>(vocab));
        for (std::size_t j = 0; j < order.size(); ++j) {
          order[j] = static_cast<int>(j);
        }
        std::partial_sort(order.begin(),
                          order.begin() +
                              std::min<std::size_t>(
                                  order.size(),
                                  static_cast<std::size_t>(req.beam_width)),
                          order.end(), [&](int a, int b) {
                            return row[static_cast<std::size_t>(a)] >
                                   row[static_cast<std::size_t>(b)];
                          });
        for (int c = 0; c < req.beam_width && c < vocab; ++c) {
          const int tok = order[static_cast<std::size_t>(c)];
          BatchHyp next;
          next.tokens = hyp.tokens;
          next.log_prob =
              hyp.log_prob +
              static_cast<double>(row[static_cast<std::size_t>(tok)]);
          if (tok == req.eos) {
            next.finished = true;  // drops the cache reference
          } else {
            next.cache = hyp.cache;  // shared; next wave's append unshares
            next.tokens.push_back(tok);
            next.next_input = tok;
          }
          candidates.push_back(std::move(next));
        }
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const BatchHyp& a, const BatchHyp& b) {
                  return a.score() > b.score();
                });
      if (candidates.size() > static_cast<std::size_t>(req.beam_width)) {
        candidates.resize(static_cast<std::size_t>(req.beam_width));
      }
      st.beam = std::move(candidates);
    }
  }

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& beam = states[i].beam;
    const BatchHyp* best = &beam.front();
    for (const auto& hyp : beam) {
      if (hyp.score() > best->score()) best = &hyp;
    }
    results[i].tokens = best->tokens;
    results[i].log_prob = best->log_prob;
  }
  if (stats) stats->decode_seconds = decode_timer.seconds();
  return results;
}

std::vector<int> greedy_decode(const Transformer& model,
                               const std::vector<int>& src_ids, int sos,
                               int eos, int max_len) {
  if (use_reference_decode()) {
    return decode_reference(model, src_ids, sos, eos, max_len, 1).tokens;
  }
  DecodeRequest req;
  req.src_ids = src_ids;
  req.sos = sos;
  req.eos = eos;
  req.max_len = max_len;
  req.beam_width = 1;
  return decode_batch(model, {req})[0].tokens;
}

std::vector<int> beam_decode(const Transformer& model,
                             const std::vector<int>& src_ids, int sos, int eos,
                             int max_len, int beam_width) {
  MR_CHECK(beam_width >= 1, "beam width must be >= 1");
  if (use_reference_decode()) {
    return decode_reference(model, src_ids, sos, eos, max_len, beam_width)
        .tokens;
  }
  DecodeRequest req;
  req.src_ids = src_ids;
  req.sos = sos;
  req.eos = eos;
  req.max_len = max_len;
  req.beam_width = beam_width;
  return decode_batch(model, {req})[0].tokens;
}

}  // namespace mpirical::nn
