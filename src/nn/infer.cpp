#include "nn/infer.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "tensor/kernels.hpp"

namespace mpirical::nn {

namespace {

void layer_norm_raw(const float* x, const LayerNormParams& ln, int d,
                    float* out) {
  float mean = 0.0f;
  for (int i = 0; i < d; ++i) mean += x[i];
  mean /= static_cast<float>(d);
  float var = 0.0f;
  for (int i = 0; i < d; ++i) {
    const float diff = x[i] - mean;
    var += diff * diff;
  }
  var /= static_cast<float>(d);
  const float inv_std = 1.0f / std::sqrt(var + 1e-5f);
  const auto& gamma = ln.gamma.value();
  const auto& beta = ln.beta.value();
  for (int i = 0; i < d; ++i) {
    out[i] = (x[i] - mean) * inv_std * gamma[i] + beta[i];
  }
}

void linear_raw(const float* x, const Linear& lin, float* out) {
  const int in = lin.w.dim(0);
  const int n = lin.w.dim(1);
  tensor::gemv_row(x, lin.w.value().data(), lin.b.value().data(), out, in, n);
}

float gelu_raw(float v) {
  constexpr float kC = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  return 0.5f * v * (1.0f + std::tanh(kC * (v + kA * v * v * v)));
}

}  // namespace

IncrementalDecoder::IncrementalDecoder(const Transformer& model,
                                       const std::vector<int>& src_ids)
    : model_(&model),
      d_(model.config().d_model),
      heads_(model.config().heads),
      src_len_(static_cast<int>(src_ids.size())) {
  MR_CHECK(src_len_ > 0, "empty source sequence");
  MR_CHECK(src_len_ <= model.config().max_len, "source exceeds max_len");

  // Encode once using the batched path (batch of one, no dropout).
  Rng rng(0);
  const std::vector<int> lens = {src_len_};
  tensor::Tensor enc = model.encode(src_ids, /*batch=*/1, src_len_, lens,
                                    /*training=*/false, rng);

  // Precompute cross-attention K/V per decoder layer: one [src_len, d] x
  // [d, d] GEMM per projection instead of src_len GEMVs. The encoder output
  // is only needed here, so it is not retained in the shared state.
  const std::vector<float>& enc_out = enc.value();
  auto source = std::make_shared<SourceState>();
  source->layers.resize(model.decoder_layers().size());
  using tensor::kernels::Trans;
  auto project = [&](const Linear& lin, std::vector<float>& dst) {
    dst.resize(static_cast<std::size_t>(src_len_) * d_);
    const auto& bias = lin.b.value();
    for (int s = 0; s < src_len_; ++s) {
      std::copy(bias.begin(), bias.end(),
                dst.begin() + static_cast<std::size_t>(s) * d_);
    }
    tensor::kernels::gemm_acc(Trans::N, Trans::N, src_len_, d_, d_,
                              enc_out.data(), d_, lin.w.value().data(), d_,
                              dst.data(), d_);
  };
  for (std::size_t li = 0; li < source->layers.size(); ++li) {
    const auto& layer = model.decoder_layers()[li];
    project(layer.cross_attn.wk, source->layers[li].cross_k);
    project(layer.cross_attn.wv, source->layers[li].cross_v);
  }
  source_ = std::move(source);
  layers_.resize(model.decoder_layers().size());
  logits_.resize(static_cast<std::size_t>(model.config().vocab_size));
}

void IncrementalDecoder::attend(const float* q, const float* kcache,
                                const float* vcache, int kv_len,
                                float* out) const {
  const int hd = d_ / heads_;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  std::vector<float> scores(static_cast<std::size_t>(kv_len));
  for (int h = 0; h < heads_; ++h) {
    const int off = h * hd;
    float mx = -1e30f;
    for (int j = 0; j < kv_len; ++j) {
      const float* krow = kcache + static_cast<std::size_t>(j) * d_ + off;
      float s = 0.0f;
      for (int c = 0; c < hd; ++c) s += q[off + c] * krow[c];
      s *= inv_sqrt;
      scores[static_cast<std::size_t>(j)] = s;
      mx = std::max(mx, s);
    }
    float sum = 0.0f;
    for (int j = 0; j < kv_len; ++j) {
      scores[static_cast<std::size_t>(j)] =
          std::exp(scores[static_cast<std::size_t>(j)] - mx);
      sum += scores[static_cast<std::size_t>(j)];
    }
    const float inv = 1.0f / sum;
    for (int c = 0; c < hd; ++c) out[off + c] = 0.0f;
    for (int j = 0; j < kv_len; ++j) {
      const float p = scores[static_cast<std::size_t>(j)] * inv;
      const float* vrow = vcache + static_cast<std::size_t>(j) * d_ + off;
      for (int c = 0; c < hd; ++c) out[off + c] += p * vrow[c];
    }
  }
}

const std::vector<float>& IncrementalDecoder::step(int token) {
  const auto& cfg = model_->config();
  MR_CHECK(t_ < cfg.max_len, "decode length exceeds max_len");
  MR_CHECK(token >= 0 && token < cfg.vocab_size, "token id out of range");

  // Embedding + positional encoding.
  std::vector<float> x(static_cast<std::size_t>(d_));
  const float* erow = model_->token_embedding().value().data() +
                      static_cast<std::size_t>(token) * d_;
  const float scale = std::sqrt(static_cast<float>(d_));
  const auto& pos = model_->positional_row(t_);
  for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] =
      erow[i] * scale + pos[static_cast<std::size_t>(i)];

  std::vector<float> normed(static_cast<std::size_t>(d_));
  std::vector<float> q(static_cast<std::size_t>(d_));
  std::vector<float> attn(static_cast<std::size_t>(d_));
  std::vector<float> proj(static_cast<std::size_t>(d_));
  std::vector<float> hidden;

  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto& layer = model_->decoder_layers()[li];
    auto& state = layers_[li];

    // Causal self-attention over the cache (which includes this step).
    layer_norm_raw(x.data(), layer.ln1, d_, normed.data());
    linear_raw(normed.data(), layer.self_attn.wq, q.data());
    const std::size_t cache_off = static_cast<std::size_t>(t_) * d_;
    state.self_k.resize(cache_off + static_cast<std::size_t>(d_));
    state.self_v.resize(cache_off + static_cast<std::size_t>(d_));
    linear_raw(normed.data(), layer.self_attn.wk,
               state.self_k.data() + cache_off);
    linear_raw(normed.data(), layer.self_attn.wv,
               state.self_v.data() + cache_off);
    attend(q.data(), state.self_k.data(), state.self_v.data(), t_ + 1,
           attn.data());
    linear_raw(attn.data(), layer.self_attn.wo, proj.data());
    for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] += proj[
        static_cast<std::size_t>(i)];

    // Cross attention over the shared precomputed encoder K/V.
    const auto& cross = source_->layers[li];
    layer_norm_raw(x.data(), layer.ln2, d_, normed.data());
    linear_raw(normed.data(), layer.cross_attn.wq, q.data());
    attend(q.data(), cross.cross_k.data(), cross.cross_v.data(), src_len_,
           attn.data());
    linear_raw(attn.data(), layer.cross_attn.wo, proj.data());
    for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] += proj[
        static_cast<std::size_t>(i)];

    // Feed-forward.
    layer_norm_raw(x.data(), layer.ln3, d_, normed.data());
    hidden.resize(static_cast<std::size_t>(layer.ffn.up.w.dim(1)));
    linear_raw(normed.data(), layer.ffn.up, hidden.data());
    for (auto& h : hidden) h = gelu_raw(h);
    linear_raw(hidden.data(), layer.ffn.down, proj.data());
    for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] += proj[
        static_cast<std::size_t>(i)];
  }

  layer_norm_raw(x.data(), model_->decoder_final_ln(), d_, normed.data());
  linear_raw(normed.data(), model_->output_projection(), logits_.data());
  ++t_;
  return logits_;
}

std::vector<int> greedy_decode(const Transformer& model,
                               const std::vector<int>& src_ids, int sos,
                               int eos, int max_len) {
  IncrementalDecoder dec(model, src_ids);
  std::vector<int> out;
  int token = sos;
  for (int i = 0; i < max_len; ++i) {
    const auto& logits = dec.step(token);
    int best = 0;
    for (int j = 1; j < static_cast<int>(logits.size()); ++j) {
      if (logits[static_cast<std::size_t>(j)] >
          logits[static_cast<std::size_t>(best)]) {
        best = j;
      }
    }
    if (best == eos) break;
    out.push_back(best);
    token = best;
  }
  return out;
}

namespace {

struct Hypothesis {
  std::shared_ptr<IncrementalDecoder> decoder;
  std::vector<int> tokens;
  double log_prob = 0.0;
  bool finished = false;
  int next_input = -1;

  double score() const {
    const double len = static_cast<double>(tokens.size()) + 1.0;
    return log_prob / len;  // length-normalized
  }
};

void log_softmax_inplace(std::vector<float>& v) {
  float mx = v[0];
  for (float x : v) mx = std::max(mx, x);
  double sum = 0.0;
  for (float x : v) sum += std::exp(static_cast<double>(x) - mx);
  const float lse = mx + static_cast<float>(std::log(sum));
  for (auto& x : v) x -= lse;
}

}  // namespace

std::vector<int> beam_decode(const Transformer& model,
                             const std::vector<int>& src_ids, int sos, int eos,
                             int max_len, int beam_width) {
  MR_CHECK(beam_width >= 1, "beam width must be >= 1");
  if (beam_width == 1) return greedy_decode(model, src_ids, sos, eos, max_len);

  std::vector<Hypothesis> beam;
  Hypothesis root;
  root.decoder = std::make_shared<IncrementalDecoder>(model, src_ids);
  root.next_input = sos;
  beam.push_back(std::move(root));

  for (int step = 0; step < max_len; ++step) {
    std::vector<Hypothesis> candidates;
    bool all_finished = true;
    for (auto& hyp : beam) {
      if (hyp.finished) {
        candidates.push_back(hyp);
        continue;
      }
      all_finished = false;
      auto logits = hyp.decoder->step(hyp.next_input);
      log_softmax_inplace(logits);
      // Top beam_width continuations of this hypothesis.
      std::vector<int> order(logits.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] =
          static_cast<int>(i);
      std::partial_sort(order.begin(),
                        order.begin() + std::min<std::size_t>(
                                            order.size(),
                                            static_cast<std::size_t>(
                                                beam_width)),
                        order.end(), [&](int a, int b) {
                          return logits[static_cast<std::size_t>(a)] >
                                 logits[static_cast<std::size_t>(b)];
                        });
      // The stepped decoder state is identical for every continuation (they
      // diverge only on the next input token), so the first live fork takes
      // the parent's decoder and only the remaining forks copy it. A copy is
      // cheap anyway: the per-source state is shared, so a fork duplicates
      // only the growing self-attention cache.
      std::shared_ptr<IncrementalDecoder> parent = std::move(hyp.decoder);
      bool parent_taken = false;
      for (int k = 0; k < beam_width &&
                      k < static_cast<int>(order.size());
           ++k) {
        const int tok = order[static_cast<std::size_t>(k)];
        Hypothesis next;
        next.tokens = hyp.tokens;
        next.log_prob =
            hyp.log_prob +
            static_cast<double>(logits[static_cast<std::size_t>(tok)]);
        if (tok == eos) {
          // Finished hypotheses never step again; holding no decoder keeps
          // wide beams from pinning dead KV caches in memory.
          next.finished = true;
        } else {
          if (parent_taken) {
            next.decoder = std::make_shared<IncrementalDecoder>(*parent);
          } else {
            next.decoder = parent;
            parent_taken = true;
          }
          next.tokens.push_back(tok);
          next.next_input = tok;
        }
        candidates.push_back(std::move(next));
      }
    }
    if (all_finished) break;
    std::sort(candidates.begin(), candidates.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.score() > b.score();
              });
    if (candidates.size() > static_cast<std::size_t>(beam_width)) {
      candidates.resize(static_cast<std::size_t>(beam_width));
    }
    beam = std::move(candidates);
  }

  const Hypothesis* best = &beam.front();
  for (const auto& hyp : beam) {
    if (hyp.score() > best->score()) best = &hyp;
  }
  return best->tokens;
}

}  // namespace mpirical::nn
