#include "nn/infer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "obs/recorder.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"
#include "tensor/kernels.hpp"

namespace mpirical::nn {

namespace {

void layer_norm_raw(const float* x, const LayerNormParams& ln, int d,
                    float* out) {
  float mean = 0.0f;
  for (int i = 0; i < d; ++i) mean += x[i];
  mean /= static_cast<float>(d);
  float var = 0.0f;
  for (int i = 0; i < d; ++i) {
    const float diff = x[i] - mean;
    var += diff * diff;
  }
  var /= static_cast<float>(d);
  const float inv_std = 1.0f / std::sqrt(var + 1e-5f);
  const auto& gamma = ln.gamma.value();
  const auto& beta = ln.beta.value();
  for (int i = 0; i < d; ++i) {
    out[i] = (x[i] - mean) * inv_std * gamma[i] + beta[i];
  }
}

void linear_raw(const float* x, const Linear& lin, float* out) {
  const int in = lin.w.dim(0);
  const int n = lin.w.dim(1);
  tensor::gemv_row(x, lin.w.value().data(), lin.b.value().data(), out, in, n);
}

float gelu_raw(float v) {
  constexpr float kC = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  return 0.5f * v * (1.0f + std::tanh(kC * (v + kA * v * v * v)));
}

}  // namespace

IncrementalDecoder::IncrementalDecoder(const Transformer& model,
                                       const std::vector<int>& src_ids)
    : model_(&model),
      d_(model.config().d_model),
      heads_(model.config().heads),
      src_len_(static_cast<int>(src_ids.size())) {
  MR_CHECK(src_len_ > 0, "empty source sequence");
  MR_CHECK(src_len_ <= model.config().max_len, "source exceeds max_len");

  // Encode once using the batched path (batch of one, no dropout).
  Rng rng(0);
  const std::vector<int> lens = {src_len_};
  tensor::Tensor enc = model.encode(src_ids, /*batch=*/1, src_len_, lens,
                                    /*training=*/false, rng);

  // Precompute cross-attention K/V per decoder layer: one [src_len, d] x
  // [d, d] GEMM per projection instead of src_len GEMVs. The encoder output
  // is only needed here, so it is not retained in the shared state.
  const auto& enc_out = enc.value();
  auto source = std::make_shared<SourceState>();
  source->layers.resize(model.decoder_layers().size());
  using tensor::kernels::Trans;
  auto project = [&](const Linear& lin, std::vector<float>& dst) {
    dst.resize(static_cast<std::size_t>(src_len_) * d_);
    const auto& bias = lin.b.value();
    for (int s = 0; s < src_len_; ++s) {
      std::copy(bias.begin(), bias.end(),
                dst.begin() + static_cast<std::size_t>(s) * d_);
    }
    tensor::kernels::gemm_acc(Trans::N, Trans::N, src_len_, d_, d_,
                              enc_out.data(), d_, lin.w.value().data(), d_,
                              dst.data(), d_);
  };
  for (std::size_t li = 0; li < source->layers.size(); ++li) {
    const auto& layer = model.decoder_layers()[li];
    project(layer.cross_attn.wk, source->layers[li].cross_k);
    project(layer.cross_attn.wv, source->layers[li].cross_v);
  }
  source_ = std::move(source);
  layers_.resize(model.decoder_layers().size());
  logits_.resize(static_cast<std::size_t>(model.config().vocab_size));
}

void IncrementalDecoder::attend(const float* q, const float* kcache,
                                const float* vcache, int kv_len,
                                float* out) const {
  const int hd = d_ / heads_;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  std::vector<float> scores(static_cast<std::size_t>(kv_len));
  for (int h = 0; h < heads_; ++h) {
    const int off = h * hd;
    float mx = -1e30f;
    for (int j = 0; j < kv_len; ++j) {
      const float* krow = kcache + static_cast<std::size_t>(j) * d_ + off;
      float s = 0.0f;
      for (int c = 0; c < hd; ++c) s += q[off + c] * krow[c];
      s *= inv_sqrt;
      scores[static_cast<std::size_t>(j)] = s;
      mx = std::max(mx, s);
    }
    float sum = 0.0f;
    for (int j = 0; j < kv_len; ++j) {
      scores[static_cast<std::size_t>(j)] =
          std::exp(scores[static_cast<std::size_t>(j)] - mx);
      sum += scores[static_cast<std::size_t>(j)];
    }
    const float inv = 1.0f / sum;
    for (int c = 0; c < hd; ++c) out[off + c] = 0.0f;
    for (int j = 0; j < kv_len; ++j) {
      const float p = scores[static_cast<std::size_t>(j)] * inv;
      const float* vrow = vcache + static_cast<std::size_t>(j) * d_ + off;
      for (int c = 0; c < hd; ++c) out[off + c] += p * vrow[c];
    }
  }
}

const std::vector<float>& IncrementalDecoder::step(int token) {
  const auto& cfg = model_->config();
  MR_CHECK(t_ < cfg.max_len, "decode length exceeds max_len");
  MR_CHECK(token >= 0 && token < cfg.vocab_size, "token id out of range");

  // Embedding + positional encoding.
  std::vector<float> x(static_cast<std::size_t>(d_));
  const float* erow = model_->token_embedding().value().data() +
                      static_cast<std::size_t>(token) * d_;
  const float scale = std::sqrt(static_cast<float>(d_));
  const auto& pos = model_->positional_row(t_);
  for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] =
      erow[i] * scale + pos[static_cast<std::size_t>(i)];

  std::vector<float> normed(static_cast<std::size_t>(d_));
  std::vector<float> q(static_cast<std::size_t>(d_));
  std::vector<float> attn(static_cast<std::size_t>(d_));
  std::vector<float> proj(static_cast<std::size_t>(d_));
  std::vector<float> hidden;

  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto& layer = model_->decoder_layers()[li];
    auto& state = layers_[li];

    // Causal self-attention over the cache (which includes this step).
    layer_norm_raw(x.data(), layer.ln1, d_, normed.data());
    linear_raw(normed.data(), layer.self_attn.wq, q.data());
    const std::size_t cache_off = static_cast<std::size_t>(t_) * d_;
    state.self_k.resize(cache_off + static_cast<std::size_t>(d_));
    state.self_v.resize(cache_off + static_cast<std::size_t>(d_));
    linear_raw(normed.data(), layer.self_attn.wk,
               state.self_k.data() + cache_off);
    linear_raw(normed.data(), layer.self_attn.wv,
               state.self_v.data() + cache_off);
    attend(q.data(), state.self_k.data(), state.self_v.data(), t_ + 1,
           attn.data());
    linear_raw(attn.data(), layer.self_attn.wo, proj.data());
    for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] += proj[
        static_cast<std::size_t>(i)];

    // Cross attention over the shared precomputed encoder K/V.
    const auto& cross = source_->layers[li];
    layer_norm_raw(x.data(), layer.ln2, d_, normed.data());
    linear_raw(normed.data(), layer.cross_attn.wq, q.data());
    attend(q.data(), cross.cross_k.data(), cross.cross_v.data(), src_len_,
           attn.data());
    linear_raw(attn.data(), layer.cross_attn.wo, proj.data());
    for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] += proj[
        static_cast<std::size_t>(i)];

    // Feed-forward.
    layer_norm_raw(x.data(), layer.ln3, d_, normed.data());
    hidden.resize(static_cast<std::size_t>(layer.ffn.up.w.dim(1)));
    linear_raw(normed.data(), layer.ffn.up, hidden.data());
    for (auto& h : hidden) h = gelu_raw(h);
    linear_raw(hidden.data(), layer.ffn.down, proj.data());
    for (int i = 0; i < d_; ++i) x[static_cast<std::size_t>(i)] += proj[
        static_cast<std::size_t>(i)];
  }

  layer_norm_raw(x.data(), model_->decoder_final_ln(), d_, normed.data());
  linear_raw(normed.data(), model_->output_projection(), logits_.data());
  ++t_;
  return logits_;
}

namespace {

struct Hypothesis {
  std::shared_ptr<IncrementalDecoder> decoder;
  std::vector<int> tokens;
  double log_prob = 0.0;
  bool finished = false;
  int next_input = -1;

  double score() const {
    const double len = static_cast<double>(tokens.size()) + 1.0;
    return log_prob / len;  // length-normalized
  }
};

// Token-identity between the reference and batched paths depends on both
// normalizing logits with this exact arithmetic (float max, double exp-sum,
// float subtraction), so it is defined once and shared.
void log_softmax_row(float* v, int n) {
  float mx = v[0];
  for (int i = 0; i < n; ++i) mx = std::max(mx, v[i]);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += std::exp(static_cast<double>(v[i]) - mx);
  }
  const float lse = mx + static_cast<float>(std::log(sum));
  for (int i = 0; i < n; ++i) v[i] -= lse;
}

void log_softmax_inplace(std::vector<float>& v) {
  log_softmax_row(v.data(), static_cast<int>(v.size()));
}

// Reference greedy: per-hypothesis GEMV path, tracking the log-prob sum of
// the emitted tokens (the terminating eos is not emitted and not scored).
DecodeResult greedy_reference(const Transformer& model,
                              const std::vector<int>& src_ids, int sos,
                              int eos, int max_len) {
  IncrementalDecoder dec(model, src_ids);
  DecodeResult res;
  int token = sos;
  for (int i = 0; i < max_len; ++i) {
    auto logits = dec.step(token);
    int best = 0;
    for (int j = 1; j < static_cast<int>(logits.size()); ++j) {
      if (logits[static_cast<std::size_t>(j)] >
          logits[static_cast<std::size_t>(best)]) {
        best = j;
      }
    }
    if (best == eos) break;
    log_softmax_inplace(logits);
    res.log_prob += static_cast<double>(logits[static_cast<std::size_t>(best)]);
    res.tokens.push_back(best);
    token = best;
  }
  return res;
}

}  // namespace

DecodeResult decode_reference(const Transformer& model,
                              const std::vector<int>& src_ids, int sos,
                              int eos, int max_len, int beam_width) {
  MR_CHECK(beam_width >= 1, "beam width must be >= 1");
  if (beam_width == 1) {
    return greedy_reference(model, src_ids, sos, eos, max_len);
  }

  std::vector<Hypothesis> beam;
  Hypothesis root;
  root.decoder = std::make_shared<IncrementalDecoder>(model, src_ids);
  root.next_input = sos;
  beam.push_back(std::move(root));

  for (int step = 0; step < max_len; ++step) {
    std::vector<Hypothesis> candidates;
    bool all_finished = true;
    for (auto& hyp : beam) {
      if (hyp.finished) {
        candidates.push_back(hyp);
        continue;
      }
      all_finished = false;
      auto logits = hyp.decoder->step(hyp.next_input);
      log_softmax_inplace(logits);
      // Top beam_width continuations of this hypothesis.
      std::vector<int> order(logits.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] =
          static_cast<int>(i);
      std::partial_sort(order.begin(),
                        order.begin() + std::min<std::size_t>(
                                            order.size(),
                                            static_cast<std::size_t>(
                                                beam_width)),
                        order.end(), [&](int a, int b) {
                          return logits[static_cast<std::size_t>(a)] >
                                 logits[static_cast<std::size_t>(b)];
                        });
      // The stepped decoder state is identical for every continuation (they
      // diverge only on the next input token), so the first live fork takes
      // the parent's decoder and only the remaining forks copy it. A copy is
      // cheap anyway: the per-source state is shared, so a fork duplicates
      // only the growing self-attention cache.
      std::shared_ptr<IncrementalDecoder> parent = std::move(hyp.decoder);
      bool parent_taken = false;
      for (int k = 0; k < beam_width &&
                      k < static_cast<int>(order.size());
           ++k) {
        const int tok = order[static_cast<std::size_t>(k)];
        Hypothesis next;
        next.tokens = hyp.tokens;
        next.log_prob =
            hyp.log_prob +
            static_cast<double>(logits[static_cast<std::size_t>(tok)]);
        if (tok == eos) {
          // Finished hypotheses never step again; holding no decoder keeps
          // wide beams from pinning dead KV caches in memory.
          next.finished = true;
        } else {
          if (parent_taken) {
            next.decoder = std::make_shared<IncrementalDecoder>(*parent);
          } else {
            next.decoder = parent;
            parent_taken = true;
          }
          next.tokens.push_back(tok);
          next.next_input = tok;
        }
        candidates.push_back(std::move(next));
      }
    }
    if (all_finished) break;
    std::sort(candidates.begin(), candidates.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.score() > b.score();
              });
    if (candidates.size() > static_cast<std::size_t>(beam_width)) {
      candidates.resize(static_cast<std::size_t>(beam_width));
    }
    beam = std::move(candidates);
  }

  const Hypothesis* best = &beam.front();
  for (const auto& hyp : beam) {
    if (hyp.score() > best->score()) best = &hyp;
  }
  DecodeResult res;
  res.tokens = best->tokens;
  res.log_prob = best->log_prob;
  return res;
}

// ---- batched beam-step decode engine ----------------------------------------

namespace {

bool use_reference_decode() {
  static const bool v = [] {
    const char* e = std::getenv("MPIRICAL_DECODE_REFERENCE");
    return e != nullptr && e[0] != '\0' && e[0] != '0';
  }();
  return v;
}

// Resize that keeps vector growth amortized: plain resize(n) reallocates to
// exactly n, which would re-copy the whole cache every wave.
void grow(std::vector<float>& v, std::size_t n) {
  if (v.capacity() < n) v.reserve(std::max(n, v.capacity() * 2));
  v.resize(n);
}

// Projects one source's contiguous encoder rows ([src_len, d], leading
// dimension d) into its per-layer cross-attention K/V: one
// [src_len, d] x [d, d] GEMM per projection. Serves the per-source oracle
// path only -- the batched path projects all sources through one fused
// row-stable GEMM instead (different accumulation path, same values within
// kernel noise; the equivalence suite bounds the difference).
std::shared_ptr<const SourceCrossKV> project_cross_kv(const Transformer& model,
                                                      const float* enc_rows,
                                                      int src_len) {
  const int d = model.config().d_model;
  auto cross = std::make_shared<SourceCrossKV>();
  cross->src_len = src_len;
  cross->layers.resize(model.decoder_layers().size());
  using tensor::kernels::Trans;
  auto project = [&](const Linear& lin, std::vector<float>& dst) {
    dst.resize(static_cast<std::size_t>(src_len) * d);
    const auto& bias = lin.b.value();
    for (int s = 0; s < src_len; ++s) {
      std::copy(bias.begin(), bias.end(),
                dst.begin() + static_cast<std::size_t>(s) * d);
    }
    tensor::kernels::gemm_acc(Trans::N, Trans::N, src_len, d, d, enc_rows, d,
                              lin.w.value().data(), d, dst.data(), d);
  };
  std::vector<float> k_rows;
  for (std::size_t li = 0; li < cross->layers.size(); ++li) {
    const auto& layer = model.decoder_layers()[li];
    project(layer.cross_attn.wk, k_rows);
    auto& kt = cross->layers[li].kt;
    kt.resize(static_cast<std::size_t>(d) * src_len);
    for (int s = 0; s < src_len; ++s) {
      for (int i = 0; i < d; ++i) {
        kt[static_cast<std::size_t>(i) * src_len + s] =
            k_rows[static_cast<std::size_t>(s) * d + i];
      }
    }
    project(layer.cross_attn.wv, cross->layers[li].v);
  }
  return cross;
}

// The PR 2 per-source encode: a padding-free batch of one through the
// training-path encoder, numerically identical to what the reference
// decoder's constructor computes. Retained as the oracle the batched padded
// encoder differentials against.
std::shared_ptr<const SourceCrossKV> precompute_cross_kv_per_source(
    const Transformer& model, const std::vector<int>& src_ids) {
  const auto& cfg = model.config();
  const int src_len = static_cast<int>(src_ids.size());
  MR_CHECK(src_len > 0, "empty source sequence");
  MR_CHECK(src_len <= cfg.max_len, "source exceeds max_len");

  Rng rng(0);
  const std::vector<int> lens = {src_len};
  tensor::Tensor enc = model.encode(src_ids, /*batch=*/1, src_len, lens,
                                    /*training=*/false, rng);
  return project_cross_kv(model, enc.value().data(), src_len);
}

}  // namespace

bool encode_batch_enabled() {
  const char* e = std::getenv("MPIRICAL_ENCODE_BATCH");
  if (e == nullptr || e[0] == '\0') return true;
  return e[0] != '0';
}

std::vector<std::shared_ptr<const SourceCrossKV>> precompute_cross_kv_batch(
    const Transformer& model,
    const std::vector<const std::vector<int>*>& sources, bool batched) {
  std::vector<std::shared_ptr<const SourceCrossKV>> out(sources.size());
  if (sources.empty()) return out;  // both paths agree on the empty wave
  if (!batched) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      out[i] = precompute_cross_kv_per_source(model, *sources[i]);
    }
    return out;
  }

  // One padded encoder pass for the whole wave, then ONE fused projection
  // GEMM for every source, layer, and K/V head: the sources' valid rows
  // (each contiguous at the head of its panel block -- padded rows are
  // excluded by this compaction) are gathered into a [sum_len, d] panel and
  // multiplied against the decoder layers' interleaved [d, layers * 2d]
  // cross-projection weights. gemm_acc_rowstable keeps each row's bits
  // independent of the wave composition, so a source's K/V is identical
  // however it is batched (the padding-invariance suite asserts this).
  const std::shared_ptr<const EncodedBatch> wave = encode_batch(model, sources);
  const int d = model.config().d_model;
  const auto& dec_layers = model.decoder_layers();
  const int ncols = static_cast<int>(dec_layers.size()) * 2 * d;
  std::size_t sum_len = 0;
  for (const auto& len : wave->lens) sum_len += static_cast<std::size_t>(len);

  if (ncols == 0) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      auto cross = std::make_shared<SourceCrossKV>();
      cross->src_len = wave->lens[i];
      out[i] = std::move(cross);
    }
    return out;
  }

  // Cache-on: the interleaved [d, layers * 2d] projection matrix comes
  // prepacked from the process-lifetime PackedModel instead of being rebuilt
  // per wave; gemm_acc_packed_rowstable is bit-identical to
  // gemm_acc_rowstable against the raw matrix at every shape, so the fused
  // projection's bits match the per-wave build exactly. (The cross-K/V panel
  // is always f32, but we acquire the current-mode instance so int8 decode
  // shares one PackedModel for everything.)
  std::shared_ptr<const PackedModel> packed_model;
  const PackedLinear* fused = nullptr;
  if (pack_cache_enabled()) {
    packed_model = PackedModel::acquire(model, decode_int8_enabled());
    fused = &packed_model->cross_kv_fused();
  }

  // Arena reuse: encode_batch's intermediates are dead once the wave panel
  // is out, so the projection scratch recycles the same memory.
  ScratchArena& arena = ScratchArena::local();
  arena.reset();
  float* compact = arena.floats(sum_len * static_cast<std::size_t>(d));
  float* proj = arena.floats(sum_len * static_cast<std::size_t>(ncols));

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const EncodedView view{wave, static_cast<int>(i)};
    std::memcpy(compact + cursor * d, view.rows(),
                sizeof(float) * static_cast<std::size_t>(view.len()) * d);
    cursor += static_cast<std::size_t>(view.len());
  }
  if (fused != nullptr) {
    for (std::size_t r = 0; r < sum_len; ++r) {
      std::memcpy(proj + r * ncols, fused->bias,
                  sizeof(float) * static_cast<std::size_t>(ncols));
    }
    tensor::kernels::gemm_acc_packed_rowstable(
        tensor::kernels::Trans::N, static_cast<int>(sum_len), compact, d,
        fused->f32, proj, ncols);
  } else {
    float* w_fused = arena.floats(static_cast<std::size_t>(d) * ncols);
    float* b_fused = arena.floats(static_cast<std::size_t>(ncols));
    for (std::size_t li = 0; li < dec_layers.size(); ++li) {
      const auto& attn = dec_layers[li].cross_attn;
      const float* wk = attn.wk.w.value().data();
      const float* wv = attn.wv.w.value().data();
      const int base = static_cast<int>(li) * 2 * d;
      for (int i = 0; i < d; ++i) {
        float* row = w_fused + static_cast<std::size_t>(i) * ncols + base;
        std::memcpy(row, wk + static_cast<std::size_t>(i) * d,
                    sizeof(float) * static_cast<std::size_t>(d));
        std::memcpy(row + d, wv + static_cast<std::size_t>(i) * d,
                    sizeof(float) * static_cast<std::size_t>(d));
      }
      std::memcpy(b_fused + base, attn.wk.b.value().data(),
                  sizeof(float) * static_cast<std::size_t>(d));
      std::memcpy(b_fused + base + d, attn.wv.b.value().data(),
                  sizeof(float) * static_cast<std::size_t>(d));
    }
    for (std::size_t r = 0; r < sum_len; ++r) {
      std::memcpy(proj + r * ncols, b_fused,
                  sizeof(float) * static_cast<std::size_t>(ncols));
    }
    tensor::kernels::gemm_acc_rowstable(
        tensor::kernels::Trans::N, tensor::kernels::Trans::N,
        static_cast<int>(sum_len), ncols, d, compact, d, w_fused, ncols, proj,
        ncols);
  }

  // Split the fused panel back out per source and layer: V rows copy out
  // contiguously, K transposes into the [d, src_len] layout
  // decode_step::attention_shared streams with unit stride. The transpose
  // runs in 32x32 tiles so both sides stay within cached lines instead of
  // taking one cache miss per scattered element.
  constexpr int kTile = 32;
  cursor = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const int len = wave->lens[i];
    auto cross = std::make_shared<SourceCrossKV>();
    cross->src_len = len;
    cross->layers.resize(dec_layers.size());
    for (std::size_t li = 0; li < dec_layers.size(); ++li) {
      const int base = static_cast<int>(li) * 2 * d;
      auto& kt = cross->layers[li].kt;
      auto& v = cross->layers[li].v;
      kt.resize(static_cast<std::size_t>(d) * len);
      v.resize(static_cast<std::size_t>(len) * d);
      for (int s0 = 0; s0 < len; s0 += kTile) {
        const int s1 = std::min(len, s0 + kTile);
        for (int c0 = 0; c0 < d; c0 += kTile) {
          const int c1 = std::min(d, c0 + kTile);
          for (int s = s0; s < s1; ++s) {
            const float* prow = proj + (cursor + s) * ncols + base;
            for (int c = c0; c < c1; ++c) {
              kt[static_cast<std::size_t>(c) * len + s] = prow[c];
            }
          }
        }
      }
      for (int s = 0; s < len; ++s) {
        std::memcpy(v.data() + static_cast<std::size_t>(s) * d,
                    proj + (cursor + s) * ncols + base + d,
                    sizeof(float) * static_cast<std::size_t>(d));
      }
    }
    out[i] = std::move(cross);
    cursor += static_cast<std::size_t>(len);
  }
  return out;
}

// ---- continuous decode stream -----------------------------------------------

// DecodeStream::Impl's member types live in this NAMED namespace rather than
// the anonymous one above: Impl itself has external linkage, and GCC's
// -Wsubobject-linkage (a -Werror in CI) flags external-linkage aggregates
// holding internal-linkage member types.
namespace detail {

// Growing per-hypothesis self-attention K/V, all decoder layers in one
// allocation unit so a copy-on-write clone is a single object copy.
struct LaneCache {
  std::vector<std::vector<float>> k;  // [layer][t * d]
  std::vector<std::vector<float>> v;
};

// One live or finished hypothesis of a request's beam. `cache` is shared
// between forks of one parent until the next wave's append clones it
// (copy-on-write); finished hypotheses drop theirs.
struct BatchHyp {
  std::shared_ptr<LaneCache> cache;
  std::vector<int> tokens;
  double log_prob = 0.0;
  bool finished = false;
  int next_input = -1;

  double score() const {
    const double len = static_cast<double>(tokens.size()) + 1.0;
    return log_prob / len;  // length-normalized, as the reference scores
  }
};

// The stream's view of one decoder layer's cached panels: raw pointers into
// the shared PackedModel's slots (stable for the instance's lifetime; the
// Impl's shared_ptr keeps it alive). The step loop multiplies the same
// matrices up to max_len times, and for beam-sized row counts the per-call
// packing inside gemm_acc would cost more traffic than the products -- so
// panels come packed from the process-lifetime cache (or a private
// per-stream instance when MPIRICAL_PACK_CACHE=0). Both PackedLinear::run
// paths are ROWSTABLE -- f32 through decode_step::linear_rows_rowstable,
// int8 by construction -- so an output row's bits never depend on how many
// rows ride in the wave. That is the keystone of the serve path's
// determinism: requests join and leave the running wave without perturbing
// any other request's bits.
struct PackedLayerPtrs {
  const PackedLinear* self_q;
  const PackedLinear* self_k;
  const PackedLinear* self_v;
  const PackedLinear* self_o;
  const PackedLinear* cross_q;
  const PackedLinear* cross_o;
  const PackedLinear* up;
  const PackedLinear* down;
};

}  // namespace detail

struct DecodeStream::Impl {
  const Transformer* model = nullptr;
  int d = 0;
  int heads = 0;
  int vocab = 0;
  int ffn_dim = 0;
  std::size_t layers = 0;
  float embed_scale = 1.0f;

  // The shared (or, cache-off, private) packed-weight cache instance and the
  // per-layer panel pointers resolved from it once at construction. Lazy
  // panel packing means a warm cache makes this resolution free; a cold one
  // packs each panel exactly once under its call_once.
  std::shared_ptr<const PackedModel> pm;
  std::vector<detail::PackedLayerPtrs> packed;
  const PackedLinear* out_proj = nullptr;

  // One admitted request. `t` is the lane's OWN step counter: a lane
  // admitted mid-stream runs behind older lanes, each row seeing its own
  // positional encoding, cache offset, and KV length -- which is what lets
  // one wave mix lanes of different ages.
  struct Lane {
    TicketId id = 0;
    int t = 0;
    int src_len = 0;
    int eos = 0;
    int max_len = 0;
    int beam_width = 1;
    std::shared_ptr<const SourceCrossKV> cross;
    std::vector<detail::BatchHyp> beam;
  };
  std::vector<Lane> lanes;
  TicketId next_id = 1;

  // Wave scratch: one row per live hypothesis across all lanes, reused
  // across steps.
  std::vector<float> x, normed, q, attn, proj, krows, vrows, hidden, logits;
  struct RowSpan {
    std::size_t lane;  // index into lanes
    int m0, m1;        // contiguous row range of its live hypotheses
  };
  std::vector<RowSpan> spans;
  std::vector<detail::BatchHyp*> row_hyp;  // row -> stepping hypothesis
  std::vector<const float*> ks, vs;        // row -> self K/V cache base
  std::vector<int> kv_lens;                // row -> its lane's t + 1
  std::vector<int> row_t;                  // row -> its lane's t

  explicit Impl(const Transformer& m)
      : Impl(m, PackedModel::acquire(m, decode_int8_enabled())) {}

  Impl(const Transformer& m, std::shared_ptr<const PackedModel> packed_model)
      : model(&m), pm(std::move(packed_model)) {
    MR_CHECK(pm != nullptr, "DecodeStream: null packed model");
    const auto& cfg = m.config();
    d = cfg.d_model;
    heads = cfg.heads;
    vocab = cfg.vocab_size;
    layers = m.decoder_layers().size();
    ffn_dim = layers == 0 ? 0 : m.decoder_layers()[0].ffn.up.w.dim(1);
    embed_scale = std::sqrt(static_cast<float>(d));

    packed.resize(layers);
    for (std::size_t li = 0; li < layers; ++li) {
      const PackedModel::DecoderPanels p = pm->decoder_layer(li);
      packed[li] = detail::PackedLayerPtrs{&p.self_q, &p.self_k, &p.self_v,
                                           &p.self_o, &p.cross_q, &p.cross_o,
                                           &p.up,     &p.down};
    }
    out_proj = &pm->output_projection();
  }

  bool lane_exhausted(const Lane& lane) const {
    if (lane.t >= lane.max_len) return true;
    for (const auto& hyp : lane.beam) {
      if (!hyp.finished) return false;
    }
    return true;
  }

  Finished finalize(const Lane& lane) const {
    const detail::BatchHyp* best = &lane.beam.front();
    for (const auto& hyp : lane.beam) {
      if (hyp.score() > best->score()) best = &hyp;
    }
    Finished fin;
    fin.id = lane.id;
    fin.result.tokens = best->tokens;
    fin.result.log_prob = best->log_prob;
    return fin;
  }

  // Delivers and removes every exhausted lane (max_len reached or every
  // hypothesis finished), compacting the lane list in admission order.
  void reap(std::vector<Finished>& out) {
    std::size_t w = 0;
    for (std::size_t li = 0; li < lanes.size(); ++li) {
      if (lane_exhausted(lanes[li])) {
        out.push_back(finalize(lanes[li]));
      } else {
        if (w != li) lanes[w] = std::move(lanes[li]);
        ++w;
      }
    }
    lanes.resize(w);
  }
};

DecodeStream::DecodeStream(const Transformer& model)
    : impl_(std::make_unique<Impl>(model)) {}

DecodeStream::DecodeStream(const Transformer& model,
                           std::shared_ptr<const PackedModel> packed)
    : impl_(std::make_unique<Impl>(model, std::move(packed))) {}

DecodeStream::~DecodeStream() = default;

std::size_t DecodeStream::live() const { return impl_->lanes.size(); }

const Transformer& DecodeStream::model() const { return *impl_->model; }

std::vector<DecodeStream::TicketId> DecodeStream::submit(
    const std::vector<DecodeRequest>& requests) {
  Impl& im = *impl_;
  std::vector<TicketId> ids(requests.size());
  if (requests.empty()) return ids;
  std::vector<const std::vector<int>*> sources(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    MR_CHECK(requests[i].beam_width >= 1, "beam width must be >= 1");
    sources[i] = &requests[i].src_ids;
  }
  const auto crosses =
      precompute_cross_kv_batch(*im.model, sources, encode_batch_enabled());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const DecodeRequest& req = requests[i];
    Impl::Lane lane;
    lane.id = im.next_id++;
    lane.src_len = static_cast<int>(req.src_ids.size());
    lane.eos = req.eos;
    lane.max_len = req.max_len;
    lane.beam_width = req.beam_width;
    lane.cross = crosses[i];
    detail::BatchHyp root;
    root.cache = std::make_shared<detail::LaneCache>();
    root.cache->k.resize(im.layers);
    root.cache->v.resize(im.layers);
    root.next_input = req.sos;
    lane.beam.push_back(std::move(root));
    ids[i] = lane.id;
    im.lanes.push_back(std::move(lane));
  }
  return ids;
}

std::vector<DecodeStream::Finished> DecodeStream::step() {
  Impl& im = *impl_;
  std::vector<Finished> out;
  im.reap(out);  // lanes already exhausted at entry (e.g. max_len == 0)
  if (im.lanes.empty()) return out;

  const Transformer& model = *im.model;
  const auto& cfg = model.config();
  const int d = im.d;
  const int heads = im.heads;
  const int vocab = im.vocab;
  const int ffn_dim = im.ffn_dim;
  const std::size_t layers = im.layers;

  // Gather this wave's rows, lane-major in admission order, beam order
  // within a lane. Every surviving lane has at least one live hypothesis.
  im.spans.clear();
  im.row_hyp.clear();
  im.row_t.clear();
  for (std::size_t li = 0; li < im.lanes.size(); ++li) {
    Impl::Lane& lane = im.lanes[li];
    MR_CHECK(lane.t < cfg.max_len, "decode length exceeds max_len");
    const int m0 = static_cast<int>(im.row_hyp.size());
    for (auto& hyp : lane.beam) {
      if (!hyp.finished) {
        im.row_hyp.push_back(&hyp);
        im.row_t.push_back(lane.t);
      }
    }
    im.spans.push_back(Impl::RowSpan{li, m0,
                                     static_cast<int>(im.row_hyp.size())});
  }
  const int rows = static_cast<int>(im.row_hyp.size());

  const std::size_t rd = static_cast<std::size_t>(rows) * d;
  im.x.resize(rd);
  im.normed.resize(rd);
  im.q.resize(rd);
  im.attn.resize(rd);
  im.proj.resize(rd);
  im.krows.resize(rd);
  im.vrows.resize(rd);
  im.hidden.resize(static_cast<std::size_t>(rows) * ffn_dim);
  im.logits.resize(static_cast<std::size_t>(rows) * vocab);
  im.ks.resize(static_cast<std::size_t>(rows));
  im.vs.resize(static_cast<std::size_t>(rows));
  im.kv_lens.resize(static_cast<std::size_t>(rows));
  for (int m = 0; m < rows; ++m) {
    im.kv_lens[static_cast<std::size_t>(m)] =
        im.row_t[static_cast<std::size_t>(m)] + 1;
  }

  // Embedding + per-lane positional encoding, and copy-on-write unsharing:
  // a cache still shared with a sibling fork is cloned before this wave
  // appends.
  for (const Impl::RowSpan& span : im.spans) {
    const auto& pos = model.positional_row(im.lanes[span.lane].t);
    for (int m = span.m0; m < span.m1; ++m) {
      detail::BatchHyp& hyp = *im.row_hyp[static_cast<std::size_t>(m)];
      const int token = hyp.next_input;
      MR_CHECK(token >= 0 && token < vocab, "token id out of range");
      const float* erow = model.token_embedding().value().data() +
                          static_cast<std::size_t>(token) * d;
      float* xrow = im.x.data() + static_cast<std::size_t>(m) * d;
      for (int i = 0; i < d; ++i) {
        xrow[i] = erow[i] * im.embed_scale + pos[static_cast<std::size_t>(i)];
      }
      if (hyp.cache.use_count() > 1) {
        hyp.cache = std::make_shared<detail::LaneCache>(*hyp.cache);
      }
    }
  }

  for (std::size_t li = 0; li < layers; ++li) {
    const auto& layer = model.decoder_layers()[li];

    // Causal self-attention: one GEMM per projection over all rows, then
    // per-row ragged attention over each hypothesis's own cache (whose
    // length is its LANE's t, not anyone else's).
    decode_step::layer_norm_rows(im.x.data(), layer.ln1, rows, d,
                                 im.normed.data());
    im.packed[li].self_q->run(im.normed.data(), rows, im.q.data());
    im.packed[li].self_k->run(im.normed.data(), rows, im.krows.data());
    im.packed[li].self_v->run(im.normed.data(), rows, im.vrows.data());
    for (int m = 0; m < rows; ++m) {
      detail::LaneCache& cache = *im.row_hyp[static_cast<std::size_t>(m)]->cache;
      const std::size_t cache_off =
          static_cast<std::size_t>(im.row_t[static_cast<std::size_t>(m)]) * d;
      grow(cache.k[li], cache_off + static_cast<std::size_t>(d));
      grow(cache.v[li], cache_off + static_cast<std::size_t>(d));
      std::memcpy(cache.k[li].data() + cache_off,
                  im.krows.data() + static_cast<std::size_t>(m) * d,
                  sizeof(float) * static_cast<std::size_t>(d));
      std::memcpy(cache.v[li].data() + cache_off,
                  im.vrows.data() + static_cast<std::size_t>(m) * d,
                  sizeof(float) * static_cast<std::size_t>(d));
      im.ks[static_cast<std::size_t>(m)] = cache.k[li].data();
      im.vs[static_cast<std::size_t>(m)] = cache.v[li].data();
    }
    decode_step::attention_ragged(im.q.data(), rows, d, heads, im.ks.data(),
                                  im.vs.data(), im.kv_lens.data(),
                                  im.attn.data());
    im.packed[li].self_o->run(im.attn.data(), rows, im.proj.data());
    for (std::size_t i = 0; i < rd; ++i) im.x[i] += im.proj[i];

    // Cross attention: each lane's contiguous row block attends over its
    // shared encoder K/V panel via per-head GEMMs.
    decode_step::layer_norm_rows(im.x.data(), layer.ln2, rows, d,
                                 im.normed.data());
    im.packed[li].cross_q->run(im.normed.data(), rows, im.q.data());
    for (const Impl::RowSpan& span : im.spans) {
      const Impl::Lane& lane = im.lanes[span.lane];
      const auto& cross = lane.cross->layers[li];
      decode_step::attention_shared(
          im.q.data() + static_cast<std::size_t>(span.m0) * d,
          span.m1 - span.m0, d, heads, cross.kt.data(), cross.v.data(),
          lane.src_len, im.attn.data() + static_cast<std::size_t>(span.m0) * d);
    }
    im.packed[li].cross_o->run(im.attn.data(), rows, im.proj.data());
    for (std::size_t i = 0; i < rd; ++i) im.x[i] += im.proj[i];

    // Feed-forward.
    decode_step::layer_norm_rows(im.x.data(), layer.ln3, rows, d,
                                 im.normed.data());
    im.packed[li].up->run(im.normed.data(), rows, im.hidden.data());
    decode_step::gelu_rows(im.hidden.data(),
                           static_cast<std::size_t>(rows) * ffn_dim);
    im.packed[li].down->run(im.hidden.data(), rows, im.proj.data());
    for (std::size_t i = 0; i < rd; ++i) im.x[i] += im.proj[i];
  }

  decode_step::layer_norm_rows(im.x.data(), model.decoder_final_ln(), rows, d,
                               im.normed.data());
  im.out_proj->run(im.normed.data(), rows, im.logits.data());

  // Per-lane beam bookkeeping, mirroring the reference path's candidate
  // order, scoring, and tie-breaking exactly.
  for (const Impl::RowSpan& span : im.spans) {
    Impl::Lane& lane = im.lanes[span.lane];
    if (lane.beam_width == 1) {
      detail::BatchHyp& hyp = lane.beam.front();
      float* row = im.logits.data() +
                   static_cast<std::size_t>(span.m0) * vocab;
      int best = 0;
      for (int j = 1; j < vocab; ++j) {
        if (row[j] > row[best]) best = j;
      }
      if (best == lane.eos) {
        hyp.finished = true;
        hyp.cache.reset();
      } else {
        log_softmax_row(row, vocab);  // row is wave scratch, safe to clobber
        hyp.log_prob += static_cast<double>(row[best]);
        hyp.tokens.push_back(best);
        hyp.next_input = best;
      }
      ++lane.t;
      continue;
    }

    std::vector<detail::BatchHyp> candidates;
    int row_cursor = span.m0;
    for (auto& hyp : lane.beam) {
      if (hyp.finished) {
        candidates.push_back(hyp);
        continue;
      }
      float* row = im.logits.data() +
                   static_cast<std::size_t>(row_cursor++) * vocab;
      log_softmax_row(row, vocab);

      std::vector<int> order(static_cast<std::size_t>(vocab));
      for (std::size_t j = 0; j < order.size(); ++j) {
        order[j] = static_cast<int>(j);
      }
      std::partial_sort(order.begin(),
                        order.begin() +
                            std::min<std::size_t>(
                                order.size(),
                                static_cast<std::size_t>(lane.beam_width)),
                        order.end(), [&](int a, int b) {
                          return row[static_cast<std::size_t>(a)] >
                                 row[static_cast<std::size_t>(b)];
                        });
      for (int c = 0; c < lane.beam_width && c < vocab; ++c) {
        const int tok = order[static_cast<std::size_t>(c)];
        detail::BatchHyp next;
        next.tokens = hyp.tokens;
        next.log_prob =
            hyp.log_prob +
            static_cast<double>(row[static_cast<std::size_t>(tok)]);
        if (tok == lane.eos) {
          next.finished = true;  // drops the cache reference
        } else {
          next.cache = hyp.cache;  // shared; next wave's append unshares
          next.tokens.push_back(tok);
          next.next_input = tok;
        }
        candidates.push_back(std::move(next));
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const detail::BatchHyp& a, const detail::BatchHyp& b) {
                return a.score() > b.score();
              });
    if (candidates.size() > static_cast<std::size_t>(lane.beam_width)) {
      candidates.resize(static_cast<std::size_t>(lane.beam_width));
    }
    lane.beam = std::move(candidates);
    ++lane.t;
  }

  im.reap(out);  // lanes that finished this step deliver immediately
  return out;
}

std::vector<DecodeResult> decode_batch(const Transformer& model,
                                       const std::vector<DecodeRequest>& requests,
                                       DecodeBatchStats* stats) {
  return decode_batch(model, requests, nullptr, stats);
}

std::vector<DecodeResult> decode_batch(
    const Transformer& model, const std::vector<DecodeRequest>& requests,
    std::shared_ptr<const PackedModel> packed, DecodeBatchStats* stats) {
  std::vector<DecodeResult> results(requests.size());
  if (requests.empty()) return results;
  if (use_reference_decode()) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const DecodeRequest& r = requests[i];
      results[i] = decode_reference(model, r.src_ids, r.sos, r.eos, r.max_len,
                                    r.beam_width);
    }
    return results;
  }

  // The batched engine IS a one-shot stream: construct (resolves the cached
  // weight panels -- outside both stat timers), submit everything as one
  // group, step to idle. The serve daemon steps the same engine
  // continuously, admitting mid-stream.
  DecodeStream stream =
      packed ? DecodeStream(model, std::move(packed)) : DecodeStream(model);
  Timer encode_timer;
  const std::vector<DecodeStream::TicketId> ids = stream.submit(requests);
  const double encode_seconds = encode_timer.seconds();
  if (stats) stats->encode_seconds = encode_seconds;
  Timer decode_timer;
  std::unordered_map<DecodeStream::TicketId, std::size_t> slot;
  slot.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) slot.emplace(ids[i], i);
  while (!stream.idle()) {
    for (auto& fin : stream.step()) {
      results[slot.at(fin.id)] = std::move(fin.result);
    }
  }
  const double decode_seconds = decode_timer.seconds();
  if (stats) stats->decode_seconds = decode_seconds;
  // Per-wave encode vs decode GEMM split for the recorder -- the same
  // timers the DecodeBatchStats fields come from, so the two views agree.
  obs::Recorder& rec = obs::Recorder::global();
  if (rec.enabled()) {
    rec.record_phase("nn/wave/encode",
                     static_cast<std::uint64_t>(encode_seconds * 1e9));
    rec.record_phase("nn/wave/decode",
                     static_cast<std::uint64_t>(decode_seconds * 1e9));
  }
  return results;
}

std::vector<int> greedy_decode(const Transformer& model,
                               const std::vector<int>& src_ids, int sos,
                               int eos, int max_len) {
  if (use_reference_decode()) {
    return decode_reference(model, src_ids, sos, eos, max_len, 1).tokens;
  }
  DecodeRequest req;
  req.src_ids = src_ids;
  req.sos = sos;
  req.eos = eos;
  req.max_len = max_len;
  req.beam_width = 1;
  return decode_batch(model, {req})[0].tokens;
}

std::vector<int> beam_decode(const Transformer& model,
                             const std::vector<int>& src_ids, int sos, int eos,
                             int max_len, int beam_width) {
  MR_CHECK(beam_width >= 1, "beam width must be >= 1");
  if (use_reference_decode()) {
    return decode_reference(model, src_ids, sos, eos, max_len, beam_width)
        .tokens;
  }
  DecodeRequest req;
  req.src_ids = src_ids;
  req.sos = sos;
  req.eos = eos;
  req.max_len = max_len;
  req.beam_width = beam_width;
  return decode_batch(model, {req})[0].tokens;
}

}  // namespace mpirical::nn
