#include "nn/transformer.hpp"

#include "snapshot/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "nn/packed_model.hpp"
#include "support/arena.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace mpirical::nn {

using tensor::Tensor;

namespace {

std::vector<std::vector<float>> positional_table(
    const TransformerConfig& config) {
  std::vector<std::vector<float>> pos(
      static_cast<std::size_t>(config.max_len));
  for (int p = 0; p < config.max_len; ++p) {
    auto& row = pos[static_cast<std::size_t>(p)];
    row.resize(static_cast<std::size_t>(config.d_model));
    for (int i = 0; i < config.d_model; ++i) {
      const double angle =
          p / std::pow(10000.0, 2.0 * (i / 2) / config.d_model);
      row[static_cast<std::size_t>(i)] = static_cast<float>(
          i % 2 == 0 ? std::sin(angle) : std::cos(angle));
    }
  }
  return pos;
}

}  // namespace

bool decode_int8_enabled() {
  const char* env = std::getenv("MPIRICAL_DECODE_INT8");
  return env != nullptr && std::string_view(env) != "0";
}

tensor::kernels::PackedPanelBI8 pack_linear_i8(const Linear& lin) {
  const int rows = lin.w.dim(0);
  const int cols = lin.w.dim(1);
  if (lin.q8.valid() && lin.q8.rows == rows && lin.q8.cols == cols) {
    return tensor::kernels::pack_b_panels_i8(cols, rows, lin.q8.q,
                                             lin.q8.scales);
  }
  return tensor::kernels::pack_b_panels_i8(tensor::kernels::Trans::N, cols,
                                           rows, lin.w.value().data(), cols);
}

Transformer::Transformer(const TransformerConfig& config, Rng& rng)
    : config_(config),
      tok_embed_(Tensor::randn({config.vocab_size, config.d_model}, rng, 0.02f,
                               /*requires_grad=*/true)),
      enc_ln_(config.d_model),
      dec_ln_(config.d_model),
      out_proj_(config.d_model, config.vocab_size, rng) {
  MR_CHECK(config.d_model % config.heads == 0,
           "d_model must be divisible by heads");
  pos_ = positional_table(config);
  enc_.reserve(static_cast<std::size_t>(config.encoder_layers));
  for (int i = 0; i < config.encoder_layers; ++i) enc_.emplace_back(config, rng);
  dec_.reserve(static_cast<std::size_t>(config.decoder_layers));
  for (int i = 0; i < config.decoder_layers; ++i) dec_.emplace_back(config, rng);
}

Transformer::Transformer(const TransformerConfig& config)
    : config_(config),
      tok_embed_(Tensor::zeros({config.vocab_size, config.d_model},
                               /*requires_grad=*/true)),
      enc_ln_(config.d_model),
      dec_ln_(config.d_model),
      out_proj_(config.d_model, config.vocab_size) {
  MR_CHECK(config.d_model % config.heads == 0,
           "d_model must be divisible by heads");
  pos_ = positional_table(config);
  enc_.reserve(static_cast<std::size_t>(config.encoder_layers));
  for (int i = 0; i < config.encoder_layers; ++i) enc_.emplace_back(config);
  dec_.reserve(static_cast<std::size_t>(config.decoder_layers));
  for (int i = 0; i < config.decoder_layers; ++i) dec_.emplace_back(config);
}

const std::vector<float>& Transformer::positional_row(int pos) const {
  MR_CHECK(pos >= 0 && pos < config_.max_len, "position beyond max_len");
  return pos_[static_cast<std::size_t>(pos)];
}

Tensor Transformer::embed(const std::vector<int>& ids, int batch, int len,
                          bool training, Rng& rng) const {
  MR_CHECK(static_cast<int>(ids.size()) == batch * len,
           "embed: id count mismatch");
  Tensor x = tensor::embedding(ids, tok_embed_);
  x = tensor::scale(x, std::sqrt(static_cast<float>(config_.d_model)));
  // Positional encodings tiled over the batch (constant, no grad).
  std::vector<float> pos_data(static_cast<std::size_t>(batch) * len *
                              config_.d_model);
  for (int b = 0; b < batch; ++b) {
    for (int t = 0; t < len; ++t) {
      const auto& row = positional_row(t);
      std::memcpy(pos_data.data() +
                      (static_cast<std::size_t>(b) * len + t) * config_.d_model,
                  row.data(), sizeof(float) * row.size());
    }
  }
  Tensor pos = Tensor::from_data({batch * len, config_.d_model},
                                 std::move(pos_data));
  x = tensor::add(x, pos);
  return tensor::dropout(x, config_.dropout, rng, training);
}

namespace {

Tensor attention_sublayer(const AttentionBlock& blk, const Tensor& x_q,
                          const Tensor& x_kv, int batch, int heads,
                          bool causal, const std::vector<int>* q_lens,
                          const std::vector<int>* kv_lens) {
  const Tensor q = blk.wq.forward(x_q);
  const Tensor k = blk.wk.forward(x_kv);
  const Tensor v = blk.wv.forward(x_kv);
  const Tensor attn =
      tensor::multi_head_attention(q, k, v, batch, heads, causal, q_lens,
                                   kv_lens);
  return blk.wo.forward(attn);
}

Tensor ffn_sublayer(const FfnBlock& blk, const Tensor& x) {
  return blk.down.forward(tensor::gelu(blk.up.forward(x)));
}

}  // namespace

Tensor Transformer::encode(const std::vector<int>& src_ids, int batch,
                           int src_len, const std::vector<int>& src_lens,
                           bool training, Rng& rng) const {
  MR_CHECK(static_cast<int>(src_lens.size()) == batch,
           "encode: src_lens size mismatch");
  Tensor x = embed(src_ids, batch, src_len, training, rng);
  for (const auto& layer : enc_) {
    const Tensor normed = layer.ln1.apply(x);
    Tensor h = attention_sublayer(layer.attn, normed, normed, batch,
                                  config_.heads,
                                  /*causal=*/false, &src_lens, &src_lens);
    x = tensor::add(x, tensor::dropout(h, config_.dropout, rng, training));
    Tensor f = ffn_sublayer(layer.ffn, layer.ln2.apply(x));
    x = tensor::add(x, tensor::dropout(f, config_.dropout, rng, training));
  }
  return enc_ln_.apply(x);
}

Tensor Transformer::decode(const Tensor& enc_out,
                           const std::vector<int>& tgt_ids, int batch,
                           int tgt_len, const std::vector<int>& tgt_lens,
                           int src_len, const std::vector<int>& src_lens,
                           bool training, Rng& rng) const {
  MR_CHECK(static_cast<int>(tgt_lens.size()) == batch,
           "decode: tgt_lens size mismatch");
  Tensor x = embed(tgt_ids, batch, tgt_len, training, rng);
  (void)src_len;
  for (const auto& layer : dec_) {
    const Tensor normed = layer.ln1.apply(x);
    Tensor h = attention_sublayer(layer.self_attn, normed, normed, batch,
                                  config_.heads,
                                  /*causal=*/true, &tgt_lens, &tgt_lens);
    x = tensor::add(x, tensor::dropout(h, config_.dropout, rng, training));
    Tensor c = attention_sublayer(layer.cross_attn, layer.ln2.apply(x),
                                  enc_out, batch, config_.heads,
                                  /*causal=*/false, &tgt_lens, &src_lens);
    x = tensor::add(x, tensor::dropout(c, config_.dropout, rng, training));
    Tensor f = ffn_sublayer(layer.ffn, layer.ln3.apply(x));
    x = tensor::add(x, tensor::dropout(f, config_.dropout, rng, training));
  }
  x = dec_ln_.apply(x);
  return out_proj_.forward(x);
}

template <typename Self, typename Fn>
void Transformer::visit_params(Self& self, Fn&& fn) {
  using LinearPtr = decltype(&self.out_proj_);
  const LinearPtr none = nullptr;
  fn(self.tok_embed_, none);
  auto add_linear = [&](auto& l) {
    fn(l.w, &l);
    fn(l.b, none);
  };
  auto add_ln = [&](auto& ln) {
    fn(ln.gamma, none);
    fn(ln.beta, none);
  };
  auto add_attn = [&](auto& a) {
    add_linear(a.wq);
    add_linear(a.wk);
    add_linear(a.wv);
    add_linear(a.wo);
  };
  for (auto& layer : self.enc_) {
    add_ln(layer.ln1);
    add_ln(layer.ln2);
    add_attn(layer.attn);
    add_linear(layer.ffn.up);
    add_linear(layer.ffn.down);
  }
  for (auto& layer : self.dec_) {
    add_ln(layer.ln1);
    add_ln(layer.ln2);
    add_ln(layer.ln3);
    add_attn(layer.self_attn);
    add_attn(layer.cross_attn);
    add_linear(layer.ffn.up);
    add_linear(layer.ffn.down);
  }
  add_ln(self.enc_ln_);
  add_ln(self.dec_ln_);
  add_linear(self.out_proj_);
}

std::vector<Tensor> Transformer::parameters() const {
  std::vector<Tensor> params;
  visit_params(*this, [&](const Tensor& t, const Linear*) {
    params.push_back(t);
  });
  return params;
}

std::size_t Transformer::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

namespace {

void put_i32(std::string& out, std::int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_f32(std::string& out, float v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::int32_t get_i32(std::string_view in, std::size_t& pos) {
  MR_CHECK(pos + sizeof(std::int32_t) <= in.size(), "checkpoint truncated");
  std::int32_t v;
  std::memcpy(&v, in.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}
float get_f32(std::string_view in, std::size_t& pos) {
  MR_CHECK(pos + sizeof(float) <= in.size(), "checkpoint truncated");
  float v;
  std::memcpy(&v, in.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}

constexpr std::int32_t kMagic = 0x4D504952;  // "MPIR"

/// Rejects configs whose fields are garbage (a corrupt checkpoint must fail
/// loudly here, not as a multi-gigabyte allocation or a downstream crash).
void validate_config(const TransformerConfig& cfg) {
  MR_CHECK(cfg.vocab_size > 0 && cfg.vocab_size <= (1 << 24),
           "checkpoint config: vocab_size out of range");
  MR_CHECK(cfg.d_model > 0 && cfg.d_model <= (1 << 16),
           "checkpoint config: d_model out of range");
  MR_CHECK(cfg.heads > 0 && cfg.heads <= 256 &&
               cfg.d_model % cfg.heads == 0,
           "checkpoint config: heads out of range");
  MR_CHECK(cfg.ffn_dim > 0 && cfg.ffn_dim <= (1 << 20),
           "checkpoint config: ffn_dim out of range");
  MR_CHECK(cfg.encoder_layers >= 0 && cfg.encoder_layers <= 64 &&
               cfg.decoder_layers >= 0 && cfg.decoder_layers <= 64,
           "checkpoint config: layer count out of range");
  MR_CHECK(cfg.max_len > 0 && cfg.max_len <= (1 << 20),
           "checkpoint config: max_len out of range");
  MR_CHECK(cfg.dropout >= 0.0f && cfg.dropout <= 1.0f,
           "checkpoint config: dropout out of range");
}

}  // namespace

std::string Transformer::serialize() const {
  std::string out;
  put_i32(out, kMagic);
  put_i32(out, config_.vocab_size);
  put_i32(out, config_.d_model);
  put_i32(out, config_.heads);
  put_i32(out, config_.ffn_dim);
  put_i32(out, config_.encoder_layers);
  put_i32(out, config_.decoder_layers);
  put_i32(out, config_.max_len);
  put_f32(out, config_.dropout);
  for (const auto& p : parameters()) {
    put_i32(out, static_cast<std::int32_t>(p.numel()));
    for (float v : p.value()) put_f32(out, v);
  }
  return out;
}

Transformer Transformer::deserialize(std::string_view data) {
  std::size_t pos = 0;
  MR_CHECK(get_i32(data, pos) == kMagic, "bad checkpoint magic");
  TransformerConfig cfg;
  cfg.vocab_size = get_i32(data, pos);
  cfg.d_model = get_i32(data, pos);
  cfg.heads = get_i32(data, pos);
  cfg.ffn_dim = get_i32(data, pos);
  cfg.encoder_layers = get_i32(data, pos);
  cfg.decoder_layers = get_i32(data, pos);
  cfg.max_len = get_i32(data, pos);
  cfg.dropout = get_f32(data, pos);
  validate_config(cfg);
  Transformer model(cfg);  // zero-init; every value overwritten below
  for (auto& p : model.parameters()) {
    const std::int32_t n = get_i32(data, pos);
    MR_CHECK(n >= 0 && static_cast<std::size_t>(n) == p.numel(),
             "checkpoint parameter size mismatch");
    for (auto& x : p.value()) x = get_f32(data, pos);
  }
  MR_CHECK(pos == data.size(), "trailing bytes in checkpoint");
  return model;
}

// ---- snapshot sections ------------------------------------------------------

void Transformer::to_snapshot(snapshot::Builder& builder,
                              bool quantize_weights) const {
  {
    snapshot::ByteWriter w;
    w.i32(config_.vocab_size);
    w.i32(config_.d_model);
    w.i32(config_.heads);
    w.i32(config_.ffn_dim);
    w.i32(config_.encoder_layers);
    w.i32(config_.decoder_layers);
    w.i32(config_.max_len);
    w.f32(config_.dropout);
    builder.add(snapshot::SectionKind::kTransformerConfig,
                "transformer_config", w.take());
  }
  std::vector<std::pair<const tensor::Tensor*, const Linear*>> refs;
  visit_params(*this, [&](const Tensor& t, const Linear* lin) {
    refs.emplace_back(&t, lin);
  });
  snapshot::ByteWriter index;
  index.u32(static_cast<std::uint32_t>(refs.size()));
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const tensor::Tensor& p = *refs[i].first;
    const Linear* lin = refs[i].second;
    const auto& shape = p.shape();
    MR_CHECK(shape.size() <= 2, "snapshot supports rank <= 2 tensors");
    index.u32(static_cast<std::uint32_t>(shape.size()));
    index.u32(shape.empty() ? 1u : static_cast<std::uint32_t>(shape[0]));
    index.u32(shape.size() < 2 ? 1u : static_cast<std::uint32_t>(shape[1]));
    std::size_t section;
    if (quantize_weights && lin != nullptr && shape.size() == 2) {
      const int rows = static_cast<int>(shape[0]);
      const int cols = static_cast<int>(shape[1]);
      snapshot::ByteWriter w;
      w.u32(static_cast<std::uint32_t>(rows));
      w.u32(static_cast<std::uint32_t>(cols));
      if (lin->q8.valid() && lin->q8.rows == rows && lin->q8.cols == cols) {
        // Loaded from a quantized snapshot: re-emit the stored bytes
        // verbatim so quantized save -> load -> save is byte-identical
        // (requantizing the dequantized weights could flip a last-ulp
        // scale).
        w.raw(lin->q8.scales, sizeof(float) * static_cast<std::size_t>(cols));
        w.raw(lin->q8.q, static_cast<std::size_t>(rows) * cols);
      } else {
        std::vector<float> scales(static_cast<std::size_t>(cols));
        std::vector<std::int8_t> q(static_cast<std::size_t>(rows) * cols);
        tensor::kernels::quantize_weights_i8(
            tensor::kernels::Trans::N, cols, rows, p.value().data(), cols,
            q.data(), scales.data());
        w.raw(scales.data(), sizeof(float) * scales.size());
        w.raw(q.data(), q.size());
      }
      section = builder.add(snapshot::SectionKind::kTensorDataI8,
                            "t" + std::to_string(i), w.take());
    } else {
      std::string payload;
      payload.resize(p.numel() * sizeof(float));
      std::memcpy(payload.data(), p.value().data(), payload.size());
      section = builder.add(snapshot::SectionKind::kTensorData,
                            "t" + std::to_string(i), std::move(payload));
    }
    index.u32(static_cast<std::uint32_t>(section));
  }
  builder.add(snapshot::SectionKind::kTensorIndex, "tensor_index",
              index.take());
}

Transformer Transformer::from_view(const snapshot::Snapshot& snap,
                                   std::shared_ptr<const void> owner) {
  TransformerConfig cfg;
  {
    snapshot::ByteReader r(
        snap.require(snapshot::SectionKind::kTransformerConfig,
                     "transformer_config")
            .payload);
    cfg.vocab_size = r.i32();
    cfg.d_model = r.i32();
    cfg.heads = r.i32();
    cfg.ffn_dim = r.i32();
    cfg.encoder_layers = r.i32();
    cfg.decoder_layers = r.i32();
    cfg.max_len = r.i32();
    cfg.dropout = r.f32();
    r.done();
  }
  validate_config(cfg);
  // Zero-init construction: every parameter's storage is repointed at the
  // mapping below, so worker startup never pays a Gaussian init.
  Transformer model(cfg);
  std::vector<std::pair<tensor::Tensor*, Linear*>> refs;
  visit_params(model, [&](Tensor& t, Linear* lin) {
    refs.emplace_back(&t, lin);
  });

  snapshot::ByteReader index(
      snap.require(snapshot::SectionKind::kTensorIndex, "tensor_index")
          .payload);
  const std::uint32_t count = index.u32();
  MR_CHECK(count == refs.size(),
           "snapshot tensor count does not match the model architecture");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t rank = index.u32();
    const std::uint32_t d0 = index.u32();
    const std::uint32_t d1 = index.u32();
    const std::uint32_t section_id = index.u32();
    tensor::Tensor& p = *refs[i].first;
    Linear* lin = refs[i].second;
    const auto& shape = p.shape();
    MR_CHECK(rank == shape.size(),
             "snapshot tensor rank mismatch at parameter " +
                 std::to_string(i));
    const std::uint32_t want0 =
        shape.empty() ? 1u : static_cast<std::uint32_t>(shape[0]);
    const std::uint32_t want1 =
        shape.size() < 2 ? 1u : static_cast<std::uint32_t>(shape[1]);
    MR_CHECK(d0 == want0 && d1 == want1,
             "snapshot tensor shape mismatch at parameter " +
                 std::to_string(i));
    const snapshot::Section& data =
        snap.section(static_cast<std::size_t>(section_id));
    if (data.kind == snapshot::SectionKind::kTensorDataI8) {
      // Quantized weight section: u32 rows, u32 cols, f32 scales[cols],
      // int8 payload[rows*cols]. Dequantize into the parameter's owned f32
      // storage (every legacy consumer keeps working) and attach the int8
      // bytes to the Linear as a zero-copy view for the int8 decode path.
      MR_CHECK(lin != nullptr && shape.size() == 2,
               "snapshot quantized section at non-weight parameter " +
                   std::to_string(i));
      snapshot::ByteReader r(data.payload);
      const std::uint32_t rows = r.u32();
      const std::uint32_t cols = r.u32();
      MR_CHECK(rows == want0 && cols == want1,
               "snapshot quantized tensor shape mismatch at parameter " +
                   std::to_string(i));
      const std::size_t want_bytes =
          8 + sizeof(float) * static_cast<std::size_t>(cols) +
          static_cast<std::size_t>(rows) * cols;
      MR_CHECK(data.payload.size() == want_bytes,
               "snapshot quantized tensor payload size mismatch at "
               "parameter " +
                   std::to_string(i));
      const float* scales =
          reinterpret_cast<const float*>(data.payload.data() + 8);
      const std::int8_t* q = reinterpret_cast<const std::int8_t*>(
          data.payload.data() + 8 + sizeof(float) * cols);
      for (std::uint32_t j = 0; j < cols; ++j) {
        MR_CHECK(std::isfinite(scales[j]) && scales[j] > 0.0f,
                 "snapshot quantized tensor has corrupt scale at parameter " +
                     std::to_string(i));
      }
      auto& vals = p.value();
      for (std::uint32_t row = 0; row < rows; ++row) {
        const std::int8_t* qrow = q + static_cast<std::size_t>(row) * cols;
        float* vrow = vals.data() + static_cast<std::size_t>(row) * cols;
        for (std::uint32_t j = 0; j < cols; ++j) {
          vrow[j] = scales[j] * static_cast<float>(qrow[j]);
        }
      }
      lin->q8.rows = static_cast<int>(rows);
      lin->q8.cols = static_cast<int>(cols);
      lin->q8.q = q;
      lin->q8.scales = scales;
      lin->q8.owner = owner;
      p.release_grad();
      continue;
    }
    MR_CHECK(data.kind == snapshot::SectionKind::kTensorData,
             "snapshot tensor index points at a non-tensor section");
    MR_CHECK(data.payload.size() == p.numel() * sizeof(float),
             "snapshot tensor payload size mismatch at parameter " +
                 std::to_string(i));
    // Zero-copy: the parameter's storage becomes a view into the mapping
    // (64-byte aligned by the container layout); `owner` keeps it alive.
    // Drop the eagerly-allocated grad buffer too -- an eval-only worker
    // must not hold a dead model-sized gradient allocation (it comes back
    // lazily via ensure_grad if the model is ever trained).
    p.set_view(reinterpret_cast<const float*>(data.payload.data()),
               p.numel(), owner);
    p.release_grad();
  }
  index.done();
  return model;
}

// ---- batched decode-step primitives -----------------------------------------

namespace decode_step {

void layer_norm_rows(const float* x, const LayerNormParams& ln, int rows,
                     int d, float* out) {
  const auto& gamma = ln.gamma.value();
  const auto& beta = ln.beta.value();
  for (int r = 0; r < rows; ++r) {
    const float* row = x + static_cast<std::size_t>(r) * d;
    float* dst = out + static_cast<std::size_t>(r) * d;
    float mean = 0.0f;
    for (int i = 0; i < d; ++i) mean += row[i];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (int i = 0; i < d; ++i) {
      const float diff = row[i] - mean;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float inv_std = 1.0f / std::sqrt(var + 1e-5f);
    for (int i = 0; i < d; ++i) {
      dst[i] = (row[i] - mean) * inv_std * gamma[static_cast<std::size_t>(i)] +
               beta[static_cast<std::size_t>(i)];
    }
  }
}

void linear_rows(const float* x, const Linear& lin, int rows, float* out) {
  const int in = lin.w.dim(0);
  const int n = lin.w.dim(1);
  const auto& bias = lin.b.value();
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out + static_cast<std::size_t>(r) * n, bias.data(),
                sizeof(float) * static_cast<std::size_t>(n));
  }
  tensor::kernels::gemm_acc(tensor::kernels::Trans::N,
                            tensor::kernels::Trans::N, rows, n, in, x, in,
                            lin.w.value().data(), n, out, n);
}

void linear_rows(const float* x, const tensor::kernels::PackedPanelB& w,
                 const float* bias, int rows, float* out) {
  const int n = w.n;
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out + static_cast<std::size_t>(r) * n, bias,
                sizeof(float) * static_cast<std::size_t>(n));
  }
  tensor::kernels::gemm_acc_packed(tensor::kernels::Trans::N, rows, x, w.k, w,
                                   out, n);
}

void linear_rows_rowstable(const float* x,
                           const tensor::kernels::PackedPanelB& w,
                           const float* bias, int rows, float* out) {
  const int n = w.n;
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out + static_cast<std::size_t>(r) * n, bias,
                sizeof(float) * static_cast<std::size_t>(n));
  }
  tensor::kernels::gemm_acc_packed_rowstable(tensor::kernels::Trans::N, rows,
                                             x, w.k, w, out, n);
}

void linear_rows(const float* x, const tensor::kernels::PackedPanelBI8& w,
                 const float* bias, int rows, float* out) {
  const int n = w.n;
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out + static_cast<std::size_t>(r) * n, bias,
                sizeof(float) * static_cast<std::size_t>(n));
  }
  tensor::kernels::gemm_acc_packed_i8(tensor::kernels::Trans::N, rows, x, w.k,
                                      w, out, n);
}

void gelu_rows(float* x, std::size_t n) {
  constexpr float kC = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = x[i];
    x[i] = 0.5f * v * (1.0f + std::tanh(kC * (v + kA * v * v * v)));
  }
}

namespace {

// Shared in-place softmax over contiguous score rows of length `len`
// (per-head rows in the fused paths, per-query rows in the GEMM path):
// scale, subtract the row max, exponentiate, normalize.
void softmax_scaled_rows(float* scores, int nrows, int len, float inv_sqrt) {
  for (int r = 0; r < nrows; ++r) {
    float* srow = scores + static_cast<std::size_t>(r) * len;
    float mx = -1e30f;
    for (int j = 0; j < len; ++j) {
      srow[j] *= inv_sqrt;
      mx = std::max(mx, srow[j]);
    }
    float sum = 0.0f;
    for (int j = 0; j < len; ++j) {
      srow[j] = std::exp(srow[j] - mx);
      sum += srow[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < len; ++j) srow[j] *= inv;
  }
}

// All-head scores for one query row in a single pass over a row-major
// [kv_len, d] K buffer (each K row read once serves every head). Used for
// the ragged self-attention caches, which grow row-wise per step. scores
// layout: [heads, kv_len].
void scores_one_pass_rowmajor(const float* qrow, const float* k, int kv_len,
                              int d, int heads, float* scores) {
  const int hd = d / heads;
  for (int j = 0; j < kv_len; ++j) {
    const float* krow = k + static_cast<std::size_t>(j) * d;
    for (int h = 0; h < heads; ++h) {
      const int off = h * hd;
      float s = 0.0f;
      for (int c = 0; c < hd; ++c) s += qrow[off + c] * krow[off + c];
      scores[static_cast<std::size_t>(h) * kv_len + j] = s;
    }
  }
}

// All-head scores for one query row over a TRANSPOSED K panel kt[d, kv_len]:
// each kt row contributes a unit-stride axpy into its head's score row, so
// the inner loop autovectorizes (no dot-product reduction). Per score
// element the k-terms still accumulate in ascending c order. scores layout:
// [heads, kv_len], zeroed here.
void scores_one_pass(const float* qrow, const float* kt, int kv_len, int d,
                     int heads, float* scores) {
  const int hd = d / heads;
  std::memset(scores, 0,
              sizeof(float) * static_cast<std::size_t>(heads) * kv_len);
  for (int h = 0; h < heads; ++h) {
    float* srow = scores + static_cast<std::size_t>(h) * kv_len;
    for (int c = 0; c < hd; ++c) {
      const float qc = qrow[h * hd + c];
      const float* krow =
          kt + static_cast<std::size_t>(h * hd + c) * kv_len;
      for (int j = 0; j < kv_len; ++j) srow[j] += qc * krow[j];
    }
  }
}

// All-head probability-weighted V sum for one query row, again one pass
// over the V panel. `orow` must be zeroed by the caller.
void pv_one_pass(const float* scores, const float* v, int kv_len, int d,
                 int heads, float* orow) {
  const int hd = d / heads;
  for (int j = 0; j < kv_len; ++j) {
    const float* vrow = v + static_cast<std::size_t>(j) * d;
    for (int h = 0; h < heads; ++h) {
      const float p = scores[static_cast<std::size_t>(h) * kv_len + j];
      const int off = h * hd;
      for (int c = 0; c < hd; ++c) orow[off + c] += p * vrow[off + c];
    }
  }
}

}  // namespace

void attention_ragged(const float* q, int rows, int d, int heads,
                      const float* const* ks, const float* const* vs,
                      const int* kv_lens, float* out) {
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(d / heads));
  thread_local std::vector<float> scores;
  for (int r = 0; r < rows; ++r) {
    const float* qrow = q + static_cast<std::size_t>(r) * d;
    float* orow = out + static_cast<std::size_t>(r) * d;
    const int kv_len = kv_lens[r];
    scores.resize(static_cast<std::size_t>(heads) * kv_len);
    scores_one_pass_rowmajor(qrow, ks[r], kv_len, d, heads, scores.data());
    softmax_scaled_rows(scores.data(), heads, kv_len, inv_sqrt);
    std::memset(orow, 0, sizeof(float) * static_cast<std::size_t>(d));
    pv_one_pass(scores.data(), vs[r], kv_len, d, heads, orow);
  }
}

void attention_shared(const float* q, int rows, int d, int heads,
                      const float* kt, const float* v, int kv_len,
                      float* out) {
  using tensor::kernels::Trans;
  const int hd = d / heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  thread_local std::vector<float> scores;
  std::memset(out, 0, sizeof(float) * static_cast<std::size_t>(rows) * d);

  // Beam-sized row blocks (the decode case): fused per-row loops, both
  // score and PV inner loops unit-stride over kv / the V row. Larger blocks
  // amortize packing and go through the kernel-layer GEMMs per head.
  if (rows <= 16) {
    scores.resize(static_cast<std::size_t>(heads) * kv_len);
    for (int r = 0; r < rows; ++r) {
      const float* qrow = q + static_cast<std::size_t>(r) * d;
      scores_one_pass(qrow, kt, kv_len, d, heads, scores.data());
      softmax_scaled_rows(scores.data(), heads, kv_len, inv_sqrt);
      pv_one_pass(scores.data(), v, kv_len, d, heads,
                  out + static_cast<std::size_t>(r) * d);
    }
    return;
  }

  scores.resize(static_cast<std::size_t>(rows) * kv_len);
  for (int h = 0; h < heads; ++h) {
    const int off = h * hd;
    std::fill(scores.begin(), scores.end(), 0.0f);
    // scores[rows, kv_len] = Q_h . Kt_h with Kt_h the head's [hd, kv_len]
    // row block of the transposed panel -- a plain NN product.
    tensor::kernels::gemm_acc(Trans::N, Trans::N, rows, kv_len, hd, q + off, d,
                              kt + static_cast<std::size_t>(off) * kv_len,
                              kv_len, scores.data(), kv_len);
    softmax_scaled_rows(scores.data(), rows, kv_len, inv_sqrt);
    // out_h += P . V_h.
    tensor::kernels::gemm_acc(Trans::N, Trans::N, rows, hd, kv_len,
                              scores.data(), kv_len, v + off, d, out + off, d);
  }
}

}  // namespace decode_step

// ---- batched encoder-panel primitives ---------------------------------------
//
// GCC's -O2 "very-cheap" vectorizer cost model refuses the elementwise and
// streaming loops below (runtime trip counts need epilogues), leaving the
// softmax exp and GELU passes scalar. O3's dynamic model vectorizes them.
// This cannot change results: without -ffast-math the vectorizer never
// reassociates FP reductions, and every loop here is either elementwise or
// an explicitly lane-split (4-accumulator) reduction whose combine order is
// fixed in the source.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC push_options
#pragma GCC optimize("O3")
#endif

namespace encode_step {

void linear_panel(const float* x, const Linear& lin, int rows, float* out) {
  const int in = lin.w.dim(0);
  const int n = lin.w.dim(1);
  const auto& bias = lin.b.value();
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out + static_cast<std::size_t>(r) * n, bias.data(),
                sizeof(float) * static_cast<std::size_t>(n));
  }
  tensor::kernels::gemm_acc_rowstable(tensor::kernels::Trans::N,
                                      tensor::kernels::Trans::N, rows, n, in,
                                      x, in, lin.w.value().data(), n, out, n);
}

void linear_panel_residual(const float* in, const Linear& lin, int rows,
                           float* x) {
  const int k = lin.w.dim(0);
  const int n = lin.w.dim(1);
  tensor::kernels::gemm_acc_rowstable(tensor::kernels::Trans::N,
                                      tensor::kernels::Trans::N, rows, n, k,
                                      in, k, lin.w.value().data(), n, x, n);
  const auto& bias = lin.b.value();
  for (int r = 0; r < rows; ++r) {
    float* xrow = x + static_cast<std::size_t>(r) * n;
    for (int j = 0; j < n; ++j) xrow[j] += bias[static_cast<std::size_t>(j)];
  }
}

namespace {

// Vectorizable exp approximation shared by the padded encoder's softmax and
// GELU: 2^z split into integer and [-0.5, 0.5] fraction, with the
// round-to-nearest done by the 1.5 * 2^23 magic-number bias (a pure float
// add that rounds to nearest-even and leaves the integer in the low
// mantissa bits) so the loop body is branch-free float/int ops the compiler
// autovectorizes -- no libm call, no scalar cvt. The degree-6 Taylor of 2^f
// keeps relative error ~1e-7, ~2 ulp off glibc expf: the same order as the
// kernel layer's reassociation noise. Inputs below -87 clamp (exp == 0 at
// float precision there anyway); softmax feeds max-subtracted values <= 0.
inline float exp_fast(float x) {
  constexpr float kLog2e = 1.44269504088896341f;
  constexpr float kC1 = 0.6931471805599453f;   // ln2
  constexpr float kC2 = 0.2402265069591007f;   // ln2^2/2!
  constexpr float kC3 = 0.05550410866482158f;  // ln2^3/3!
  constexpr float kC4 = 0.009618129107628477f;
  constexpr float kC5 = 0.0013333558146428443f;
  constexpr float kC6 = 0.00015403530393381608f;
  constexpr float kRound = 12582912.0f;  // 1.5 * 2^23
  const float z = (x < -87.0f ? -87.0f : x) * kLog2e;
  const float biased = z + kRound;
  std::int32_t zi;
  std::memcpy(&zi, &biased, sizeof(zi));
  zi -= 0x4B400000;  // bit pattern of kRound: the low bits are round(z)
  const float f = z - (biased - kRound);
  const float p =
      1.0f +
      f * (kC1 + f * (kC2 + f * (kC3 + f * (kC4 + f * (kC5 + f * kC6)))));
  const std::int32_t bits = (zi + 127) << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return scale * p;
}

}  // namespace

void gelu_panel(float* x, std::size_t n) {
  constexpr float kC = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float u = kC * (v + kA * v * v * v);
    // tanh(u) = 1 - 2 / (exp(2u) + 1); u is clamped so exp stays in range
    // (|u| >= 9 is tanh == +-1 at float precision anyway).
    const float uc = u > 9.0f ? 9.0f : (u < -9.0f ? -9.0f : u);
    const float t = 1.0f - 2.0f / (exp_fast(2.0f * uc) + 1.0f);
    x[i] = 0.5f * v * (1.0f + t);
  }
}

namespace {

// Interleaves the three projections' weights row-wise ([d, 3d]) and biases
// once per call; the copies are O(d^2), noise next to the [rows, 3d] GEMM.
void build_fused_qkv(const AttentionBlock& attn, int d, std::vector<float>& w3,
                     std::vector<float>& b3) {
  const int n3 = 3 * d;
  w3.resize(static_cast<std::size_t>(d) * n3);
  b3.resize(static_cast<std::size_t>(n3));
  const float* wq = attn.wq.w.value().data();
  const float* wk = attn.wk.w.value().data();
  const float* wv = attn.wv.w.value().data();
  for (int i = 0; i < d; ++i) {
    float* row = w3.data() + static_cast<std::size_t>(i) * n3;
    std::memcpy(row, wq + static_cast<std::size_t>(i) * d,
                sizeof(float) * static_cast<std::size_t>(d));
    std::memcpy(row + d, wk + static_cast<std::size_t>(i) * d,
                sizeof(float) * static_cast<std::size_t>(d));
    std::memcpy(row + 2 * d, wv + static_cast<std::size_t>(i) * d,
                sizeof(float) * static_cast<std::size_t>(d));
  }
  std::memcpy(b3.data(), attn.wq.b.value().data(),
              sizeof(float) * static_cast<std::size_t>(d));
  std::memcpy(b3.data() + d, attn.wk.b.value().data(),
              sizeof(float) * static_cast<std::size_t>(d));
  std::memcpy(b3.data() + 2 * d, attn.wv.b.value().data(),
              sizeof(float) * static_cast<std::size_t>(d));
}

}  // namespace

void qkv_panel(const float* x, const AttentionBlock& attn, int rows, int d,
               float* qkv) {
  const int n3 = 3 * d;
  thread_local std::vector<float> w3, b3;
  build_fused_qkv(attn, d, w3, b3);
  for (int r = 0; r < rows; ++r) {
    std::memcpy(qkv + static_cast<std::size_t>(r) * n3, b3.data(),
                sizeof(float) * static_cast<std::size_t>(n3));
  }
  tensor::kernels::gemm_acc_rowstable(tensor::kernels::Trans::N,
                                      tensor::kernels::Trans::N, rows, n3, d,
                                      x, d, w3.data(), n3, qkv, n3);
}

void linear_panel_i8(const float* x, const Linear& lin, int rows, float* out) {
  const tensor::kernels::PackedPanelBI8 packed = pack_linear_i8(lin);
  const int n = packed.n;
  const auto& bias = lin.b.value();
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out + static_cast<std::size_t>(r) * n, bias.data(),
                sizeof(float) * static_cast<std::size_t>(n));
  }
  tensor::kernels::gemm_acc_packed_i8(tensor::kernels::Trans::N, rows, x,
                                      packed.k, packed, out, n);
}

void linear_panel_residual_i8(const float* in, const Linear& lin, int rows,
                              float* x) {
  const tensor::kernels::PackedPanelBI8 packed = pack_linear_i8(lin);
  const int n = packed.n;
  tensor::kernels::gemm_acc_packed_i8(tensor::kernels::Trans::N, rows, in,
                                      packed.k, packed, x, n);
  const auto& bias = lin.b.value();
  for (int r = 0; r < rows; ++r) {
    float* xrow = x + static_cast<std::size_t>(r) * n;
    for (int j = 0; j < n; ++j) xrow[j] += bias[static_cast<std::size_t>(j)];
  }
}

void qkv_panel_i8(const float* x, const AttentionBlock& attn, int rows, int d,
                  float* qkv) {
  const int n3 = 3 * d;
  thread_local std::vector<float> w3, b3;
  build_fused_qkv(attn, d, w3, b3);
  // Quantizing the fused [d, 3d] matrix gives the same per-column scales as
  // quantizing Wq/Wk/Wv separately (columns are independent), so the fused
  // product stays column-for-column identical to three separate i8 panels.
  const tensor::kernels::PackedPanelBI8 packed =
      tensor::kernels::pack_b_panels_i8(tensor::kernels::Trans::N, n3, d,
                                        w3.data(), n3);
  for (int r = 0; r < rows; ++r) {
    std::memcpy(qkv + static_cast<std::size_t>(r) * n3, b3.data(),
                sizeof(float) * static_cast<std::size_t>(n3));
  }
  tensor::kernels::gemm_acc_packed_i8(tensor::kernels::Trans::N, rows, x, d,
                                      packed, qkv, n3);
}

// Cached-panel overloads: thin dispatches into the process-lifetime
// PackedLinear, which routes to the rowstable packed kernel of its mode.
// Bit-identity with the per-call variants above holds because packing never
// changes an output element's k-accumulation order (gemm_acc_packed_rowstable
// is pinned bit-identical to gemm_acc_rowstable at every shape, and the int8
// panels are packed by the exact same pack_linear_i8 / fused-quantize calls).
void linear_panel(const float* x, const PackedLinear& lin, int rows,
                  float* out) {
  lin.run(x, rows, out);
}

void linear_panel_residual(const float* in, const PackedLinear& lin, int rows,
                           float* x) {
  lin.run_residual(in, rows, x);
}

void qkv_panel(const float* x, const PackedLinear& fused, int rows, int d,
               float* qkv) {
  MR_CHECK(fused.out_dim() == 3 * d, "qkv_panel: fused panel shape mismatch");
  fused.run(x, rows, qkv);
}

void self_attention_padded(const float* q, const float* k, const float* v,
                           int ld, int batch, int max_len, const int* lens,
                           int d, int heads, float* out) {
  using tensor::kernels::Trans;
  const int hd = d / heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  std::memset(out, 0,
              sizeof(float) * static_cast<std::size_t>(batch) * max_len * d);

  // Per (source, head): one Q.K^T score GEMM over the source's valid rows,
  // the training path's exact masked-softmax row loop (scale, float max,
  // exp, guarded normalize), then one probs.V GEMM into the zeroed output.
  // The score panel's leading dimension is the source's own valid length,
  // so nothing here depends on max_len or on the other sources.
  parallel_for(
      0, static_cast<std::size_t>(batch) * heads,
      [&](std::size_t bh) {
        const int b = static_cast<int>(bh) / heads;
        const int h = static_cast<int>(bh) % heads;
        const int len = lens[b];
        const float* qbase =
            q + static_cast<std::size_t>(b) * max_len * ld + h * hd;
        const float* kbase =
            k + static_cast<std::size_t>(b) * max_len * ld + h * hd;
        const float* vbase =
            v + static_cast<std::size_t>(b) * max_len * ld + h * hd;
        float* obase = out + static_cast<std::size_t>(b) * max_len * d + h * hd;
        thread_local std::vector<float> probs;
        probs.assign(static_cast<std::size_t>(len) * len, 0.0f);
        tensor::kernels::gemm_acc(Trans::N, Trans::T, len, len, hd, qbase, ld,
                                  kbase, ld, probs.data(), len);
        for (int i = 0; i < len; ++i) {
          float* prow = probs.data() + static_cast<std::size_t>(i) * len;
          // Four-lane max accumulators: exact same max (associative), but
          // the dependence chain no longer serializes the pass.
          float m0 = -1e30f, m1 = -1e30f, m2 = -1e30f, m3 = -1e30f;
          int j = 0;
          for (; j + 4 <= len; j += 4) {
            prow[j] *= inv_sqrt;
            prow[j + 1] *= inv_sqrt;
            prow[j + 2] *= inv_sqrt;
            prow[j + 3] *= inv_sqrt;
            m0 = std::max(m0, prow[j]);
            m1 = std::max(m1, prow[j + 1]);
            m2 = std::max(m2, prow[j + 2]);
            m3 = std::max(m3, prow[j + 3]);
          }
          for (; j < len; ++j) {
            prow[j] *= inv_sqrt;
            m0 = std::max(m0, prow[j]);
          }
          const float mx = std::max(std::max(m0, m1), std::max(m2, m3));
          for (j = 0; j < len; ++j) prow[j] = exp_fast(prow[j] - mx);
          // Four partial sums (fixed combine order, so the result depends
          // only on len) break the serial FP-add chain the same way.
          float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
          for (j = 0; j + 4 <= len; j += 4) {
            s0 += prow[j];
            s1 += prow[j + 1];
            s2 += prow[j + 2];
            s3 += prow[j + 3];
          }
          for (; j < len; ++j) s0 += prow[j];
          const float sum = (s0 + s1) + (s2 + s3);
          const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
          for (j = 0; j < len; ++j) prow[j] *= inv;
        }
        tensor::kernels::gemm_acc(Trans::N, Trans::N, len, hd, len,
                                  probs.data(), len, vbase, ld, obase, d);
      },
      /*grain=*/1);
}

}  // namespace encode_step

// ---- padded batched encoder -------------------------------------------------

std::shared_ptr<const EncodedBatch> encode_batch(
    const Transformer& model,
    const std::vector<const std::vector<int>*>& sources) {
  const TransformerConfig& cfg = model.config();
  const int d = cfg.d_model;
  const int heads = cfg.heads;
  const int batch = static_cast<int>(sources.size());
  MR_CHECK(batch > 0, "encode_batch: empty wave");

  std::vector<int> lens(static_cast<std::size_t>(batch));
  int max_len = 0;
  for (int b = 0; b < batch; ++b) {
    const std::vector<int>& src = *sources[static_cast<std::size_t>(b)];
    const int len = static_cast<int>(src.size());
    MR_CHECK(len > 0, "encode_batch: empty source sequence");
    MR_CHECK(len <= cfg.max_len, "encode_batch: source exceeds max_len");
    lens[static_cast<std::size_t>(b)] = len;
    max_len = std::max(max_len, len);
  }

  const int rows = batch * max_len;
  const std::size_t rd = static_cast<std::size_t>(rows) * d;
  const int ffn_dim =
      model.encoder_layers().empty()
          ? 0
          : model.encoder_layers()[0].ffn.up.w.dim(1);

  // All intermediate panels come from the calling thread's arena: a pool
  // thread decoding wave after wave reuses the same memory once the arena
  // reaches the steady-state wave footprint.
  ScratchArena& arena = ScratchArena::local();
  arena.reset();
  float* x = arena.floats(rd);
  float* normed = arena.floats(rd);
  float* qkv = arena.floats(rd * 3);
  float* attn = arena.floats(rd);
  float* hidden = arena.floats(static_cast<std::size_t>(rows) * ffn_dim);

  // Embedding + positional encoding; padding rows stay zero (they only ever
  // feed row-wise ops, and attention masks them out entirely).
  std::memset(x, 0, sizeof(float) * rd);
  const float embed_scale = std::sqrt(static_cast<float>(d));
  const float* embed = model.token_embedding().value().data();
  for (int b = 0; b < batch; ++b) {
    const std::vector<int>& src = *sources[static_cast<std::size_t>(b)];
    for (int t = 0; t < lens[static_cast<std::size_t>(b)]; ++t) {
      const int token = src[static_cast<std::size_t>(t)];
      MR_CHECK(token >= 0 && token < cfg.vocab_size,
               "encode_batch: token id out of range");
      const float* erow = embed + static_cast<std::size_t>(token) * d;
      const std::vector<float>& pos = model.positional_row(t);
      float* xrow =
          x + (static_cast<std::size_t>(b) * max_len + t) * d;
      for (int i = 0; i < d; ++i) {
        // Named temporary so scale-then-add rounds exactly like the training
        // path's separate tensor::scale and tensor::add ops (no FMA fusion).
        const float scaled = erow[i] * embed_scale;
        xrow[i] = scaled + pos[static_cast<std::size_t>(i)];
      }
    }
  }

  // Quantized-weights mode (MPIRICAL_DECODE_INT8): every panel projection
  // routes through the int8 kernel; attention, softmax, GELU, and layer
  // norms stay f32, so padding-invariance carries over unchanged.
  //
  // With the packed-weight cache on (the default) the panels come from the
  // shared process-lifetime PackedModel -- no per-wave packing at all; with
  // MPIRICAL_PACK_CACHE=0 every projection re-packs per call (the legacy
  // fallback oracle). Both paths are bit-identical per mode.
  const bool int8_mode = decode_int8_enabled();
  std::shared_ptr<const PackedModel> packed;
  if (pack_cache_enabled()) packed = PackedModel::acquire(model, int8_mode);
  std::size_t li = 0;
  for (const EncoderLayer& layer : model.encoder_layers()) {
    decode_step::layer_norm_rows(x, layer.ln1, rows, d, normed);
    if (packed) {
      const PackedModel::EncoderPanels panels = packed->encoder_layer(li);
      encode_step::qkv_panel(normed, panels.qkv, rows, d, qkv);
      encode_step::self_attention_padded(qkv, qkv + d, qkv + 2 * d, 3 * d,
                                         batch, max_len, lens.data(), d, heads,
                                         attn);
      encode_step::linear_panel_residual(attn, panels.wo, rows, x);

      decode_step::layer_norm_rows(x, layer.ln2, rows, d, normed);
      encode_step::linear_panel(normed, panels.up, rows, hidden);
      encode_step::gelu_panel(hidden,
                              static_cast<std::size_t>(rows) * ffn_dim);
      encode_step::linear_panel_residual(hidden, panels.down, rows, x);
      ++li;
      continue;
    }
    if (int8_mode) {
      encode_step::qkv_panel_i8(normed, layer.attn, rows, d, qkv);
    } else {
      encode_step::qkv_panel(normed, layer.attn, rows, d, qkv);
    }
    encode_step::self_attention_padded(qkv, qkv + d, qkv + 2 * d, 3 * d, batch,
                                       max_len, lens.data(), d, heads, attn);
    if (int8_mode) {
      encode_step::linear_panel_residual_i8(attn, layer.attn.wo, rows, x);
    } else {
      encode_step::linear_panel_residual(attn, layer.attn.wo, rows, x);
    }

    decode_step::layer_norm_rows(x, layer.ln2, rows, d, normed);
    if (int8_mode) {
      encode_step::linear_panel_i8(normed, layer.ffn.up, rows, hidden);
    } else {
      encode_step::linear_panel(normed, layer.ffn.up, rows, hidden);
    }
    encode_step::gelu_panel(hidden, static_cast<std::size_t>(rows) * ffn_dim);
    if (int8_mode) {
      encode_step::linear_panel_residual_i8(hidden, layer.ffn.down, rows, x);
    } else {
      encode_step::linear_panel_residual(hidden, layer.ffn.down, rows, x);
    }
    ++li;
  }

  auto out = std::make_shared<EncodedBatch>();
  out->batch = batch;
  out->max_len = max_len;
  out->d = d;
  out->lens = std::move(lens);
  out->panel.resize(rd);
  decode_step::layer_norm_rows(x, model.encoder_final_ln(), rows, d,
                               out->panel.data());
  return out;
}

std::shared_ptr<const EncodedBatch> encode_batch(
    const Transformer& model, const std::vector<std::vector<int>>& sources) {
  std::vector<const std::vector<int>*> ptrs(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) ptrs[i] = &sources[i];
  return encode_batch(model, ptrs);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC pop_options
#endif

}  // namespace mpirical::nn
