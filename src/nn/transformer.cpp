#include "nn/transformer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/check.hpp"
#include "tensor/kernels.hpp"

namespace mpirical::nn {

using tensor::Tensor;

Transformer::Transformer(const TransformerConfig& config, Rng& rng)
    : config_(config),
      tok_embed_(Tensor::randn({config.vocab_size, config.d_model}, rng, 0.02f,
                               /*requires_grad=*/true)),
      enc_ln_(config.d_model),
      dec_ln_(config.d_model),
      out_proj_(config.d_model, config.vocab_size, rng) {
  MR_CHECK(config.d_model % config.heads == 0,
           "d_model must be divisible by heads");
  pos_.resize(static_cast<std::size_t>(config.max_len));
  for (int p = 0; p < config.max_len; ++p) {
    auto& row = pos_[static_cast<std::size_t>(p)];
    row.resize(static_cast<std::size_t>(config.d_model));
    for (int i = 0; i < config.d_model; ++i) {
      const double angle =
          p / std::pow(10000.0, 2.0 * (i / 2) / config.d_model);
      row[static_cast<std::size_t>(i)] = static_cast<float>(
          i % 2 == 0 ? std::sin(angle) : std::cos(angle));
    }
  }
  enc_.reserve(static_cast<std::size_t>(config.encoder_layers));
  for (int i = 0; i < config.encoder_layers; ++i) enc_.emplace_back(config, rng);
  dec_.reserve(static_cast<std::size_t>(config.decoder_layers));
  for (int i = 0; i < config.decoder_layers; ++i) dec_.emplace_back(config, rng);
}

const std::vector<float>& Transformer::positional_row(int pos) const {
  MR_CHECK(pos >= 0 && pos < config_.max_len, "position beyond max_len");
  return pos_[static_cast<std::size_t>(pos)];
}

Tensor Transformer::embed(const std::vector<int>& ids, int batch, int len,
                          bool training, Rng& rng) const {
  MR_CHECK(static_cast<int>(ids.size()) == batch * len,
           "embed: id count mismatch");
  Tensor x = tensor::embedding(ids, tok_embed_);
  x = tensor::scale(x, std::sqrt(static_cast<float>(config_.d_model)));
  // Positional encodings tiled over the batch (constant, no grad).
  std::vector<float> pos_data(static_cast<std::size_t>(batch) * len *
                              config_.d_model);
  for (int b = 0; b < batch; ++b) {
    for (int t = 0; t < len; ++t) {
      const auto& row = positional_row(t);
      std::memcpy(pos_data.data() +
                      (static_cast<std::size_t>(b) * len + t) * config_.d_model,
                  row.data(), sizeof(float) * row.size());
    }
  }
  Tensor pos = Tensor::from_data({batch * len, config_.d_model},
                                 std::move(pos_data));
  x = tensor::add(x, pos);
  return tensor::dropout(x, config_.dropout, rng, training);
}

namespace {

Tensor attention_sublayer(const AttentionBlock& blk, const Tensor& x_q,
                          const Tensor& x_kv, int batch, int heads,
                          bool causal, const std::vector<int>* q_lens,
                          const std::vector<int>* kv_lens) {
  const Tensor q = blk.wq.forward(x_q);
  const Tensor k = blk.wk.forward(x_kv);
  const Tensor v = blk.wv.forward(x_kv);
  const Tensor attn =
      tensor::multi_head_attention(q, k, v, batch, heads, causal, q_lens,
                                   kv_lens);
  return blk.wo.forward(attn);
}

Tensor ffn_sublayer(const FfnBlock& blk, const Tensor& x) {
  return blk.down.forward(tensor::gelu(blk.up.forward(x)));
}

}  // namespace

Tensor Transformer::encode(const std::vector<int>& src_ids, int batch,
                           int src_len, const std::vector<int>& src_lens,
                           bool training, Rng& rng) const {
  MR_CHECK(static_cast<int>(src_lens.size()) == batch,
           "encode: src_lens size mismatch");
  Tensor x = embed(src_ids, batch, src_len, training, rng);
  for (const auto& layer : enc_) {
    const Tensor normed = layer.ln1.apply(x);
    Tensor h = attention_sublayer(layer.attn, normed, normed, batch,
                                  config_.heads,
                                  /*causal=*/false, &src_lens, &src_lens);
    x = tensor::add(x, tensor::dropout(h, config_.dropout, rng, training));
    Tensor f = ffn_sublayer(layer.ffn, layer.ln2.apply(x));
    x = tensor::add(x, tensor::dropout(f, config_.dropout, rng, training));
  }
  return enc_ln_.apply(x);
}

Tensor Transformer::decode(const Tensor& enc_out,
                           const std::vector<int>& tgt_ids, int batch,
                           int tgt_len, const std::vector<int>& tgt_lens,
                           int src_len, const std::vector<int>& src_lens,
                           bool training, Rng& rng) const {
  MR_CHECK(static_cast<int>(tgt_lens.size()) == batch,
           "decode: tgt_lens size mismatch");
  Tensor x = embed(tgt_ids, batch, tgt_len, training, rng);
  (void)src_len;
  for (const auto& layer : dec_) {
    const Tensor normed = layer.ln1.apply(x);
    Tensor h = attention_sublayer(layer.self_attn, normed, normed, batch,
                                  config_.heads,
                                  /*causal=*/true, &tgt_lens, &tgt_lens);
    x = tensor::add(x, tensor::dropout(h, config_.dropout, rng, training));
    Tensor c = attention_sublayer(layer.cross_attn, layer.ln2.apply(x),
                                  enc_out, batch, config_.heads,
                                  /*causal=*/false, &tgt_lens, &src_lens);
    x = tensor::add(x, tensor::dropout(c, config_.dropout, rng, training));
    Tensor f = ffn_sublayer(layer.ffn, layer.ln3.apply(x));
    x = tensor::add(x, tensor::dropout(f, config_.dropout, rng, training));
  }
  x = dec_ln_.apply(x);
  return out_proj_.forward(x);
}

std::vector<Tensor> Transformer::parameters() const {
  std::vector<Tensor> params;
  params.push_back(tok_embed_);
  auto add_linear = [&](const Linear& l) {
    params.push_back(l.w);
    params.push_back(l.b);
  };
  auto add_ln = [&](const LayerNormParams& ln) {
    params.push_back(ln.gamma);
    params.push_back(ln.beta);
  };
  auto add_attn = [&](const AttentionBlock& a) {
    add_linear(a.wq);
    add_linear(a.wk);
    add_linear(a.wv);
    add_linear(a.wo);
  };
  for (const auto& layer : enc_) {
    add_ln(layer.ln1);
    add_ln(layer.ln2);
    add_attn(layer.attn);
    add_linear(layer.ffn.up);
    add_linear(layer.ffn.down);
  }
  for (const auto& layer : dec_) {
    add_ln(layer.ln1);
    add_ln(layer.ln2);
    add_ln(layer.ln3);
    add_attn(layer.self_attn);
    add_attn(layer.cross_attn);
    add_linear(layer.ffn.up);
    add_linear(layer.ffn.down);
  }
  add_ln(enc_ln_);
  add_ln(dec_ln_);
  add_linear(out_proj_);
  return params;
}

std::size_t Transformer::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

namespace {

void put_i32(std::string& out, std::int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_f32(std::string& out, float v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::int32_t get_i32(const std::string& in, std::size_t& pos) {
  MR_CHECK(pos + sizeof(std::int32_t) <= in.size(), "checkpoint truncated");
  std::int32_t v;
  std::memcpy(&v, in.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}
float get_f32(const std::string& in, std::size_t& pos) {
  MR_CHECK(pos + sizeof(float) <= in.size(), "checkpoint truncated");
  float v;
  std::memcpy(&v, in.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}

constexpr std::int32_t kMagic = 0x4D504952;  // "MPIR"

}  // namespace

std::string Transformer::serialize() const {
  std::string out;
  put_i32(out, kMagic);
  put_i32(out, config_.vocab_size);
  put_i32(out, config_.d_model);
  put_i32(out, config_.heads);
  put_i32(out, config_.ffn_dim);
  put_i32(out, config_.encoder_layers);
  put_i32(out, config_.decoder_layers);
  put_i32(out, config_.max_len);
  put_f32(out, config_.dropout);
  for (const auto& p : parameters()) {
    put_i32(out, static_cast<std::int32_t>(p.numel()));
    for (float v : p.value()) put_f32(out, v);
  }
  return out;
}

Transformer Transformer::deserialize(const std::string& data) {
  std::size_t pos = 0;
  MR_CHECK(get_i32(data, pos) == kMagic, "bad checkpoint magic");
  TransformerConfig cfg;
  cfg.vocab_size = get_i32(data, pos);
  cfg.d_model = get_i32(data, pos);
  cfg.heads = get_i32(data, pos);
  cfg.ffn_dim = get_i32(data, pos);
  cfg.encoder_layers = get_i32(data, pos);
  cfg.decoder_layers = get_i32(data, pos);
  cfg.max_len = get_i32(data, pos);
  cfg.dropout = get_f32(data, pos);
  Rng rng(0);  // weights are overwritten below
  Transformer model(cfg, rng);
  for (auto& p : model.parameters()) {
    const std::int32_t n = get_i32(data, pos);
    MR_CHECK(static_cast<std::size_t>(n) == p.numel(),
             "checkpoint parameter size mismatch");
    for (auto& x : p.value()) x = get_f32(data, pos);
  }
  MR_CHECK(pos == data.size(), "trailing bytes in checkpoint");
  return model;
}

// ---- batched decode-step primitives -----------------------------------------

namespace decode_step {

void layer_norm_rows(const float* x, const LayerNormParams& ln, int rows,
                     int d, float* out) {
  const auto& gamma = ln.gamma.value();
  const auto& beta = ln.beta.value();
  for (int r = 0; r < rows; ++r) {
    const float* row = x + static_cast<std::size_t>(r) * d;
    float* dst = out + static_cast<std::size_t>(r) * d;
    float mean = 0.0f;
    for (int i = 0; i < d; ++i) mean += row[i];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (int i = 0; i < d; ++i) {
      const float diff = row[i] - mean;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float inv_std = 1.0f / std::sqrt(var + 1e-5f);
    for (int i = 0; i < d; ++i) {
      dst[i] = (row[i] - mean) * inv_std * gamma[static_cast<std::size_t>(i)] +
               beta[static_cast<std::size_t>(i)];
    }
  }
}

void linear_rows(const float* x, const Linear& lin, int rows, float* out) {
  const int in = lin.w.dim(0);
  const int n = lin.w.dim(1);
  const auto& bias = lin.b.value();
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out + static_cast<std::size_t>(r) * n, bias.data(),
                sizeof(float) * static_cast<std::size_t>(n));
  }
  tensor::kernels::gemm_acc(tensor::kernels::Trans::N,
                            tensor::kernels::Trans::N, rows, n, in, x, in,
                            lin.w.value().data(), n, out, n);
}

void gelu_rows(float* x, std::size_t n) {
  constexpr float kC = 0.7978845608028654f;
  constexpr float kA = 0.044715f;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = x[i];
    x[i] = 0.5f * v * (1.0f + std::tanh(kC * (v + kA * v * v * v)));
  }
}

namespace {

// Shared in-place softmax over contiguous score rows of length `len`
// (per-head rows in the fused paths, per-query rows in the GEMM path):
// scale, subtract the row max, exponentiate, normalize.
void softmax_scaled_rows(float* scores, int nrows, int len, float inv_sqrt) {
  for (int r = 0; r < nrows; ++r) {
    float* srow = scores + static_cast<std::size_t>(r) * len;
    float mx = -1e30f;
    for (int j = 0; j < len; ++j) {
      srow[j] *= inv_sqrt;
      mx = std::max(mx, srow[j]);
    }
    float sum = 0.0f;
    for (int j = 0; j < len; ++j) {
      srow[j] = std::exp(srow[j] - mx);
      sum += srow[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < len; ++j) srow[j] *= inv;
  }
}

// All-head scores for one query row in a single pass over a row-major
// [kv_len, d] K buffer (each K row read once serves every head). Used for
// the ragged self-attention caches, which grow row-wise per step. scores
// layout: [heads, kv_len].
void scores_one_pass_rowmajor(const float* qrow, const float* k, int kv_len,
                              int d, int heads, float* scores) {
  const int hd = d / heads;
  for (int j = 0; j < kv_len; ++j) {
    const float* krow = k + static_cast<std::size_t>(j) * d;
    for (int h = 0; h < heads; ++h) {
      const int off = h * hd;
      float s = 0.0f;
      for (int c = 0; c < hd; ++c) s += qrow[off + c] * krow[off + c];
      scores[static_cast<std::size_t>(h) * kv_len + j] = s;
    }
  }
}

// All-head scores for one query row over a TRANSPOSED K panel kt[d, kv_len]:
// each kt row contributes a unit-stride axpy into its head's score row, so
// the inner loop autovectorizes (no dot-product reduction). Per score
// element the k-terms still accumulate in ascending c order. scores layout:
// [heads, kv_len], zeroed here.
void scores_one_pass(const float* qrow, const float* kt, int kv_len, int d,
                     int heads, float* scores) {
  const int hd = d / heads;
  std::memset(scores, 0,
              sizeof(float) * static_cast<std::size_t>(heads) * kv_len);
  for (int h = 0; h < heads; ++h) {
    float* srow = scores + static_cast<std::size_t>(h) * kv_len;
    for (int c = 0; c < hd; ++c) {
      const float qc = qrow[h * hd + c];
      const float* krow =
          kt + static_cast<std::size_t>(h * hd + c) * kv_len;
      for (int j = 0; j < kv_len; ++j) srow[j] += qc * krow[j];
    }
  }
}

// All-head probability-weighted V sum for one query row, again one pass
// over the V panel. `orow` must be zeroed by the caller.
void pv_one_pass(const float* scores, const float* v, int kv_len, int d,
                 int heads, float* orow) {
  const int hd = d / heads;
  for (int j = 0; j < kv_len; ++j) {
    const float* vrow = v + static_cast<std::size_t>(j) * d;
    for (int h = 0; h < heads; ++h) {
      const float p = scores[static_cast<std::size_t>(h) * kv_len + j];
      const int off = h * hd;
      for (int c = 0; c < hd; ++c) orow[off + c] += p * vrow[off + c];
    }
  }
}

}  // namespace

void attention_ragged(const float* q, int rows, int d, int heads,
                      const float* const* ks, const float* const* vs,
                      const int* kv_lens, float* out) {
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(d / heads));
  thread_local std::vector<float> scores;
  for (int r = 0; r < rows; ++r) {
    const float* qrow = q + static_cast<std::size_t>(r) * d;
    float* orow = out + static_cast<std::size_t>(r) * d;
    const int kv_len = kv_lens[r];
    scores.resize(static_cast<std::size_t>(heads) * kv_len);
    scores_one_pass_rowmajor(qrow, ks[r], kv_len, d, heads, scores.data());
    softmax_scaled_rows(scores.data(), heads, kv_len, inv_sqrt);
    std::memset(orow, 0, sizeof(float) * static_cast<std::size_t>(d));
    pv_one_pass(scores.data(), vs[r], kv_len, d, heads, orow);
  }
}

void attention_shared(const float* q, int rows, int d, int heads,
                      const float* kt, const float* v, int kv_len,
                      float* out) {
  using tensor::kernels::Trans;
  const int hd = d / heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  thread_local std::vector<float> scores;
  std::memset(out, 0, sizeof(float) * static_cast<std::size_t>(rows) * d);

  // Beam-sized row blocks (the decode case): fused per-row loops, both
  // score and PV inner loops unit-stride over kv / the V row. Larger blocks
  // amortize packing and go through the kernel-layer GEMMs per head.
  if (rows <= 16) {
    scores.resize(static_cast<std::size_t>(heads) * kv_len);
    for (int r = 0; r < rows; ++r) {
      const float* qrow = q + static_cast<std::size_t>(r) * d;
      scores_one_pass(qrow, kt, kv_len, d, heads, scores.data());
      softmax_scaled_rows(scores.data(), heads, kv_len, inv_sqrt);
      pv_one_pass(scores.data(), v, kv_len, d, heads,
                  out + static_cast<std::size_t>(r) * d);
    }
    return;
  }

  scores.resize(static_cast<std::size_t>(rows) * kv_len);
  for (int h = 0; h < heads; ++h) {
    const int off = h * hd;
    std::fill(scores.begin(), scores.end(), 0.0f);
    // scores[rows, kv_len] = Q_h . Kt_h with Kt_h the head's [hd, kv_len]
    // row block of the transposed panel -- a plain NN product.
    tensor::kernels::gemm_acc(Trans::N, Trans::N, rows, kv_len, hd, q + off, d,
                              kt + static_cast<std::size_t>(off) * kv_len,
                              kv_len, scores.data(), kv_len);
    softmax_scaled_rows(scores.data(), rows, kv_len, inv_sqrt);
    // out_h += P . V_h.
    tensor::kernels::gemm_acc(Trans::N, Trans::N, rows, hd, kv_len,
                              scores.data(), kv_len, v + off, d, out + off, d);
  }
}

}  // namespace decode_step

}  // namespace mpirical::nn
