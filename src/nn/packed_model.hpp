// Process-lifetime packed-weight cache shared across encode/decode/serve/
// shard (the Marian-style pack-once-serve-forever discipline).
//
// Before this cache every consumer re-did O(model-size) weight-packing work
// on the hot path: the encoder panel functions re-packed (and, in int8 mode,
// re-quantized) each weight once per CALL, nn::decode_batch's
// construct-submit-drain shape rebuilt every decoder panel once per WAVE,
// and precompute_cross_kv_batch rebuilt the fused cross-projection matrix
// per wave. Packing is deterministic and the packed GEMMs are pinned
// bit-identical to their unpacked oracles, so hoisting every pack to process
// lifetime is pure hot-path savings with zero numeric effect.
//
// One PackedModel holds every encoder and decoder weight panel of one
// (Transformer, int8-mode) pair:
//   * decoder: self q/k/v/o + cross q/o + ffn up/down per layer, plus the
//     vocab output projection -- exactly the panels DecodeStream packed at
//     construction;
//   * encoder: the fused [d, 3d] [Wq|Wk|Wv] qkv panel, attention wo, and
//     ffn up/down per layer -- the panels encode_batch re-packed per call;
//   * the fused [d, layers*2d] cross-attention K/V projection (always f32,
//     matching precompute_cross_kv_batch's per-wave build).
// Panels pack LAZILY, each under its own std::call_once, so concurrent
// streams (translate_batch runs one DecodeStream per wave across the pool)
// can race first use of a shared instance safely and a one-shot greedy
// decode never packs the beams' unused panels twice.
//
// Caching is anchored IN the Transformer (a per-model slot pair, one per
// int8 mode) rather than in a process-global map keyed by address: a global
// map would serve stale panels after heap address reuse when test loops
// create and destroy same-shaped models. Destroying the model naturally
// drops its cache; copying a model detaches (the copy packs its own);
// Transformer::invalidate_pack_cache() drops the slots after training
// mutates weights. Weights are otherwise frozen at inference time, which is
// the contract that makes process-lifetime reuse sound.
//
// MPIRICAL_PACK_CACHE=0 disables sharing: acquire() then returns a fresh
// uncached instance per call and the panel consumers fall back to their
// legacy per-call/per-wave packing -- the fallback oracle the differential
// suite (tests/test_pack_cache_equivalence.cpp) pins cache-on runs
// bit-identical to.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/transformer.hpp"
#include "tensor/kernels.hpp"

namespace mpirical::nn {

/// True unless MPIRICAL_PACK_CACHE is set to a value starting with '0'.
/// Read per call so tests and benches can flip it mid-process.
bool pack_cache_enabled();

/// Process-global pack-cache accounting, independent of the obs recorder so
/// benches can report pack_ms and hit/miss deltas without enabling stats.
/// hits/misses count acquire() calls against an anchored slot (uncached
/// MPIRICAL_PACK_CACHE=0 acquires count as misses: each builds a fresh
/// instance that will re-pack); panels_packed/pack_ns count the actual lazy
/// panel packs.
struct PackCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t panels_packed = 0;
  std::uint64_t pack_ns = 0;

  double pack_ms() const { return static_cast<double>(pack_ns) / 1e6; }
};
PackCacheStats pack_cache_stats();

/// One packed weight panel plus its bias: the f32 flavor holds a
/// pack_b_panels panel driven through gemm_acc_packed_rowstable, the int8
/// flavor a pack_linear_i8 panel (zero-copy from a quantized snapshot's q8
/// view when present). Fused panels (encoder qkv, the cross-K/V projection)
/// own their interleaved matrix and bias here, because PackedPanelB retains
/// a raw pointer for the kernel's small-problem fallback -- the fused
/// operand must outlive the pack.
struct PackedLinear {
  tensor::kernels::PackedPanelB f32;
  tensor::kernels::PackedPanelBI8 i8;
  const float* bias = nullptr;
  bool quant = false;
  std::vector<float> fused_w;  // backing storage for fused operands
  std::vector<float> fused_b;

  /// out[rows, n] = x @ W + b, ROWSTABLE in both flavors: f32 through
  /// gemm_acc_packed_rowstable (bit-identical to gemm_acc_rowstable against
  /// the raw matrix at every shape), int8 through gemm_acc_packed_i8
  /// (rowstable by construction). Bias is preloaded per output row.
  void run(const float* x, int rows, float* out) const;

  /// The rowstable product ACCUMULATED into x (the encoder's residual-fused
  /// shape): x[rows, n] += in @ W, then one trailing bias pass.
  void run_residual(const float* in, int rows, float* x) const;

  int out_dim() const { return quant ? i8.n : f32.n; }
};

/// Every packed panel of one (model, int8-mode) pair. Acquire through the
/// static entry points; instances are immutable to consumers and internally
/// synchronized (per-panel std::call_once), so one shared instance serves
/// any number of concurrent streams.
class PackedModel {
 public:
  /// The shared cached instance for this model and mode, creating (empty --
  /// panels pack lazily) on first acquire. Counts a cache hit or miss.
  /// With the cache disabled (MPIRICAL_PACK_CACHE=0) returns a FRESH
  /// uncached instance instead -- per-stream packing, exactly the legacy
  /// behavior. The model must outlive every acquired instance.
  static std::shared_ptr<const PackedModel> acquire(const Transformer& model,
                                                    bool int8_mode);

  /// Eagerly packs every panel of the cached instance for the CURRENT int8
  /// mode (decode_int8_enabled()) so steady-state waves touch zero pack
  /// work -- the serve daemon and shard workers call this right after
  /// snapshot mmap, evaluate_model before its decode loop. No-op when the
  /// cache is disabled.
  static void warm_cache(const Transformer& model);

  ~PackedModel();
  PackedModel(const PackedModel&) = delete;
  PackedModel& operator=(const PackedModel&) = delete;

  bool int8_mode() const { return quant_; }

  // ---- decoder panels (DecodeStream's step projections) ---------------------

  struct DecoderPanels {
    const PackedLinear& self_q;
    const PackedLinear& self_k;
    const PackedLinear& self_v;
    const PackedLinear& self_o;
    const PackedLinear& cross_q;
    const PackedLinear& cross_o;
    const PackedLinear& up;
    const PackedLinear& down;
  };
  /// Packs (on first use) and returns decoder layer `li`'s step panels.
  DecoderPanels decoder_layer(std::size_t li) const;
  const PackedLinear& output_projection() const;

  // ---- encoder panels (encode_batch's per-layer projections) ----------------

  struct EncoderPanels {
    const PackedLinear& qkv;  // fused [d, 3d] [Wq|Wk|Wv]
    const PackedLinear& wo;
    const PackedLinear& up;
    const PackedLinear& down;
  };
  /// Packs (on first use) and returns encoder layer `li`'s panels.
  EncoderPanels encoder_layer(std::size_t li) const;

  // ---- fused cross-attention K/V projection ---------------------------------

  /// The decoder layers' interleaved [d, layers * 2d] cross wk/wv projection
  /// (always f32, even in int8 mode -- matching the per-wave build it
  /// replaces). Returns a panel with out_dim() == cross_kv_cols().
  const PackedLinear& cross_kv_fused() const;
  int cross_kv_cols() const;

  /// Eagerly packs every panel (all layers, both stacks, out_proj, fused
  /// cross-K/V).
  void warm() const;

 private:
  friend class Transformer;

  PackedModel(const Transformer& model, bool int8_mode);

  struct Lazy;  // once_flag + PackedLinear slot

  const PackedLinear& ensure(Lazy& slot, const Linear& lin) const;
  const PackedLinear& ensure_qkv(Lazy& slot, const AttentionBlock& attn) const;
  const PackedLinear& ensure_cross_kv(Lazy& slot) const;

  const Transformer* model_ = nullptr;
  bool quant_ = false;
  std::size_t dec_layers_ = 0;
  std::size_t enc_layers_ = 0;
  // Slot arrays, not vectors: once_flag is immovable, and the arrays never
  // resize after construction.
  std::unique_ptr<Lazy[]> dec_slots_;  // 8 per decoder layer
  std::unique_ptr<Lazy[]> enc_slots_;  // 4 per encoder layer
  std::unique_ptr<Lazy[]> tail_slots_; // [0] out_proj, [1] fused cross-K/V
};

namespace detail {

/// The per-model cache payload behind a Transformer's PackCacheAnchor: one
/// shared instance per int8 mode. Guarded by packed_model.cpp's global
/// acquire mutex (the anchor itself stays movable -- a mutex member would
/// pin the Transformer).
struct PackCacheSlots {
  std::shared_ptr<const PackedModel> f32;
  std::shared_ptr<const PackedModel> i8;
};

}  // namespace detail

}  // namespace mpirical::nn
