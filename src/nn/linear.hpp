// Linear layer: y = x @ W + b with W stored [in, out] (row-major), so the
// same buffer serves both the batched training matmul and the forward-only
// GEMV used by incremental decoding.
#pragma once

#include <cstdint>
#include <memory>

#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace mpirical::nn {

/// Zero-copy view of a pre-quantized int8 weight matrix (row-major
/// [rows, cols] = [in, out], symmetric per-output-column f32 scales),
/// typically pointing straight into a mapped snapshot's kTensorDataI8
/// section. When present and matching the f32 weight's shape, the int8
/// decode path packs its wave panels from these exact stored bytes instead
/// of re-quantizing the (dequantized) f32 weights.
struct QuantizedWeightView {
  int rows = 0;
  int cols = 0;
  const std::int8_t* q = nullptr;
  const float* scales = nullptr;
  std::shared_ptr<const void> owner;  // pins the mapping
  bool valid() const { return q != nullptr && rows > 0 && cols > 0; }
};

struct Linear {
  Linear() = default;
  Linear(int in, int out, Rng& rng, float init_std = 0.02f)
      : w(tensor::Tensor::randn({in, out}, rng, init_std,
                                /*requires_grad=*/true)),
        b(tensor::Tensor::zeros({out}, /*requires_grad=*/true)) {}
  /// Zero-initialized: for loaders that overwrite (or repoint) every
  /// parameter anyway -- skips the per-element Gaussian draw.
  Linear(int in, int out)
      : w(tensor::Tensor::zeros({in, out}, /*requires_grad=*/true)),
        b(tensor::Tensor::zeros({out}, /*requires_grad=*/true)) {}

  tensor::Tensor forward(const tensor::Tensor& x) const {
    return tensor::add_bias(tensor::matmul(x, w), b);
  }

  tensor::Tensor w;
  tensor::Tensor b;
  QuantizedWeightView q8;  // set by snapshot loads of quantized sections
};

}  // namespace mpirical::nn
