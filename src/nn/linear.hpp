// Linear layer: y = x @ W + b with W stored [in, out] (row-major), so the
// same buffer serves both the batched training matmul and the forward-only
// GEMV used by incremental decoding.
#pragma once

#include "support/rng.hpp"
#include "tensor/tensor.hpp"

namespace mpirical::nn {

struct Linear {
  Linear() = default;
  Linear(int in, int out, Rng& rng, float init_std = 0.02f)
      : w(tensor::Tensor::randn({in, out}, rng, init_std,
                                /*requires_grad=*/true)),
        b(tensor::Tensor::zeros({out}, /*requires_grad=*/true)) {}
  /// Zero-initialized: for loaders that overwrite (or repoint) every
  /// parameter anyway -- skips the per-element Gaussian draw.
  Linear(int in, int out)
      : w(tensor::Tensor::zeros({in, out}, /*requires_grad=*/true)),
        b(tensor::Tensor::zeros({out}, /*requires_grad=*/true)) {}

  tensor::Tensor forward(const tensor::Tensor& x) const {
    return tensor::add_bias(tensor::matmul(x, w), b);
  }

  tensor::Tensor w;
  tensor::Tensor b;
};

}  // namespace mpirical::nn
