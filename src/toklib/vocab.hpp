// Token vocabulary for the sequence models.
//
// The model consumes lexer-level code tokens (plus X-SBT tags) rather than
// BPE subwords: the corpus identifier/literal pools are finite, so word-level
// tokenization keeps the vocabulary compact, exactly decodable, and cheap --
// the property SPT-Code gets from its code-aware tokenizer.
//
// Special tokens occupy the first ids: [PAD]=0, [SOS]=1, [EOS]=2, [SEP]=3,
// [UNK]=4, [NL]=5. Newlines are encoded explicitly ([NL]) so that decoded
// sequences reconstruct line structure -- the location signal the task is
// about.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mpirical::snapshot {
class ByteWriter;
}

namespace mpirical::tok {

using TokenId = std::int32_t;

inline constexpr TokenId kPad = 0;
inline constexpr TokenId kSos = 1;
inline constexpr TokenId kEos = 2;
inline constexpr TokenId kSep = 3;
inline constexpr TokenId kUnk = 4;
inline constexpr TokenId kNewline = 5;
inline constexpr TokenId kFirstRegularId = 6;

class Vocab {
 public:
  Vocab();

  /// Adds a token (no-op if present); returns its id.
  TokenId add(const std::string& token);

  /// Returns the id for `token`, or kUnk if unknown.
  TokenId id_of(const std::string& token) const;

  /// Returns the text for `id`. Special ids render as "[PAD]" etc.
  const std::string& text_of(TokenId id) const;

  bool contains(const std::string& token) const;
  std::size_t size() const { return id_to_text_.size(); }

  /// Serialization (one token per line, in id order, specials included).
  /// Legacy text format; the snapshot path below is the binary sibling.
  std::string serialize() const;
  static Vocab deserialize(std::string_view data);

  /// Binary snapshot payload (length-prefixed tokens in id order, specials
  /// included); from_view parses a section view with exactly one copy per
  /// token (into the id table).
  void to_snapshot(snapshot::ByteWriter& w) const;
  static Vocab from_view(std::string_view payload);

 private:
  std::unordered_map<std::string, TokenId> text_to_id_;
  std::vector<std::string> id_to_text_;
};

/// Splits a standardized code string into model tokens: lexer tokens plus
/// [NL] markers at line boundaries. Directives count as single tokens.
std::vector<std::string> code_to_tokens(const std::string& code);

/// Inverse of code_to_tokens: joins tokens with spaces, honoring [NL].
std::string tokens_to_code(const std::vector<std::string>& tokens);

/// Builds a vocabulary over a token stream corpus.
Vocab build_vocab(const std::vector<std::vector<std::string>>& sequences);

/// Encodes tokens to ids (unknown -> [UNK]).
std::vector<TokenId> encode(const Vocab& vocab,
                            const std::vector<std::string>& tokens);

/// Decodes ids to tokens, dropping [PAD]/[SOS]/[EOS].
std::vector<std::string> decode(const Vocab& vocab,
                                const std::vector<TokenId>& ids);

}  // namespace mpirical::tok
