#include "toklib/vocab.hpp"

#include "clex/lexer.hpp"
#include "snapshot/snapshot.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace mpirical::tok {

namespace {
const std::vector<std::string>& special_texts() {
  static const std::vector<std::string> specials = {
      "[PAD]", "[SOS]", "[EOS]", "[SEP]", "[UNK]", "[NL]"};
  return specials;
}
}  // namespace

Vocab::Vocab() {
  for (const auto& s : special_texts()) {
    text_to_id_.emplace(s, static_cast<TokenId>(id_to_text_.size()));
    id_to_text_.push_back(s);
  }
}

TokenId Vocab::add(const std::string& token) {
  auto it = text_to_id_.find(token);
  if (it != text_to_id_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(id_to_text_.size());
  text_to_id_.emplace(token, id);
  id_to_text_.push_back(token);
  return id;
}

TokenId Vocab::id_of(const std::string& token) const {
  auto it = text_to_id_.find(token);
  return it == text_to_id_.end() ? kUnk : it->second;
}

const std::string& Vocab::text_of(TokenId id) const {
  MR_CHECK(id >= 0 && static_cast<std::size_t>(id) < id_to_text_.size(),
           "token id out of range");
  return id_to_text_[static_cast<std::size_t>(id)];
}

bool Vocab::contains(const std::string& token) const {
  return text_to_id_.count(token) > 0;
}

std::string Vocab::serialize() const {
  std::string out;
  for (const auto& t : id_to_text_) {
    out += t;
    out += '\n';
  }
  return out;
}

Vocab Vocab::deserialize(std::string_view data) {
  Vocab vocab;
  const auto lines = split_lines(data);
  MR_CHECK(lines.size() >= special_texts().size(),
           "vocab data missing special tokens");
  for (std::size_t i = 0; i < special_texts().size(); ++i) {
    MR_CHECK(lines[i] == special_texts()[i],
             "vocab data has unexpected special token order");
  }
  for (std::size_t i = special_texts().size(); i < lines.size(); ++i) {
    vocab.add(lines[i]);
  }
  return vocab;
}

void Vocab::to_snapshot(snapshot::ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(id_to_text_.size()));
  for (const auto& t : id_to_text_) w.bytes(t);
}

Vocab Vocab::from_view(std::string_view payload) {
  snapshot::ByteReader r(payload);
  const std::uint32_t count = r.u32();
  MR_CHECK(count >= special_texts().size(),
           "vocab snapshot missing special tokens");
  // Each token costs at least its 4-byte length prefix, so a forged count
  // cannot out-allocate the payload.
  MR_CHECK(count <= payload.size() / 4, "vocab token count exceeds payload");
  Vocab vocab;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string_view token = r.bytes();
    if (i < special_texts().size()) {
      MR_CHECK(token == special_texts()[i],
               "vocab snapshot has unexpected special token order");
    } else {
      vocab.add(std::string(token));
    }
  }
  r.done();
  return vocab;
}

std::vector<std::string> code_to_tokens(const std::string& code) {
  std::vector<std::string> out;
  int last_line = 1;
  for (const auto& tok : lex::tokenize(code)) {
    if (tok.kind == lex::TokenKind::kEndOfFile) break;
    while (tok.line > last_line) {
      out.push_back("[NL]");
      ++last_line;
    }
    out.push_back(tok.text);
  }
  return out;
}

std::string tokens_to_code(const std::vector<std::string>& tokens) {
  std::string out;
  bool line_start = true;
  bool after_directive = false;  // next token must open a fresh line
  for (const auto& t : tokens) {
    if (t == "[NL]") {
      out += '\n';
      line_start = true;
      after_directive = false;
      continue;
    }
    // Directives are only lexable at line starts; model output can place
    // them anywhere, so force line boundaries around them without doubling
    // the newline a well-formed stream already carries.
    if (after_directive) {
      out += '\n';
      line_start = true;
      after_directive = false;
    }
    if (!t.empty() && t[0] == '#' && !line_start) {
      out += '\n';
      line_start = true;
    }
    if (!line_start) out += ' ';
    out += t;
    line_start = false;
    if (!t.empty() && t[0] == '#') after_directive = true;
  }
  if (!out.empty() && out.back() != '\n') out += '\n';
  return out;
}

Vocab build_vocab(const std::vector<std::vector<std::string>>& sequences) {
  Vocab vocab;
  for (const auto& seq : sequences) {
    for (const auto& t : seq) vocab.add(t);
  }
  return vocab;
}

std::vector<TokenId> encode(const Vocab& vocab,
                            const std::vector<std::string>& tokens) {
  std::vector<TokenId> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(vocab.id_of(t));
  return out;
}

std::vector<std::string> decode(const Vocab& vocab,
                                const std::vector<TokenId>& ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (TokenId id : ids) {
    if (id == kPad || id == kSos || id == kEos) continue;
    out.push_back(vocab.text_of(id));
  }
  return out;
}

}  // namespace mpirical::tok
