// End-to-end evaluation of MPI-RICAL on a dataset split -- produces every
// number Table II reports (M-*/MCC-* classification scores with one-line
// tolerance, BLEU, METEOR, ROUGE-L, exact-match ACC) plus per-example
// predictions for inspection.
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "corpus/dataset.hpp"
#include "metrics/metrics.hpp"

namespace mpirical::core {

struct EvalSummary {
  metrics::PrfCounts m_counts;    // all MPI functions (M-*)
  metrics::PrfCounts mcc_counts;  // Common Core only (MCC-*)
  double bleu = 0.0;
  double meteor = 0.0;
  double rouge_l = 0.0;
  double acc = 0.0;  // whole-sequence exact match rate
  std::size_t examples = 0;
};

struct ExamplePrediction {
  std::string predicted_code;
  std::vector<ast::CallSite> predicted_calls;
  bool parsed = false;
};

/// Translates every example in `split` (greedy when beam_width <= 1) and
/// aggregates the Table II metrics. Parallelizes across examples in-process;
/// with MPIRICAL_EVAL_SHARDS > 1 the decode waves are distributed across
/// shard workers instead (src/shard/eval.hpp) -- worker processes when a
/// self-exec binary is registered, loopback threads otherwise -- and the
/// merged summary is bit-identical to the unsharded run. `predictions`, when
/// non-null, is always populated in original split order.
EvalSummary evaluate_model(const MpiRical& model,
                           const std::vector<corpus::Example>& split,
                           int beam_width = 1, int line_tolerance = 1,
                           std::vector<ExamplePrediction>* predictions =
                               nullptr);

/// Scores one already-decoded prediction against its example (everything in
/// evaluate_one except the translation). Exposed so shard workers score
/// chunk results with the exact code path the unsharded loop uses.
EvalSummary score_example(const corpus::Example& ex,
                          const std::string& predicted_code,
                          int line_tolerance = 1,
                          ExamplePrediction* prediction = nullptr);

/// Reduces per-example summaries (each with examples == 1) in canonical
/// index order: integer counts sum exactly, sequence metrics sum then
/// normalize in a fixed order, so any evaluation that produces the same
/// per-example values merges to a bit-identical EvalSummary regardless of
/// completion order or shard count.
EvalSummary reduce_example_summaries(const std::vector<EvalSummary>& per_example);

/// Single-example scoring, exposed for tests and the Table III bench.
EvalSummary evaluate_one(const MpiRical& model, const corpus::Example& ex,
                         int beam_width = 1, int line_tolerance = 1,
                         ExamplePrediction* prediction = nullptr);

}  // namespace mpirical::core
