// End-to-end evaluation of MPI-RICAL on a dataset split -- produces every
// number Table II reports (M-*/MCC-* classification scores with one-line
// tolerance, BLEU, METEOR, ROUGE-L, exact-match ACC) plus per-example
// predictions for inspection.
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "corpus/dataset.hpp"
#include "metrics/metrics.hpp"

namespace mpirical::core {

struct EvalSummary {
  metrics::PrfCounts m_counts;    // all MPI functions (M-*)
  metrics::PrfCounts mcc_counts;  // Common Core only (MCC-*)
  double bleu = 0.0;
  double meteor = 0.0;
  double rouge_l = 0.0;
  double acc = 0.0;  // whole-sequence exact match rate
  std::size_t examples = 0;
};

struct ExamplePrediction {
  std::string predicted_code;
  std::vector<ast::CallSite> predicted_calls;
  bool parsed = false;
};

/// Translates every example in `split` (greedy when beam_width <= 1) and
/// aggregates the Table II metrics. Parallelizes across examples.
EvalSummary evaluate_model(const MpiRical& model,
                           const std::vector<corpus::Example>& split,
                           int beam_width = 1, int line_tolerance = 1,
                           std::vector<ExamplePrediction>* predictions =
                               nullptr);

/// Single-example scoring, exposed for tests and the Table III bench.
EvalSummary evaluate_one(const MpiRical& model, const corpus::Example& ex,
                         int beam_width = 1, int line_tolerance = 1,
                         ExamplePrediction* prediction = nullptr);

}  // namespace mpirical::core
