// Request-shaped translation: the serving-side sibling of
// MpiRical::translate_batch.
//
// translate_batch takes the whole workload up front and barriers per wave;
// TranslateStream is the entry the serve daemon drives instead -- requests
// are admitted whenever they arrive (submit) and each step() advances every
// live request by one token, returning the ones that finished. Because the
// decode engine underneath (nn::DecodeStream) is rowstable, a request's
// output is bitwise identical to what translate_batch would produce for the
// same input, no matter what else shares its waves or when it was admitted
// (tests/test_serve_equivalence.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "nn/infer.hpp"

namespace mpirical::core {

/// Not thread-safe: one thread owns a stream (the daemon's engine thread).
/// The model must outlive the stream.
class TranslateStream {
 public:
  using TicketId = nn::DecodeStream::TicketId;

  struct Finished {
    TicketId id = 0;
    std::string output_code;
  };

  /// `beam_width` applies to every request submitted without an explicit
  /// width (<= 0 in submit's per-request widths).
  explicit TranslateStream(const MpiRical& model, int beam_width = 1);

  /// Admits a group of requests (encoded through one padded batched encoder
  /// pass, like one translate_batch wave). `beam_widths`, when non-empty,
  /// gives a per-request width (values <= 0 fall back to the stream
  /// default). Returns one ticket per request, in request order.
  std::vector<TicketId> submit(
      const std::vector<MpiRical::TranslateRequest>& inputs,
      const std::vector<int>& beam_widths = {});

  /// Advances every live request by one token position; finished requests
  /// come back decoded to program text.
  std::vector<Finished> step();

  std::size_t live() const { return stream_.live(); }
  bool idle() const { return stream_.idle(); }

 private:
  const MpiRical* model_;
  int beam_width_;
  nn::DecodeStream stream_;
};

}  // namespace mpirical::core
