#include "core/model.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "cast/printer.hpp"
#include "cparse/parser.hpp"
#include "mpidb/catalog.hpp"
#include "nn/adam.hpp"
#include "nn/infer.hpp"
#include "shard/partition.hpp"
#include "snapshot/snapshot.hpp"
#include "support/check.hpp"
#include "support/io.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "tensor/tensor.hpp"
#include "xsbt/xsbt.hpp"

namespace mpirical::core {

using tensor::Tensor;

namespace {

/// Splits an X-SBT string into its tag tokens.
std::vector<std::string> xsbt_tokens_of(const std::string& xsbt) {
  std::vector<std::string> out;
  std::istringstream is(xsbt);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

}  // namespace

MpiRical MpiRical::create(const corpus::Dataset& dataset,
                          const ModelConfig& config) {
  MpiRical m;
  m.config_ = config;

  // Vocabulary: training-split code tokens (inputs and labels), X-SBT tags,
  // and every catalogued MPI routine name.
  for (const auto& ex : dataset.train) {
    for (const auto& t : tok::code_to_tokens(ex.input_code)) m.vocab_.add(t);
    for (const auto& t : tok::code_to_tokens(ex.label_code)) m.vocab_.add(t);
    for (const auto& t : xsbt_tokens_of(ex.input_xsbt)) m.vocab_.add(t);
  }
  for (const auto& routine : mpidb::all_routines()) m.vocab_.add(routine.name);

  nn::TransformerConfig tcfg;
  tcfg.vocab_size = static_cast<int>(m.vocab_.size());
  tcfg.d_model = config.d_model;
  tcfg.heads = config.heads;
  tcfg.ffn_dim = config.ffn_dim;
  tcfg.encoder_layers = config.encoder_layers;
  tcfg.decoder_layers = config.decoder_layers;
  tcfg.max_len = std::max(config.max_src_tokens, config.max_tgt_tokens) + 8;
  tcfg.dropout = config.dropout;

  Rng rng(config.seed);
  m.model_ = nn::Transformer(tcfg, rng);
  return m;
}

std::vector<tok::TokenId> MpiRical::encode_source(
    const std::string& input_code, const std::string& input_xsbt) const {
  std::vector<tok::TokenId> src =
      tok::encode(vocab_, tok::code_to_tokens(input_code));
  if (config_.use_xsbt) {
    src.push_back(tok::kSep);
    for (const auto& t : xsbt_tokens_of(input_xsbt)) {
      src.push_back(vocab_.id_of(t));
    }
  }
  if (static_cast<int>(src.size()) > config_.max_src_tokens) {
    src.resize(static_cast<std::size_t>(config_.max_src_tokens));
  }
  return src;
}

bool MpiRical::encode_example(const corpus::Example& ex, Encoded& out) const {
  out.src = encode_source(ex.input_code, ex.input_xsbt);
  out.tgt = tok::encode(vocab_, tok::code_to_tokens(ex.label_code));
  // +1 accounts for the [EOS] appended to the target.
  if (static_cast<int>(out.tgt.size()) + 1 > config_.max_tgt_tokens) {
    return false;
  }
  return !out.src.empty() && !out.tgt.empty();
}

namespace {

struct Batch {
  std::vector<int> src_ids;   // [B * src_len]
  std::vector<int> src_lens;  // valid lengths per element
  int src_len = 0;
  std::vector<int> tgt_in;    // [B * tgt_len] ([SOS] + tokens)
  std::vector<int> tgt_out;   // [B * tgt_len] (tokens + [EOS]), PAD elsewhere
  std::vector<int> tgt_lens;
  int tgt_len = 0;
  int batch = 0;
};

template <typename EncodedT>
Batch pack_batch(const std::vector<EncodedT>& examples,
                 const std::vector<std::size_t>& indices) {
  Batch b;
  b.batch = static_cast<int>(indices.size());
  for (std::size_t idx : indices) {
    b.src_len = std::max(b.src_len,
                         static_cast<int>(examples[idx].src.size()));
    b.tgt_len = std::max(b.tgt_len,
                         static_cast<int>(examples[idx].tgt.size()) + 1);
  }
  b.src_ids.assign(static_cast<std::size_t>(b.batch) * b.src_len, tok::kPad);
  b.tgt_in.assign(static_cast<std::size_t>(b.batch) * b.tgt_len, tok::kPad);
  b.tgt_out.assign(static_cast<std::size_t>(b.batch) * b.tgt_len, tok::kPad);
  for (std::size_t bi = 0; bi < indices.size(); ++bi) {
    const auto& ex = examples[indices[bi]];
    b.src_lens.push_back(static_cast<int>(ex.src.size()));
    b.tgt_lens.push_back(static_cast<int>(ex.tgt.size()) + 1);
    for (std::size_t i = 0; i < ex.src.size(); ++i) {
      b.src_ids[bi * b.src_len + i] = ex.src[i];
    }
    b.tgt_in[bi * b.tgt_len] = tok::kSos;
    for (std::size_t i = 0; i < ex.tgt.size(); ++i) {
      b.tgt_in[bi * b.tgt_len + i + 1] = ex.tgt[i];
      b.tgt_out[bi * b.tgt_len + i] = ex.tgt[i];
    }
    b.tgt_out[bi * b.tgt_len + ex.tgt.size()] = tok::kEos;
  }
  return b;
}

}  // namespace

double MpiRical::run_epoch(std::vector<Encoded>& encoded, nn::Adam& opt,
                           Rng& rng) {
  std::vector<std::size_t> order(encoded.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  double loss_sum = 0.0;
  std::size_t batches = 0;
  const std::size_t bs = static_cast<std::size_t>(config_.batch_size);
  for (std::size_t begin = 0; begin < order.size(); begin += bs) {
    const std::size_t end = std::min(order.size(), begin + bs);
    std::vector<std::size_t> indices(order.begin() + begin,
                                     order.begin() + end);
    Batch batch = pack_batch(encoded, indices);

    Tensor enc = model_.encode(batch.src_ids, batch.batch, batch.src_len,
                               batch.src_lens, /*training=*/true, rng);
    Tensor logits = model_.decode(enc, batch.tgt_in, batch.batch,
                                  batch.tgt_len, batch.tgt_lens, batch.src_len,
                                  batch.src_lens, /*training=*/true, rng);
    Tensor loss = tensor::cross_entropy(logits, batch.tgt_out, tok::kPad);
    loss.backward();
    opt.step();

    loss_sum += loss.item();
    ++batches;
  }
  // The Adam steps above mutated (and possibly repointed, via copy-on-write
  // materialization of snapshot-view tensors) every parameter: any packed
  // panels cached before this epoch are stale now. Decode never runs
  // mid-epoch, so this boundary is the one place invalidation is needed.
  model_.invalidate_pack_cache();
  return batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
}

std::pair<double, double> MpiRical::evaluate_split(
    const std::vector<corpus::Example>& split) const {
  std::vector<Encoded> encoded;
  for (const auto& ex : split) {
    Encoded e;
    if (encode_example(ex, e)) encoded.push_back(std::move(e));
  }
  if (encoded.empty()) return {0.0, 0.0};

  Rng rng(0);
  double loss_sum = 0.0;
  double acc_sum = 0.0;
  std::size_t batches = 0;
  const std::size_t bs = static_cast<std::size_t>(config_.batch_size);
  for (std::size_t begin = 0; begin < encoded.size(); begin += bs) {
    const std::size_t end = std::min(encoded.size(), begin + bs);
    std::vector<std::size_t> indices;
    for (std::size_t i = begin; i < end; ++i) indices.push_back(i);
    Batch batch = pack_batch(encoded, indices);
    Tensor enc = model_.encode(batch.src_ids, batch.batch, batch.src_len,
                               batch.src_lens, /*training=*/false, rng);
    Tensor logits = model_.decode(enc, batch.tgt_in, batch.batch,
                                  batch.tgt_len, batch.tgt_lens, batch.src_len,
                                  batch.src_lens, /*training=*/false, rng);
    Tensor loss = tensor::cross_entropy(logits, batch.tgt_out, tok::kPad);
    loss_sum += loss.item();
    acc_sum += tensor::accuracy(logits, batch.tgt_out, tok::kPad);
    ++batches;
  }
  const double denom = static_cast<double>(std::max<std::size_t>(batches, 1));
  return {loss_sum / denom, acc_sum / denom};
}

std::vector<EpochLog> MpiRical::train(
    const corpus::Dataset& dataset,
    const std::function<void(const EpochLog&)>& on_epoch) {
  std::vector<Encoded> encoded;
  encoded.reserve(dataset.train.size());
  for (const auto& ex : dataset.train) {
    Encoded e;
    if (encode_example(ex, e)) encoded.push_back(std::move(e));
  }
  MR_CHECK(!encoded.empty(), "no trainable examples after encoding");

  nn::AdamConfig acfg;
  acfg.lr = config_.lr;
  acfg.warmup_steps = config_.warmup_steps;
  nn::Adam opt(model_.parameters(), acfg);
  Rng rng(config_.seed ^ 0xABCDEF1234567890ULL);

  std::vector<EpochLog> logs;
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    Timer timer;
    EpochLog log;
    log.epoch = epoch;
    log.train_loss = run_epoch(encoded, opt, rng);
    const auto [val_loss, val_acc] = evaluate_split(dataset.val);
    log.val_loss = val_loss;
    log.val_token_accuracy = val_acc;
    log.seconds = timer.seconds();
    logs.push_back(log);
    if (on_epoch) on_epoch(log);
  }
  return logs;
}

std::string MpiRical::translate(const std::string& input_code,
                                const std::string& input_xsbt,
                                int beam_width) const {
  const std::vector<tok::TokenId> src = encode_source(input_code, input_xsbt);
  MR_CHECK(!src.empty(), "empty source after encoding");
  std::vector<int> ids;
  if (beam_width <= 1) {
    ids = nn::greedy_decode(model_, src, tok::kSos, tok::kEos,
                            config_.max_tgt_tokens);
  } else {
    ids = nn::beam_decode(model_, src, tok::kSos, tok::kEos,
                          config_.max_tgt_tokens, beam_width);
  }
  return tok::tokens_to_code(tok::decode(vocab_, ids));
}

std::vector<std::string> MpiRical::translate_batch(
    const std::vector<TranslateRequest>& inputs, int beam_width) const {
  // Wave size: 32 bounds KV-cache memory while giving the engine wide GEMM
  // rows. Deliberately NOT derived from the pool size: the grouping decides
  // how many rows each GEMM sees, which selects kernel paths and therefore
  // last-ULP rounding -- a fixed wave keeps decoded tokens identical across
  // machines. Tune per run with MPIRICAL_DECODE_WAVE (smaller waves = more
  // chunks for the parallel_for below on many-core boxes, at ULP risk only
  // for that run). shard::decode_wave_size is the single source of truth:
  // the sharded evaluator's chunk boundaries MUST be these wave boundaries
  // for its merge to be bit-identical to this loop.
  const std::size_t wave = shard::decode_wave_size();

  std::vector<std::string> out(inputs.size());
  // Waves are independent, so they decode concurrently across the pool
  // (each wave writes a disjoint slice of `out`); within a wave the batched
  // engine encodes every source through one padded batched encoder pass
  // (nn::encode_batch; MPIRICAL_ENCODE_BATCH=0 reverts to per-source
  // encoding) and shares GEMMs across every live hypothesis. With the wave
  // size fixed above, results do not depend on the pool size.
  const std::size_t chunks = (inputs.size() + wave - 1) / wave;
  parallel_for(
      0, chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * wave;
        const std::size_t hi = std::min(inputs.size(), lo + wave);
        // Wave-loop scratch reuse: a pool thread processes many waves, so
        // its request vector persists across them, and inside the engine
        // the padded encoder panels come from the same thread's
        // ScratchArena -- steady-state waves re-encode without allocating
        // any encoder scratch (tests/test_kernels.cpp stresses the
        // no-growth property; decode-side wave state is still per-call).
        thread_local std::vector<nn::DecodeRequest> reqs;
        reqs.resize(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          auto& req = reqs[i - lo];
          req.src_ids =
              encode_source(inputs[i].input_code, inputs[i].input_xsbt);
          MR_CHECK(!req.src_ids.empty(), "empty source after encoding");
          req.sos = tok::kSos;
          req.eos = tok::kEos;
          req.max_len = config_.max_tgt_tokens;
          req.beam_width = beam_width < 1 ? 1 : beam_width;
        }
        const auto decoded = nn::decode_batch(model_, reqs);
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] =
              tok::tokens_to_code(tok::decode(vocab_, decoded[i - lo].tokens));
        }
      },
      /*grain=*/1);
  return out;
}

std::vector<Suggestion> MpiRical::suggest(const std::string& serial_code,
                                          std::string* predicted_code,
                                          int beam_width) const {
  // Standardize the user's code and derive its X-SBT, as the training
  // pipeline does.
  ast::NodePtr tree = parse::parse_translation_unit(serial_code);
  const std::string standardized = ast::print_code(*tree);
  ast::NodePtr reparsed = parse::parse_translation_unit(standardized);
  const std::string xsbt = xsbt::xsbt_string(*reparsed);

  const std::string predicted = translate(standardized, xsbt, beam_width);
  if (predicted_code) *predicted_code = predicted;

  // Parse the prediction to extract MPI call sites. A malformed prediction
  // yields no suggestions rather than an error.
  try {
    ast::NodePtr pred_tree = parse::parse_translation_unit(predicted);
    return ast::collect_mpi_calls(*pred_tree);
  } catch (const Error&) {
    return {};
  }
}

// ---- persistence -------------------------------------------------------------

namespace {
void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint64_t get_u64(std::string_view in, std::size_t& pos) {
  MR_CHECK(pos + sizeof(std::uint64_t) <= in.size(), "checkpoint truncated");
  std::uint64_t v;
  std::memcpy(&v, in.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}

/// A corrupt checkpoint must fail loudly here, not as a giant allocation or
/// a downstream crash with garbage dimensions.
void validate_model_config(const ModelConfig& cfg) {
  MR_CHECK(cfg.d_model > 0 && cfg.d_model <= (1 << 16),
           "model config: d_model out of range");
  MR_CHECK(cfg.heads > 0 && cfg.heads <= 256 && cfg.d_model % cfg.heads == 0,
           "model config: heads out of range");
  MR_CHECK(cfg.ffn_dim > 0 && cfg.ffn_dim <= (1 << 20),
           "model config: ffn_dim out of range");
  MR_CHECK(cfg.encoder_layers >= 0 && cfg.encoder_layers <= 64 &&
               cfg.decoder_layers >= 0 && cfg.decoder_layers <= 64,
           "model config: layer count out of range");
  MR_CHECK(cfg.max_src_tokens > 0 && cfg.max_src_tokens <= (1 << 20) &&
               cfg.max_tgt_tokens > 0 && cfg.max_tgt_tokens <= (1 << 20),
           "model config: token limits out of range");
  MR_CHECK(cfg.dropout >= 0.0f && cfg.dropout <= 1.0f,
           "model config: dropout out of range");
}
}  // namespace

std::string MpiRical::serialize() const {
  std::string out;
  // Config: the legacy layout is the raw struct image, but copying config_
  // directly would leak indeterminate PADDING bytes into the checkpoint --
  // two identical models could serialize to different bytes. Assembling the
  // image field-by-field in a zeroed CHAR buffer (where, unlike in a struct
  // object, every byte is value representation the compiler must preserve)
  // pins the padding to zero, so byte-level comparisons of checkpoints are
  // meaningful.
  char cfg_image[sizeof(ModelConfig)] = {};
  auto put_field = [&cfg_image](std::size_t offset, const void* src,
                                std::size_t n) {
    std::memcpy(cfg_image + offset, src, n);
  };
#define MR_PUT_CFG(field) \
  put_field(offsetof(ModelConfig, field), &config_.field, \
            sizeof(config_.field))
  MR_PUT_CFG(d_model);
  MR_PUT_CFG(heads);
  MR_PUT_CFG(ffn_dim);
  MR_PUT_CFG(encoder_layers);
  MR_PUT_CFG(decoder_layers);
  MR_PUT_CFG(dropout);
  MR_PUT_CFG(max_src_tokens);
  MR_PUT_CFG(max_tgt_tokens);
  MR_PUT_CFG(use_xsbt);
  MR_PUT_CFG(batch_size);
  MR_PUT_CFG(epochs);
  MR_PUT_CFG(lr);
  MR_PUT_CFG(warmup_steps);
  MR_PUT_CFG(seed);
#undef MR_PUT_CFG
  out.append(cfg_image, sizeof(cfg_image));
  const std::string vocab_data = vocab_.serialize();
  put_u64(out, vocab_data.size());
  out += vocab_data;
  const std::string model_data = model_.serialize();
  put_u64(out, model_data.size());
  out += model_data;
  return out;
}

MpiRical MpiRical::deserialize(std::string_view data) {
  MpiRical m;
  std::size_t pos = 0;
  MR_CHECK(data.size() >= sizeof(ModelConfig), "checkpoint too small");
  std::memcpy(&m.config_, data.data(), sizeof(ModelConfig));
  pos += sizeof(ModelConfig);
  validate_model_config(m.config_);
  // Sections are parsed as string_view slices of the caller's buffer -- no
  // substr copies of multi-megabyte vocab/weight blobs.
  const std::uint64_t vocab_size = get_u64(data, pos);
  MR_CHECK(vocab_size <= data.size() - pos, "checkpoint truncated (vocab)");
  m.vocab_ = tok::Vocab::deserialize(data.substr(pos, vocab_size));
  pos += vocab_size;
  const std::uint64_t model_size = get_u64(data, pos);
  MR_CHECK(model_size <= data.size() - pos, "checkpoint truncated (model)");
  m.model_ = nn::Transformer::deserialize(data.substr(pos, model_size));
  pos += model_size;
  MR_CHECK(pos == data.size(), "trailing bytes in model checkpoint");
  return m;
}

// ---- snapshot format --------------------------------------------------------

void MpiRical::to_snapshot(snapshot::Builder& builder) const {
  to_snapshot(builder, snapshot::snapshot_int8_enabled());
}

void MpiRical::to_snapshot(snapshot::Builder& builder,
                           bool quantize_weights) const {
  {
    snapshot::ByteWriter w;
    w.i32(config_.d_model);
    w.i32(config_.heads);
    w.i32(config_.ffn_dim);
    w.i32(config_.encoder_layers);
    w.i32(config_.decoder_layers);
    w.f32(config_.dropout);
    w.i32(config_.max_src_tokens);
    w.i32(config_.max_tgt_tokens);
    w.u8(config_.use_xsbt ? 1 : 0);
    w.i32(config_.batch_size);
    w.i32(config_.epochs);
    w.f32(config_.lr);
    w.i32(config_.warmup_steps);
    w.u64(config_.seed);
    builder.add(snapshot::SectionKind::kModelConfig, "model_config",
                w.take());
  }
  {
    snapshot::ByteWriter w;
    vocab_.to_snapshot(w);
    builder.add(snapshot::SectionKind::kVocab, "vocab", w.take());
  }
  model_.to_snapshot(builder, quantize_weights);
}

std::string MpiRical::serialize_snapshot() const {
  return serialize_snapshot(snapshot::snapshot_int8_enabled());
}

std::string MpiRical::serialize_snapshot(bool quantize_weights) const {
  snapshot::Builder builder;
  to_snapshot(builder, quantize_weights);
  return builder.finish();
}

MpiRical MpiRical::from_snapshot(
    const std::shared_ptr<const snapshot::Snapshot>& snap) {
  MR_CHECK(snap != nullptr, "null snapshot");
  MpiRical m;
  {
    snapshot::ByteReader r(
        snap->require(snapshot::SectionKind::kModelConfig, "model_config")
            .payload);
    m.config_.d_model = r.i32();
    m.config_.heads = r.i32();
    m.config_.ffn_dim = r.i32();
    m.config_.encoder_layers = r.i32();
    m.config_.decoder_layers = r.i32();
    m.config_.dropout = r.f32();
    m.config_.max_src_tokens = r.i32();
    m.config_.max_tgt_tokens = r.i32();
    m.config_.use_xsbt = r.u8() != 0;
    m.config_.batch_size = r.i32();
    m.config_.epochs = r.i32();
    m.config_.lr = r.f32();
    m.config_.warmup_steps = r.i32();
    m.config_.seed = r.u64();
    r.done();
  }
  validate_model_config(m.config_);
  m.vocab_ = tok::Vocab::from_view(
      snap->require(snapshot::SectionKind::kVocab, "vocab").payload);
  m.model_ = nn::Transformer::from_view(*snap, snapshot::owner_of(snap));
  MR_CHECK(static_cast<std::size_t>(m.model_.config().vocab_size) ==
               m.vocab_.size(),
           "snapshot vocab size does not match the transformer");
  return m;
}

void MpiRical::save(const std::string& path) const {
  if (snapshot::snapshot_enabled()) {
    io::write_file(path, serialize_snapshot());
  } else {
    io::write_file(path, serialize());
  }
}

MpiRical MpiRical::load(const std::string& path) {
  if (snapshot::has_snapshot_magic(io::read_prefix(path, 4))) {
    return from_snapshot(snapshot::Snapshot::map_file(path));
  }
  return deserialize(io::read_file(path));
}

}  // namespace mpirical::core
