// Token alignment between an input (MPI-free) program and its label (full
// MPI) program.
//
// Because removal only deletes whole statements/initializers, the input token
// stream is a subsequence of the label token stream. An LCS alignment
// recovers where the removed chunks sit relative to the surviving code; this
// gives each removed MPI call an "insertion slot": the input line after which
// it belongs. The slot view is the paper's classification framing of the
// task (RQ2: given a location, does an MPI call go here, and which one --
// RQ1), and is what the Tagger baseline trains on.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cast/node.hpp"
#include "corpus/dataset.hpp"

namespace mpirical::core {

struct SlotLabels {
  int num_input_lines = 0;
  // slot k (0-based line count; k = after input line k, 0 = before line 1)
  // -> ordered list of MPI functions inserted there.
  std::map<int, std::vector<std::string>> inserts;
};

/// Derives insertion slots for an example by LCS-aligning input and label
/// token streams and dropping each ground-truth call into the slot where its
/// label line begins.
SlotLabels compute_insertion_slots(const corpus::Example& example);

/// Reconstructs label-coordinate call sites from slot predictions by
/// replaying the insertions: a call inserted after input line k lands at
/// label line k + (lines inserted so far) + 1.
std::vector<ast::CallSite> slots_to_call_sites(
    const std::map<int, std::vector<std::string>>& inserts);

}  // namespace mpirical::core
