// MPI-RICAL: the paper's primary contribution.
//
// A sequence-to-sequence "translation" model: the encoder reads the MPI-free
// program followed by [SEP] and its X-SBT linearization; the decoder emits
// the full MPI program (same code with MPI calls inserted at the right
// lines). Suggestions -- (function, line) pairs -- are extracted from the
// decoded program by parsing it and collecting MPI call sites.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cast/node.hpp"
#include "corpus/dataset.hpp"
#include "nn/adam.hpp"
#include "nn/transformer.hpp"
#include "toklib/vocab.hpp"

namespace mpirical::snapshot {
class Builder;
class Snapshot;
}

namespace mpirical::core {

struct ModelConfig {
  int d_model = 96;
  int heads = 4;
  int ffn_dim = 192;
  int encoder_layers = 2;
  int decoder_layers = 2;
  float dropout = 0.05f;

  int max_src_tokens = 288;  // code [SEP] X-SBT (X-SBT truncated to fit)
  int max_tgt_tokens = 256;
  bool use_xsbt = true;      // ablation switch (bench_ablation_xsbt)

  int batch_size = 16;
  int epochs = 5;
  float lr = 1e-3f;
  int warmup_steps = 60;
  std::uint64_t seed = 1234;
};

/// One (function, line) recommendation in label-code coordinates.
using Suggestion = ast::CallSite;

struct EpochLog {
  int epoch = 0;
  double train_loss = 0.0;
  double val_loss = 0.0;
  double val_token_accuracy = 0.0;
  double seconds = 0.0;
};

class MpiRical {
 public:
  MpiRical() = default;

  /// Builds the vocabulary over the training split (plus the MPI catalog so
  /// every routine name is representable) and initializes the transformer.
  static MpiRical create(const corpus::Dataset& dataset,
                         const ModelConfig& config);

  /// Trains on dataset.train, evaluating dataset.val each epoch.
  /// `on_epoch` (optional) observes progress.
  std::vector<EpochLog> train(
      const corpus::Dataset& dataset,
      const std::function<void(const EpochLog&)>& on_epoch = nullptr);

  /// Translates an MPI-free program into a predicted MPI program.
  /// `beam_width` 1 = greedy.
  std::string translate(const std::string& input_code,
                        const std::string& input_xsbt,
                        int beam_width = 1) const;

  /// One source program for translate_batch.
  struct TranslateRequest {
    std::string input_code;
    std::string input_xsbt;
  };

  /// Translates many programs at once through the batched decode engine:
  /// each wave's sources encode in ONE padded batched encoder pass
  /// (nn::encode_batch -- MPIRICAL_ENCODE_BATCH=0 reverts to the per-source
  /// oracle path), then every live hypothesis of every request advances
  /// through shared GEMM waves (nn::decode_batch), in chunks of
  /// MPIRICAL_DECODE_WAVE requests (default 32) to bound KV-cache memory.
  /// Output order matches input.
  std::vector<std::string> translate_batch(
      const std::vector<TranslateRequest>& inputs, int beam_width = 1) const;

  /// End-to-end assistance: standardizes `serial_code`, derives its X-SBT,
  /// translates, and extracts MPI call suggestions. Also returns the
  /// predicted program via `predicted_code` when non-null.
  std::vector<Suggestion> suggest(const std::string& serial_code,
                                  std::string* predicted_code = nullptr,
                                  int beam_width = 1) const;

  /// Teacher-forced validation loss/accuracy on a split (no dropout).
  std::pair<double, double> evaluate_split(
      const std::vector<corpus::Example>& split) const;

  const tok::Vocab& vocab() const { return vocab_; }
  const nn::Transformer& transformer() const { return model_; }
  const ModelConfig& config() const { return config_; }

  /// Legacy checkpoint I/O (config + vocab + weights, sequentially packed).
  /// Kept as the differential oracle for the snapshot format.
  std::string serialize() const;
  static MpiRical deserialize(std::string_view data);

  /// Snapshot-format checkpoint: the model's sections appended to `builder`
  /// (model_config + vocab + transformer_config + tensor_index + one
  /// aligned raw-float section per parameter). The single-argument form
  /// consults MPIRICAL_SNAPSHOT_INT8; pass `quantize_weights` explicitly to
  /// force int8 weight sections (scales + int8 payload, ~4x smaller) or
  /// plain f32 ones. Readers handle both kinds transparently.
  void to_snapshot(snapshot::Builder& builder) const;
  void to_snapshot(snapshot::Builder& builder, bool quantize_weights) const;
  /// A complete single-model snapshot file image.
  std::string serialize_snapshot() const;
  std::string serialize_snapshot(bool quantize_weights) const;
  /// Rebuilds a model over an opened snapshot; transformer weights are
  /// zero-copy views pinned to the snapshot's backing mapping.
  static MpiRical from_snapshot(
      const std::shared_ptr<const snapshot::Snapshot>& snap);

  /// save() writes the snapshot format unless MPIRICAL_SNAPSHOT=0 (legacy
  /// text checkpoint). load() auto-detects the format by magic: snapshot
  /// files are mmap'd (weights stay views into the mapping), anything else
  /// takes the legacy parse path.
  void save(const std::string& path) const;
  static MpiRical load(const std::string& path);

  /// Builds the encoder token-id sequence for an example (exposed for the
  /// tagger and tests): code tokens, [SEP], X-SBT tokens, truncated to
  /// max_src_tokens.
  std::vector<tok::TokenId> encode_source(const std::string& input_code,
                                          const std::string& input_xsbt) const;

 private:
  struct Encoded {
    std::vector<tok::TokenId> src;
    std::vector<tok::TokenId> tgt;  // label tokens, no [SOS]/[EOS]
  };

  bool encode_example(const corpus::Example& ex, Encoded& out) const;
  double run_epoch(std::vector<Encoded>& encoded, nn::Adam& opt, Rng& rng);

  ModelConfig config_;
  tok::Vocab vocab_;
  nn::Transformer model_;
};

}  // namespace mpirical::core
