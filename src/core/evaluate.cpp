#include "core/evaluate.hpp"

#include "cparse/parser.hpp"
#include "mpidb/catalog.hpp"
#include "nn/packed_model.hpp"
#include "obs/recorder.hpp"
#include "shard/eval.hpp"
#include "support/thread_pool.hpp"
#include "toklib/vocab.hpp"

namespace mpirical::core {

EvalSummary score_example(const corpus::Example& ex,
                          const std::string& predicted_code,
                          int line_tolerance, ExamplePrediction* prediction) {
  EvalSummary summary;
  summary.examples = 1;

  ExamplePrediction pred;
  pred.predicted_code = predicted_code;
  try {
    const auto tree = parse::parse_translation_unit(predicted_code);
    pred.predicted_calls = ast::collect_mpi_calls(*tree);
    pred.parsed = true;
  } catch (const Error&) {
    pred.parsed = false;  // unparseable prediction scores zero matches
  }

  summary.m_counts = metrics::match_call_sites(pred.predicted_calls,
                                               ex.ground_truth,
                                               line_tolerance);
  summary.mcc_counts = metrics::match_call_sites_filtered(
      pred.predicted_calls, ex.ground_truth, line_tolerance,
      [](const std::string& f) { return mpidb::is_common_core(f); });

  const auto cand = tok::code_to_tokens(predicted_code);
  const auto ref = tok::code_to_tokens(ex.label_code);
  summary.bleu = metrics::bleu(cand, ref);
  summary.meteor = metrics::meteor(cand, ref);
  summary.rouge_l = metrics::rouge_l(cand, ref);
  summary.acc = metrics::exact_match(cand, ref) ? 1.0 : 0.0;

  if (prediction) *prediction = std::move(pred);
  return summary;
}

EvalSummary reduce_example_summaries(
    const std::vector<EvalSummary>& per_example) {
  EvalSummary total;
  for (const auto& one : per_example) {
    total.m_counts += one.m_counts;
    total.mcc_counts += one.mcc_counts;
    total.bleu += one.bleu;
    total.meteor += one.meteor;
    total.rouge_l += one.rouge_l;
    total.acc += one.acc;
    total.examples += one.examples;
  }
  if (total.examples > 0) {
    const double n = static_cast<double>(total.examples);
    total.bleu /= n;
    total.meteor /= n;
    total.rouge_l /= n;
    total.acc /= n;
  }
  return total;
}

EvalSummary evaluate_one(const MpiRical& model, const corpus::Example& ex,
                         int beam_width, int line_tolerance,
                         ExamplePrediction* prediction) {
  const std::string predicted =
      model.translate(ex.input_code, ex.input_xsbt, beam_width);
  return score_example(ex, predicted, line_tolerance, prediction);
}

EvalSummary evaluate_model(const MpiRical& model,
                           const std::vector<corpus::Example>& split,
                           int beam_width, int line_tolerance,
                           std::vector<ExamplePrediction>* predictions) {
  const std::size_t shards = shard::env_shards();
  if (shards > 1) {
    shard::ShardOptions options;
    options.shards = shards;
    options.beam_width = beam_width;
    options.line_tolerance = line_tolerance;
    return shard::evaluate_sharded(model, split, options, predictions);
  }

  if (predictions) predictions->assign(split.size(), {});

  // Decode every example through the batched engine first: each wave
  // encodes its sources in one padded batched encoder pass and all live
  // hypotheses share GEMM waves (the GEMMs themselves parallelize over the
  // pool). A pool thread's waves reuse one ScratchArena for the padded
  // panels instead of reallocating them per wave. The decoded programs are
  // then scored in parallel into per-example slots and reduced in canonical
  // example order (the same reduction the sharded merge uses, so sharded
  // runs are bit-identical to this one).
  std::vector<MpiRical::TranslateRequest> inputs(split.size());
  for (std::size_t i = 0; i < split.size(); ++i) {
    inputs[i] = {split[i].input_code, split[i].input_xsbt};
  }
  // Pack every weight panel once up front (no-op when MPIRICAL_PACK_CACHE=0
  // or the cache is already warm): the pool threads' concurrent waves then
  // share the warmed PackedModel instead of racing its lazy packs inside the
  // timed decode phase.
  nn::PackedModel::warm_cache(model.transformer());
  std::vector<std::string> decoded;
  {
    obs::ScopedPhase decode_phase("eval/decode");
    decoded = model.translate_batch(inputs, beam_width);
  }

  std::vector<EvalSummary> per_example(split.size());
  {
    obs::ScopedPhase score_phase("eval/score");
    parallel_for(
        0, split.size(),
        [&](std::size_t i) {
          ExamplePrediction pred;
          per_example[i] =
              score_example(split[i], decoded[i], line_tolerance, &pred);
          if (predictions) (*predictions)[i] = std::move(pred);
        },
        /*grain=*/1);
  }

  return reduce_example_summaries(per_example);
}

}  // namespace mpirical::core
