#include "core/align.hpp"

#include "support/check.hpp"
#include "toklib/vocab.hpp"

namespace mpirical::core {

namespace {

/// LCS match flags for `label` against `input`: out[j] = true when label
/// token j is matched to an input token (in an LCS of the two streams).
std::vector<bool> lcs_match_flags(const std::vector<std::string>& input,
                                  const std::vector<std::string>& label) {
  const std::size_t n = input.size();
  const std::size_t m = label.size();
  // DP table; sizes here are a few hundred tokens, so O(n*m) is fine.
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1, 0));
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (input[i - 1] == label[j - 1]) {
        dp[i][j] = dp[i - 1][j - 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i - 1][j], dp[i][j - 1]);
      }
    }
  }
  std::vector<bool> matched(m, false);
  std::size_t i = n;
  std::size_t j = m;
  while (i > 0 && j > 0) {
    if (input[i - 1] == label[j - 1] &&
        dp[i][j] == dp[i - 1][j - 1] + 1) {
      matched[j - 1] = true;
      --i;
      --j;
    } else if (dp[i - 1][j] >= dp[i][j - 1]) {
      --i;
    } else {
      --j;
    }
  }
  return matched;
}

}  // namespace

SlotLabels compute_insertion_slots(const corpus::Example& example) {
  const auto input_tokens = tok::code_to_tokens(example.input_code);
  const auto label_tokens = tok::code_to_tokens(example.label_code);
  const auto matched = lcs_match_flags(input_tokens, label_tokens);

  SlotLabels out;
  for (const auto& t : input_tokens) {
    if (t == "[NL]") ++out.num_input_lines;
  }
  // The token stream has no trailing [NL] for the final line.
  ++out.num_input_lines;

  // For each label line, the slot where it begins = number of *matched*
  // input [NL] tokens seen before that line's first token.
  std::vector<int> slot_of_label_line;  // 1-based label line -> slot
  slot_of_label_line.push_back(0);      // line 0 unused
  int matched_nl = 0;
  int label_line = 1;
  slot_of_label_line.push_back(matched_nl);  // line 1 starts at slot 0
  for (std::size_t j = 0; j < label_tokens.size(); ++j) {
    if (label_tokens[j] == "[NL]") {
      if (matched[j]) ++matched_nl;
      ++label_line;
      slot_of_label_line.push_back(matched_nl);
    }
  }
  (void)label_line;

  for (const auto& call : example.ground_truth) {
    const std::size_t line = static_cast<std::size_t>(call.line);
    MR_CHECK(line >= 1 && line < slot_of_label_line.size(),
             "ground-truth call line out of range");
    out.inserts[slot_of_label_line[line]].push_back(call.callee);
  }
  return out;
}

std::vector<ast::CallSite> slots_to_call_sites(
    const std::map<int, std::vector<std::string>>& inserts) {
  std::vector<ast::CallSite> out;
  int shift = 0;
  for (const auto& [slot, functions] : inserts) {
    for (std::size_t i = 0; i < functions.size(); ++i) {
      ast::CallSite site;
      site.callee = functions[i];
      site.line = slot + shift + static_cast<int>(i) + 1;
      out.push_back(site);
    }
    shift += static_cast<int>(functions.size());
  }
  return out;
}

}  // namespace mpirical::core
