// Encoder-only tagger baseline: the paper's *classification* framing made
// literal.
//
// The paper trains MPI-RICAL as translation but evaluates it as two
// classification problems (RQ1: which MPI function; RQ2: does one go at this
// location). The Tagger implements that framing directly: a transformer
// encoder reads the MPI-free program, and a linear head over each line
// boundary ([NL] token) predicts which (possibly compound) run of MPI calls
// is inserted after that line -- or none. bench_ablation_framing compares
// the two engines.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cast/node.hpp"
#include "corpus/dataset.hpp"
#include "nn/linear.hpp"
#include "nn/transformer.hpp"
#include "toklib/vocab.hpp"

namespace mpirical::core {

struct TaggerConfig {
  int d_model = 96;
  int heads = 4;
  int ffn_dim = 192;
  int encoder_layers = 2;
  float dropout = 0.05f;
  int max_src_tokens = 288;
  bool use_xsbt = false;  // code-only by default; slots index code lines
  int batch_size = 16;
  int epochs = 5;
  float lr = 2e-3f;
  int warmup_steps = 30;
  std::uint64_t seed = 4321;
};

struct TaggerEpochLog {
  int epoch = 0;
  double train_loss = 0.0;
  double val_loss = 0.0;
  double val_slot_accuracy = 0.0;
  double seconds = 0.0;
};

class Tagger {
 public:
  Tagger() = default;

  static Tagger create(const corpus::Dataset& dataset,
                       const TaggerConfig& config);

  std::vector<TaggerEpochLog> train(
      const corpus::Dataset& dataset,
      const std::function<void(const TaggerEpochLog&)>& on_epoch = nullptr);

  /// Predicts call sites (label-code coordinates) for an MPI-free program.
  std::vector<ast::CallSite> predict(const std::string& input_code) const;

  std::size_t label_count() const { return labels_.size(); }
  const TaggerConfig& config() const { return config_; }

 private:
  struct Encoded {
    std::vector<tok::TokenId> src;
    std::vector<int> slot_positions;  // token index of each [NL]
    std::vector<int> slot_labels;     // label id per slot
  };

  bool encode_example(const corpus::Example& ex, Encoded& out,
                      bool with_labels) const;
  int label_id(const std::string& compound) const;

  TaggerConfig config_;
  tok::Vocab vocab_;
  std::vector<std::string> labels_;  // id -> "none" or "MPI_A+MPI_B"
  std::unordered_map<std::string, int> label_ids_;
  nn::Transformer encoder_;  // decoder_layers == 0
  nn::Linear head_;
};

}  // namespace mpirical::core
