#include "core/stream.hpp"

#include "nn/packed_model.hpp"
#include "support/check.hpp"
#include "toklib/vocab.hpp"

namespace mpirical::core {

namespace {

// Warm the shared packed-weight cache before the DecodeStream resolves its
// panels: the serve engine constructs one TranslateStream per daemon, so
// packing everything here keeps the first admitted wave's steps pack-free.
const nn::Transformer& warmed(const nn::Transformer& model) {
  nn::PackedModel::warm_cache(model);
  return model;
}

}  // namespace

TranslateStream::TranslateStream(const MpiRical& model, int beam_width)
    : model_(&model),
      beam_width_(beam_width < 1 ? 1 : beam_width),
      stream_(warmed(model.transformer())) {}

std::vector<TranslateStream::TicketId> TranslateStream::submit(
    const std::vector<MpiRical::TranslateRequest>& inputs,
    const std::vector<int>& beam_widths) {
  MR_CHECK(beam_widths.empty() || beam_widths.size() == inputs.size(),
           "per-request beam widths must match the input count");
  std::vector<nn::DecodeRequest> reqs(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto& req = reqs[i];
    req.src_ids =
        model_->encode_source(inputs[i].input_code, inputs[i].input_xsbt);
    MR_CHECK(!req.src_ids.empty(), "empty source after encoding");
    req.sos = tok::kSos;
    req.eos = tok::kEos;
    req.max_len = model_->config().max_tgt_tokens;
    const int width = beam_widths.empty() ? beam_width_ : beam_widths[i];
    req.beam_width = width < 1 ? beam_width_ : width;
  }
  return stream_.submit(reqs);
}

std::vector<TranslateStream::Finished> TranslateStream::step() {
  std::vector<Finished> out;
  for (auto& fin : stream_.step()) {
    Finished f;
    f.id = fin.id;
    f.output_code =
        tok::tokens_to_code(tok::decode(model_->vocab(), fin.result.tokens));
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace mpirical::core
