// "World" snapshots: one mmap-able file holding everything an eval worker
// (or a bench run) needs -- the trained MpiRical plus materialized corpus
// splits -- so worker startup is an mmap + pointer fixups instead of
// rebuilding the corpus from environment knobs and re-parsing a text
// checkpoint (PR 4's dominant spawn cost).
//
// Two shapes share the container:
//  - an EVAL snapshot ("eval" split only): what the shard driver writes to a
//    temp file and ships to workers by path-over-pipe;
//  - a DATASET snapshot (train/val/test + pipeline accounting): what the
//    benches cache at MPIRICAL_SNAPSHOT_PATH so CI can train once, upload
//    the artifact, and re-run everything downstream from the file.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "corpus/dataset.hpp"
#include "snapshot/snapshot.hpp"

namespace mpirical::core {

/// A loaded world snapshot. `snap` pins the mapping the model's weights
/// view into (the tensors also hold it; this handle is for callers that
/// want explicit lifetime). Absent splits are empty.
struct World {
  MpiRical model;
  corpus::Dataset dataset;             // dataset-shape snapshots
  std::vector<corpus::Example> eval;   // eval-shape snapshots
  bool has_dataset = false;
  bool has_eval = false;
  std::shared_ptr<const snapshot::Snapshot> snap;
};

/// Model + one materialized eval split (the shard-worker shape).
std::string build_eval_snapshot(const MpiRical& model,
                                const std::vector<corpus::Example>& split);
void write_eval_snapshot(const std::string& path, const MpiRical& model,
                         const std::vector<corpus::Example>& split);

/// Model + full dataset splits and accounting (the bench-cache shape).
std::string build_dataset_snapshot(const MpiRical& model,
                                   const corpus::Dataset& dataset);
void write_dataset_snapshot(const std::string& path, const MpiRical& model,
                            const corpus::Dataset& dataset);

/// mmaps and validates `path`, rebuilding the model (zero-copy weights) and
/// whichever splits the file carries.
World load_world_snapshot(const std::string& path);

}  // namespace mpirical::core
