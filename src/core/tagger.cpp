#include "core/tagger.hpp"

#include <algorithm>

#include "core/align.hpp"
#include "nn/adam.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "tensor/tensor.hpp"

namespace mpirical::core {

using tensor::Tensor;

namespace {
constexpr int kNoneLabel = 0;
}

Tagger Tagger::create(const corpus::Dataset& dataset,
                      const TaggerConfig& config) {
  Tagger t;
  t.config_ = config;

  // Token vocabulary over training inputs.
  for (const auto& ex : dataset.train) {
    for (const auto& tk : tok::code_to_tokens(ex.input_code)) t.vocab_.add(tk);
  }

  // Label vocabulary: compound insertion strings seen in training.
  t.labels_.push_back("none");
  t.label_ids_.emplace("none", kNoneLabel);
  for (const auto& ex : dataset.train) {
    const SlotLabels slots = compute_insertion_slots(ex);
    for (const auto& [slot, functions] : slots.inserts) {
      (void)slot;
      const std::string compound = join(functions, "+");
      if (!t.label_ids_.count(compound)) {
        t.label_ids_.emplace(compound, static_cast<int>(t.labels_.size()));
        t.labels_.push_back(compound);
      }
    }
  }

  nn::TransformerConfig tcfg;
  tcfg.vocab_size = static_cast<int>(t.vocab_.size());
  tcfg.d_model = config.d_model;
  tcfg.heads = config.heads;
  tcfg.ffn_dim = config.ffn_dim;
  tcfg.encoder_layers = config.encoder_layers;
  tcfg.decoder_layers = 0;
  tcfg.max_len = config.max_src_tokens + 8;
  tcfg.dropout = config.dropout;

  Rng rng(config.seed);
  t.encoder_ = nn::Transformer(tcfg, rng);
  t.head_ = nn::Linear(config.d_model, static_cast<int>(t.labels_.size()),
                       rng);
  return t;
}

int Tagger::label_id(const std::string& compound) const {
  auto it = label_ids_.find(compound);
  return it == label_ids_.end() ? kNoneLabel : it->second;
}

bool Tagger::encode_example(const corpus::Example& ex, Encoded& out,
                            bool with_labels) const {
  const auto tokens = tok::code_to_tokens(ex.input_code);
  out.src = tok::encode(vocab_, tokens);
  if (static_cast<int>(out.src.size()) > config_.max_src_tokens) return false;

  out.slot_positions.clear();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] == "[NL]") {
      out.slot_positions.push_back(static_cast<int>(i));
    }
  }
  if (out.slot_positions.empty()) return false;

  if (with_labels) {
    const SlotLabels slots = compute_insertion_slots(ex);
    out.slot_labels.assign(out.slot_positions.size(), kNoneLabel);
    for (const auto& [slot, functions] : slots.inserts) {
      // Slot k = after line k = the k-th [NL] (1-based); slot 0 (before the
      // first line) cannot be represented and does not occur in the corpus.
      if (slot >= 1 && slot <= static_cast<int>(out.slot_positions.size())) {
        out.slot_labels[static_cast<std::size_t>(slot - 1)] =
            label_id(join(functions, "+"));
      }
    }
  }
  return true;
}

std::vector<TaggerEpochLog> Tagger::train(
    const corpus::Dataset& dataset,
    const std::function<void(const TaggerEpochLog&)>& on_epoch) {
  std::vector<Encoded> train_set;
  for (const auto& ex : dataset.train) {
    Encoded e;
    if (encode_example(ex, e, /*with_labels=*/true)) {
      train_set.push_back(std::move(e));
    }
  }
  std::vector<Encoded> val_set;
  for (const auto& ex : dataset.val) {
    Encoded e;
    if (encode_example(ex, e, /*with_labels=*/true)) {
      val_set.push_back(std::move(e));
    }
  }
  MR_CHECK(!train_set.empty(), "no trainable tagger examples");

  std::vector<Tensor> params = encoder_.parameters();
  params.push_back(head_.w);
  params.push_back(head_.b);
  nn::AdamConfig acfg;
  acfg.lr = config_.lr;
  acfg.warmup_steps = config_.warmup_steps;
  nn::Adam opt(params, acfg);
  Rng rng(config_.seed ^ 0x1234567890ABCDEFULL);

  auto run_batch = [&](const std::vector<Encoded>& set,
                       const std::vector<std::size_t>& indices, bool training,
                       double* acc_out) {
    int src_len = 0;
    for (std::size_t idx : indices) {
      src_len = std::max(src_len, static_cast<int>(set[idx].src.size()));
    }
    const int batch = static_cast<int>(indices.size());
    std::vector<int> src_ids(static_cast<std::size_t>(batch) * src_len,
                             tok::kPad);
    std::vector<int> src_lens;
    std::vector<int> gather;  // global row indices of slots
    std::vector<int> targets;
    for (std::size_t bi = 0; bi < indices.size(); ++bi) {
      const auto& ex = set[indices[bi]];
      src_lens.push_back(static_cast<int>(ex.src.size()));
      for (std::size_t i = 0; i < ex.src.size(); ++i) {
        src_ids[bi * src_len + i] = ex.src[i];
      }
      for (std::size_t s = 0; s < ex.slot_positions.size(); ++s) {
        gather.push_back(static_cast<int>(bi) * src_len +
                         ex.slot_positions[s]);
        targets.push_back(ex.slot_labels[s]);
      }
    }
    Tensor enc = encoder_.encode(src_ids, batch, src_len, src_lens, training,
                                 rng);
    Tensor rows = tensor::embedding(gather, enc);
    Tensor logits = head_.forward(rows);
    Tensor loss = tensor::cross_entropy(logits, targets, /*ignore=*/-1);
    if (acc_out) *acc_out = tensor::accuracy(logits, targets, -1);
    return loss;
  };

  std::vector<TaggerEpochLog> logs;
  const std::size_t bs = static_cast<std::size_t>(config_.batch_size);
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    Timer timer;
    std::vector<std::size_t> order(train_set.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);

    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < order.size(); begin += bs) {
      const std::size_t end = std::min(order.size(), begin + bs);
      std::vector<std::size_t> indices(order.begin() + begin,
                                       order.begin() + end);
      Tensor loss = run_batch(train_set, indices, /*training=*/true, nullptr);
      loss.backward();
      opt.step();
      loss_sum += loss.item();
      ++batches;
    }

    TaggerEpochLog log;
    log.epoch = epoch;
    log.train_loss =
        batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
    // Validation.
    double val_loss = 0.0;
    double val_acc = 0.0;
    std::size_t val_batches = 0;
    for (std::size_t begin = 0; begin < val_set.size(); begin += bs) {
      const std::size_t end = std::min(val_set.size(), begin + bs);
      std::vector<std::size_t> indices;
      for (std::size_t i = begin; i < end; ++i) indices.push_back(i);
      double acc = 0.0;
      Tensor loss = run_batch(val_set, indices, /*training=*/false, &acc);
      val_loss += loss.item();
      val_acc += acc;
      ++val_batches;
    }
    if (val_batches > 0) {
      log.val_loss = val_loss / static_cast<double>(val_batches);
      log.val_slot_accuracy = val_acc / static_cast<double>(val_batches);
    }
    log.seconds = timer.seconds();
    logs.push_back(log);
    if (on_epoch) on_epoch(log);
  }
  return logs;
}

std::vector<ast::CallSite> Tagger::predict(
    const std::string& input_code) const {
  const auto tokens = tok::code_to_tokens(input_code);
  std::vector<tok::TokenId> src = tok::encode(vocab_, tokens);
  if (static_cast<int>(src.size()) > config_.max_src_tokens) {
    src.resize(static_cast<std::size_t>(config_.max_src_tokens));
  }
  std::vector<int> slot_positions;
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (tokens[i] == "[NL]") slot_positions.push_back(static_cast<int>(i));
  }
  if (slot_positions.empty()) return {};

  Rng rng(0);
  const std::vector<int> lens = {static_cast<int>(src.size())};
  std::vector<int> ids(src.begin(), src.end());
  Tensor enc = encoder_.encode(ids, 1, static_cast<int>(src.size()), lens,
                               /*training=*/false, rng);
  Tensor rows = tensor::embedding(slot_positions, enc);
  Tensor logits = head_.forward(rows);

  std::map<int, std::vector<std::string>> inserts;
  const int v = logits.dim(1);
  for (std::size_t s = 0; s < slot_positions.size(); ++s) {
    const float* row = logits.value().data() + s * static_cast<std::size_t>(v);
    int best = 0;
    for (int j = 1; j < v; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == kNoneLabel) continue;
    inserts[static_cast<int>(s) + 1] =
        split(labels_[static_cast<std::size_t>(best)], '+');
  }
  return slots_to_call_sites(inserts);
}

}  // namespace mpirical::core
