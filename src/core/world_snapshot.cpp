#include "core/world_snapshot.hpp"

#include "support/check.hpp"
#include "support/io.hpp"

namespace mpirical::core {

namespace {

void add_split(snapshot::Builder& builder, const char* name,
               const std::vector<corpus::Example>& split) {
  snapshot::ByteWriter w;
  corpus::encode_examples(w, split);
  builder.add(snapshot::SectionKind::kCorpus, name, w.take());
}

}  // namespace

// World snapshots inherit the env-driven weight encoding: under
// MPIRICAL_SNAPSHOT_INT8 the model's 2D weights land as kTensorDataI8
// sections (readers dequantize on load), otherwise as f32 kTensorData.

std::string build_eval_snapshot(const MpiRical& model,
                                const std::vector<corpus::Example>& split) {
  snapshot::Builder builder;
  model.to_snapshot(builder);
  add_split(builder, "eval", split);
  return builder.finish();
}

void write_eval_snapshot(const std::string& path, const MpiRical& model,
                         const std::vector<corpus::Example>& split) {
  io::write_file(path, build_eval_snapshot(model, split));
}

std::string build_dataset_snapshot(const MpiRical& model,
                                   const corpus::Dataset& dataset) {
  snapshot::Builder builder;
  model.to_snapshot(builder);
  add_split(builder, "train", dataset.train);
  add_split(builder, "val", dataset.val);
  add_split(builder, "test", dataset.test);
  snapshot::ByteWriter meta;
  meta.u64(dataset.total_programs);
  meta.u64(dataset.parse_failures);
  meta.u64(dataset.excluded_too_long);
  builder.add(snapshot::SectionKind::kMeta, "dataset_meta", meta.take());
  return builder.finish();
}

void write_dataset_snapshot(const std::string& path, const MpiRical& model,
                            const corpus::Dataset& dataset) {
  io::write_file(path, build_dataset_snapshot(model, dataset));
}

World load_world_snapshot(const std::string& path) {
  World world;
  world.snap = snapshot::Snapshot::map_file(path);
  world.model = MpiRical::from_snapshot(world.snap);
  if (const auto* s =
          world.snap->find(snapshot::SectionKind::kCorpus, "eval")) {
    world.eval = corpus::decode_examples(s->payload);
    world.has_eval = true;
  }
  if (const auto* train =
          world.snap->find(snapshot::SectionKind::kCorpus, "train")) {
    world.dataset.train = corpus::decode_examples(train->payload);
    world.dataset.val = corpus::decode_examples(
        world.snap->require(snapshot::SectionKind::kCorpus, "val").payload);
    world.dataset.test = corpus::decode_examples(
        world.snap->require(snapshot::SectionKind::kCorpus, "test").payload);
    if (const auto* meta =
            world.snap->find(snapshot::SectionKind::kMeta, "dataset_meta")) {
      snapshot::ByteReader r(meta->payload);
      world.dataset.total_programs = r.u64();
      world.dataset.parse_failures = r.u64();
      world.dataset.excluded_too_long = r.u64();
      r.done();
    }
    world.has_dataset = true;
  }
  MR_CHECK(world.has_eval || world.has_dataset,
           "world snapshot carries no corpus split: " + path);
  return world;
}

}  // namespace mpirical::core
