// Wave-aware work partitioning for sharded corpus evaluation.
//
// The unit of distributable work is one decode WAVE: translate_batch groups
// examples into fixed-size waves (MPIRICAL_DECODE_WAVE, default 32) and the
// wave membership decides which rows share the padded encoder panel and the
// decode GEMMs -- i.e. it selects kernel paths and therefore last-ULP
// rounding. Chunks handed to shards are exactly the unsharded wave groups
// ([c*wave, (c+1)*wave) over the split), so a chunk decoded by any shard is
// bit-identical to the same wave decoded by the unsharded loop.
//
// The Partitioner tracks grant/complete/fail state for every chunk. It is
// driven from a single thread (the shard driver's event loop) and is not
// internally synchronized.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

namespace mpirical::shard {

/// One wave-aligned range of split indices: examples [begin, end).
struct Chunk {
  std::size_t index = 0;  // position in the chunk list (stable id)
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Chops [0, n) into wave-sized chunks with the same boundaries the
/// unsharded translate_batch wave loop uses (last chunk may be short).
std::vector<Chunk> make_wave_chunks(std::size_t n, std::size_t wave);

/// The decode wave size translate_batch will use: MPIRICAL_DECODE_WAVE when
/// set and positive, else 32. Chunk boundaries must come from this value for
/// sharded results to be bit-identical to the unsharded loop.
std::size_t decode_wave_size();

enum class PartitionMode {
  kStatic,   // chunk i pre-assigned to shard i % num_shards
  kDynamic,  // work-stealing: any shard takes the next pending chunk
};

/// Grant/complete/fail bookkeeping over a fixed chunk list.
///
/// Exactly-once discipline: every chunk is granted to one shard at a time;
/// `fail_shard` returns a dead shard's unfinished grants (and, in static
/// mode, its still-queued chunks) to a shared orphan pool that any live
/// shard may claim, so each chunk is *completed* exactly once even across
/// worker deaths.
class Partitioner {
 public:
  Partitioner(std::vector<Chunk> chunks, std::size_t num_shards,
              PartitionMode mode);

  std::size_t shard_count() const { return dead_.size(); }
  std::size_t chunk_count() const { return chunks_.size(); }

  /// Next chunk for `shard` to work on, or nullopt when nothing is
  /// currently pending for it. Static mode serves the shard's own queue
  /// first, then the orphan pool; dynamic mode serves the shared queue.
  std::optional<Chunk> next_for(std::size_t shard);

  /// Marks a granted chunk finished.
  void complete(std::size_t chunk_index);

  /// Marks `shard` dead: its granted-but-unfinished chunks and any chunks
  /// still queued for it return to the orphan pool for live shards. Returns
  /// how many chunks were GRANTED to the shard and now need reassignment
  /// (its never-granted static-queue chunks are not counted -- they were
  /// never in flight), which is the run's reassignment metric.
  std::size_t fail_shard(std::size_t shard);

  bool shard_dead(std::size_t shard) const { return dead_.at(shard); }
  bool all_complete() const { return completed_ == chunks_.size(); }

 private:
  enum class State { kPending, kGranted, kComplete };

  std::optional<Chunk> grant(std::size_t chunk_index, std::size_t shard);

  std::vector<Chunk> chunks_;
  std::vector<State> state_;
  std::vector<std::size_t> owner_;              // valid while kGranted
  std::vector<std::deque<std::size_t>> queues_;  // static mode: per shard
  std::deque<std::size_t> pool_;  // dynamic queue + orphans in both modes
  std::vector<bool> dead_;
  PartitionMode mode_;
  std::size_t completed_ = 0;
};

}  // namespace mpirical::shard
