#include "shard/protocol.hpp"

#include <cstring>

#include "snapshot/snapshot.hpp"
#include "support/check.hpp"

namespace mpirical::shard {

namespace {

constexpr std::size_t kHeaderSize = 4 + 1 + 4;

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_i32(std::string& out, std::int32_t v) {
  append_u32(out, static_cast<std::uint32_t>(v));
}

void append_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

void append_bytes(std::string& out, const std::string& s) {
  MR_CHECK(s.size() <= kMaxFramePayload, "string field too large for wire");
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string bytes() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  void done() const {
    MR_CHECK(pos_ == data_.size(), "trailing garbage in wire record");
  }

 private:
  void need(std::size_t n) const {
    MR_CHECK(pos_ + n <= data_.size(), "truncated wire record");
  }

  const std::string& data_;
  std::size_t pos_ = 0;
};

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kTaskRequest) &&
         t <= static_cast<std::uint8_t>(FrameType::kStatsReport);
}

}  // namespace

std::string encode_frame(FrameType type, const std::string& payload) {
  MR_CHECK(payload.size() <= kMaxFramePayload, "frame payload too large");
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  append_u32(out, kFrameMagic);
  out.push_back(static_cast<char>(type));
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

void FrameParser::validate_header() const {
  // Called with at least the magic buffered; checks whatever header prefix
  // is available so garbage is rejected as early as possible.
  const std::size_t avail = buf_.size() - pos_;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(buf_[pos_ + i]))
             << (8 * i);
  }
  MR_CHECK(magic == kFrameMagic, "bad frame magic (corrupt shard stream)");
  if (avail >= 5) {
    MR_CHECK(valid_type(static_cast<std::uint8_t>(buf_[pos_ + 4])),
             "unknown frame type (corrupt shard stream)");
  }
  if (avail >= kHeaderSize) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(buf_[pos_ + 5 + i]))
             << (8 * i);
    }
    MR_CHECK(len <= kMaxFramePayload,
             "oversized frame length (corrupt shard stream)");
  }
}

void FrameParser::feed(const void* data, std::size_t n) {
  buf_.append(static_cast<const char*>(data), n);
  if (buf_.size() - pos_ >= 4) validate_header();
}

std::optional<Frame> FrameParser::next() {
  if (buf_.size() - pos_ < kHeaderSize) return std::nullopt;
  validate_header();
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf_[pos_ + 5 + i]))
           << (8 * i);
  }
  if (buf_.size() - pos_ < kHeaderSize + len) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<std::uint8_t>(buf_[pos_ + 4]));
  frame.payload = buf_.substr(pos_ + kHeaderSize, len);
  pos_ += kHeaderSize + len;
  // Reclaim the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ >= 4) validate_header();
  return frame;
}

std::string encode_task_grant(const TaskGrant& grant) {
  std::string out;
  append_u64(out, grant.chunk_index);
  append_u64(out, grant.begin);
  append_u64(out, grant.end);
  append_i32(out, grant.beam_width);
  append_i32(out, grant.line_tolerance);
  return out;
}

TaskGrant decode_task_grant(const std::string& payload) {
  Reader r(payload);
  TaskGrant grant;
  grant.chunk_index = r.u64();
  grant.begin = r.u64();
  grant.end = r.u64();
  grant.beam_width = r.i32();
  grant.line_tolerance = r.i32();
  r.done();
  MR_CHECK(grant.begin <= grant.end, "task grant range inverted");
  return grant;
}

std::string encode_result(const ResultRecord& record) {
  std::string out;
  append_u64(out, record.chunk_index);
  append_u64(out, record.example_index);
  append_u64(out, record.m_counts.tp);
  append_u64(out, record.m_counts.fp);
  append_u64(out, record.m_counts.fn);
  append_u64(out, record.mcc_counts.tp);
  append_u64(out, record.mcc_counts.fp);
  append_u64(out, record.mcc_counts.fn);
  append_f64(out, record.bleu);
  append_f64(out, record.meteor);
  append_f64(out, record.rouge_l);
  append_f64(out, record.acc);
  out.push_back(record.parsed ? 1 : 0);
  append_u32(out, static_cast<std::uint32_t>(record.predicted_calls.size()));
  for (const auto& call : record.predicted_calls) {
    append_bytes(out, call.callee);
    append_i32(out, call.line);
  }
  append_bytes(out, record.predicted_code);
  return out;
}

ResultRecord decode_result(const std::string& payload) {
  Reader r(payload);
  ResultRecord record;
  record.chunk_index = r.u64();
  record.example_index = r.u64();
  record.m_counts.tp = r.u64();
  record.m_counts.fp = r.u64();
  record.m_counts.fn = r.u64();
  record.mcc_counts.tp = r.u64();
  record.mcc_counts.fp = r.u64();
  record.mcc_counts.fn = r.u64();
  record.bleu = r.f64();
  record.meteor = r.f64();
  record.rouge_l = r.f64();
  record.acc = r.f64();
  record.parsed = r.u8() != 0;
  // Every encoded call site occupies >= 8 payload bytes (length + line),
  // so this bound both rejects corrupt counts and caps the reserve below
  // the actual frame size (a forged count must not allocate gigabytes).
  const std::uint32_t calls = r.u32();
  MR_CHECK(calls <= payload.size() / 8, "call-site count exceeds payload");
  record.predicted_calls.reserve(calls);
  for (std::uint32_t i = 0; i < calls; ++i) {
    ast::CallSite call;
    call.callee = r.bytes();
    call.line = r.i32();
    record.predicted_calls.push_back(std::move(call));
  }
  record.predicted_code = r.bytes();
  r.done();
  return record;
}

std::string encode_snapshot_hello(const SnapshotHello& hello) {
  std::string out;
  append_bytes(out, hello.path);
  return out;
}

SnapshotHello decode_snapshot_hello(const std::string& payload) {
  Reader r(payload);
  SnapshotHello hello;
  hello.path = r.bytes();
  r.done();
  MR_CHECK(!hello.path.empty(), "snapshot hello names no path");
  return hello;
}

std::string encode_startup_info(const StartupInfo& info) {
  std::string out;
  append_u64(out, info.startup_us);
  append_u64(out, info.load_us);
  return out;
}

StartupInfo decode_startup_info(const std::string& payload) {
  Reader r(payload);
  StartupInfo info;
  info.startup_us = r.u64();
  info.load_us = r.u64();
  r.done();
  return info;
}

std::string encode_stats_report(const StatsReport& report) {
  std::string out;
  append_u32(out, static_cast<std::uint32_t>(report.phases.size()));
  for (const auto& entry : report.phases) {
    append_bytes(out, entry.path);
    append_u64(out, entry.count);
    append_u64(out, entry.total_ns);
    append_u64(out, entry.max_ns);
  }
  return out;
}

StatsReport decode_stats_report(const std::string& payload) {
  Reader r(payload);
  StatsReport report;
  // Every encoded entry occupies >= 28 payload bytes (path length + three
  // u64s), so this bound rejects forged counts before the reserve.
  const std::uint32_t n = r.u32();
  MR_CHECK(n <= payload.size() / 28, "stats entry count exceeds payload");
  report.phases.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    StatsReportEntry entry;
    entry.path = r.bytes();
    entry.count = r.u64();
    entry.total_ns = r.u64();
    entry.max_ns = r.u64();
    report.phases.push_back(std::move(entry));
  }
  r.done();
  return report;
}

std::string encode_snapshot_begin(const SnapshotStreamBegin& begin) {
  std::string out;
  append_u64(out, begin.total_bytes);
  append_u64(out, begin.checksum);
  return out;
}

SnapshotStreamBegin decode_snapshot_begin(const std::string& payload) {
  Reader r(payload);
  SnapshotStreamBegin begin;
  begin.total_bytes = r.u64();
  begin.checksum = r.u64();
  r.done();
  // Sanity bound: a forged size must not drive the worker into reserving
  // terabytes of scratch. World snapshots are tens of MB to a few GB.
  MR_CHECK(begin.total_bytes <= (std::uint64_t{1} << 38),
           "snapshot stream size implausibly large");
  return begin;
}

std::string encode_snapshot_chunk(const SnapshotStreamChunk& chunk) {
  std::string out;
  append_u64(out, chunk.offset);
  append_u64(out, chunk.checksum);
  append_bytes(out, chunk.data);
  return out;
}

SnapshotStreamChunk decode_snapshot_chunk(const std::string& payload) {
  Reader r(payload);
  SnapshotStreamChunk chunk;
  chunk.offset = r.u64();
  chunk.checksum = r.u64();
  chunk.data = r.bytes();
  r.done();
  MR_CHECK(chunk.checksum ==
               snapshot::fnv1a64(chunk.data.data(), chunk.data.size()),
           "snapshot chunk checksum mismatch (corrupt stream)");
  return chunk;
}

std::string encode_translate_request(const TranslateWireRequest& req) {
  std::string out;
  append_u64(out, req.id);
  append_bytes(out, req.input_code);
  append_bytes(out, req.input_xsbt);
  append_i32(out, req.beam_width);
  return out;
}

TranslateWireRequest decode_translate_request(const std::string& payload) {
  Reader r(payload);
  TranslateWireRequest req;
  req.id = r.u64();
  req.input_code = r.bytes();
  req.input_xsbt = r.bytes();
  req.beam_width = r.i32();
  r.done();
  MR_CHECK(req.beam_width >= 1, "translate request beam width must be >= 1");
  return req;
}

std::string encode_translate_result(const TranslateWireResult& res) {
  std::string out;
  append_u64(out, res.id);
  append_bytes(out, res.output_code);
  out.push_back(static_cast<char>(res.joined_running_wave ? 1 : 0));
  return out;
}

TranslateWireResult decode_translate_result(const std::string& payload) {
  Reader r(payload);
  TranslateWireResult res;
  res.id = r.u64();
  res.output_code = r.bytes();
  res.joined_running_wave = r.u8();
  r.done();
  return res;
}

}  // namespace mpirical::shard
