#include "shard/partition.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/env.hpp"

namespace mpirical::shard {

std::vector<Chunk> make_wave_chunks(std::size_t n, std::size_t wave) {
  MR_CHECK(wave > 0, "wave size must be positive");
  std::vector<Chunk> chunks;
  chunks.reserve((n + wave - 1) / wave);
  for (std::size_t lo = 0; lo < n; lo += wave) {
    Chunk c;
    c.index = chunks.size();
    c.begin = lo;
    c.end = std::min(n, lo + wave);
    chunks.push_back(c);
  }
  return chunks;
}

std::size_t decode_wave_size() {
  // Single source of truth for the decode wave: MpiRical::translate_batch
  // reads it from here, so sharded chunk boundaries ARE the wave
  // boundaries of the unsharded loop. Default 32, clamped to [1, 4096];
  // non-numeric values throw (support::env_long) instead of silently
  // changing wave membership.
  return static_cast<std::size_t>(
      support::env_long("MPIRICAL_DECODE_WAVE", 32, 1, 4096));
}

Partitioner::Partitioner(std::vector<Chunk> chunks, std::size_t num_shards,
                         PartitionMode mode)
    : chunks_(std::move(chunks)),
      state_(chunks_.size(), State::kPending),
      owner_(chunks_.size(), 0),
      dead_(std::max<std::size_t>(num_shards, 1), false),
      mode_(mode) {
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    MR_CHECK(chunks_[i].index == i, "chunk indices must match positions");
  }
  if (mode_ == PartitionMode::kStatic) {
    queues_.resize(dead_.size());
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      queues_[i % dead_.size()].push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < chunks_.size(); ++i) pool_.push_back(i);
  }
}

std::optional<Chunk> Partitioner::grant(std::size_t chunk_index,
                                        std::size_t shard) {
  MR_ASSERT(state_[chunk_index] == State::kPending);
  state_[chunk_index] = State::kGranted;
  owner_[chunk_index] = shard;
  return chunks_[chunk_index];
}

std::optional<Chunk> Partitioner::next_for(std::size_t shard) {
  MR_CHECK(shard < dead_.size(), "shard index out of range");
  MR_CHECK(!dead_[shard], "dead shard cannot claim work");
  if (mode_ == PartitionMode::kStatic && !queues_[shard].empty()) {
    const std::size_t ci = queues_[shard].front();
    queues_[shard].pop_front();
    return grant(ci, shard);
  }
  if (!pool_.empty()) {
    const std::size_t ci = pool_.front();
    pool_.pop_front();
    return grant(ci, shard);
  }
  return std::nullopt;
}

void Partitioner::complete(std::size_t chunk_index) {
  MR_CHECK(chunk_index < chunks_.size(), "chunk index out of range");
  MR_CHECK(state_[chunk_index] == State::kGranted,
           "complete requires a granted chunk");
  state_[chunk_index] = State::kComplete;
  ++completed_;
}

std::size_t Partitioner::fail_shard(std::size_t shard) {
  MR_CHECK(shard < dead_.size(), "shard index out of range");
  if (dead_[shard]) return 0;
  dead_[shard] = true;
  // Unfinished grants go back first (they were taken earliest), then any
  // chunks never handed out from the shard's static queue.
  std::size_t reassigned = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (state_[i] == State::kGranted && owner_[i] == shard) {
      state_[i] = State::kPending;
      pool_.push_back(i);
      ++reassigned;
    }
  }
  if (mode_ == PartitionMode::kStatic) {
    for (const std::size_t ci : queues_[shard]) pool_.push_back(ci);
    queues_[shard].clear();
  }
  return reassigned;
}

}  // namespace mpirical::shard
