#include "shard/eval.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/world_snapshot.hpp"
#include "nn/packed_model.hpp"
#include "snapshot/snapshot.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/io.hpp"
#include "support/process.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

extern char** environ;

namespace mpirical::shard {

namespace {

/// One observation from a worker: a decoded frame, or EOF (death / clean
/// shutdown -- always the reader's final event for that worker).
struct Event {
  std::size_t worker = 0;
  bool eof = false;
  Frame frame;
};

class EventQueue {
 public:
  void push(Event e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      events_.push_back(std::move(e));
    }
    cv_.notify_one();
  }

  Event pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !events_.empty(); });
    Event e = std::move(events_.front());
    events_.pop_front();
    return e;
  }

  /// Like pop, but gives up after `timeout` (nullopt = no event arrived).
  /// Milliseconds, not seconds: the post-run stats grace drain waits far
  /// shorter stretches than the watchdog (which converts losslessly).
  std::optional<Event> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return !events_.empty(); })) {
      return std::nullopt;
    }
    Event e = std::move(events_.front());
    events_.pop_front();
    return e;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Event> events_;
};

/// Driver watchdog: with MPIRICAL_EVAL_SHARD_TIMEOUT_S=<seconds> set, a
/// stretch of that many seconds with NO event from ANY worker declares every
/// live worker dead and falls back to in-process evaluation -- bounding the
/// damage a wedged (alive but silent) worker can do. Default 0 = disabled,
/// because legitimate chunk decodes can be arbitrarily slow on loaded boxes.
long watchdog_timeout_s() {
  // 0 disables; explicit timeouts clamp to at most a day. Garbage throws
  // (support::env_long) -- a typo'd timeout must not silently disable the
  // watchdog.
  return support::env_long("MPIRICAL_EVAL_SHARD_TIMEOUT_S", 0, 0, 86400);
}

core::EvalSummary summary_from(const ResultRecord& r) {
  core::EvalSummary one;
  one.examples = 1;
  one.m_counts = r.m_counts;
  one.mcc_counts = r.mcc_counts;
  one.bleu = r.bleu;
  one.meteor = r.meteor;
  one.rouge_l = r.rouge_l;
  one.acc = r.acc;
  return one;
}

core::ExamplePrediction prediction_from(ResultRecord&& r) {
  core::ExamplePrediction pred;
  pred.predicted_code = std::move(r.predicted_code);
  pred.predicted_calls = std::move(r.predicted_calls);
  pred.parsed = r.parsed;
  return pred;
}

std::string g_self_exec;

std::mutex g_stats_mu;
ShardRunStats g_stats;

/// Publishes a COMPLETE run record for last_run_stats(). Called only at the
/// successful end of an evaluate_sharded_* run: a run that throws leaves the
/// previous record intact (never a half-written one), and concurrent runs
/// each swap in a whole struct under the lock instead of racing per field.
void publish_run_stats(const ShardRunStats& st) {
  std::lock_guard<std::mutex> lock(g_stats_mu);
  g_stats = st;
}

/// Startup info lands in the RUN-LOCAL stats (single driver thread; no lock
/// needed). Slots are pre-sized by the process deployments; loopback grows
/// on demand.
void record_startup_info(ShardRunStats& st, std::size_t worker,
                         const StartupInfo& info) {
  if (st.worker_startup_ms.size() <= worker) {
    st.worker_startup_ms.resize(worker + 1, -1.0);
    st.worker_load_ms.resize(worker + 1, -1.0);
  }
  st.worker_startup_ms[worker] =
      static_cast<double>(info.startup_us) / 1000.0;
  st.worker_load_ms[worker] = static_cast<double>(info.load_us) / 1000.0;
}

/// How long the driver waits after its closing kDone for stragglers'
/// kStatsReport frames. 0 disables the drain (stats that raced the shutdown
/// are simply dropped -- they are observability, not results).
long stats_grace_ms() {
  return support::env_long("MPIRICAL_EVAL_STATS_GRACE_MS", 2000, 0, 60000);
}

}  // namespace

ShardRunStats last_run_stats() {
  std::lock_guard<std::mutex> lock(g_stats_mu);
  return g_stats;
}

std::size_t env_shards() {
  // 1 (the default) means unsharded; explicit counts clamp to [1, 256].
  // MPIRICAL_EVAL_SHARDS=abc used to silently mean "1 shard"; it throws now.
  return static_cast<std::size_t>(
      support::env_long("MPIRICAL_EVAL_SHARDS", 1, 1, 256));
}

std::vector<ResultRecord> evaluate_chunk(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const TaskGrant& grant) {
  MR_CHECK(grant.begin <= grant.end && grant.end <= split.size(),
           "task grant outside the split");
  const std::size_t n = static_cast<std::size_t>(grant.end - grant.begin);
  std::vector<core::MpiRical::TranslateRequest> inputs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& ex = split[grant.begin + i];
    inputs[i] = {ex.input_code, ex.input_xsbt};
  }
  // One chunk == one decode wave (chunk boundaries come from
  // make_wave_chunks over the same MPIRICAL_DECODE_WAVE), so this batch has
  // the exact wave membership the unsharded loop would use -- decoded
  // tokens, and therefore every per-example score, are bit-identical.
  const std::vector<std::string> decoded =
      model.translate_batch(inputs, grant.beam_width);

  std::vector<ResultRecord> out(n);
  parallel_for(
      0, n,
      [&](std::size_t i) {
        core::ExamplePrediction pred;
        const core::EvalSummary one = core::score_example(
            split[grant.begin + i], decoded[i], grant.line_tolerance, &pred);
        ResultRecord& r = out[i];
        r.chunk_index = grant.chunk_index;
        r.example_index = grant.begin + i;
        r.m_counts = one.m_counts;
        r.mcc_counts = one.mcc_counts;
        r.bleu = one.bleu;
        r.meteor = one.meteor;
        r.rouge_l = one.rouge_l;
        r.acc = one.acc;
        r.parsed = pred.parsed;
        r.predicted_calls = std::move(pred.predicted_calls);
        r.predicted_code = std::move(pred.predicted_code);
      },
      /*grain=*/1);
  return out;
}

namespace {

/// Pumps transport bytes through the parser until a full frame (or EOF =
/// nullopt). Throws Error on a corrupt stream, like FrameParser::feed.
std::optional<Frame> recv_frame(Transport& transport, FrameParser& parser) {
  for (;;) {
    if (auto f = parser.next()) return f;
    const std::string bytes = transport.recv_some();
    if (bytes.empty()) return std::nullopt;
    parser.feed(bytes.data(), bytes.size());
  }
}

/// Folds one measurement (in seconds) into a StatsReportEntry.
void note_phase(StatsReportEntry& e, double seconds) {
  const std::uint64_t ns =
      seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0;
  e.count += 1;
  e.total_ns += ns;
  if (ns > e.max_ns) e.max_ns = ns;
}

/// The worker's request/evaluate/stream loop over an already-initialized
/// parser (the snapshot handshake shares it so no buffered bytes are lost).
///
/// Worker-side phases accumulate into a LOCAL `report` (plain Timers, not
/// the process-global recorder: in loopback mode driver and workers share a
/// process, and a global would double-count) and ship as one kStatsReport
/// frame right before the closing kDone -- uniform across loopback, pipe,
/// and TCP deployments. Callers may pre-populate `report` with phases that
/// happened before the loop (e.g. the snapshot load).
void run_worker_loop(const core::MpiRical& model,
                     const std::vector<corpus::Example>& split,
                     Transport& transport, FrameParser& parser,
                     StatsReport report = {}) {
  StatsReportEntry grant_wait{"grant_wait", 0, 0, 0};
  StatsReportEntry chunk_eval{"chunk_eval", 0, 0, 0};
  try {
    for (;;) {
      if (!transport.send(encode_frame(FrameType::kTaskRequest, ""))) break;
      const Timer wait_timer;
      std::optional<Frame> frame;
      do {
        frame = recv_frame(transport, parser);
      } while (frame && frame->type == FrameType::kHeartbeat);
      if (!frame || frame->type == FrameType::kDone) break;
      if (frame->type != FrameType::kTaskGrant) break;  // protocol violation
      note_phase(grant_wait, wait_timer.seconds());
      const TaskGrant grant = decode_task_grant(frame->payload);
      // Ack the grant before the (potentially long) decode so the driver
      // can tell "working" from "dead" if it ever wants to.
      if (!transport.send(encode_frame(FrameType::kHeartbeat, ""))) break;
      const Timer eval_timer;
      auto results = evaluate_chunk(model, split, grant);
      note_phase(chunk_eval, eval_timer.seconds());
      bool ok = true;
      for (const auto& r : results) {
        if (!transport.send(
                encode_frame(FrameType::kResult, encode_result(r)))) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    if (grant_wait.count > 0) report.phases.push_back(grant_wait);
    if (chunk_eval.count > 0) report.phases.push_back(chunk_eval);
    if (!report.phases.empty()) {
      transport.send(encode_frame(FrameType::kStatsReport,
                                  encode_stats_report(report)));
    }
    transport.send(encode_frame(FrameType::kDone, ""));
  } catch (const Error&) {
    // Corrupt driver stream or a scoring failure: die quietly; the driver
    // reassigns our chunks.
  }
  transport.close();
}

}  // namespace

void run_worker(const core::MpiRical& model,
                const std::vector<corpus::Example>& split,
                Transport& transport) {
  // Pack every weight panel before the request loop: chunk evals then share
  // the warmed cache instead of lazily packing inside the first chunk's
  // timed window.
  nn::PackedModel::warm_cache(model.transformer());
  FrameParser parser;
  run_worker_loop(model, split, transport, parser);
}

bool send_startup_info(Transport& transport, double startup_ms,
                       double load_ms) {
  StartupInfo info;
  info.startup_us = static_cast<std::uint64_t>(startup_ms * 1000.0);
  info.load_us = static_cast<std::uint64_t>(load_ms * 1000.0);
  return transport.send(
      encode_frame(FrameType::kStartupInfo, encode_startup_info(info)));
}

namespace {

std::string snapshot_temp_template() {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path_template = (tmpdir != nullptr && tmpdir[0] != '\0')
                                  ? std::string(tmpdir)
                                  : std::string("/tmp");
  path_template += "/mpirical_eval_snapshot_XXXXXX";
  return path_template;
}

/// Receives an in-band snapshot stream (the kSnapshotBegin frame already
/// decoded into `begin`) into a local temp file, verifying the per-chunk
/// checksums (decode_snapshot_chunk), chunk contiguity, and the whole-stream
/// size + checksum. Returns the temp path; throws Error on any corruption
/// or a truncated stream.
io::TempFile recv_snapshot_stream(Transport& transport, FrameParser& parser,
                                  const SnapshotStreamBegin& begin) {
  io::TempFile file(snapshot_temp_template());
  std::uint64_t received = 0;
  std::uint64_t running = snapshot::kFnv1a64Init;
  for (;;) {
    const std::optional<Frame> frame = recv_frame(transport, parser);
    MR_CHECK(frame.has_value(), "snapshot stream truncated (driver gone)");
    if (frame->type == FrameType::kSnapshotEnd) break;
    MR_CHECK(frame->type == FrameType::kSnapshotChunk,
             "unexpected frame inside a snapshot stream");
    const SnapshotStreamChunk chunk = decode_snapshot_chunk(frame->payload);
    MR_CHECK(chunk.offset == received,
             "snapshot stream gap/overlap (corrupt stream)");
    running =
        snapshot::fnv1a64_accum(running, chunk.data.data(), chunk.data.size());
    file.write(chunk.data);
    received += chunk.data.size();
  }
  MR_CHECK(received == begin.total_bytes,
           "snapshot stream ended short of its declared size");
  MR_CHECK(running == begin.checksum,
           "snapshot stream checksum mismatch (corrupt stream)");
  file.close_fd();
  return file;
}

}  // namespace

void run_worker_from_snapshot(Transport& transport, double pre_ms) {
  FrameParser parser;
  try {
    std::optional<Frame> frame;
    do {
      frame = recv_frame(transport, parser);
    } while (frame && frame->type == FrameType::kHeartbeat);
    if (!frame || (frame->type != FrameType::kSnapshot &&
                   frame->type != FrameType::kSnapshotBegin)) {
      transport.close();
      return;
    }
    // Startup proper: (for in-band streams) receive + verify, then mmap +
    // checksum pass + pointer fixups + split decode. Waiting for the
    // driver's first frame above is excluded -- that's the driver's time,
    // not this worker's spawn cost.
    Timer load_timer;
    core::World world;
    if (frame->type == FrameType::kSnapshot) {
      const SnapshotHello hello = decode_snapshot_hello(frame->payload);
      world = core::load_world_snapshot(hello.path);
    } else {
      const SnapshotStreamBegin begin = decode_snapshot_begin(frame->payload);
      io::TempFile file = recv_snapshot_stream(transport, parser, begin);
      world = core::load_world_snapshot(file.path());
      // The mapping keeps the bytes alive; the name can go immediately so a
      // worker killed mid-run leaves no droppings.
      file.unlink_now();
    }
    MR_CHECK(world.has_eval, "worker snapshot carries no eval split");
    const double load_ms = load_timer.seconds() * 1e3;
    if (!send_startup_info(transport, pre_ms + load_ms, load_ms)) {
      transport.close();
      return;
    }
    // Snapshot receive+load happened before the request loop; seed the
    // worker's stats report so the driver still sees it as a phase.
    StatsReport report;
    StatsReportEntry load{"snapshot_load", 0, 0, 0};
    note_phase(load, load_ms / 1e3);
    report.phases.push_back(load);
    // Pack every weight panel right after the snapshot mmap (outside the
    // reported load window -- packing is compute, not snapshot I/O), so the
    // worker's chunk evals touch zero pack work.
    nn::PackedModel::warm_cache(world.model.transformer());
    run_worker_loop(world.model, world.eval, transport, parser,
                    std::move(report));
    return;  // run_worker_loop closed the transport
  } catch (const Error&) {
    // Corrupt driver stream or an unreadable/corrupt snapshot: die quietly;
    // the driver reassigns our chunks (or falls back in-process).
  }
  transport.close();
}

bool send_snapshot_inband(Transport& transport, const std::string& bytes) {
  SnapshotStreamBegin begin;
  begin.total_bytes = bytes.size();
  begin.checksum = snapshot::fnv1a64(bytes.data(), bytes.size());
  if (!transport.send(encode_frame(FrameType::kSnapshotBegin,
                                   encode_snapshot_begin(begin)))) {
    return false;
  }
  for (std::size_t off = 0; off < bytes.size(); off += kSnapshotChunkBytes) {
    SnapshotStreamChunk chunk;
    chunk.offset = off;
    chunk.data = bytes.substr(off, kSnapshotChunkBytes);
    chunk.checksum = snapshot::fnv1a64(chunk.data.data(), chunk.data.size());
    if (!transport.send(encode_frame(FrameType::kSnapshotChunk,
                                     encode_snapshot_chunk(chunk)))) {
      return false;
    }
  }
  return transport.send(encode_frame(FrameType::kSnapshotEnd, ""));
}

core::EvalSummary run_driver(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const std::vector<Transport*>& workers, const ShardOptions& options,
    std::vector<core::ExamplePrediction>* predictions,
    ShardRunStats* run_stats) {
  const std::size_t n = split.size();
  const std::vector<Chunk> chunk_list =
      make_wave_chunks(n, decode_wave_size());
  const std::size_t num_workers = workers.size();
  Partitioner part(chunk_list, std::max<std::size_t>(num_workers, 1),
                   options.mode);

  // Run-scoped stats: callers pass their (deployment-prefilled) record;
  // bare run_driver calls still measure into a local one for the recorder.
  ShardRunStats local_stats;
  ShardRunStats& st = run_stats != nullptr ? *run_stats : local_stats;
  obs::Recorder& rec = obs::Recorder::global();

  std::vector<core::EvalSummary> per_example(n);
  std::vector<core::ExamplePrediction> preds(predictions ? n : 0);
  std::vector<bool> got(n, false);
  std::vector<std::size_t> remaining(chunk_list.size());
  std::vector<bool> chunk_done(chunk_list.size(), false);
  for (const auto& c : chunk_list) remaining[c.index] = c.end - c.begin;

  std::vector<bool> dead(num_workers, false);
  std::set<std::size_t> parked;
  std::size_t alive = num_workers;

  // Grant round-trip bookkeeping: grant sent -> last result of that chunk
  // merged. A re-granted chunk (its first owner died) restarts the clock,
  // so RTT measures the grant that actually completed.
  std::vector<std::chrono::steady_clock::time_point> grant_time(
      chunk_list.size());
  std::vector<bool> granted_before(chunk_list.size(), false);
  // Worker-side phases (kStatsReport), aggregated across workers by path.
  std::map<std::string, obs::PhaseStat> worker_phase_map;

  auto send_grant = [&](std::size_t w, const Chunk& c) {
    TaskGrant g;
    g.chunk_index = c.index;
    g.begin = c.begin;
    g.end = c.end;
    g.beam_width = options.beam_width;
    g.line_tolerance = options.line_tolerance;
    if (granted_before[c.index]) {
      ++st.stolen_chunks;
      rec.counter_add("shard/stolen_chunks", 1);
    }
    granted_before[c.index] = true;
    grant_time[c.index] = std::chrono::steady_clock::now();
    workers[w]->send(
        encode_frame(FrameType::kTaskGrant, encode_task_grant(g)));
  };
  auto send_done = [&](std::size_t w) {
    workers[w]->send(encode_frame(FrameType::kDone, ""));
  };
  // Serve parked workers whenever the pending set may have changed (a shard
  // failed and orphaned chunks, or everything finished).
  auto service_parked = [&] {
    for (auto it = parked.begin(); it != parked.end();) {
      const std::size_t w = *it;
      if (auto c = part.next_for(w)) {
        send_grant(w, *c);
        it = parked.erase(it);
      } else if (part.all_complete()) {
        send_done(w);
        it = parked.erase(it);
      } else {
        ++it;
      }
    }
  };
  auto grant_or_park = [&](std::size_t w) {
    if (auto c = part.next_for(w)) {
      send_grant(w, *c);
    } else if (part.all_complete()) {
      send_done(w);
    } else {
      // Nothing pending right now, but an outstanding chunk could still
      // fail back into the pool -- hold the worker instead of releasing it.
      parked.insert(w);
    }
  };
  auto declare_dead = [&](std::size_t w) {
    if (dead[w]) return;
    dead[w] = true;
    --alive;
    parked.erase(w);
    // Close our send direction too: a worker declared dead for a protocol
    // violation (not EOF) may still be alive and blocked waiting for a
    // grant -- the close cascades to its recv EOF, it exits, and this
    // worker's reader thread sees EOF instead of blocking join() forever.
    workers[w]->close();
    const std::size_t reassigned = part.fail_shard(w);
    if (reassigned > 0) {
      st.reassigned_chunks += reassigned;
      rec.counter_add("shard/reassigned_chunks", reassigned);
    }
    service_parked();
  };
  // Worker-shipped phases merge under "shard/worker/<path>" -- into the
  // run's stats and (when enabled) the global recorder.
  auto merge_stats_report = [&](const StatsReport& report) {
    for (const auto& e : report.phases) {
      obs::PhaseStat& p = worker_phase_map[e.path];
      p.count += e.count;
      p.total_ns += e.total_ns;
      p.max_ns = std::max(p.max_ns, e.max_ns);
      rec.merge_phase("shard/worker/" + e.path, e.count, e.total_ns,
                      e.max_ns);
    }
  };

  EventQueue queue;
  std::vector<std::thread> readers;
  readers.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    Transport* t = workers[w];
    readers.emplace_back([w, t, &queue] {
      FrameParser parser;
      for (;;) {
        const std::string bytes = t->recv_some();
        if (bytes.empty()) break;  // EOF (clean exit or death; a partial
                                   // buffered frame means mid-record death)
        try {
          parser.feed(bytes.data(), bytes.size());
          while (auto f = parser.next()) {
            Event e;
            e.worker = w;
            e.frame = std::move(*f);
            queue.push(std::move(e));
          }
        } catch (const Error&) {
          break;  // garbage stream: treat the worker as dead
        }
      }
      Event eof;
      eof.worker = w;
      eof.eof = true;
      queue.push(std::move(eof));
    });
  }

  // The loop ends as soon as every example is merged (all_complete) -- the
  // driver must not wait for a wedged worker's EOF once no results are
  // owed -- or when every worker is gone.
  const long timeout_s = watchdog_timeout_s();
  while (alive > 0 && !part.all_complete()) {
    Event e;
    if (timeout_s > 0) {
      auto maybe = queue.pop_for(std::chrono::seconds(timeout_s));
      if (!maybe) {
        // Total silence for the whole watchdog window: declare every live
        // worker dead; their chunks fall through to the in-process
        // evaluation below.
        for (std::size_t dw = 0; dw < num_workers; ++dw) {
          if (!dead[dw]) declare_dead(dw);
        }
        break;
      }
      e = std::move(*maybe);
    } else {
      e = queue.pop();
    }
    const std::size_t w = e.worker;
    if (e.eof) {
      declare_dead(w);
      continue;
    }
    if (dead[w]) continue;
    switch (e.frame.type) {
      case FrameType::kTaskRequest:
        grant_or_park(w);
        break;
      case FrameType::kResult: {
        ResultRecord r;
        bool valid = true;
        try {
          r = decode_result(e.frame.payload);
          MR_CHECK(r.example_index < n && r.chunk_index < chunk_list.size(),
                   "result record out of range");
          const Chunk& c = chunk_list[r.chunk_index];
          MR_CHECK(r.example_index >= c.begin && r.example_index < c.end,
                   "result record outside its chunk");
        } catch (const Error&) {
          valid = false;
        }
        if (!valid) {
          declare_dead(w);
          break;
        }
        const std::size_t idx = static_cast<std::size_t>(r.example_index);
        const std::size_t ci = static_cast<std::size_t>(r.chunk_index);
        // A chunk reassigned after a partial failure re-sends records the
        // dead worker already delivered; they are identical, so first
        // delivery wins.
        if (!got[idx]) {
          got[idx] = true;
          per_example[idx] = summary_from(r);
          if (predictions) preds[idx] = prediction_from(std::move(r));
          if (!chunk_done[ci] && --remaining[ci] == 0) {
            chunk_done[ci] = true;
            const std::uint64_t rtt_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - grant_time[ci])
                    .count());
            st.grant_rtt.count += 1;
            st.grant_rtt.total_ns += rtt_ns;
            st.grant_rtt.max_ns = std::max(st.grant_rtt.max_ns, rtt_ns);
            rec.record_phase("shard/grant_rtt", rtt_ns);
            part.complete(ci);
            if (part.all_complete()) service_parked();
          }
        }
        break;
      }
      case FrameType::kHeartbeat:
      case FrameType::kDone:
        break;  // liveness / clean-shutdown notice; EOF follows kDone
      case FrameType::kStartupInfo:
        try {
          record_startup_info(st, w, decode_startup_info(e.frame.payload));
        } catch (const Error&) {
          declare_dead(w);
        }
        break;
      case FrameType::kStatsReport:
        try {
          merge_stats_report(decode_stats_report(e.frame.payload));
        } catch (const Error&) {
          declare_dead(w);
        }
        break;
      case FrameType::kTaskGrant:
      case FrameType::kSnapshot:
      case FrameType::kSnapshotBegin:
      case FrameType::kSnapshotChunk:
      case FrameType::kSnapshotEnd:
      case FrameType::kTranslateRequest:
      case FrameType::kTranslateResult:
      case FrameType::kServeShutdown:
        declare_dead(w);  // driver-only / serve-only frames; a worker
                          // sending one is violating the protocol
        break;
    }
  }
  // Release everyone: healthy workers get a Done (those already gone fail
  // the send harmlessly), and shutdown_recv unblocks the reader threads
  // even from a wedged worker that will never close its pipe.
  for (std::size_t w = 0; w < num_workers; ++w) {
    if (!dead[w]) workers[w]->send(encode_frame(FrameType::kDone, ""));
  }
  // Stats grace drain: a worker answers that kDone with its kStatsReport +
  // kDone and then closes, which can race the shutdown below. Wait a
  // bounded window for each still-live worker's report (or its EOF/kDone),
  // so the run record normally carries every worker's phases -- but never
  // longer than MPIRICAL_EVAL_STATS_GRACE_MS: a wedged worker costs the
  // grace window at most, and when the watchdog already declared everyone
  // dead there is nobody left to wait for.
  {
    const long grace_ms = stats_grace_ms();
    std::vector<bool> finished(num_workers, false);
    std::size_t waiting = 0;
    for (std::size_t w = 0; w < num_workers; ++w) {
      finished[w] = dead[w];
      if (!finished[w]) ++waiting;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(grace_ms);
    while (grace_ms > 0 && waiting > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      auto maybe = queue.pop_for(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now));
      if (!maybe) break;
      const std::size_t w = maybe->worker;
      if (maybe->eof) {
        if (!finished[w]) {
          finished[w] = true;
          --waiting;
        }
        continue;
      }
      if (finished[w]) continue;
      if (maybe->frame.type == FrameType::kStatsReport) {
        try {
          merge_stats_report(decode_stats_report(maybe->frame.payload));
        } catch (const Error&) {
          // Garbage from a dying worker: drop it, results are already in.
        }
        finished[w] = true;
        --waiting;
      } else if (maybe->frame.type == FrameType::kDone) {
        // The worker shut down without a report (e.g. it never got a
        // grant and has nothing to say); stop waiting on it.
        finished[w] = true;
        --waiting;
      }
      // Anything else (late results for an already-complete chunk,
      // heartbeats) is ignorable here.
    }
  }
  for (std::size_t w = 0; w < num_workers; ++w) {
    workers[w]->shutdown_recv();
  }
  for (auto& reader : readers) reader.join();

  // Transport byte totals, summed once the readers are quiet.
  for (std::size_t w = 0; w < num_workers; ++w) {
    st.bytes_sent += workers[w]->bytes_sent();
    st.bytes_received += workers[w]->bytes_received();
  }
  rec.counter_add("shard/bytes_sent", st.bytes_sent);
  rec.counter_add("shard/bytes_received", st.bytes_received);
  st.worker_phases.clear();
  st.worker_phases.reserve(worker_phase_map.size());
  for (const auto& [path, stat] : worker_phase_map) {
    obs::PhaseStat p = stat;
    p.path = path;
    st.worker_phases.push_back(std::move(p));
  }

  // Every worker is gone. Whatever chunks never completed (all workers died
  // holding them) are evaluated right here so the merge is always total.
  for (const auto& c : chunk_list) {
    if (chunk_done[c.index]) continue;
    TaskGrant g;
    g.chunk_index = c.index;
    g.begin = c.begin;
    g.end = c.end;
    g.beam_width = options.beam_width;
    g.line_tolerance = options.line_tolerance;
    for (auto& r : evaluate_chunk(model, split, g)) {
      const std::size_t idx = static_cast<std::size_t>(r.example_index);
      if (got[idx]) continue;
      got[idx] = true;
      per_example[idx] = summary_from(r);
      if (predictions) preds[idx] = prediction_from(std::move(r));
    }
    chunk_done[c.index] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    MR_CHECK(got[i], "sharded eval lost an example");
  }

  if (predictions) *predictions = std::move(preds);
  // Canonical-order reduction: the same function, over the same per-example
  // values, in the same index order as the unsharded path -- the merged
  // summary is bit-identical no matter how completion interleaved.
  return core::reduce_example_summaries(per_example);
}

core::EvalSummary evaluate_sharded_inprocess(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const ShardOptions& options,
    std::vector<core::ExamplePrediction>* predictions,
    ShardRunStats* run_stats) {
  ShardRunStats local_stats;
  ShardRunStats& st = run_stats != nullptr ? *run_stats : local_stats;
  st = ShardRunStats{};
  st.transport = "loopback";
  const std::size_t chunks =
      make_wave_chunks(split.size(), decode_wave_size()).size();
  const std::size_t num_workers =
      std::max<std::size_t>(1, std::min(options.shards, std::max<std::size_t>(
                                                            chunks, 1)));
  std::vector<std::unique_ptr<Transport>> driver_ends;
  std::vector<Transport*> driver_ptrs;
  std::vector<std::thread> worker_threads;
  for (std::size_t w = 0; w < num_workers; ++w) {
    const LoopbackFault fault = w < options.loopback_faults.size()
                                    ? options.loopback_faults[w]
                                    : LoopbackFault{};
    auto [driver_end, worker_end] = make_loopback_pair(fault);
    driver_ptrs.push_back(driver_end.get());
    driver_ends.push_back(std::move(driver_end));
    worker_threads.emplace_back(
        [&model, &split, endpoint = std::shared_ptr<Transport>(
                             std::move(worker_end))] {
          run_worker(model, split, *endpoint);
        });
  }
  core::EvalSummary summary =
      run_driver(model, split, driver_ptrs, options, predictions, &st);
  for (auto& end : driver_ends) end->close();
  for (auto& t : worker_threads) t.join();
  publish_run_stats(st);
  return summary;
}

void set_worker_self_exec(const std::string& exe_path) {
  g_self_exec = exe_path;
}

bool worker_self_exec_configured() { return !g_self_exec.empty(); }

bool is_worker_role() {
  const char* role = std::getenv("MPIRICAL_EVAL_SHARD_ROLE");
  return role != nullptr && std::string(role) == "worker";
}

std::unique_ptr<Transport> worker_transport() {
  // The driver can vanish while this worker writes a result frame; EPIPE
  // (not a fatal signal) is the contract the transports' send relies on.
  support::ignore_sigpipe();
  const char* connect_spec = std::getenv("MPIRICAL_EVAL_CONNECT");
  if (connect_spec != nullptr && connect_spec[0] != '\0') {
    // TCP dial-back deployment: the driver is listening and told us where.
    const auto [host, port] = split_host_port(connect_spec);
    return std::make_unique<SocketTransport>(
        tcp_connect(host, port, /*timeout_ms=*/10000));
  }
  return std::make_unique<PipeTransport>(/*read_fd=*/3, /*write_fd=*/4);
}

namespace {

std::string resolve_self_exec() {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    buf[len] = '\0';
    return std::string(buf);
  }
  return g_self_exec;
}

struct ProcessWorker {
  pid_t pid = -1;
  std::unique_ptr<Transport> transport;
};

ProcessWorker spawn_worker(const std::string& exe,
                           const std::vector<char*>& envp,
                           std::size_t shard_id) {
  int grant_pipe[2];
  int result_pipe[2];
  MR_CHECK(::pipe(grant_pipe) == 0, "pipe() failed");
  MR_CHECK(::pipe(result_pipe) == 0, "pipe() failed");
  // Parent-held ends are close-on-exec so later-spawned siblings do not
  // keep each other's pipes open (a dead worker must read as EOF).
  ::fcntl(grant_pipe[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(result_pipe[0], F_SETFD, FD_CLOEXEC);

  const pid_t pid = ::fork();
  MR_CHECK(pid >= 0, "fork() failed");
  if (pid == 0) {
    // Child: async-signal-safe calls only until execve. Park the two pipe
    // ends above the target fds first so dup2 cannot clobber them, then pin
    // grants to fd 3 and results to fd 4 (the worker_transport contract).
    const int grant_r = ::fcntl(grant_pipe[0], F_DUPFD, 10);
    const int result_w = ::fcntl(result_pipe[1], F_DUPFD, 10);
    if (grant_r < 0 || result_w < 0 || ::dup2(grant_r, 3) < 0 ||
        ::dup2(result_w, 4) < 0) {
      _exit(127);
    }
    // EVERY inherited fd above the pipe contract must go -- the old
    // `fd < 1024` loop leaked any higher descriptor (trivially reachable
    // under a serving daemon or a big shard count) into the worker, where a
    // leaked sibling pipe write-end blocks that sibling's EOF forever.
    support::close_fds_from(5);
    char* const argv[] = {const_cast<char*>(exe.c_str()), nullptr};
    ::execve(exe.c_str(), argv, envp.data());
    _exit(127);
  }
  ::close(grant_pipe[0]);
  ::close(result_pipe[1]);
  ProcessWorker worker;
  worker.pid = pid;
  worker.transport =
      std::make_unique<PipeTransport>(result_pipe[0], grant_pipe[1]);
  (void)shard_id;
  return worker;
}

/// Fork/exec of a TCP dial-back worker: no pipes -- the child inherits only
/// stdio (everything from fd 3 up is closed, including the driver's listen
/// socket) and finds the driver's address in MPIRICAL_EVAL_CONNECT.
pid_t spawn_worker_tcp(const std::string& exe,
                       const std::vector<char*>& envp) {
  const pid_t pid = ::fork();
  MR_CHECK(pid >= 0, "fork() failed");
  if (pid == 0) {
    support::close_fds_from(3);
    char* const argv[] = {const_cast<char*>(exe.c_str()), nullptr};
    ::execve(exe.c_str(), argv, envp.data());
    _exit(127);
  }
  return pid;
}

/// Accepts up to `expected` dial-back connections on `listen_fd`, bounded
/// by `deadline_ms` overall. A worker that died before connecting simply
/// yields fewer transports -- its chunks are never granted and the driver's
/// normal reassignment/in-process fallback covers them.
std::vector<std::unique_ptr<Transport>> accept_dialbacks(int listen_fd,
                                                         std::size_t expected,
                                                         int deadline_ms) {
  std::vector<std::unique_ptr<Transport>> out;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (out.size() < expected) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const int remaining_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, std::min(remaining_ms, 200));
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = tcp_accept(listen_fd);
    if (fd < 0) break;
    out.push_back(std::make_unique<SocketTransport>(fd));
  }
  return out;
}

}  // namespace

namespace {

/// Writes the world-snapshot bytes the workers will mmap to a unique temp
/// file (TMPDIR or /tmp). The bytes go through the original mkstemp
/// descriptor (no reopen-by-name window) and the returned RAII guard
/// unlinks the file on EVERY exit path -- a driver that throws mid-run
/// must not leave mpirical_eval_snapshot_* droppings in /tmp.
io::TempFile write_worker_snapshot(const std::string& bytes) {
  io::TempFile file(snapshot_temp_template());
  file.write(bytes);
  file.close_fd();  // workers open it by name; the driver only needs the path
  return file;
}

}  // namespace

core::EvalSummary evaluate_sharded_processes(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const ShardOptions& options,
    std::vector<core::ExamplePrediction>* predictions,
    ShardRunStats* run_stats) {
  MR_CHECK(worker_self_exec_configured(),
           "no self-exec worker binary registered");
  // A worker can die while the driver writes a grant; see
  // support::ignore_sigpipe for the process-wide policy (installed once,
  // not per evaluation).
  support::ignore_sigpipe();
  const std::string exe = resolve_self_exec();
  ShardRunStats local_stats;
  ShardRunStats& st = run_stats != nullptr ? *run_stats : local_stats;
  st = ShardRunStats{};

  // MPIRICAL_EVAL_TCP=1: workers dial back over TCP(127.0.0.1) instead of
  // inheriting pipes -- the local rehearsal of the cross-machine transport.
  // MPIRICAL_EVAL_SNAPSHOT_STREAM=1 additionally ships the snapshot bytes
  // in-band over those connections (no shared filesystem assumed), exactly
  // what the MPIRICAL_EVAL_HOSTS deployment always does.
  const bool tcp_mode = support::env_long("MPIRICAL_EVAL_TCP", 0, 0, 1) == 1;
  const bool have_snapshot = snapshot::snapshot_enabled();
  const bool stream_snapshot =
      tcp_mode && have_snapshot &&
      support::env_long("MPIRICAL_EVAL_SNAPSHOT_STREAM", 0, 0, 1) == 1;

  // Snapshot deployment: materialize the exact model + split into one
  // mmap-able blob ONCE; every worker's startup collapses to mmap +
  // pointer fixups instead of rebuilding the corpus from the environment.
  // The RAII guard unlinks the temp file even when the driver below throws.
  std::string snapshot_bytes;
  std::optional<io::TempFile> snapshot_file;
  if (have_snapshot) {
    Timer write_timer;
    snapshot_bytes = core::build_eval_snapshot(model, split);
    if (!stream_snapshot) {
      snapshot_file.emplace(write_worker_snapshot(snapshot_bytes));
    }
    st.used_snapshot = true;
    st.snapshot_streamed = stream_snapshot;
    st.snapshot_write_ms = write_timer.seconds() * 1e3;
    st.snapshot_bytes = snapshot_bytes.size();
  }

  const std::size_t chunks =
      make_wave_chunks(split.size(), decode_wave_size()).size();
  const std::size_t num_workers =
      std::max<std::size_t>(1, std::min(options.shards, std::max<std::size_t>(
                                                            chunks, 1)));
  // Presize the per-worker stat slots so index == worker id even when a
  // worker dies before reporting its StartupInfo (sentinel -1 stays).
  st.transport = tcp_mode ? "tcp" : "pipe";
  st.worker_startup_ms.assign(num_workers, -1.0);
  st.worker_load_ms.assign(num_workers, -1.0);

  // TCP mode listens before the child environment is built: the children
  // need the bound port.
  int listen_fd = -1;
  std::uint16_t port = 0;
  if (tcp_mode) {
    listen_fd = tcp_listen("127.0.0.1", 0,
                           static_cast<int>(num_workers) + 1, &port);
  }

  // Child environment: the parent's, plus the worker role marker (and the
  // dial-back address in TCP mode; a stale inherited one is stripped so a
  // pipe-mode run under a TCP-mode parent cannot dial a dead listener).
  // Built before fork so the child touches no allocator.
  std::vector<std::string> env_storage;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string entry(*e);
    if (entry.rfind("MPIRICAL_EVAL_SHARD_ROLE=", 0) == 0) continue;
    if (entry.rfind("MPIRICAL_EVAL_CONNECT=", 0) == 0) continue;
    env_storage.emplace_back(entry);
  }
  env_storage.emplace_back("MPIRICAL_EVAL_SHARD_ROLE=worker");
  if (tcp_mode) {
    env_storage.emplace_back("MPIRICAL_EVAL_CONNECT=127.0.0.1:" +
                             std::to_string(port));
  }
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (auto& s : env_storage) envp.push_back(s.data());
  envp.push_back(nullptr);

  std::vector<ProcessWorker> procs;
  std::vector<std::unique_ptr<Transport>> tcp_transports;
  std::vector<Transport*> transports;
  procs.reserve(num_workers);
  if (tcp_mode) {
    for (std::size_t w = 0; w < num_workers; ++w) {
      ProcessWorker proc;
      proc.pid = spawn_worker_tcp(exe, envp);
      procs.push_back(std::move(proc));
    }
    tcp_transports =
        accept_dialbacks(listen_fd, num_workers, /*deadline_ms=*/30000);
    ::close(listen_fd);
    listen_fd = -1;
    for (auto& t : tcp_transports) {
      transports.push_back(t.get());
      // First frames to every snapshot-mode worker: the world to load,
      // in-band or by path. A worker that already died fails the send
      // harmlessly; the driver reassigns its chunks.
      if (stream_snapshot) {
        const Timer stream_timer;
        send_snapshot_inband(*t, snapshot_bytes);
        const double secs = stream_timer.seconds();
        st.snapshot_stream_ms += secs * 1e3;
        obs::Recorder::global().record_phase(
            "shard/snapshot_stream",
            static_cast<std::uint64_t>(secs * 1e9));
      } else if (snapshot_file) {
        SnapshotHello hello;
        hello.path = snapshot_file->path();
        t->send(
            encode_frame(FrameType::kSnapshot, encode_snapshot_hello(hello)));
      }
    }
  } else {
    for (std::size_t w = 0; w < num_workers; ++w) {
      procs.push_back(spawn_worker(exe, envp, w));
      transports.push_back(procs.back().transport.get());
      if (snapshot_file) {
        SnapshotHello hello;
        hello.path = snapshot_file->path();
        transports.back()->send(
            encode_frame(FrameType::kSnapshot, encode_snapshot_hello(hello)));
      }
    }
  }

  core::EvalSummary summary =
      run_driver(model, split, transports, options, predictions, &st);

  if (snapshot_file) {
    // Workers have mapped the file (or died); the name can go. Mappings
    // keep the content alive until the workers exit.
    snapshot_file->unlink_now();
  }

  for (auto& proc : procs) {
    proc.transport.reset();  // closes both pipe ends; healthy workers exit
  }
  tcp_transports.clear();  // closes the sockets; dial-back workers see EOF
  // Reap with a grace window, then escalate: a wedged worker must not turn
  // a finished evaluation into an unbounded wait.
  for (auto& proc : procs) {
    int status = 0;
    bool reaped = false;
    for (int tick = 0; tick < 100; ++tick) {  // ~10 s
      const pid_t r = ::waitpid(proc.pid, &status, WNOHANG);
      if (r == proc.pid || (r < 0 && errno != EINTR)) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!reaped) {
      ::kill(proc.pid, SIGKILL);
      while (::waitpid(proc.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }
  publish_run_stats(st);
  return summary;
}

std::vector<std::string> env_eval_hosts() {
  std::vector<std::string> hosts;
  const char* spec = std::getenv("MPIRICAL_EVAL_HOSTS");
  if (spec == nullptr || spec[0] == '\0') return hosts;
  const std::string s(spec);
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = s.find(',', pos);
    const std::string part =
        s.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    if (!part.empty()) hosts.push_back(part);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return hosts;
}

core::EvalSummary evaluate_sharded_tcp_hosts(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const ShardOptions& options, const std::vector<std::string>& hosts,
    std::vector<core::ExamplePrediction>* predictions,
    ShardRunStats* run_stats) {
  MR_CHECK(!hosts.empty(),
           "tcp-hosts deployment needs at least one host:port");
  MR_CHECK(snapshot::snapshot_enabled(),
           "MPIRICAL_EVAL_HOSTS requires snapshots enabled: remote workers "
           "cannot rebuild the model from this process's environment");
  support::ignore_sigpipe();
  ShardRunStats local_stats;
  ShardRunStats& st = run_stats != nullptr ? *run_stats : local_stats;
  st = ShardRunStats{};

  Timer write_timer;
  const std::string bytes = core::build_eval_snapshot(model, split);
  st.transport = "tcp-hosts";
  st.used_snapshot = true;
  st.snapshot_streamed = true;
  st.snapshot_write_ms = write_timer.seconds() * 1e3;
  st.snapshot_bytes = bytes.size();
  st.worker_startup_ms.assign(hosts.size(), -1.0);
  st.worker_load_ms.assign(hosts.size(), -1.0);

  const int timeout_ms = static_cast<int>(support::env_long(
      "MPIRICAL_EVAL_CONNECT_TIMEOUT_MS", 10000, 1, 600000));
  std::vector<std::unique_ptr<Transport>> owned;
  std::vector<Transport*> transports;
  for (const auto& spec : hosts) {
    // A malformed spec is config garbage and throws; an unreachable host is
    // an operational condition -- skip it with a warning and let the driver
    // spread its chunks over the hosts that did answer (or, if none did,
    // fall back in-process).
    const auto [host, port] = split_host_port(spec);
    int fd = -1;
    try {
      fd = tcp_connect(host, port, timeout_ms);
    } catch (const Error& e) {
      std::fprintf(stderr,
                   "mpirical: eval host '%s' unreachable, skipping: %s\n",
                   spec.c_str(), e.what());
      continue;
    }
    auto t = std::make_unique<SocketTransport>(fd);
    // Remote filesystems are not assumed shared: the snapshot always goes
    // in-band. A worker that vanished mid-stream fails the send harmlessly;
    // its reader sees EOF and the driver reassigns.
    const Timer stream_timer;
    send_snapshot_inband(*t, bytes);
    const double secs = stream_timer.seconds();
    st.snapshot_stream_ms += secs * 1e3;
    obs::Recorder::global().record_phase(
        "shard/snapshot_stream", static_cast<std::uint64_t>(secs * 1e9));
    transports.push_back(t.get());
    owned.push_back(std::move(t));
  }

  core::EvalSummary summary =
      run_driver(model, split, transports, options, predictions, &st);
  owned.clear();  // closes the sockets
  publish_run_stats(st);
  return summary;
}

core::EvalSummary evaluate_sharded(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const ShardOptions& options,
    std::vector<core::ExamplePrediction>* predictions,
    ShardRunStats* run_stats) {
  if (split.empty()) {
    if (predictions) predictions->clear();
    if (run_stats) *run_stats = ShardRunStats{};
    return core::reduce_example_summaries({});
  }
  const std::vector<std::string> hosts = env_eval_hosts();
  if (!hosts.empty() && !is_worker_role()) {
    return evaluate_sharded_tcp_hosts(model, split, options, hosts,
                                      predictions, run_stats);
  }
  if (worker_self_exec_configured() && !is_worker_role()) {
    return evaluate_sharded_processes(model, split, options, predictions,
                                      run_stats);
  }
  return evaluate_sharded_inprocess(model, split, options, predictions,
                                    run_stats);
}

}  // namespace mpirical::shard
