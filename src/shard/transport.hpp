// Byte transports the shard protocol runs over.
//
// Two implementations of the same blocking stream interface:
//  - a loopback pair (two in-process endpoints over shared queues) so the
//    partitioner, frame protocol, and merge logic are unit-testable without
//    forking -- including injected worker death (EOF after k sends, with an
//    optional mid-frame truncation) for the failure-injection suite;
//  - a pipe transport over POSIX fds for real fork/exec worker processes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace mpirical::shard {

/// Blocking byte stream. `send` returns false once the peer is gone (a dead
/// worker / closed pipe); `recv_some` blocks for the next bytes and returns
/// an empty string on EOF.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual bool send(const std::string& bytes) = 0;
  virtual std::string recv_some() = 0;

  /// Byte accounting for THIS endpoint, maintained by every implementation
  /// (bytes actually handed to the kernel / peer queue, including protocol
  /// framing). The shard driver folds its workers' counters into
  /// ShardRunStats at the end of each run.
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

  /// Closes this endpoint's send direction; the peer drains buffered bytes
  /// and then sees EOF.
  virtual void close() = 0;

  /// Makes any current and future recv_some on THIS endpoint return EOF,
  /// even if the peer never closes -- the driver uses it to release its
  /// reader threads from a wedged (alive but silent) worker.
  virtual void shutdown_recv() = 0;

 protected:
  void note_sent(std::size_t n) {
    bytes_sent_.fetch_add(n, std::memory_order_relaxed);
  }
  void note_received(std::size_t n) {
    bytes_received_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

/// Injected failure for the WORKER end of a loopback pair: the endpoint
/// "dies" on its (fail_after_sends+1)-th send -- that send delivers only
/// `truncate_bytes` of its frame (0 = nothing), then both directions of the
/// endpoint behave like a dead process: sends are dropped and its recv
/// returns EOF immediately.
struct LoopbackFault {
  std::size_t fail_after_sends = static_cast<std::size_t>(-1);
  std::size_t truncate_bytes = 0;
};

/// Connected in-process endpoint pair: {driver_end, worker_end}. The fault,
/// if any, applies to the worker end.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair(const LoopbackFault& worker_fault = {});

/// Transport over ONE connected stream-socket fd (a Unix-domain serve
/// connection). Owns the fd. Unlike PipeTransport's fd pair, both directions
/// share the socket, so close() half-closes with shutdown(SHUT_WR): the peer
/// drains any in-flight frames and then sees EOF -- the serve protocol's
/// clean "no more requests" signal -- while this end can still read the
/// remaining results. Sends use MSG_NOSIGNAL, so a dead peer surfaces as a
/// false return even in a process that never touched the SIGPIPE
/// disposition.
class SocketTransport : public Transport {
 public:
  explicit SocketTransport(int fd);
  ~SocketTransport() override;

  bool send(const std::string& bytes) override;
  std::string recv_some() override;
  void close() override;
  void shutdown_recv() override;

 private:
  int fd_;
  std::atomic<bool> send_closed_{false};
  std::atomic<bool> recv_shutdown_{false};
};

/// Binds and listens on a Unix-domain stream socket at `path`. A socket
/// file already at `path` is probe-connected first: if something answers
/// (a LIVE daemon), this throws "daemon already serving <path>" instead of
/// silently stealing the address and stranding that daemon's clients; only
/// a genuinely stale file (nothing accepts) is unlinked. Throws Error on
/// failure; returns the listening fd (caller closes).
int unix_listen(const std::string& path, int backlog);

/// Accepts one connection on a unix_listen fd. Retries EINTR/ECONNABORTED
/// immediately and transient resource exhaustion (EMFILE/ENFILE/ENOBUFS/
/// ENOMEM) with a short backoff -- a loaded daemon resumes accepting once
/// descriptors free up instead of abandoning its listener. Returns -1 only
/// once the listening fd has been closed/shut down (EBADF/EINVAL -- the
/// daemon's shutdown path), so the accept loop can exit cleanly.
int unix_accept(int listen_fd);

/// Connects to the Unix-domain socket at `path`, retrying while the file
/// does not exist yet or the daemon's backlog refuses (it is still booting),
/// for up to `timeout_ms`. Throws Error on timeout or a hard error.
int unix_connect(const std::string& path, int timeout_ms);

// ---- TCP: the cross-machine transport ---------------------------------------
//
// Same byte-stream contract as the Unix-domain path (SocketTransport works
// unchanged over the returned fds); these helpers add hostname resolution,
// TCP_NODELAY (the protocol writes whole small frames and waits for
// replies -- Nagle would serialize every grant/result exchange on a ~40 ms
// delayed-ack timer), and the same connect-retry and accept-retry semantics
// as the Unix helpers.

/// Splits "host:port" (the MPIRICAL_EVAL_HOSTS / --listen spec format) into
/// its parts. `host` may be a hostname or IPv4/IPv6 literal; an empty host
/// (":port") means "any interface" for listeners. Throws Error on a
/// malformed spec or an out-of-range port.
std::pair<std::string, std::uint16_t> split_host_port(const std::string& spec);

/// Resolves `host` (empty = any interface) and listens on `port` (0 = pick
/// an ephemeral port) with SO_REUSEADDR. Returns the listening fd; when
/// `bound_port` is non-null it receives the actual bound port (the reason 0
/// is useful). Throws Error on resolution/bind/listen failure.
int tcp_listen(const std::string& host, std::uint16_t port, int backlog,
               std::uint16_t* bound_port = nullptr);

/// Accepts one connection on a tcp_listen fd with the same transient-error
/// retry/fatal classification as unix_accept, and sets TCP_NODELAY on the
/// accepted socket. Returns -1 once the listener is closed/shut down.
int tcp_accept(int listen_fd);

/// Resolves `host` and connects to `host:port`, retrying refused/unreachable
/// attempts (the peer is still booting) for up to `timeout_ms`, like
/// unix_connect. Sets TCP_NODELAY on the connected socket. Throws Error on
/// timeout, resolution failure, or a hard error.
int tcp_connect(const std::string& host, std::uint16_t port, int timeout_ms);

/// Transport over a POSIX (read_fd, write_fd) pair. Owns and closes the fds.
class PipeTransport : public Transport {
 public:
  PipeTransport(int read_fd, int write_fd);
  ~PipeTransport() override;

  bool send(const std::string& bytes) override;
  std::string recv_some() override;
  void close() override;
  void shutdown_recv() override;

 private:
  int read_fd_;
  int write_fd_;
  std::atomic<bool> recv_shutdown_{false};
};

}  // namespace mpirical::shard
