// Length-prefixed binary wire protocol between the shard driver and its
// eval workers.
//
// Every frame is:  u32 magic ("MPRS") | u8 type | u32 payload_len | payload
// with all integers little-endian and doubles shipped as raw IEEE-754 bit
// patterns (the merge must be BITWISE identical to the unsharded reduction,
// so no text round-trip is allowed). The conversation is worker-driven:
//
//   worker -> driver   kTaskRequest              (give me a chunk)
//   driver -> worker   kTaskGrant TaskGrant      (chunk + beam/tolerance)
//   worker -> driver   kHeartbeat                (grant ack / liveness)
//   worker -> driver   kResult ResultRecord      (one per example)
//   driver -> worker   kDone                     (no more work; exit)
//   worker -> driver   kDone                     (clean shutdown, then EOF)
//
// FrameParser rejects garbage headers loudly (wrong magic, unknown type,
// absurd length) and exposes `has_partial` so a stream that ends mid-frame
// (a worker dying mid-record) is distinguishable from a clean EOF.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cast/node.hpp"
#include "metrics/metrics.hpp"

namespace mpirical::shard {

enum class FrameType : std::uint8_t {
  kTaskRequest = 1,
  kTaskGrant = 2,
  kResult = 3,
  kHeartbeat = 4,
  kDone = 5,
  // Snapshot deployment (MPIRICAL_SNAPSHOT enabled): the driver's FIRST
  // frame to a spawned worker names the world-snapshot file to mmap; the
  // worker answers with its startup timings once it is ready to serve.
  kSnapshot = 6,      // driver -> worker: world-snapshot path
  kStartupInfo = 7,   // worker -> driver: startup_us + snapshot load_us
  // Serving (src/serve): a persistent daemon speaks the same framing over a
  // Unix-domain socket. Clients pipeline kTranslateRequest frames and read
  // kTranslateResult frames back in COMPLETION order (continuous wave
  // batching finishes short programs early); a client half-close (EOF after
  // its last request) asks the daemon to finish that connection's in-flight
  // work and close. kServeShutdown from any client stops admission, drains
  // every live request, and exits the daemon.
  kTranslateRequest = 8,  // client -> daemon: TranslateWireRequest
  kTranslateResult = 9,   // daemon -> client: TranslateWireResult
  kServeShutdown = 10,    // client -> daemon: drain and exit (no payload)
  // In-band snapshot streaming (cross-machine TCP workers, where the
  // driver's filesystem is not shared): instead of a kSnapshot path hello,
  // the driver streams the world-snapshot bytes themselves -- a
  // kSnapshotBegin announcing size + whole-stream checksum, then chunked,
  // individually-checksummed kSnapshotChunk frames the worker appends to a
  // local temp file, then kSnapshotEnd. The worker verifies both checksum
  // layers, mmaps the temp file, and proceeds exactly like a path-mode
  // worker (kStartupInfo, then the task loop).
  kSnapshotBegin = 11,  // driver -> worker: SnapshotStreamBegin
  kSnapshotChunk = 12,  // driver -> worker: SnapshotStreamChunk
  kSnapshotEnd = 13,    // driver -> worker: stream complete (no payload)
  // Observability (src/obs): a worker's per-run phase measurements, sent
  // once right before its closing kDone so the driver can merge every
  // worker's timing breakdown into the run's ShardRunStats / recorder
  // (next to kStartupInfo, which carries only the spawn-time story).
  kStatsReport = 14,  // worker -> driver: StatsReport
};

constexpr std::uint32_t kFrameMagic = 0x5352504D;  // "MPRS" little-endian
constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;  // 64 MiB

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

std::string encode_frame(FrameType type, const std::string& payload);

/// Incremental frame decoder over an arbitrary byte stream.
class FrameParser {
 public:
  /// Buffers more stream bytes. Throws Error as soon as a header is
  /// determinable and invalid (bad magic / unknown type / oversized length).
  void feed(const void* data, std::size_t n);

  /// Pops the next complete frame, if one is buffered.
  std::optional<Frame> next();

  /// True when buffered bytes form an incomplete frame (stream truncated if
  /// EOF follows).
  bool has_partial() const { return buf_.size() > pos_; }

 private:
  void validate_header() const;

  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
};

/// Driver -> worker: evaluate split examples [begin, end).
struct TaskGrant {
  std::uint64_t chunk_index = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::int32_t beam_width = 1;
  std::int32_t line_tolerance = 1;
};

/// Worker -> driver: everything the merge needs for ONE example -- the
/// per-example Table II terms (integer PRF counts, raw-bit sequence scores)
/// plus the prediction for the caller's out-parameter.
struct ResultRecord {
  std::uint64_t chunk_index = 0;
  std::uint64_t example_index = 0;
  metrics::PrfCounts m_counts;
  metrics::PrfCounts mcc_counts;
  double bleu = 0.0;
  double meteor = 0.0;
  double rouge_l = 0.0;
  double acc = 0.0;
  bool parsed = false;
  std::vector<ast::CallSite> predicted_calls;
  std::string predicted_code;
};

std::string encode_task_grant(const TaskGrant& grant);
/// Throws Error on truncated or oversized payloads.
TaskGrant decode_task_grant(const std::string& payload);

std::string encode_result(const ResultRecord& record);
/// Throws Error on truncated or oversized payloads.
ResultRecord decode_result(const std::string& payload);

/// Driver -> worker: mmap this world snapshot instead of rebuilding the
/// corpus/model from the environment.
struct SnapshotHello {
  std::string path;
};

/// Worker -> driver: how long the worker took to become ready (exec to
/// first task request, excluding time spent waiting for the driver) and how
/// much of that was the snapshot mmap + fixups. Microseconds, integral, so
/// the record is platform-stable on the wire.
struct StartupInfo {
  std::uint64_t startup_us = 0;
  std::uint64_t load_us = 0;
};

std::string encode_snapshot_hello(const SnapshotHello& hello);
SnapshotHello decode_snapshot_hello(const std::string& payload);

std::string encode_startup_info(const StartupInfo& info);
StartupInfo decode_startup_info(const std::string& payload);

/// One aggregated phase in a worker's StatsReport: `path` is relative to
/// the worker (the driver prefixes "shard/worker/"), durations are integral
/// nanoseconds so the wire record is platform-stable like StartupInfo.
struct StatsReportEntry {
  std::string path;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Worker -> driver: the worker's per-run phase measurements, shipped once
/// right before its closing kDone.
struct StatsReport {
  std::vector<StatsReportEntry> phases;
};

std::string encode_stats_report(const StatsReport& report);
/// Throws Error on truncated payloads or a forged entry count.
StatsReport decode_stats_report(const std::string& payload);

/// Driver -> worker: an in-band snapshot stream of `total_bytes` follows,
/// whose FNV-1a-64 over the complete byte sequence is `checksum`.
struct SnapshotStreamBegin {
  std::uint64_t total_bytes = 0;
  std::uint64_t checksum = 0;
};

/// Driver -> worker: one contiguous slice of the snapshot stream. `offset`
/// is the slice's position in the stream (chunks arrive in order; a gap or
/// overlap means a corrupt/duplicated stream) and `checksum` is the
/// FNV-1a-64 of `data` alone, so a bit flip is caught per-chunk instead of
/// only at the end of a multi-hundred-MB stream.
struct SnapshotStreamChunk {
  std::uint64_t offset = 0;
  std::uint64_t checksum = 0;
  std::string data;
};

/// Chunk payload size the driver streams with: comfortably under the frame
/// cap, big enough that framing overhead is noise.
constexpr std::size_t kSnapshotChunkBytes = std::size_t{4} << 20;  // 4 MiB

std::string encode_snapshot_begin(const SnapshotStreamBegin& begin);
/// Throws Error on truncated payloads or an absurd total size.
SnapshotStreamBegin decode_snapshot_begin(const std::string& payload);

std::string encode_snapshot_chunk(const SnapshotStreamChunk& chunk);
/// Throws Error on truncated payloads or a per-chunk checksum mismatch (the
/// decode verifies `checksum` against `data`).
SnapshotStreamChunk decode_snapshot_chunk(const std::string& payload);

/// Client -> daemon: translate one source program. `id` is chosen by the
/// client (unique per connection) and echoed on the result frame, which is
/// what lets a pipelined client match out-of-completion-order results back
/// to its requests.
struct TranslateWireRequest {
  std::uint64_t id = 0;
  std::string input_code;
  std::string input_xsbt;
  std::int32_t beam_width = 1;
};

/// Daemon -> client: the predicted MPI program for request `id`.
/// `joined_running_wave` reports whether the request was admitted into a
/// wave that already had older requests mid-decode (the continuous-batching
/// path the serve bench exercises) rather than starting a fresh wave.
struct TranslateWireResult {
  std::uint64_t id = 0;
  std::string output_code;
  std::uint8_t joined_running_wave = 0;
};

std::string encode_translate_request(const TranslateWireRequest& req);
/// Throws Error on truncated or oversized payloads.
TranslateWireRequest decode_translate_request(const std::string& payload);

std::string encode_translate_result(const TranslateWireResult& res);
/// Throws Error on truncated or oversized payloads.
TranslateWireResult decode_translate_result(const std::string& payload);

}  // namespace mpirical::shard
