// Sharded corpus evaluation: distributes decode waves across N workers and
// merges their per-example records into an EvalSummary that is bit-identical
// to the unsharded core::evaluate_model, regardless of shard count, partition
// mode, or completion order.
//
// Why bitwise is achievable: chunks are exactly the unsharded wave groups
// (see partition.hpp), decode is deterministic for a fixed wave membership,
// per-example scores travel as raw IEEE-754 bits, and the driver reduces the
// per-example summaries in canonical example order through the same
// core::reduce_example_summaries the unsharded path uses.
//
// Two deployment shapes share one driver/worker protocol implementation:
//  - loopback: workers are std::threads over in-process queue transports
//    (the default for core::evaluate_model with MPIRICAL_EVAL_SHARDS > 1,
//    and the harness for the differential/failure tests);
//  - processes: the driver fork/execs N copies of a registered self-exec
//    binary with MPIRICAL_EVAL_SHARD_ROLE=worker, talking over pipes on fds
//    3 (grants in) and 4 (results out). The worker binary rebuilds the same
//    model+split from its (inherited) environment and calls run_worker --
//    bench_table2_corpus_eval does exactly this via bench_common.
//
// Fault model: a worker that dies (EOF, mid-frame truncation, garbage) has
// its unfinished chunks reassigned to live workers; if none remain, the
// driver evaluates the leftovers in-process, so the merged summary is always
// complete and still oracle-equal.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "corpus/dataset.hpp"
#include "obs/recorder.hpp"
#include "shard/partition.hpp"
#include "shard/protocol.hpp"
#include "shard/transport.hpp"

namespace mpirical::shard {

struct ShardOptions {
  std::size_t shards = 1;
  PartitionMode mode = PartitionMode::kDynamic;
  int beam_width = 1;
  int line_tolerance = 1;
  /// Test hook: per-worker loopback fault injection (index = worker id);
  /// workers beyond the vector run fault-free. Loopback path only.
  std::vector<LoopbackFault> loopback_faults;
};

/// MPIRICAL_EVAL_SHARDS (default 1 = unsharded in-process wave loop).
std::size_t env_shards();

/// Observability for ONE sharded evaluation run (the benches surface these
/// in BENCH_table2.json). Recorder-backed: the driver accumulates the same
/// measurements into obs::Recorder::global() under "shard/..." paths, and
/// every evaluate_sharded* entry point fills a caller-provided instance via
/// its `run_stats` out-parameter -- stats are scoped to the run, not to a
/// process-global that a throwing or concurrent run could corrupt. Worker
/// arrays are indexed by worker id; a worker that never reported (died
/// early, legacy loopback) holds the sentinel -1.
struct ShardRunStats {
  bool used_snapshot = false;        // world snapshot shipped path-over-pipe
  bool snapshot_streamed = false;    // snapshot bytes went in-band (TCP)
  std::string transport;             // "loopback" | "pipe" | "tcp" |
                                     // "tcp-hosts" ("" = no run yet)
  double snapshot_write_ms = 0.0;    // driver: build + write the world file
  std::uint64_t snapshot_bytes = 0;  // world file size
  std::vector<double> worker_startup_ms;  // exec -> ready (per worker)
  std::vector<double> worker_load_ms;     // world load (mmap+fixups or
                                          // legacy env rebuild) per worker
  // Driver-side phase measurements (obs paths in parentheses):
  obs::PhaseStat grant_rtt;          // grant sent -> chunk's final result
                                     // merged ("shard/grant_rtt")
  double snapshot_stream_ms = 0.0;   // in-band snapshot send time
                                     // ("shard/snapshot_stream")
  std::uint64_t reassigned_chunks = 0;  // grants returned by dead workers
  std::uint64_t stolen_chunks = 0;      // chunks re-granted to another worker
  std::uint64_t bytes_sent = 0;         // driver->worker transport bytes
  std::uint64_t bytes_received = 0;     // worker->driver transport bytes
  // Worker-side phases shipped via kStatsReport, aggregated across workers
  // by path (paths are worker-relative, e.g. "chunk_eval"; the recorder
  // carries them as "shard/worker/<path>").
  std::vector<obs::PhaseStat> worker_phases;
};

/// Thin compatibility shim over the run-scoped stats: a snapshot of the
/// LAST SUCCESSFULLY COMPLETED evaluate_sharded* run in this process,
/// published atomically at the end of the run -- a run that throws can no
/// longer leave half-written stats behind, and concurrent runs each publish
/// a complete record instead of racing field-by-field. New code should
/// prefer the `run_stats` out-parameters.
ShardRunStats last_run_stats();

/// Evaluates split examples [grant.begin, grant.end) in-process: one decode
/// wave through translate_batch plus per-example scoring. Shared by worker
/// loops and the driver's dead-worker fallback.
std::vector<ResultRecord> evaluate_chunk(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const TaskGrant& grant);

/// Worker side of the protocol: request chunks, evaluate, stream one
/// ResultRecord per example, until the driver says kDone or the transport
/// dies. Never throws on transport loss -- it just returns.
void run_worker(const core::MpiRical& model,
                const std::vector<corpus::Example>& split,
                Transport& transport);

/// Snapshot-deployment worker entry: blocks for the driver's kSnapshot
/// frame, mmap-loads the world snapshot it names (weights become zero-copy
/// views into the mapping), reports a StartupInfo of `pre_ms` (the caller's
/// process-setup time so far) plus the load time, then serves chunks via
/// run_worker. Returns without throwing on a dead/corrupt driver stream or
/// an unloadable snapshot (the driver reassigns the chunks).
void run_worker_from_snapshot(Transport& transport, double pre_ms);

/// Sends the worker's StartupInfo (legacy rebuild-from-env workers call
/// this themselves so before/after spawn costs land in the same bench
/// record). Returns false when the driver is gone.
bool send_startup_info(Transport& transport, double startup_ms,
                       double load_ms);

/// Driver side of in-band snapshot deployment: streams `bytes` as a
/// kSnapshotBegin / chunked kSnapshotChunk / kSnapshotEnd sequence (each
/// chunk individually checksummed, the whole stream checksummed in the
/// begin frame). The worker counterpart is run_worker_from_snapshot, which
/// accepts this in place of a kSnapshot path hello. Returns false when the
/// worker vanished mid-stream.
bool send_snapshot_inband(Transport& transport, const std::string& bytes);

/// Driver side: partitions the split into wave chunks, serves grants over
/// the worker transports, reassigns on worker death, evaluates any
/// still-missing chunks in-process, and merges in canonical example order.
core::EvalSummary run_driver(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const std::vector<Transport*>& workers, const ShardOptions& options,
    std::vector<core::ExamplePrediction>* predictions = nullptr,
    ShardRunStats* run_stats = nullptr);

/// Loopback deployment: N worker threads in this process.
core::EvalSummary evaluate_sharded_inprocess(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const ShardOptions& options,
    std::vector<core::ExamplePrediction>* predictions = nullptr,
    ShardRunStats* run_stats = nullptr);

/// Registers the binary to fork/exec for multi-process sharding. The binary
/// must, when MPIRICAL_EVAL_SHARD_ROLE=worker is set, rebuild the identical
/// model and split and call run_worker over worker_transport().
void set_worker_self_exec(const std::string& exe_path);
bool worker_self_exec_configured();

/// True in a process launched as a shard worker.
bool is_worker_role();

/// The spawned worker's transport back to the driver: a TCP dial-back when
/// MPIRICAL_EVAL_CONNECT=host:port is set (the MPIRICAL_EVAL_TCP
/// deployment), else the pipe pair (grants on fd 3, results on fd 4).
std::unique_ptr<Transport> worker_transport();

/// Process deployment: fork/execs the registered self-exec binary per shard.
/// With MPIRICAL_EVAL_TCP=1 the workers talk TCP instead of pipes: the
/// driver listens on an ephemeral 127.0.0.1 port, each spawned worker dials
/// back (MPIRICAL_EVAL_CONNECT=host:port in its environment), and the
/// snapshot ships by path as usual -- or in-band over the connection when
/// MPIRICAL_EVAL_SNAPSHOT_STREAM=1 forces the no-shared-filesystem path.
core::EvalSummary evaluate_sharded_processes(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const ShardOptions& options,
    std::vector<core::ExamplePrediction>* predictions = nullptr,
    ShardRunStats* run_stats = nullptr);

/// Cross-machine deployment: dials pre-started listening workers
/// (mpirical_eval_worker --listen host:port) at each "host:port" in `hosts`
/// and streams the world snapshot to each IN-BAND -- the remote filesystem
/// is not assumed shared. A host that cannot be reached within the connect
/// timeout is skipped with a warning; if none answer (or workers die), the
/// driver's usual reassignment/in-process fallback keeps the merge total.
/// Requires snapshots enabled (remote workers cannot rebuild the model from
/// this process's environment).
core::EvalSummary evaluate_sharded_tcp_hosts(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const ShardOptions& options, const std::vector<std::string>& hosts,
    std::vector<core::ExamplePrediction>* predictions = nullptr,
    ShardRunStats* run_stats = nullptr);

/// Parses MPIRICAL_EVAL_HOSTS (comma-separated host:port list); empty when
/// unset.
std::vector<std::string> env_eval_hosts();

/// What core::evaluate_model routes through for MPIRICAL_EVAL_SHARDS > 1:
/// MPIRICAL_EVAL_HOSTS picks the cross-machine TCP deployment; otherwise
/// the process deployment when a self-exec worker is registered (and this
/// process is not itself a worker), else loopback threads.
core::EvalSummary evaluate_sharded(
    const core::MpiRical& model, const std::vector<corpus::Example>& split,
    const ShardOptions& options,
    std::vector<core::ExamplePrediction>* predictions = nullptr,
    ShardRunStats* run_stats = nullptr);

}  // namespace mpirical::shard
