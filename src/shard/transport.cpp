#include "shard/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/check.hpp"

namespace mpirical::shard {

namespace {

/// Shared state of one loopback connection: a byte queue per direction plus
/// liveness flags. `worker_dead` models a process death: both directions cut
/// at once, possibly mid-frame.
struct LoopbackState {
  std::mutex mu;
  std::condition_variable cv;
  std::string to_driver;
  std::string to_worker;
  bool driver_closed = false;  // driver's send side closed
  bool worker_closed = false;  // worker's send side closed
  bool worker_dead = false;    // injected fault fired
  bool driver_recv_shutdown = false;  // driver abandoned its recv side
  bool worker_recv_shutdown = false;  // worker abandoned its recv side
  LoopbackFault fault;
  std::size_t worker_sends = 0;
};

class LoopbackEndpoint : public Transport {
 public:
  LoopbackEndpoint(std::shared_ptr<LoopbackState> state, bool is_driver)
      : state_(std::move(state)), is_driver_(is_driver) {}

  ~LoopbackEndpoint() override { close(); }

  bool send(const std::string& bytes) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (is_driver_) {
      if (state_->driver_closed) return false;
      // Sending to a dead worker succeeds at the pipe level (the driver
      // only learns of the death from the recv side), so the bytes are
      // simply dropped -- like writing to a pipe whose reader is gone
      // with SIGPIPE ignored.
      if (!state_->worker_dead) {
        state_->to_worker.append(bytes);
        note_sent(bytes.size());
        state_->cv.notify_all();
      }
      return !state_->worker_dead;
    }
    if (state_->worker_closed || state_->worker_dead) return false;
    if (state_->worker_sends == state_->fault.fail_after_sends) {
      // The fatal send: deliver a truncated prefix, then die.
      const std::size_t delivered =
          std::min(state_->fault.truncate_bytes, bytes.size());
      state_->to_driver.append(bytes.substr(0, delivered));
      note_sent(delivered);
      state_->worker_dead = true;
      state_->cv.notify_all();
      return false;
    }
    ++state_->worker_sends;
    state_->to_driver.append(bytes);
    note_sent(bytes.size());
    state_->cv.notify_all();
    return true;
  }

  std::string recv_some() override {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (is_driver_) {
      state_->cv.wait(lock, [&] {
        return !state_->to_driver.empty() || state_->worker_closed ||
               state_->worker_dead || state_->driver_recv_shutdown;
      });
      if (state_->driver_recv_shutdown) return std::string();
      std::string out = std::move(state_->to_driver);
      state_->to_driver.clear();
      note_received(out.size());
      return out;  // empty => worker closed/died with nothing buffered
    }
    state_->cv.wait(lock, [&] {
      return !state_->to_worker.empty() || state_->driver_closed ||
             state_->worker_dead || state_->worker_recv_shutdown;
    });
    if (state_->worker_dead || state_->worker_recv_shutdown) {
      return std::string();
    }
    std::string out = std::move(state_->to_worker);
    state_->to_worker.clear();
    note_received(out.size());
    return out;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (is_driver_) {
      state_->driver_closed = true;
    } else {
      state_->worker_closed = true;
    }
    state_->cv.notify_all();
  }

  void shutdown_recv() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (is_driver_) {
      state_->driver_recv_shutdown = true;
    } else {
      state_->worker_recv_shutdown = true;
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<LoopbackState> state_;
  bool is_driver_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair(const LoopbackFault& worker_fault) {
  auto state = std::make_shared<LoopbackState>();
  state->fault = worker_fault;
  return {std::make_unique<LoopbackEndpoint>(state, /*is_driver=*/true),
          std::make_unique<LoopbackEndpoint>(state, /*is_driver=*/false)};
}

PipeTransport::PipeTransport(int read_fd, int write_fd)
    : read_fd_(read_fd), write_fd_(write_fd) {}

PipeTransport::~PipeTransport() {
  close();
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

bool PipeTransport::send(const std::string& bytes) {
  if (write_fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(write_fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      note_sent(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE (peer gone) or any other hard error: give up on this peer.
    // Callers run with SIGPIPE ignored, so EPIPE surfaces here.
    ::close(write_fd_);
    write_fd_ = -1;
    return false;
  }
  return true;
}

std::string PipeTransport::recv_some() {
  if (read_fd_ < 0) return std::string();
  char buf[65536];
  // Poll with a short timeout instead of blocking in read() so that
  // shutdown_recv can release a reader even when the peer process is
  // wedged and will never close its end of the pipe.
  for (;;) {
    if (recv_shutdown_.load(std::memory_order_acquire)) return std::string();
    struct pollfd pfd;
    pfd.fd = read_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::string();
    }
    if (ready == 0) continue;  // timeout: re-check the shutdown flag
    const ssize_t n = ::read(read_fd_, buf, sizeof(buf));
    if (n > 0) {
      note_received(static_cast<std::size_t>(n));
      return std::string(buf, static_cast<std::size_t>(n));
    }
    if (n < 0 && errno == EINTR) continue;
    return std::string();  // EOF or hard error
  }
}

void PipeTransport::close() {
  if (write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

void PipeTransport::shutdown_recv() {
  recv_shutdown_.store(true, std::memory_order_release);
}

SocketTransport::SocketTransport(int fd) : fd_(fd) {
  MR_CHECK(fd >= 0, "socket transport over an invalid fd");
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketTransport::send(const std::string& bytes) {
  if (fd_ < 0 || send_closed_.load(std::memory_order_acquire)) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      note_sent(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET (peer gone) or any other hard error: give up on
    // this peer's send direction but keep the fd open -- results already in
    // the kernel buffer may still be readable, and recv_some reports the
    // definitive EOF.
    send_closed_.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

std::string SocketTransport::recv_some() {
  if (fd_ < 0) return std::string();
  char buf[65536];
  // Same poll-with-timeout loop as PipeTransport, so shutdown_recv releases
  // a blocked reader even when the peer never closes.
  for (;;) {
    if (recv_shutdown_.load(std::memory_order_acquire)) return std::string();
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::string();
    }
    if (ready == 0) continue;  // timeout: re-check the shutdown flag
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      note_received(static_cast<std::size_t>(n));
      return std::string(buf, static_cast<std::size_t>(n));
    }
    if (n < 0 && errno == EINTR) continue;
    return std::string();  // EOF or hard error
  }
}

void SocketTransport::close() {
  if (fd_ < 0) return;
  if (!send_closed_.exchange(true, std::memory_order_acq_rel)) {
    ::shutdown(fd_, SHUT_WR);
  }
}

void SocketTransport::shutdown_recv() {
  recv_shutdown_.store(true, std::memory_order_release);
}

namespace {

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  MR_CHECK(path.size() < sizeof(addr.sun_path),
           "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Shared accept loop. A transient failure must NOT be read as "listener
/// shut down": ECONNABORTED (client gave up in the backlog) retries
/// immediately, and resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM)
/// retries with a short capped backoff so a daemon that ran out of
/// descriptors under load resumes accepting as soon as some free up. Only a
/// genuinely dead listener (EBADF after close, EINVAL after shutdown,
/// ENOTSOCK) returns -1 and lets the accept loop exit.
int accept_retry(int listen_fd) {
  int backoff_ms = 1;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    const int err = errno;
    if (err == EINTR || err == ECONNABORTED) continue;
    if (err == EBADF || err == EINVAL || err == ENOTSOCK ||
        err == EOPNOTSUPP) {
      return -1;  // listener closed / shut down: accept loop exits
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 100);
  }
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

int unix_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_addr(path);
  // A socket file already at `path` may belong to a LIVE daemon; the old
  // unconditional unlink silently stole the address and stranded that
  // daemon's clients. Probe-connect first: an accepted connection (or a
  // full backlog, EAGAIN on AF_UNIX) means live -- fail loudly; only a file
  // nothing answers at is stale droppings from a dead process.
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    MR_CHECK(S_ISSOCK(st.st_mode),
             "unix_listen path exists and is not a socket: " + path);
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MR_CHECK(probe >= 0,
             std::string("socket(AF_UNIX): ") + std::strerror(errno));
    const int rc =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr));
    const int err = errno;
    ::close(probe);
    MR_CHECK(rc != 0 && err != EAGAIN, "daemon already serving " + path);
    ::unlink(path.c_str());  // stale socket from a dead daemon
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  MR_CHECK(fd >= 0, std::string("socket(AF_UNIX): ") + std::strerror(errno));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    MR_CHECK(false, "bind(" + path + "): " + std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    MR_CHECK(false, "listen(" + path + "): " + std::strerror(err));
  }
  return fd;
}

int unix_accept(int listen_fd) { return accept_retry(listen_fd); }

int unix_connect(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = unix_addr(path);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MR_CHECK(fd >= 0, std::string("socket(AF_UNIX): ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    // The daemon may still be booting: no socket file yet (ENOENT) or a
    // full backlog (ECONNREFUSED/EAGAIN). Anything else is a hard error.
    MR_CHECK(err == ENOENT || err == ECONNREFUSED || err == EAGAIN ||
                 err == EINTR,
             "connect(" + path + "): " + std::strerror(err));
    MR_CHECK(std::chrono::steady_clock::now() < deadline,
             "connect(" + path + "): timed out waiting for the daemon");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::pair<std::string, std::uint16_t> split_host_port(
    const std::string& spec) {
  // The port is everything after the LAST colon, so bracketless IPv6
  // literals ("::1:8080") parse the way the spec format documents.
  const std::size_t colon = spec.rfind(':');
  MR_CHECK(colon != std::string::npos && colon + 1 < spec.size(),
           "host:port spec missing a port: '" + spec + "'");
  std::string host = spec.substr(0, colon);
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']') {
    host = host.substr(1, host.size() - 2);  // [v6]:port form
  }
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  errno = 0;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  MR_CHECK(errno == 0 && end != port_str.c_str() && *end == '\0' &&
               port >= 0 && port <= 65535,
           "bad port in host:port spec: '" + spec + "'");
  return {std::move(host), static_cast<std::uint16_t>(port)};
}

namespace {

struct ResolvedAddrs {
  addrinfo* list = nullptr;
  ~ResolvedAddrs() {
    if (list != nullptr) ::freeaddrinfo(list);
  }
};

void resolve(const std::string& host, std::uint16_t port, bool passive,
             ResolvedAddrs& out) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  char port_str[16];
  std::snprintf(port_str, sizeof(port_str), "%u",
                static_cast<unsigned>(port));
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_str, &hints, &out.list);
  MR_CHECK(rc == 0, "resolve '" + (host.empty() ? std::string("*") : host) +
                        "': " + ::gai_strerror(rc));
}

std::uint16_t local_port(int fd) {
  sockaddr_storage addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  return 0;
}

}  // namespace

int tcp_listen(const std::string& host, std::uint16_t port, int backlog,
               std::uint16_t* bound_port) {
  ResolvedAddrs addrs;
  resolve(host, port, /*passive=*/true, addrs);
  int last_err = 0;
  for (const addrinfo* ai = addrs.list; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    // SO_REUSEADDR: a restarted driver/daemon must not wait out TIME_WAIT
    // on its well-known port.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      if (bound_port != nullptr) *bound_port = local_port(fd);
      return fd;
    }
    last_err = errno;
    ::close(fd);
  }
  MR_CHECK(false, "tcp_listen(" + host + ":" + std::to_string(port) +
                      "): " + std::strerror(last_err));
  return -1;  // unreachable
}

int tcp_accept(int listen_fd) {
  const int fd = accept_retry(listen_fd);
  if (fd >= 0) set_tcp_nodelay(fd);
  return fd;
}

int tcp_connect(const std::string& host, std::uint16_t port, int timeout_ms) {
  const std::string what = "tcp_connect(" + host + ":" +
                           std::to_string(port) + ")";
  // Resolution failure is a hard error (typo'd host), not something a retry
  // deadline should mask.
  ResolvedAddrs addrs;
  resolve(host, port, /*passive=*/false, addrs);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int last_err = 0;
    for (const addrinfo* ai = addrs.list; ai != nullptr; ai = ai->ai_next) {
      const int fd =
          ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        last_err = errno;
        continue;
      }
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        set_tcp_nodelay(fd);
        return fd;
      }
      last_err = errno;
      ::close(fd);
    }
    // The peer may still be booting (nothing listening yet) or briefly
    // unreachable; anything else is a hard error worth surfacing now.
    MR_CHECK(last_err == ECONNREFUSED || last_err == ETIMEDOUT ||
                 last_err == ENETUNREACH || last_err == EHOSTUNREACH ||
                 last_err == ECONNRESET || last_err == EAGAIN ||
                 last_err == EINTR,
             what + ": " + std::strerror(last_err));
    MR_CHECK(std::chrono::steady_clock::now() < deadline,
             what + ": timed out waiting for the peer");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace mpirical::shard
