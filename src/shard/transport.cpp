#include "shard/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/check.hpp"

namespace mpirical::shard {

namespace {

/// Shared state of one loopback connection: a byte queue per direction plus
/// liveness flags. `worker_dead` models a process death: both directions cut
/// at once, possibly mid-frame.
struct LoopbackState {
  std::mutex mu;
  std::condition_variable cv;
  std::string to_driver;
  std::string to_worker;
  bool driver_closed = false;  // driver's send side closed
  bool worker_closed = false;  // worker's send side closed
  bool worker_dead = false;    // injected fault fired
  bool driver_recv_shutdown = false;  // driver abandoned its recv side
  bool worker_recv_shutdown = false;  // worker abandoned its recv side
  LoopbackFault fault;
  std::size_t worker_sends = 0;
};

class LoopbackEndpoint : public Transport {
 public:
  LoopbackEndpoint(std::shared_ptr<LoopbackState> state, bool is_driver)
      : state_(std::move(state)), is_driver_(is_driver) {}

  ~LoopbackEndpoint() override { close(); }

  bool send(const std::string& bytes) override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (is_driver_) {
      if (state_->driver_closed) return false;
      // Sending to a dead worker succeeds at the pipe level (the driver
      // only learns of the death from the recv side), so the bytes are
      // simply dropped -- like writing to a pipe whose reader is gone
      // with SIGPIPE ignored.
      if (!state_->worker_dead) {
        state_->to_worker.append(bytes);
        state_->cv.notify_all();
      }
      return !state_->worker_dead;
    }
    if (state_->worker_closed || state_->worker_dead) return false;
    if (state_->worker_sends == state_->fault.fail_after_sends) {
      // The fatal send: deliver a truncated prefix, then die.
      state_->to_driver.append(bytes.substr(
          0, std::min(state_->fault.truncate_bytes, bytes.size())));
      state_->worker_dead = true;
      state_->cv.notify_all();
      return false;
    }
    ++state_->worker_sends;
    state_->to_driver.append(bytes);
    state_->cv.notify_all();
    return true;
  }

  std::string recv_some() override {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (is_driver_) {
      state_->cv.wait(lock, [&] {
        return !state_->to_driver.empty() || state_->worker_closed ||
               state_->worker_dead || state_->driver_recv_shutdown;
      });
      if (state_->driver_recv_shutdown) return std::string();
      std::string out = std::move(state_->to_driver);
      state_->to_driver.clear();
      return out;  // empty => worker closed/died with nothing buffered
    }
    state_->cv.wait(lock, [&] {
      return !state_->to_worker.empty() || state_->driver_closed ||
             state_->worker_dead || state_->worker_recv_shutdown;
    });
    if (state_->worker_dead || state_->worker_recv_shutdown) {
      return std::string();
    }
    std::string out = std::move(state_->to_worker);
    state_->to_worker.clear();
    return out;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (is_driver_) {
      state_->driver_closed = true;
    } else {
      state_->worker_closed = true;
    }
    state_->cv.notify_all();
  }

  void shutdown_recv() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (is_driver_) {
      state_->driver_recv_shutdown = true;
    } else {
      state_->worker_recv_shutdown = true;
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<LoopbackState> state_;
  bool is_driver_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair(const LoopbackFault& worker_fault) {
  auto state = std::make_shared<LoopbackState>();
  state->fault = worker_fault;
  return {std::make_unique<LoopbackEndpoint>(state, /*is_driver=*/true),
          std::make_unique<LoopbackEndpoint>(state, /*is_driver=*/false)};
}

PipeTransport::PipeTransport(int read_fd, int write_fd)
    : read_fd_(read_fd), write_fd_(write_fd) {}

PipeTransport::~PipeTransport() {
  close();
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

bool PipeTransport::send(const std::string& bytes) {
  if (write_fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(write_fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE (peer gone) or any other hard error: give up on this peer.
    // Callers run with SIGPIPE ignored, so EPIPE surfaces here.
    ::close(write_fd_);
    write_fd_ = -1;
    return false;
  }
  return true;
}

std::string PipeTransport::recv_some() {
  if (read_fd_ < 0) return std::string();
  char buf[65536];
  // Poll with a short timeout instead of blocking in read() so that
  // shutdown_recv can release a reader even when the peer process is
  // wedged and will never close its end of the pipe.
  for (;;) {
    if (recv_shutdown_.load(std::memory_order_acquire)) return std::string();
    struct pollfd pfd;
    pfd.fd = read_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::string();
    }
    if (ready == 0) continue;  // timeout: re-check the shutdown flag
    const ssize_t n = ::read(read_fd_, buf, sizeof(buf));
    if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
    if (n < 0 && errno == EINTR) continue;
    return std::string();  // EOF or hard error
  }
}

void PipeTransport::close() {
  if (write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

void PipeTransport::shutdown_recv() {
  recv_shutdown_.store(true, std::memory_order_release);
}

SocketTransport::SocketTransport(int fd) : fd_(fd) {
  MR_CHECK(fd >= 0, "socket transport over an invalid fd");
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketTransport::send(const std::string& bytes) {
  if (fd_ < 0 || send_closed_.load(std::memory_order_acquire)) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EPIPE / ECONNRESET (peer gone) or any other hard error: give up on
    // this peer's send direction but keep the fd open -- results already in
    // the kernel buffer may still be readable, and recv_some reports the
    // definitive EOF.
    send_closed_.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

std::string SocketTransport::recv_some() {
  if (fd_ < 0) return std::string();
  char buf[65536];
  // Same poll-with-timeout loop as PipeTransport, so shutdown_recv releases
  // a blocked reader even when the peer never closes.
  for (;;) {
    if (recv_shutdown_.load(std::memory_order_acquire)) return std::string();
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::string();
    }
    if (ready == 0) continue;  // timeout: re-check the shutdown flag
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
    if (n < 0 && errno == EINTR) continue;
    return std::string();  // EOF or hard error
  }
}

void SocketTransport::close() {
  if (fd_ < 0) return;
  if (!send_closed_.exchange(true, std::memory_order_acq_rel)) {
    ::shutdown(fd_, SHUT_WR);
  }
}

void SocketTransport::shutdown_recv() {
  recv_shutdown_.store(true, std::memory_order_release);
}

namespace {

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  MR_CHECK(path.size() < sizeof(addr.sun_path),
           "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int unix_listen(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  MR_CHECK(fd >= 0, std::string("socket(AF_UNIX): ") + std::strerror(errno));
  ::unlink(path.c_str());  // stale socket from a previous daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    MR_CHECK(false, "bind(" + path + "): " + std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    MR_CHECK(false, "listen(" + path + "): " + std::strerror(err));
  }
  return fd;
}

int unix_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;  // listener closed / shut down: accept loop exits
  }
}

int unix_connect(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = unix_addr(path);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MR_CHECK(fd >= 0, std::string("socket(AF_UNIX): ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    // The daemon may still be booting: no socket file yet (ENOENT) or a
    // full backlog (ECONNREFUSED/EAGAIN). Anything else is a hard error.
    MR_CHECK(err == ENOENT || err == ECONNREFUSED || err == EAGAIN ||
                 err == EINTR,
             "connect(" + path + "): " + std::strerror(err));
    MR_CHECK(std::chrono::steady_clock::now() < deadline,
             "connect(" + path + "): timed out waiting for the daemon");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace mpirical::shard
