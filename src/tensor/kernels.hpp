// High-performance float32 kernel layer under the tensor ops.
//
// The hot path of training and decoding is three GEMM orientations plus a
// GEMV; everything else is cheap by comparison. This layer provides
// register-blocked, cache-tiled implementations with packed B panels and
// unit-stride inner loops the compiler auto-vectorizes, a 2D
// (row-blocks x column-panels) parallel decomposition for large shapes, and
// a retained naive reference path used for validation and as the baseline in
// the kernel microbenches.
//
// Conventions:
//   * All matrices are row-major with an explicit leading dimension (the
//     stride between logical rows), so sub-matrices -- e.g. one attention
//     head's [T, head_dim] slice of a [T, d_model] buffer -- can be addressed
//     without copying.
//   * All GEMM entry points ACCUMULATE into C (C += op(A) . op(B)); callers
//     that want assignment zero C first. This matches both the forward pass
//     (outputs are zero-initialized) and the backward pass (gradients
//     accumulate).
//   * Orientation names follow BLAS: NN is A[m,k].B[k,n], TN is
//     A[k,m]^T.B[k,n], NT is A[m,k].B[n,k]^T. Dimensions m/n/k always refer
//     to the logical product C[m,n] = sum over k.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpirical {
class ThreadPool;
}

namespace mpirical::tensor::kernels {

enum class Trans { N, T };

/// A B operand packed once into the kernel's internal panel layout for reuse
/// across many products against the same matrix -- the decode engine's
/// weight panels are multiplied once per wave step, and re-packing them
/// inside every gemm_acc call costs more memory traffic than the products
/// themselves for beam-sized row counts. The raw pointer/leading dimension
/// are retained so small products can take the same naive fallback gemm_acc
/// takes, keeping results bit-identical to the unpacked call for EVERY
/// shape. The raw matrix must outlive the pack.
struct PackedPanelB {
  int n = 0;
  int k = 0;
  Trans tb = Trans::N;
  const float* raw = nullptr;
  int ldb = 0;
  std::vector<float> data;  // kNc-column panels x kKc-row blocks, in order
};

/// Packs op(B) ([k, n] logical) for gemm_acc_packed.
PackedPanelB pack_b_panels(Trans tb, int n, int k, const float* b, int ldb);

/// C[m, n] (ldc) += op(A) . op(B) with B prepacked. Bit-identical to
/// gemm_acc(ta, tb, m, n, k, a, lda, raw_b, ldb, c, ldc) for every shape:
/// packing never changes an element's k-step order, and sub-threshold
/// products route through the same naive fallback via the retained raw
/// pointer.
void gemm_acc_packed(Trans ta, int m, const float* a, int lda,
                     const PackedPanelB& b, float* c, int ldc);

/// gemm_acc_packed minus the small-problem fallback: every product takes
/// the blocked path, so (like gemm_acc_rowstable) a C row's bits depend
/// only on its own A row, the packed B, and its initial C values -- never
/// on m (how many rows ride in the product) or the pool size. The decode
/// engine routes its f32 step projections through this so a hypothesis
/// row's bits do not depend on which other requests share the wave: the
/// invariance that makes continuously-batched serving token-identical to
/// translate_batch for any arrival order (tests/test_serve_equivalence.cpp).
/// Bit-identical to gemm_acc_packed above the small-problem threshold.
void gemm_acc_packed_rowstable(Trans ta, int m, const float* a, int lda,
                               const PackedPanelB& b, float* c, int ldc);

/// A B operand quantized to int8 (weights-only, per-output-channel symmetric
/// scales) and packed into the same kNc-panel / kKc-block / 16-column-sliver
/// layout PackedPanelB uses, so the int8 micro-kernel streams one quarter of
/// the bytes per k-step. There is no retained raw fallback: int8 products are
/// ALWAYS blocked, which makes gemm_acc_packed_i8 inherently rowstable (a C
/// row's bits never depend on how many rows share the product, on panel
/// position, or on the pool size).
struct PackedPanelBI8 {
  int n = 0;
  int k = 0;
  std::vector<float> scales;      // per output column j: dequant multiplier
  std::vector<std::int8_t> data;  // kNc-column panels x kKc-row blocks
  /// Bytes the micro-kernel streams per full pass over the operand.
  std::size_t weight_bytes() const { return data.size(); }
  bool empty() const { return data.empty(); }
};

/// Symmetric per-output-channel int8 quantization of op(B) ([k, n] logical):
/// scales[j] = max_p |B(p, j)| / 127 (1.0 for an all-zero column) and
/// q[p * n + j] = clamp(round(B(p, j) / scales[j]), -127, 127), row-major.
/// Shared by pack-time quantization and snapshot emission so both produce
/// bit-identical int8 payloads for the same weights.
void quantize_weights_i8(Trans tb, int n, int k, const float* b, int ldb,
                         std::int8_t* q, float* scales);

/// Quantizes op(B) ([k, n] logical) at pack time and lays the int8 values
/// out in PackedPanelB's panel order for gemm_acc_packed_i8.
PackedPanelBI8 pack_b_panels_i8(Trans tb, int n, int k, const float* b,
                                int ldb);

/// Packs an ALREADY-quantized row-major [k, n] int8 matrix (plus its n
/// per-column scales) -- e.g. a zero-copy view into a quantized snapshot
/// section. Produces bit-identical panels to the quantizing overload fed the
/// same q/scales.
PackedPanelBI8 pack_b_panels_i8(int n, int k, const std::int8_t* q,
                                const float* scales);

/// C[m, n] (ldc) += op(A) . dequant(B) with B prepacked as int8. The
/// micro-kernel widens int8 to f32 in-register, accumulates the tile in f32,
/// and applies the per-column scale once per kKc block at the C add, so every
/// C element sees a fixed k-block order: rowstable by construction (there is
/// no small-problem fallback to the naive loops).
void gemm_acc_packed_i8(Trans ta, int m, const float* a, int lda,
                        const PackedPanelBI8& b, float* c, int ldc);

/// Runtime toggle for software prefetch of upcoming packed-B slivers inside
/// the GEMM micro-kernels (f32 and int8). Defaults from MPIRICAL_GEMM_PREFETCH
/// at startup (any value but "0" enables). Prefetch only warms caches --
/// results are bitwise identical either way; the toggle exists so
/// bench_kernels can record before/after and tests can assert the identity.
void set_gemm_prefetch(bool enabled);
bool gemm_prefetch_enabled();

/// C[m,n] (ldc) += op(A) . op(B). `ta == Trans::T` means A is stored [k,m]
/// (lda >= m); `tb == Trans::T` means B is stored [n,k] (ldb >= k). Large
/// products are decomposed over the global thread pool; results do not
/// depend on the pool size.
void gemm_acc(Trans ta, Trans tb, int m, int n, int k, const float* a, int lda,
              const float* b, int ldb, float* c, int ldc);

/// Same product as gemm_acc, but with BIT-STABLE ROWS: the small-problem
/// fallback to the naive loops is skipped, so every C element accumulates
/// its k-steps in the blocked order no matter what m is. A given C row's
/// bits therefore depend only on its own A row, B, and its initial C values
/// -- never on how many other rows ride in the same product, where the row
/// sits in the panel, or the pool size. The padded batched encoder routes
/// its panel projections through this so that encoding a source in batches
/// padded to different lengths yields bitwise-identical rows (the
/// padding-invariance guarantee of tests/test_encode_equivalence.cpp).
/// Slightly slower than gemm_acc on tiny shapes (packing overhead the naive
/// path avoids); prefer gemm_acc when row stability is not required.
void gemm_acc_rowstable(Trans ta, Trans tb, int m, int n, int k,
                        const float* a, int lda, const float* b, int ldb,
                        float* c, int ldc);

/// Same product decomposed over an explicit pool instead of the global one.
/// Each task owns a contiguous multi-row-block i-range sized from the pool
/// width, so its packed B panel is reused across all its row blocks instead
/// of being re-packed per kMc block. Exposed so tests can drive the parallel
/// decomposition with a multi-thread pool regardless of the host's core
/// count; results are bitwise identical for every pool size.
void gemm_acc_on(ThreadPool& pool, Trans ta, Trans tb, int m, int n, int k,
                 const float* a, int lda, const float* b, int ldb, float* c,
                 int ldc);

/// y[n] = x[m] . W[m,n] (+ bias[n] when bias != nullptr; zero otherwise).
/// W has leading dimension ldw. Blocked over multiple rows of W per pass so
/// y is loaded/stored once per row block instead of once per row.
void gemv(int m, int n, const float* x, const float* w, int ldw,
          const float* bias, float* y);

// ---- naive reference path ---------------------------------------------------
//
// The seed's unblocked loops, kept verbatim (plus leading-dimension support)
// as the ground truth: tests sweep randomized shapes comparing blocked vs
// naive, and the microbenches report blocked-over-naive throughput ratios.

namespace naive {

void gemm_acc(Trans ta, Trans tb, int m, int n, int k, const float* a, int lda,
              const float* b, int ldb, float* c, int ldc);

void gemv(int m, int n, const float* x, const float* w, int ldw,
          const float* bias, float* y);

}  // namespace naive

}  // namespace mpirical::tensor::kernels
