#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/check.hpp"
#include "support/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace mpirical::tensor {

namespace detail {

struct Node {
  std::vector<int> shape;
  Storage value;  // owned buffer, or a view pinned to an external mapping
  std::vector<float> grad;  // allocated lazily when requires_grad
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Reads this->grad and accumulates into parents' grads.
  std::function<void(Node&)> backward_fn;

  std::size_t numel() const { return value.size(); }

  void ensure_grad() {
    if (grad.size() != value.size()) grad.assign(value.size(), 0.0f);
  }
};

}  // namespace detail

using detail::Node;

namespace {

std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    MR_CHECK(d >= 0, "negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

std::shared_ptr<Node> new_node(std::vector<int> shape, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value.assign(shape_numel(shape), 0.0f);
  node->shape = std::move(shape);
  node->requires_grad = requires_grad;
  if (requires_grad) node->ensure_grad();
  return node;
}

/// Creates the result node for an op over parents; wires requires_grad.
std::shared_ptr<Node> op_node(std::vector<int> shape,
                              std::initializer_list<Tensor> parents) {
  bool needs_grad = false;
  for (const Tensor& p : parents) {
    if (p.node()->requires_grad) needs_grad = true;
  }
  auto node = new_node(std::move(shape), needs_grad);
  if (needs_grad) {
    for (const Tensor& p : parents) node->parents.push_back(p.node());
  }
  return node;
}

}  // namespace

// ---- Tensor basics ---------------------------------------------------------

Tensor Tensor::zeros(std::vector<int> shape, bool requires_grad) {
  return Tensor(new_node(std::move(shape), requires_grad));
}

Tensor Tensor::full(std::vector<int> shape, float fill, bool requires_grad) {
  auto node = new_node(std::move(shape), requires_grad);
  std::fill(node->value.begin(), node->value.end(), fill);
  return Tensor(std::move(node));
}

Tensor Tensor::from_data(std::vector<int> shape, std::vector<float> data,
                         bool requires_grad) {
  MR_CHECK(shape_numel(shape) == data.size(),
           "from_data: shape does not match data size");
  auto node = std::make_shared<Node>();
  node->shape = std::move(shape);
  node->value = std::move(data);
  node->requires_grad = requires_grad;
  if (requires_grad) node->ensure_grad();
  return Tensor(std::move(node));
}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, float stddev,
                     bool requires_grad) {
  auto node = new_node(std::move(shape), requires_grad);
  for (auto& v : node->value) {
    v = static_cast<float>(rng.next_gaussian()) * stddev;
  }
  return Tensor(std::move(node));
}

Tensor Tensor::from_view(std::vector<int> shape, const float* data,
                         std::shared_ptr<const void> owner) {
  const std::size_t n = shape_numel(shape);
  MR_CHECK(data != nullptr || n == 0, "from_view: null data");
  auto node = std::make_shared<Node>();
  node->shape = std::move(shape);
  node->value = Storage::view(data, n, std::move(owner));
  return Tensor(std::move(node));
}

void Tensor::set_view(const float* data, std::size_t size,
                      std::shared_ptr<const void> owner) {
  MR_CHECK(node_, "undefined tensor");
  MR_CHECK(size == node_->numel(), "set_view: element count mismatch");
  MR_CHECK(data != nullptr || size == 0, "set_view: null data");
  node_->value = Storage::view(data, size, std::move(owner));
}

const std::vector<int>& Tensor::shape() const {
  MR_CHECK(node_, "undefined tensor");
  return node_->shape;
}

int Tensor::dim(int i) const {
  const auto& s = shape();
  MR_CHECK(i >= 0 && static_cast<std::size_t>(i) < s.size(),
           "dim index out of range");
  return s[static_cast<std::size_t>(i)];
}

int Tensor::rank() const { return static_cast<int>(shape().size()); }

std::size_t Tensor::numel() const {
  MR_CHECK(node_, "undefined tensor");
  return node_->numel();
}

Storage& Tensor::value() {
  MR_CHECK(node_, "undefined tensor");
  return node_->value;
}
const Storage& Tensor::value() const {
  MR_CHECK(node_, "undefined tensor");
  return node_->value;
}

std::vector<float>& Tensor::grad() {
  MR_CHECK(node_ && node_->requires_grad, "tensor has no grad");
  node_->ensure_grad();
  return node_->grad;
}
const std::vector<float>& Tensor::grad() const {
  MR_CHECK(node_ && node_->requires_grad, "tensor has no grad");
  return node_->grad;
}

bool Tensor::requires_grad() const {
  return node_ != nullptr && node_->requires_grad;
}

void Tensor::zero_grad() {
  if (node_ && node_->requires_grad) {
    node_->ensure_grad();
    std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
  }
}

void Tensor::release_grad() {
  if (!node_) return;
  node_->grad = {};
}

float Tensor::item() const {
  MR_CHECK(numel() == 1, "item() requires a scalar tensor");
  return value()[0];
}

void Tensor::backward() {
  MR_CHECK(node_, "undefined tensor");
  MR_CHECK(node_->numel() == 1, "backward() requires a scalar root");
  MR_CHECK(node_->requires_grad, "root does not require grad");

  // Iterative topological sort (post-order DFS).
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* parent = node->parents[next_child].get();
      ++next_child;
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }

  node_->ensure_grad();
  node_->grad[0] = 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn) node->backward_fn(*node);
  }
}

// ---- matmul ----------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  MR_CHECK(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 tensors");
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = b.dim(1);
  MR_CHECK(b.dim(0) == k, "matmul inner dimension mismatch");

  using kernels::Trans;
  auto out = op_node({m, n}, {a, b});
  kernels::gemm_acc(Trans::N, Trans::N, m, n, k, a.value().data(), k,
                    b.value().data(), n, out->value.data(), n);

  if (out->requires_grad) {
    auto anode = a.node();
    auto bnode = b.node();
    out->backward_fn = [anode, bnode, m, k, n](Node& self) {
      if (anode->requires_grad) {
        anode->ensure_grad();
        // dA[m,k] = dC[m,n] @ B[k,n]^T
        kernels::gemm_acc(Trans::N, Trans::T, m, k, n, self.grad.data(), n,
                          bnode->value.cdata(), n, anode->grad.data(), k);
      }
      if (bnode->requires_grad) {
        bnode->ensure_grad();
        // dB[k,n] = A[m,k]^T @ dC[m,n]
        kernels::gemm_acc(Trans::T, Trans::N, k, n, m, anode->value.cdata(), k,
                          self.grad.data(), n, bnode->grad.data(), n);
      }
    };
  }
  return Tensor(std::move(out));
}

// ---- elementwise -----------------------------------------------------------

namespace {

constexpr std::size_t kElementGrain = 16384;

Tensor elementwise_binary(const Tensor& a, const Tensor& b,
                          const std::function<float(float, float)>& fwd,
                          const std::function<void(Node&, Node&, Node&)>& bwd) {
  MR_CHECK(a.shape() == b.shape(), "elementwise op requires matching shapes");
  auto out = op_node(a.shape(), {a, b});
  const auto& av = a.value();
  const auto& bv = b.value();
  parallel_for(
      0, av.size(),
      [&](std::size_t i) { out->value[i] = fwd(av[i], bv[i]); },
      kElementGrain);
  if (out->requires_grad) {
    auto anode = a.node();
    auto bnode = b.node();
    out->backward_fn = [anode, bnode, bwd](Node& self) {
      bwd(self, *anode, *bnode);
    };
  }
  return Tensor(std::move(out));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise_binary(
      a, b, [](float x, float y) { return x + y; },
      [](Node& self, Node& an, Node& bn) {
        if (an.requires_grad) {
          an.ensure_grad();
          for (std::size_t i = 0; i < self.grad.size(); ++i) {
            an.grad[i] += self.grad[i];
          }
        }
        if (bn.requires_grad) {
          bn.ensure_grad();
          for (std::size_t i = 0; i < self.grad.size(); ++i) {
            bn.grad[i] += self.grad[i];
          }
        }
      });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise_binary(
      a, b, [](float x, float y) { return x - y; },
      [](Node& self, Node& an, Node& bn) {
        if (an.requires_grad) {
          an.ensure_grad();
          for (std::size_t i = 0; i < self.grad.size(); ++i) {
            an.grad[i] += self.grad[i];
          }
        }
        if (bn.requires_grad) {
          bn.ensure_grad();
          for (std::size_t i = 0; i < self.grad.size(); ++i) {
            bn.grad[i] -= self.grad[i];
          }
        }
      });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise_binary(
      a, b, [](float x, float y) { return x * y; },
      [](Node& self, Node& an, Node& bn) {
        // cdata(): reads must not hit Storage's mutable path, which would
        // materialize a view-backed (snapshot-mapped) operand.
        if (an.requires_grad) {
          an.ensure_grad();
          const float* bv = bn.value.cdata();
          for (std::size_t i = 0; i < self.grad.size(); ++i) {
            an.grad[i] += self.grad[i] * bv[i];
          }
        }
        if (bn.requires_grad) {
          bn.ensure_grad();
          const float* av = an.value.cdata();
          for (std::size_t i = 0; i < self.grad.size(); ++i) {
            bn.grad[i] += self.grad[i] * av[i];
          }
        }
      });
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  MR_CHECK(x.rank() == 2 && bias.rank() == 1, "add_bias expects [m,n] + [n]");
  const int m = x.dim(0);
  const int n = x.dim(1);
  MR_CHECK(bias.dim(0) == n, "add_bias width mismatch");
  auto out = op_node({m, n}, {x, bias});
  const auto& xv = x.value();
  const auto& bv = bias.value();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out->value[static_cast<std::size_t>(i) * n + j] =
          xv[static_cast<std::size_t>(i) * n + j] + bv[j];
    }
  }
  if (out->requires_grad) {
    auto xnode = x.node();
    auto bnode = bias.node();
    out->backward_fn = [xnode, bnode, m, n](Node& self) {
      if (xnode->requires_grad) {
        xnode->ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
          xnode->grad[i] += self.grad[i];
        }
      }
      if (bnode->requires_grad) {
        bnode->ensure_grad();
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            bnode->grad[j] += self.grad[static_cast<std::size_t>(i) * n + j];
          }
        }
      }
    };
  }
  return Tensor(std::move(out));
}

Tensor scale(const Tensor& x, float s) {
  auto out = op_node(x.shape(), {x});
  const auto& xv = x.value();
  for (std::size_t i = 0; i < xv.size(); ++i) out->value[i] = xv[i] * s;
  if (out->requires_grad) {
    auto xnode = x.node();
    out->backward_fn = [xnode, s](Node& self) {
      xnode->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        xnode->grad[i] += self.grad[i] * s;
      }
    };
  }
  return Tensor(std::move(out));
}

Tensor relu(const Tensor& x) {
  auto out = op_node(x.shape(), {x});
  const auto& xv = x.value();
  for (std::size_t i = 0; i < xv.size(); ++i) {
    out->value[i] = xv[i] > 0.0f ? xv[i] : 0.0f;
  }
  if (out->requires_grad) {
    auto xnode = x.node();
    out->backward_fn = [xnode](Node& self) {
      xnode->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        if (xnode->value.cdata()[i] > 0.0f) xnode->grad[i] += self.grad[i];
      }
    };
  }
  return Tensor(std::move(out));
}

Tensor gelu(const Tensor& x) {
  // tanh approximation: 0.5x(1 + tanh(sqrt(2/pi)(x + 0.044715 x^3)))
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  auto out = op_node(x.shape(), {x});
  const auto& xv = x.value();
  parallel_for(
      0, xv.size(),
      [&](std::size_t i) {
        const float v = xv[i];
        const float t = std::tanh(kC * (v + kA * v * v * v));
        out->value[i] = 0.5f * v * (1.0f + t);
      },
      kElementGrain / 4);
  if (out->requires_grad) {
    auto xnode = x.node();
    out->backward_fn = [xnode](Node& self) {
      xnode->ensure_grad();
      parallel_for(
          0, self.grad.size(),
          [&](std::size_t i) {
            const float v = xnode->value.cdata()[i];
            const float u = kC * (v + kA * v * v * v);
            const float t = std::tanh(u);
            const float du = kC * (1.0f + 3.0f * kA * v * v);
            const float dgelu =
                0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
            xnode->grad[i] += self.grad[i] * dgelu;
          },
          kElementGrain / 4);
    };
  }
  return Tensor(std::move(out));
}

// ---- softmax / layer norm ---------------------------------------------------

Tensor softmax_rows(const Tensor& x) {
  MR_CHECK(x.rank() == 2, "softmax_rows requires rank 2");
  const int m = x.dim(0);
  const int n = x.dim(1);
  auto out = op_node({m, n}, {x});
  const auto& xv = x.value();
  parallel_for(
      0, static_cast<std::size_t>(m),
      [&](std::size_t i) {
        const float* row = xv.data() + i * n;
        float* orow = out->value.data() + i * n;
        float mx = row[0];
        for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
        float sum = 0.0f;
        for (int j = 0; j < n; ++j) {
          orow[j] = std::exp(row[j] - mx);
          sum += orow[j];
        }
        const float inv = 1.0f / sum;
        for (int j = 0; j < n; ++j) orow[j] *= inv;
      },
      /*grain=*/32);
  if (out->requires_grad) {
    auto xnode = x.node();
    out->backward_fn = [xnode, m, n](Node& self) {
      xnode->ensure_grad();
      parallel_for(
          0, static_cast<std::size_t>(m),
          [&](std::size_t i) {
            const float* p = self.value.cdata() + i * n;
            const float* g = self.grad.data() + i * n;
            float* xg = xnode->grad.data() + i * n;
            float dot = 0.0f;
            for (int j = 0; j < n; ++j) dot += p[j] * g[j];
            for (int j = 0; j < n; ++j) xg[j] += p[j] * (g[j] - dot);
          },
          /*grain=*/32);
    };
  }
  return Tensor(std::move(out));
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  MR_CHECK(x.rank() == 2, "layer_norm requires rank 2");
  const int m = x.dim(0);
  const int n = x.dim(1);
  MR_CHECK(gamma.rank() == 1 && gamma.dim(0) == n, "layer_norm gamma shape");
  MR_CHECK(beta.rank() == 1 && beta.dim(0) == n, "layer_norm beta shape");

  auto out = op_node({m, n}, {x, gamma, beta});
  // Cache per-row mean and inverse stddev for the backward pass.
  auto stats = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(m) * 2);
  const auto& xv = x.value();
  const auto& gv = gamma.value();
  const auto& bv = beta.value();
  parallel_for(
      0, static_cast<std::size_t>(m),
      [&](std::size_t i) {
        const float* row = xv.data() + i * n;
        float* orow = out->value.data() + i * n;
        float mean = 0.0f;
        for (int j = 0; j < n; ++j) mean += row[j];
        mean /= static_cast<float>(n);
        float var = 0.0f;
        for (int j = 0; j < n; ++j) {
          const float d = row[j] - mean;
          var += d * d;
        }
        var /= static_cast<float>(n);
        const float inv_std = 1.0f / std::sqrt(var + eps);
        (*stats)[i * 2] = mean;
        (*stats)[i * 2 + 1] = inv_std;
        for (int j = 0; j < n; ++j) {
          orow[j] = (row[j] - mean) * inv_std * gv[j] + bv[j];
        }
      },
      /*grain=*/32);
  if (out->requires_grad) {
    auto xnode = x.node();
    auto gnode = gamma.node();
    auto bnode = beta.node();
    out->backward_fn = [xnode, gnode, bnode, stats, m, n](Node& self) {
      for (int i = 0; i < m; ++i) {
        const float mean = (*stats)[static_cast<std::size_t>(i) * 2];
        const float inv_std = (*stats)[static_cast<std::size_t>(i) * 2 + 1];
        const float* xrow =
            xnode->value.cdata() + static_cast<std::size_t>(i) * n;
        const float* grow = self.grad.data() + static_cast<std::size_t>(i) * n;
        if (gnode->requires_grad || bnode->requires_grad) {
          gnode->ensure_grad();
          bnode->ensure_grad();
          for (int j = 0; j < n; ++j) {
            const float xhat = (xrow[j] - mean) * inv_std;
            gnode->grad[j] += grow[j] * xhat;
            bnode->grad[j] += grow[j];
          }
        }
        if (xnode->requires_grad) {
          xnode->ensure_grad();
          float* xg = xnode->grad.data() + static_cast<std::size_t>(i) * n;
          // dL/dx = inv_std * (dy*g - mean(dy*g) - xhat * mean(dy*g*xhat))
          float mean_dyg = 0.0f;
          float mean_dyg_xhat = 0.0f;
          for (int j = 0; j < n; ++j) {
            const float dyg = grow[j] * gnode->value.cdata()[j];
            const float xhat = (xrow[j] - mean) * inv_std;
            mean_dyg += dyg;
            mean_dyg_xhat += dyg * xhat;
          }
          mean_dyg /= static_cast<float>(n);
          mean_dyg_xhat /= static_cast<float>(n);
          for (int j = 0; j < n; ++j) {
            const float dyg = grow[j] * gnode->value.cdata()[j];
            const float xhat = (xrow[j] - mean) * inv_std;
            xg[j] += inv_std * (dyg - mean_dyg - xhat * mean_dyg_xhat);
          }
        }
      }
    };
  }
  return Tensor(std::move(out));
}

// ---- embedding / shape ops ---------------------------------------------------

Tensor embedding(const std::vector<int>& ids, const Tensor& table) {
  MR_CHECK(table.rank() == 2, "embedding table must be rank 2");
  const int v = table.dim(0);
  const int d = table.dim(1);
  const int t = static_cast<int>(ids.size());
  auto out = op_node({t, d}, {table});
  const auto& tv = table.value();
  for (int i = 0; i < t; ++i) {
    MR_CHECK(ids[static_cast<std::size_t>(i)] >= 0 &&
                 ids[static_cast<std::size_t>(i)] < v,
             "embedding id out of range");
    const float* src =
        tv.data() +
        static_cast<std::size_t>(ids[static_cast<std::size_t>(i)]) * d;
    std::copy(src, src + d,
              out->value.data() + static_cast<std::size_t>(i) * d);
  }
  if (out->requires_grad) {
    auto tnode = table.node();
    auto ids_copy = ids;
    out->backward_fn = [tnode, ids_copy, d](Node& self) {
      tnode->ensure_grad();
      for (std::size_t i = 0; i < ids_copy.size(); ++i) {
        float* dst =
            tnode->grad.data() + static_cast<std::size_t>(ids_copy[i]) * d;
        const float* src = self.grad.data() + i * d;
        for (int j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return Tensor(std::move(out));
}

Tensor transpose(const Tensor& x) {
  MR_CHECK(x.rank() == 2, "transpose requires rank 2");
  const int m = x.dim(0);
  const int n = x.dim(1);
  auto out = op_node({n, m}, {x});
  const auto& xv = x.value();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out->value[static_cast<std::size_t>(j) * m + i] =
          xv[static_cast<std::size_t>(i) * n + j];
    }
  }
  if (out->requires_grad) {
    auto xnode = x.node();
    out->backward_fn = [xnode, m, n](Node& self) {
      xnode->ensure_grad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          xnode->grad[static_cast<std::size_t>(i) * n + j] +=
              self.grad[static_cast<std::size_t>(j) * m + i];
        }
      }
    };
  }
  return Tensor(std::move(out));
}

Tensor slice_rows(const Tensor& x, int begin, int end) {
  MR_CHECK(x.rank() == 2, "slice_rows requires rank 2");
  const int m = x.dim(0);
  const int n = x.dim(1);
  MR_CHECK(0 <= begin && begin <= end && end <= m, "slice_rows bounds");
  const int rows = end - begin;
  auto out = op_node({rows, n}, {x});
  const auto& xv = x.value();
  std::copy(xv.begin() + static_cast<std::ptrdiff_t>(begin) * n,
            xv.begin() + static_cast<std::ptrdiff_t>(end) * n,
            out->value.begin());
  if (out->requires_grad) {
    auto xnode = x.node();
    out->backward_fn = [xnode, begin, n](Node& self) {
      xnode->ensure_grad();
      const std::size_t offset = static_cast<std::size_t>(begin) * n;
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        xnode->grad[offset + i] += self.grad[i];
      }
    };
  }
  return Tensor(std::move(out));
}

Tensor concat_rows(const std::vector<Tensor>& xs) {
  MR_CHECK(!xs.empty(), "concat_rows of nothing");
  const int n = xs.front().dim(1);
  int total_rows = 0;
  bool needs_grad = false;
  for (const auto& x : xs) {
    MR_CHECK(x.rank() == 2 && x.dim(1) == n, "concat_rows width mismatch");
    total_rows += x.dim(0);
    if (x.requires_grad()) needs_grad = true;
  }
  auto out = new_node({total_rows, n}, needs_grad);
  std::size_t offset = 0;
  for (const auto& x : xs) {
    const auto& xv = x.value();
    std::copy(xv.begin(), xv.end(), out->value.begin() + offset);
    offset += xv.size();
    if (needs_grad) out->parents.push_back(x.node());
  }
  if (needs_grad) {
    std::vector<std::shared_ptr<Node>> parents = out->parents;
    out->backward_fn = [parents](Node& self) {
      std::size_t off = 0;
      for (const auto& p : parents) {
        const std::size_t len = p->numel();
        if (p->requires_grad) {
          p->ensure_grad();
          for (std::size_t i = 0; i < len; ++i) {
            p->grad[i] += self.grad[off + i];
          }
        }
        off += len;
      }
    };
  }
  return Tensor(std::move(out));
}

Tensor dropout(const Tensor& x, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) return x;
  MR_CHECK(p < 1.0f, "dropout probability must be < 1");
  auto out = op_node(x.shape(), {x});
  auto mask = std::make_shared<std::vector<float>>(x.numel());
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  const auto& xv = x.value();
  for (std::size_t i = 0; i < xv.size(); ++i) {
    const float m = rng.next_double() < p ? 0.0f : inv_keep;
    (*mask)[i] = m;
    out->value[i] = xv[i] * m;
  }
  if (out->requires_grad) {
    auto xnode = x.node();
    out->backward_fn = [xnode, mask](Node& self) {
      xnode->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        xnode->grad[i] += self.grad[i] * (*mask)[i];
      }
    };
  }
  return Tensor(std::move(out));
}

// ---- fused multi-head attention ---------------------------------------------

Tensor multi_head_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                            int batch, int heads, bool causal,
                            const std::vector<int>* q_lens,
                            const std::vector<int>* kv_lens) {
  MR_CHECK(q.rank() == 2 && k.rank() == 2 && v.rank() == 2,
           "attention inputs must be rank 2");
  const int d = q.dim(1);
  MR_CHECK(k.dim(1) == d && v.dim(1) == d, "attention width mismatch");
  MR_CHECK(d % heads == 0, "d_model must be divisible by heads");
  MR_CHECK(batch > 0 && q.dim(0) % batch == 0 && k.dim(0) % batch == 0,
           "rows must be divisible by batch");
  const int tq = q.dim(0) / batch;
  const int tk = k.dim(0) / batch;
  MR_CHECK(v.dim(0) == k.dim(0), "k/v row mismatch");
  if (causal) MR_CHECK(tq == tk, "causal attention requires Tq == Tk");
  const int hd = d / heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));

  auto out = op_node({batch * tq, d}, {q, k, v});
  // Attention probabilities are cached for the backward pass:
  // probs[((b*H + h)*Tq + i)*Tk + j].
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(batch) * heads * tq * tk);

  const float* qv = q.value().data();
  const float* kv = k.value().data();
  const float* vv = v.value().data();
  float* ov = out->value.data();

  auto q_len_of = [&](int b) { return q_lens ? (*q_lens)[b] : tq; };
  auto kv_len_of = [&](int b) { return kv_lens ? (*kv_lens)[b] : tk; };

  // Per (batch, head): blocked score GEMM (Q.K^T), row softmax with masking,
  // then a probs.V GEMM. Row blocks bound the wasted upper-triangle compute
  // under the causal mask while keeping the kernels on dense panels; masked
  // probability entries are zeroed so the P.V product ignores them. The probs
  // and output buffers are freshly zero-initialized, so accumulate == assign.
  using kernels::Trans;
  constexpr int kRowBlock = 32;
  parallel_for(
      0, static_cast<std::size_t>(batch) * heads,
      [&](std::size_t bh) {
        const int b = static_cast<int>(bh) / heads;
        const int h = static_cast<int>(bh) % heads;
        const int qlen = q_len_of(b);
        const int klen = kv_len_of(b);
        float* pbase = probs->data() + bh * tq * tk;
        const float* qbase = qv + static_cast<std::size_t>(b) * tq * d + h * hd;
        const float* kbase = kv + static_cast<std::size_t>(b) * tk * d + h * hd;
        const float* vbase = vv + static_cast<std::size_t>(b) * tk * d + h * hd;
        float* obase = ov + static_cast<std::size_t>(b) * tq * d + h * hd;
        // Rows >= qlen keep their zero-initialized probs and output.
        for (int ib = 0; ib < qlen; ib += kRowBlock) {
          const int ie = std::min(qlen, ib + kRowBlock);
          const int jmax = causal ? std::min(klen, ie) : klen;
          kernels::gemm_acc(Trans::N, Trans::T, ie - ib, jmax, hd,
                            qbase + static_cast<std::size_t>(ib) * d, d, kbase,
                            d, pbase + static_cast<std::size_t>(ib) * tk, tk);
          for (int i = ib; i < ie; ++i) {
            float* prow = pbase + static_cast<std::size_t>(i) * tk;
            const int limit = causal ? std::min(klen, i + 1) : klen;
            float mx = -1e30f;
            for (int j = 0; j < limit; ++j) {
              prow[j] *= inv_sqrt;
              mx = std::max(mx, prow[j]);
            }
            float sum = 0.0f;
            for (int j = 0; j < limit; ++j) {
              prow[j] = std::exp(prow[j] - mx);
              sum += prow[j];
            }
            const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
            for (int j = 0; j < limit; ++j) prow[j] *= inv;
            for (int j = limit; j < tk; ++j) prow[j] = 0.0f;
          }
          kernels::gemm_acc(Trans::N, Trans::N, ie - ib, hd, jmax,
                            pbase + static_cast<std::size_t>(ib) * tk, tk,
                            vbase, d,
                            obase + static_cast<std::size_t>(ib) * d, d);
        }
      },
      /*grain=*/1);

  if (out->requires_grad) {
    auto qn = q.node();
    auto kn = k.node();
    auto vn = v.node();
    std::vector<int> qls = q_lens ? *q_lens : std::vector<int>();
    std::vector<int> kls = kv_lens ? *kv_lens : std::vector<int>();
    out->backward_fn = [qn, kn, vn, probs, batch, heads, tq, tk, hd, d,
                        causal, inv_sqrt, qls, kls](Node& self) {
      qn->ensure_grad();
      kn->ensure_grad();
      vn->ensure_grad();
      const float* go = self.grad.data();
      // Parallel over batch only: different heads of the same batch element
      // write disjoint columns, but different (b,h) pairs touch different
      // rows of dK/dV only when b differs. Parallelize over b.
      parallel_for(
          0, static_cast<std::size_t>(batch),
          [&](std::size_t bi) {
            const int b = static_cast<int>(bi);
            const int qlen = qls.empty() ? tq : qls[b];
            const int klen = kls.empty() ? tk : kls[b];
            for (int h = 0; h < heads; ++h) {
              const float* pbase =
                  probs->data() +
                  (static_cast<std::size_t>(b) * heads + h) * tq * tk;
              for (int i = 0; i < std::min(qlen, tq); ++i) {
                const float* prow = pbase + static_cast<std::size_t>(i) * tk;
                const float* grow =
                    go + (static_cast<std::size_t>(b) * tq + i) * d + h * hd;
                const float* qrow = qn->value.cdata() +
                                    (static_cast<std::size_t>(b) * tq + i) * d +
                                    h * hd;
                float* dqrow = qn->grad.data() +
                               (static_cast<std::size_t>(b) * tq + i) * d +
                               h * hd;
                const int limit = causal ? std::min(klen, i + 1) : klen;
                // dV[j] += P[i,j] * dO[i];  dP[i,j] = dO[i] . V[j]
                // dS = P * (dP - sum_j P dP);  dQ += dS K;  dK += dS Q.
                float dot = 0.0f;
                std::vector<float> dp(static_cast<std::size_t>(limit));
                for (int j = 0; j < limit; ++j) {
                  const float* vrow =
                      vn->value.cdata() +
                      (static_cast<std::size_t>(b) * tk + j) * d + h * hd;
                  float* dvrow = vn->grad.data() +
                                 (static_cast<std::size_t>(b) * tk + j) * d +
                                 h * hd;
                  const float pj = prow[j];
                  float dpj = 0.0f;
                  for (int c = 0; c < hd; ++c) {
                    dvrow[c] += pj * grow[c];
                    dpj += grow[c] * vrow[c];
                  }
                  dp[static_cast<std::size_t>(j)] = dpj;
                  dot += pj * dpj;
                }
                for (int j = 0; j < limit; ++j) {
                  const float ds =
                      prow[j] * (dp[static_cast<std::size_t>(j)] - dot) *
                      inv_sqrt;
                  if (ds == 0.0f) continue;
                  const float* krow =
                      kn->value.cdata() +
                      (static_cast<std::size_t>(b) * tk + j) * d + h * hd;
                  float* dkrow = kn->grad.data() +
                                 (static_cast<std::size_t>(b) * tk + j) * d +
                                 h * hd;
                  for (int c = 0; c < hd; ++c) {
                    dqrow[c] += ds * krow[c];
                    dkrow[c] += ds * qrow[c];
                  }
                }
              }
            }
          },
          /*grain=*/1);
    };
  }
  return Tensor(std::move(out));
}

// ---- losses ------------------------------------------------------------------

Tensor cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                     int ignore_index) {
  MR_CHECK(logits.rank() == 2, "cross_entropy requires rank-2 logits");
  const int n = logits.dim(0);
  const int v = logits.dim(1);
  MR_CHECK(static_cast<int>(targets.size()) == n,
           "cross_entropy target count mismatch");

  auto out = op_node({1}, {logits});
  // Cache softmax probabilities for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(logits.numel());
  const auto& lv = logits.value();
  std::vector<double> row_loss(static_cast<std::size_t>(n), 0.0);
  parallel_for(
      0, static_cast<std::size_t>(n),
      [&](std::size_t i) {
        const int t = targets[i];
        const float* row = lv.data() + i * v;
        float* prow = probs->data() + i * v;
        float mx = row[0];
        for (int j = 1; j < v; ++j) mx = std::max(mx, row[j]);
        float sum = 0.0f;
        for (int j = 0; j < v; ++j) {
          prow[j] = std::exp(row[j] - mx);
          sum += prow[j];
        }
        const float inv = 1.0f / sum;
        for (int j = 0; j < v; ++j) prow[j] *= inv;
        if (t == ignore_index) return;
        MR_CHECK(t >= 0 && t < v, "cross_entropy target out of range");
        row_loss[i] = -std::log(std::max(prow[t], 1e-12f));
      },
      /*grain=*/16);
  double total = 0.0;
  int counted = 0;
  for (int i = 0; i < n; ++i) {
    if (targets[static_cast<std::size_t>(i)] == ignore_index) continue;
    total += row_loss[static_cast<std::size_t>(i)];
    ++counted;
  }
  const float denom = counted > 0 ? static_cast<float>(counted) : 1.0f;
  out->value[0] = static_cast<float>(total) / denom;

  if (out->requires_grad) {
    auto lnode = logits.node();
    auto tcopy = targets;
    out->backward_fn = [lnode, tcopy, probs, n, v, ignore_index,
                        denom](Node& self) {
      lnode->ensure_grad();
      const float g = self.grad[0] / denom;
      parallel_for(
          0, static_cast<std::size_t>(n),
          [&](std::size_t i) {
            const int t = tcopy[i];
            if (t == ignore_index) return;
            const float* prow = probs->data() + i * v;
            float* grow = lnode->grad.data() + i * v;
            for (int j = 0; j < v; ++j) grow[j] += g * prow[j];
            grow[t] -= g;
          },
          /*grain=*/16);
    };
  }
  return Tensor(std::move(out));
}

double accuracy(const Tensor& logits, const std::vector<int>& targets,
                int ignore_index) {
  MR_CHECK(logits.rank() == 2, "accuracy requires rank-2 logits");
  const int n = logits.dim(0);
  const int v = logits.dim(1);
  MR_CHECK(static_cast<int>(targets.size()) == n,
           "accuracy target count mismatch");
  const auto& lv = logits.value();
  std::size_t correct = 0;
  std::size_t counted = 0;
  for (int i = 0; i < n; ++i) {
    const int t = targets[static_cast<std::size_t>(i)];
    if (t == ignore_index) continue;
    const float* row = lv.data() + static_cast<std::size_t>(i) * v;
    int best = 0;
    for (int j = 1; j < v; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == t) ++correct;
    ++counted;
  }
  return counted == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(counted);
}

void gemv_row(const float* x, const float* w, const float* b, float* y, int m,
              int n) {
  kernels::gemv(m, n, x, w, n, b, y);
}

}  // namespace mpirical::tensor
