#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "support/thread_pool.hpp"

// Prefetch is advisory at the ISA level (never faults, never writes), so it
// cannot change results; the macro guard only covers compilers without the
// builtin.
#if defined(__GNUC__) || defined(__clang__)
#define MR_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define MR_PREFETCH(addr) ((void)0)
#endif

namespace mpirical::tensor::kernels {

namespace {

// Register micro-tile: MR rows of C by NR columns. 6x16 keeps the accumulator
// tile in vector registers on AVX2 (12 ymm) and AVX-512 (6 zmm) while the
// inner loop streams one packed B row and MR broadcast scalars per k step.
constexpr int kMr = 6;
constexpr int kNr = 16;

// Cache blocking: the packed B panel (kKc x kNc floats = 128 KiB) targets L2,
// the packed A block (kMc x kKc = 72 KiB) streams from L2 while its active
// sliver stays in L1.
constexpr int kKc = 256;
constexpr int kMc = 72;
constexpr int kNc = 128;

// Below this many flops the packing setup dominates; run the naive loops.
constexpr double kSmallProblemFlops = 32768.0;
// Below this many flops a single task computes the whole product.
constexpr double kParallelFlops = 4.0 * 1024 * 1024;

// How many packed k-steps ahead the micro-kernels prefetch B. Slivers are
// contiguous in the packed panel, so a fixed-distance prefetch naturally
// crosses into the next sliver as the current one drains.
constexpr int kPrefetchKSteps = 8;

bool init_prefetch_from_env() {
  const char* v = std::getenv("MPIRICAL_GEMM_PREFETCH");
  return !(v && v[0] == '0' && v[1] == '\0');
}

bool g_prefetch = init_prefetch_from_env();

std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

// Packs A[i0:i0+mc, p0:p0+pc] (logical, after transposition) into MR-row
// slivers: dst[s * pc * kMr + p * kMr + r] = A(i0 + s*kMr + r, p0 + p),
// zero-padding the last sliver so the micro-kernel never reads garbage.
void pack_a(Trans ta, const float* a, int lda, int i0, int mc, int p0, int pc,
            float* dst) {
  for (int s = 0; s < mc; s += kMr) {
    const int mr = std::min(kMr, mc - s);
    for (int p = 0; p < pc; ++p) {
      float* out = dst + p * kMr;
      if (ta == Trans::N) {
        const float* src =
            a + static_cast<std::size_t>(i0 + s) * lda + (p0 + p);
        for (int r = 0; r < mr; ++r) out[r] = src[static_cast<std::size_t>(r) * lda];
      } else {
        // A stored [k, m]: logical A(i, p) = a[p * lda + i]; rows contiguous.
        const float* src =
            a + static_cast<std::size_t>(p0 + p) * lda + (i0 + s);
        for (int r = 0; r < mr; ++r) out[r] = src[r];
      }
      for (int r = mr; r < kMr; ++r) out[r] = 0.0f;
    }
    dst += static_cast<std::size_t>(pc) * kMr;
  }
}

// Packs B[p0:p0+pc, j0:j0+nc] (logical) into NR-column slivers:
// dst[s * pc * kNr + p * kNr + c] = B(p0 + p, j0 + s*kNr + c), zero-padded.
void pack_b(Trans tb, const float* b, int ldb, int p0, int pc, int j0, int nc,
            float* dst) {
  for (int s = 0; s < nc; s += kNr) {
    const int nr = std::min(kNr, nc - s);
    for (int p = 0; p < pc; ++p) {
      float* out = dst + p * kNr;
      if (tb == Trans::N) {
        const float* src =
            b + static_cast<std::size_t>(p0 + p) * ldb + (j0 + s);
        for (int c = 0; c < nr; ++c) out[c] = src[c];
      } else {
        // B stored [n, k]: logical B(p, j) = b[j * ldb + p]; columns strided.
        const float* src =
            b + static_cast<std::size_t>(j0 + s) * ldb + (p0 + p);
        for (int c = 0; c < nr; ++c) out[c] = src[static_cast<std::size_t>(c) * ldb];
      }
      for (int c = nr; c < kNr; ++c) out[c] = 0.0f;
    }
    dst += static_cast<std::size_t>(pc) * kNr;
  }
}

// Computes a full MR x NR accumulator tile over pc packed k-steps and adds
// the live mr x nr corner into C. The two inner loops have compile-time trip
// counts and unit stride, so the compiler unrolls them completely and keeps
// `acc` in vector registers.
void micro_kernel(int pc, const float* __restrict ap, const float* __restrict bp,
                  int mr, int nr, float* __restrict c, int ldc) {
  float acc[kMr][kNr];
  for (int r = 0; r < kMr; ++r) {
    for (int j = 0; j < kNr; ++j) acc[r][j] = 0.0f;
  }
  const bool prefetch = g_prefetch;
  for (int p = 0; p < pc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * kNr;
    if (prefetch) MR_PREFETCH(brow + kPrefetchKSteps * kNr);
    const float* arow = ap + static_cast<std::size_t>(p) * kMr;
    for (int r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    for (int r = 0; r < kMr; ++r) {
      float* crow = c + static_cast<std::size_t>(r) * ldc;
      for (int j = 0; j < kNr; ++j) crow[j] += acc[r][j];
    }
  } else {
    for (int r = 0; r < mr; ++r) {
      float* crow = c + static_cast<std::size_t>(r) * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += acc[r][j];
    }
  }
}

// Int8 sibling of micro_kernel: B arrives already widened to f32 (the raw
// quantized integers as floats, UNSCALED -- see widen_b_block_i8), and the
// per-column dequant scale is applied once when adding the tile into C.
// Because the scale multiply happens at the kKc-block C add, each C
// element's value is a fixed function of its A row, the quantized B, and
// the ascending block order -- rowstable for free.
void micro_kernel_i8(int pc, const float* __restrict ap,
                     const float* __restrict bp,
                     const float* __restrict scales, int mr, int nr,
                     float* __restrict c, int ldc) {
  float acc[kMr][kNr];
  for (int r = 0; r < kMr; ++r) {
    for (int j = 0; j < kNr; ++j) acc[r][j] = 0.0f;
  }
  const bool prefetch = g_prefetch;
  for (int p = 0; p < pc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * kNr;
    if (prefetch) MR_PREFETCH(brow + kPrefetchKSteps * kNr);
    const float* arow = ap + static_cast<std::size_t>(p) * kMr;
    for (int r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    for (int r = 0; r < kMr; ++r) {
      float* crow = c + static_cast<std::size_t>(r) * ldc;
      for (int j = 0; j < kNr; ++j) crow[j] += scales[j] * acc[r][j];
    }
  } else {
    for (int r = 0; r < mr; ++r) {
      float* crow = c + static_cast<std::size_t>(r) * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += scales[j] * acc[r][j];
    }
  }
}

// Widens one packed int8 kKc block to f32 (value-preserving int -> float,
// scales NOT applied -- they join at the micro-kernel's C add). Done ONCE
// per block per C row range and amortized over all its kMr row tiles: the
// int8 bytes are streamed from memory exactly once, and the micro-kernel
// then runs at full f32 speed out of this cache-resident buffer.
void widen_b_block_i8(const std::int8_t* __restrict src, std::size_t count,
                      float* __restrict dst) {
  const bool prefetch = g_prefetch;
  constexpr std::size_t kStride = 64;  // one cache line of int8 per chunk
  for (std::size_t i = 0; i < count; i += kStride) {
    if (prefetch) MR_PREFETCH(src + i + kPrefetchKSteps * kStride);
    const std::size_t end = std::min(count, i + kStride);
    for (std::size_t j = i; j < end; ++j) {
      dst[j] = static_cast<float>(src[j]);
    }
  }
}

thread_local std::vector<float> t_a_pack;
thread_local std::vector<float> t_b_pack;

// Serial blocked GEMM over the C sub-range [i0,i1) x [j0,j1). Each C element
// accumulates k-steps in ascending order, so results are identical no matter
// how the range is tiled across tasks.
void gemm_blocked_range(Trans ta, Trans tb, int i0, int i1, int j0, int j1,
                        int k, const float* a, int lda, const float* b,
                        int ldb, float* c, int ldc) {
  auto& a_pack = t_a_pack;
  auto& b_pack = t_b_pack;
  a_pack.resize(round_up(std::min(kMc, i1 - i0), kMr) * static_cast<std::size_t>(kKc));
  b_pack.resize(round_up(std::min(kNc, j1 - j0), kNr) * static_cast<std::size_t>(kKc));

  for (int jc = j0; jc < j1; jc += kNc) {
    const int nc = std::min(kNc, j1 - jc);
    for (int pc = 0; pc < k; pc += kKc) {
      const int kc = std::min(kKc, k - pc);
      pack_b(tb, b, ldb, pc, kc, jc, nc, b_pack.data());
      for (int ic = i0; ic < i1; ic += kMc) {
        const int mc = std::min(kMc, i1 - ic);
        pack_a(ta, a, lda, ic, mc, pc, kc, a_pack.data());
        for (int js = 0; js < nc; js += kNr) {
          const float* bp =
              b_pack.data() + static_cast<std::size_t>(js / kNr) * kc * kNr;
          const int nr = std::min(kNr, nc - js);
          for (int is = 0; is < mc; is += kMr) {
            const float* ap =
                a_pack.data() + static_cast<std::size_t>(is / kMr) * kc * kMr;
            const int mr = std::min(kMr, mc - is);
            micro_kernel(kc, ap, bp,  mr, nr,
                         c + static_cast<std::size_t>(ic + is) * ldc + jc + js,
                         ldc);
          }
        }
      }
    }
  }
}

// One jc column-panel of a prepacked-B product over C rows [i0, i1): the
// panel's kKc blocks are consumed in the same pc-ascending order
// gemm_blocked_range packs and consumes them, so every C element sees the
// identical k-step order whether B was packed inline or up front.
void gemm_blocked_rows_packed(Trans ta, int i0, int i1, int jc, int nc, int k,
                              const float* a, int lda, const float* panel,
                              float* c, int ldc) {
  auto& a_pack = t_a_pack;
  a_pack.resize(round_up(std::min(kMc, i1 - i0), kMr) *
                static_cast<std::size_t>(kKc));
  const float* bp_block = panel;
  for (int pc = 0; pc < k; pc += kKc) {
    const int kc = std::min(kKc, k - pc);
    for (int ic = i0; ic < i1; ic += kMc) {
      const int mc = std::min(kMc, i1 - ic);
      pack_a(ta, a, lda, ic, mc, pc, kc, a_pack.data());
      for (int js = 0; js < nc; js += kNr) {
        const float* bp =
            bp_block + static_cast<std::size_t>(js / kNr) * kc * kNr;
        const int nr = std::min(kNr, nc - js);
        for (int is = 0; is < mc; is += kMr) {
          const float* ap =
              a_pack.data() + static_cast<std::size_t>(is / kMr) * kc * kMr;
          const int mr = std::min(kMr, mc - is);
          micro_kernel(kc, ap, bp, mr, nr,
                       c + static_cast<std::size_t>(ic + is) * ldc + jc + js,
                       ldc);
        }
      }
    }
    bp_block += round_up(nc, kNr) * static_cast<std::size_t>(kc);
  }
}

// A jc panel's packed size: every kKc block holds round_up(nc, kNr) sliver
// columns, and the kc's sum to k. The int8 layout packs the same element
// count (1 byte each instead of 4).
std::size_t packed_panel_floats(int nc, int k) {
  return round_up(nc, kNr) * static_cast<std::size_t>(k);
}

// pack_b for a row-major [k, n] int8 matrix: identical sliver layout,
// zero-padded.
void pack_b_i8(const std::int8_t* q, int n, int p0, int pc, int j0, int nc,
               std::int8_t* dst) {
  for (int s = 0; s < nc; s += kNr) {
    const int nr = std::min(kNr, nc - s);
    for (int p = 0; p < pc; ++p) {
      std::int8_t* out = dst + p * kNr;
      const std::int8_t* src =
          q + static_cast<std::size_t>(p0 + p) * n + (j0 + s);
      for (int c = 0; c < nr; ++c) out[c] = src[c];
      for (int c = nr; c < kNr; ++c) out[c] = 0;
    }
    dst += static_cast<std::size_t>(pc) * kNr;
  }
}

// Int8 sibling of gemm_blocked_rows_packed: one jc column-panel over C rows
// [i0, i1), consuming the panel's kKc blocks in the same pc-ascending order.
// Each block is widened to f32 once (reusing the t_b_pack scratch) and
// shared by every row tile in the range, so the int8 bytes are read from
// memory once per range while the inner loops stay pure-f32.
// `scales` points at the n-indexed scale vector offset to column jc.
void gemm_blocked_rows_packed_i8(Trans ta, int i0, int i1, int jc, int nc,
                                 int k, const float* a, int lda,
                                 const std::int8_t* panel,
                                 const float* scales, float* c, int ldc) {
  auto& a_pack = t_a_pack;
  a_pack.resize(round_up(std::min(kMc, i1 - i0), kMr) *
                static_cast<std::size_t>(kKc));
  auto& b_widen = t_b_pack;
  b_widen.resize(round_up(nc, kNr) *
                 static_cast<std::size_t>(std::min(kKc, k)));
  const std::int8_t* bp_block = panel;
  for (int pc = 0; pc < k; pc += kKc) {
    const int kc = std::min(kKc, k - pc);
    widen_b_block_i8(bp_block, round_up(nc, kNr) * static_cast<std::size_t>(kc),
                     b_widen.data());
    for (int ic = i0; ic < i1; ic += kMc) {
      const int mc = std::min(kMc, i1 - ic);
      pack_a(ta, a, lda, ic, mc, pc, kc, a_pack.data());
      for (int js = 0; js < nc; js += kNr) {
        const float* bp =
            b_widen.data() + static_cast<std::size_t>(js / kNr) * kc * kNr;
        const int nr = std::min(kNr, nc - js);
        for (int is = 0; is < mc; is += kMr) {
          const float* ap =
              a_pack.data() + static_cast<std::size_t>(is / kMr) * kc * kMr;
          const int mr = std::min(kMr, mc - is);
          micro_kernel_i8(kc, ap, bp, scales + js, mr, nr,
                          c + static_cast<std::size_t>(ic + is) * ldc + jc +
                              js,
                          ldc);
        }
      }
    }
    bp_block += round_up(nc, kNr) * static_cast<std::size_t>(kc);
  }
}

// Blocked-path dispatch shared by gemm_acc_on (after its naive small-problem
// shortcut) and gemm_acc_rowstable (which must never take that shortcut).
// Serial-vs-parallel and the 2D tiling only change which C elements are
// computed when, never the per-element k-step order, so both callers get
// bit-identical rows for a given (A row, B, initial C row).
void gemm_dispatch_blocked(ThreadPool& pool_ref, Trans ta, Trans tb, int m,
                           int n, int k, const float* a, int lda,
                           const float* b, int ldb, float* c, int ldc) {
  const double flops = 2.0 * m * n * k;
  const std::size_t pool = pool_ref.size();
  if (pool <= 1 || flops < kParallelFlops) {
    gemm_blocked_range(ta, tb, 0, m, 0, n, k, a, lda, b, ldb, c, ldc);
    return;
  }

  // 2D decomposition: row ranges x column panels, each task owning a
  // disjoint C tile (deterministic regardless of scheduling: every C element
  // accumulates its k-steps in the same ascending order whatever the tiling).
  // Each task's i-range spans multiple kMc row blocks, sized so one column
  // panel splits into about `pool` tasks: gemm_blocked_range packs the B
  // panel once per (jc, pc) and reuses it across all row blocks in its
  // range, instead of re-packing per kMc block as one-block tasks would.
  const int row_blocks = (m + kMc - 1) / kMc;
  const int ranges_per_panel =
      std::min(row_blocks, static_cast<int>(pool));
  const int blocks_per_range =
      (row_blocks + ranges_per_panel - 1) / ranges_per_panel;
  const int i_step = blocks_per_range * kMc;
  struct Tile {
    int i0, i1, j0, j1;
  };
  std::vector<Tile> tiles;
  for (int j0 = 0; j0 < n; j0 += kNc) {
    const int j1 = std::min(n, j0 + kNc);
    for (int i0 = 0; i0 < m; i0 += i_step) {
      tiles.push_back(Tile{i0, std::min(m, i0 + i_step), j0, j1});
    }
  }
  pool_ref.for_range(
      0, tiles.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          const Tile& tile = tiles[t];
          gemm_blocked_range(ta, tb, tile.i0, tile.i1, tile.j0, tile.j1, k, a,
                             lda, b, ldb, c, ldc);
        }
      },
      /*grain=*/1);
}

}  // namespace

void gemm_acc_on(ThreadPool& pool_ref, Trans ta, Trans tb, int m, int n, int k,
                 const float* a, int lda, const float* b, int ldb, float* c,
                 int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (2.0 * m * n * k < kSmallProblemFlops) {
    naive::gemm_acc(ta, tb, m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  gemm_dispatch_blocked(pool_ref, ta, tb, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_acc(Trans ta, Trans tb, int m, int n, int k, const float* a, int lda,
              const float* b, int ldb, float* c, int ldc) {
  gemm_acc_on(ThreadPool::global(), ta, tb, m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_acc_rowstable(Trans ta, Trans tb, int m, int n, int k,
                        const float* a, int lda, const float* b, int ldb,
                        float* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  gemm_dispatch_blocked(ThreadPool::global(), ta, tb, m, n, k, a, lda, b, ldb,
                        c, ldc);
}

PackedPanelB pack_b_panels(Trans tb, int n, int k, const float* b, int ldb) {
  PackedPanelB packed;
  packed.n = n;
  packed.k = k;
  packed.tb = tb;
  packed.raw = b;
  packed.ldb = ldb;
  std::size_t total = 0;
  for (int jc = 0; jc < n; jc += kNc) {
    total += packed_panel_floats(std::min(kNc, n - jc), k);
  }
  packed.data.resize(total);
  float* dst = packed.data.data();
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    for (int pc = 0; pc < k; pc += kKc) {
      const int kc = std::min(kKc, k - pc);
      pack_b(tb, b, ldb, pc, kc, jc, nc, dst);
      dst += round_up(nc, kNr) * static_cast<std::size_t>(kc);
    }
  }
  return packed;
}

namespace {

// The always-blocked packed product shared by gemm_acc_packed (above the
// small-problem threshold) and gemm_acc_packed_rowstable (at every shape).
// Serial and parallel decompositions produce bitwise-identical C, and each
// C row's bits are independent of m and of the other rows in the panel.
void gemm_packed_blocked(Trans ta, int m, const float* a, int lda,
                         const PackedPanelB& b, float* c, int ldc) {
  const int n = b.n;
  const int k = b.k;
  const double flops = 2.0 * m * n * k;
  ThreadPool& pool_ref = ThreadPool::global();
  const std::size_t pool = pool_ref.size();
  if (pool <= 1 || flops < kParallelFlops) {
    std::size_t off = 0;
    for (int jc = 0; jc < n; jc += kNc) {
      const int nc = std::min(kNc, n - jc);
      gemm_blocked_rows_packed(ta, 0, m, jc, nc, k, a, lda, b.data.data() + off,
                               c, ldc);
      off += packed_panel_floats(nc, k);
    }
    return;
  }

  // Same 2D decomposition as gemm_acc_on: row ranges x column panels, each
  // task a disjoint C tile reading its panel's prepacked data.
  const int row_blocks = (m + kMc - 1) / kMc;
  const int ranges_per_panel = std::min(row_blocks, static_cast<int>(pool));
  const int blocks_per_range =
      (row_blocks + ranges_per_panel - 1) / ranges_per_panel;
  const int i_step = blocks_per_range * kMc;
  struct Tile {
    int i0, i1, jc, nc;
    std::size_t off;
  };
  std::vector<Tile> tiles;
  std::size_t off = 0;
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    for (int i0 = 0; i0 < m; i0 += i_step) {
      tiles.push_back(Tile{i0, std::min(m, i0 + i_step), jc, nc, off});
    }
    off += packed_panel_floats(nc, k);
  }
  pool_ref.for_range(
      0, tiles.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          const Tile& tile = tiles[t];
          gemm_blocked_rows_packed(ta, tile.i0, tile.i1, tile.jc, tile.nc, k,
                                   a, lda, b.data.data() + tile.off, c, ldc);
        }
      },
      /*grain=*/1);
}

}  // namespace

void gemm_acc_packed(Trans ta, int m, const float* a, int lda,
                     const PackedPanelB& b, float* c, int ldc) {
  const int n = b.n;
  const int k = b.k;
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (2.0 * m * n * k < kSmallProblemFlops) {
    // Same fallback gemm_acc takes, via the retained raw operand, so results
    // stay bit-identical to the unpacked call at every shape.
    naive::gemm_acc(ta, b.tb, m, n, k, a, lda, b.raw, b.ldb, c, ldc);
    return;
  }
  gemm_packed_blocked(ta, m, a, lda, b, c, ldc);
}

void gemm_acc_packed_rowstable(Trans ta, int m, const float* a, int lda,
                               const PackedPanelB& b, float* c, int ldc) {
  if (m <= 0 || b.n <= 0 || b.k <= 0) return;
  gemm_packed_blocked(ta, m, a, lda, b, c, ldc);
}

void quantize_weights_i8(Trans tb, int n, int k, const float* b, int ldb,
                         std::int8_t* q, float* scales) {
  for (int j = 0; j < n; ++j) {
    float amax = 0.0f;
    if (tb == Trans::N) {
      for (int p = 0; p < k; ++p) {
        const float v = std::fabs(b[static_cast<std::size_t>(p) * ldb + j]);
        if (v > amax) amax = v;
      }
    } else {
      const float* col = b + static_cast<std::size_t>(j) * ldb;
      for (int p = 0; p < k; ++p) {
        const float v = std::fabs(col[p]);
        if (v > amax) amax = v;
      }
    }
    scales[j] = amax == 0.0f ? 1.0f : amax / 127.0f;
  }
  for (int p = 0; p < k; ++p) {
    std::int8_t* qrow = q + static_cast<std::size_t>(p) * n;
    for (int j = 0; j < n; ++j) {
      const float v = tb == Trans::N
                          ? b[static_cast<std::size_t>(p) * ldb + j]
                          : b[static_cast<std::size_t>(j) * ldb + p];
      long iv = std::lrintf(v / scales[j]);
      if (iv > 127) iv = 127;
      if (iv < -127) iv = -127;
      qrow[j] = static_cast<std::int8_t>(iv);
    }
  }
}

PackedPanelBI8 pack_b_panels_i8(int n, int k, const std::int8_t* q,
                                const float* scales) {
  PackedPanelBI8 packed;
  packed.n = n;
  packed.k = k;
  packed.scales.assign(scales, scales + n);
  std::size_t total = 0;
  for (int jc = 0; jc < n; jc += kNc) {
    total += packed_panel_floats(std::min(kNc, n - jc), k);
  }
  packed.data.resize(total);
  std::int8_t* dst = packed.data.data();
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    for (int pc = 0; pc < k; pc += kKc) {
      const int kc = std::min(kKc, k - pc);
      pack_b_i8(q, n, pc, kc, jc, nc, dst);
      dst += round_up(nc, kNr) * static_cast<std::size_t>(kc);
    }
  }
  return packed;
}

PackedPanelBI8 pack_b_panels_i8(Trans tb, int n, int k, const float* b,
                                int ldb) {
  std::vector<std::int8_t> q(static_cast<std::size_t>(k) * n);
  std::vector<float> scales(static_cast<std::size_t>(n));
  quantize_weights_i8(tb, n, k, b, ldb, q.data(), scales.data());
  return pack_b_panels_i8(n, k, q.data(), scales.data());
}

void gemm_acc_packed_i8(Trans ta, int m, const float* a, int lda,
                        const PackedPanelBI8& b, float* c, int ldc) {
  const int n = b.n;
  const int k = b.k;
  if (m <= 0 || n <= 0 || k <= 0) return;
  // No naive fallback: there is no raw f32 operand to fall back to, and
  // always-blocked is exactly what makes the int8 path rowstable.
  const double flops = 2.0 * m * n * k;
  ThreadPool& pool_ref = ThreadPool::global();
  const std::size_t pool = pool_ref.size();
  if (pool <= 1 || flops < kParallelFlops) {
    std::size_t off = 0;
    for (int jc = 0; jc < n; jc += kNc) {
      const int nc = std::min(kNc, n - jc);
      gemm_blocked_rows_packed_i8(ta, 0, m, jc, nc, k, a, lda,
                                  b.data.data() + off, b.scales.data() + jc,
                                  c, ldc);
      off += packed_panel_floats(nc, k);
    }
    return;
  }

  // Same 2D decomposition as gemm_acc_packed: row ranges x column panels,
  // each task a disjoint C tile reading its panel's prepacked data.
  const int row_blocks = (m + kMc - 1) / kMc;
  const int ranges_per_panel = std::min(row_blocks, static_cast<int>(pool));
  const int blocks_per_range =
      (row_blocks + ranges_per_panel - 1) / ranges_per_panel;
  const int i_step = blocks_per_range * kMc;
  struct Tile {
    int i0, i1, jc, nc;
    std::size_t off;
  };
  std::vector<Tile> tiles;
  std::size_t off = 0;
  for (int jc = 0; jc < n; jc += kNc) {
    const int nc = std::min(kNc, n - jc);
    for (int i0 = 0; i0 < m; i0 += i_step) {
      tiles.push_back(Tile{i0, std::min(m, i0 + i_step), jc, nc, off});
    }
    off += packed_panel_floats(nc, k);
  }
  pool_ref.for_range(
      0, tiles.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          const Tile& tile = tiles[t];
          gemm_blocked_rows_packed_i8(ta, tile.i0, tile.i1, tile.jc, tile.nc,
                                      k, a, lda, b.data.data() + tile.off,
                                      b.scales.data() + tile.jc, c, ldc);
        }
      },
      /*grain=*/1);
}

void set_gemm_prefetch(bool enabled) { g_prefetch = enabled; }

bool gemm_prefetch_enabled() { return g_prefetch; }

void gemv(int m, int n, const float* x, const float* w, int ldw,
          const float* bias, float* y) {
  if (bias) {
    std::memcpy(y, bias, sizeof(float) * static_cast<std::size_t>(n));
  } else {
    std::memset(y, 0, sizeof(float) * static_cast<std::size_t>(n));
  }
  int i = 0;
  // Eight W rows per pass: one load+store of y amortizes eight axpys.
  for (; i + 8 <= m; i += 8) {
    const float* w0 = w + static_cast<std::size_t>(i) * ldw;
    const float* w1 = w0 + ldw;
    const float* w2 = w1 + ldw;
    const float* w3 = w2 + ldw;
    const float* w4 = w3 + ldw;
    const float* w5 = w4 + ldw;
    const float* w6 = w5 + ldw;
    const float* w7 = w6 + ldw;
    const float x0 = x[i], x1 = x[i + 1], x2 = x[i + 2], x3 = x[i + 3];
    const float x4 = x[i + 4], x5 = x[i + 5], x6 = x[i + 6], x7 = x[i + 7];
    for (int j = 0; j < n; ++j) {
      float acc = y[j];
      acc += x0 * w0[j] + x1 * w1[j] + x2 * w2[j] + x3 * w3[j];
      acc += x4 * w4[j] + x5 * w5[j] + x6 * w6[j] + x7 * w7[j];
      y[j] = acc;
    }
  }
  for (; i < m; ++i) {
    const float xi = x[i];
    const float* wrow = w + static_cast<std::size_t>(i) * ldw;
    for (int j = 0; j < n; ++j) y[j] += xi * wrow[j];
  }
}

// ---- naive reference path ---------------------------------------------------

namespace naive {

void gemm_acc(Trans ta, Trans tb, int m, int n, int k, const float* a, int lda,
              const float* b, int ldb, float* c, int ldc) {
  if (ta == Trans::N && tb == Trans::N) {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (ta == Trans::T && tb == Trans::N) {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        const float av = a[static_cast<std::size_t>(p) * lda + i];
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (ta == Trans::N && tb == Trans::T) {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
  } else {  // T, T
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        const float av = a[static_cast<std::size_t>(p) * lda + i];
        if (av == 0.0f) continue;
        for (int j = 0; j < n; ++j) {
          crow[j] += av * b[static_cast<std::size_t>(j) * ldb + p];
        }
      }
    }
  }
}

void gemv(int m, int n, const float* x, const float* w, int ldw,
          const float* bias, float* y) {
  for (int j = 0; j < n; ++j) y[j] = bias ? bias[j] : 0.0f;
  for (int i = 0; i < m; ++i) {
    const float xi = x[i];
    if (xi == 0.0f) continue;
    const float* wrow = w + static_cast<std::size_t>(i) * ldw;
    for (int j = 0; j < n; ++j) y[j] += xi * wrow[j];
  }
}

}  // namespace naive

}  // namespace mpirical::tensor::kernels
