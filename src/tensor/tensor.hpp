// CPU tensor with tape-based (define-by-run) reverse-mode autograd.
//
// This is the numerical substrate under the transformer: the paper fine-tunes
// SPT-Code with PyTorch on a V100; offline we implement the needed subset --
// dense float32 tensors, a handful of fused ops, and reverse-mode autodiff --
// from scratch, parallelized over the host cores via support::ThreadPool.
//
// Semantics:
//   * A Tensor is a shared handle to a node holding value, optional grad,
//     parents, and a backward function. Ops run eagerly (forward on call)
//     and record the tape when any input requires grad.
//   * backward() topologically sorts the reachable tape and accumulates
//     gradients; it may be called on scalars (loss) only.
//   * Shapes are row-major, rank 1 or 2. Batch and time dimensions are
//     folded into rows ([B*T, d]); the fused attention op is told B/H/T.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace mpirical::tensor {

namespace detail {
struct Node;
}

class Tensor {
 public:
  Tensor() = default;

  /// Constructors.
  static Tensor zeros(std::vector<int> shape, bool requires_grad = false);
  static Tensor full(std::vector<int> shape, float fill,
                     bool requires_grad = false);
  static Tensor from_data(std::vector<int> shape, std::vector<float> data,
                          bool requires_grad = false);
  /// Gaussian init with the given stddev (transformer weight init).
  static Tensor randn(std::vector<int> shape, Rng& rng, float stddev,
                      bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const std::vector<int>& shape() const;
  int dim(int i) const;
  int rank() const;
  std::size_t numel() const;

  std::vector<float>& value();
  const std::vector<float>& value() const;
  std::vector<float>& grad();
  const std::vector<float>& grad() const;
  bool requires_grad() const;
  void zero_grad();

  float item() const;  // requires numel()==1

  /// Runs reverse-mode autodiff from this scalar.
  void backward();

  /// Internal handle (used by ops).
  const std::shared_ptr<detail::Node>& node() const { return node_; }
  explicit Tensor(std::shared_ptr<detail::Node> node)
      : node_(std::move(node)) {}

 private:
  std::shared_ptr<detail::Node> node_;
};

// ---- ops -------------------------------------------------------------------

/// [m,k] x [k,n] -> [m,n]; parallel over rows.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Elementwise (same shape).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

/// [m,n] + [n] broadcast over rows.
Tensor add_bias(const Tensor& x, const Tensor& bias);

Tensor scale(const Tensor& x, float s);
Tensor relu(const Tensor& x);
Tensor gelu(const Tensor& x);  // tanh approximation

/// Row-wise softmax over the last dimension.
Tensor softmax_rows(const Tensor& x);

/// Row-wise layer normalization with learned gamma/beta ([n]).
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);

/// Gathers rows of `table` ([V,d]) by ids -> [len(ids), d].
Tensor embedding(const std::vector<int>& ids, const Tensor& table);

/// [m,n] -> [n,m].
Tensor transpose(const Tensor& x);

/// Row slice [begin,end) as a copy (grads flow back into the slice).
Tensor slice_rows(const Tensor& x, int begin, int end);

/// Vertical concatenation of same-width matrices.
Tensor concat_rows(const std::vector<Tensor>& xs);

/// Inverted dropout; identity when !training or p == 0.
Tensor dropout(const Tensor& x, float p, Rng& rng, bool training);

/// Fused multi-head scaled-dot-product attention.
/// q: [B*Tq, d], k/v: [B*Tk, d], d = heads * head_dim.
/// `q_lens`/`kv_lens` give valid lengths per batch element (padding mask);
/// pass nullptr for fully valid. `causal` restricts to kv_pos <= q_pos
/// (Tq must equal Tk for causal use).
Tensor multi_head_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                            int batch, int heads, bool causal,
                            const std::vector<int>* q_lens = nullptr,
                            const std::vector<int>* kv_lens = nullptr);

/// Mean cross-entropy over rows of `logits` ([N,V]) against `targets` ([N]),
/// skipping rows whose target equals `ignore_index`. Numerically stable
/// (fused log-softmax). Returns a scalar.
Tensor cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                     int ignore_index = -1);

/// Token-level argmax accuracy against targets, skipping ignore_index rows.
/// (Not differentiable; monitoring only.)
double accuracy(const Tensor& logits, const std::vector<int>& targets,
                int ignore_index = -1);

// ---- raw helpers (no autograd; used by the inference path) -----------------

/// y[n] = x[m] @ W[m,n] (+ b[n] when b != nullptr). Forward-only GEMV used by
/// the incremental decoder.
void gemv_row(const float* x, const float* w, const float* b, float* y, int m,
              int n);

}  // namespace mpirical::tensor
