// CPU tensor with tape-based (define-by-run) reverse-mode autograd.
//
// This is the numerical substrate under the transformer: the paper fine-tunes
// SPT-Code with PyTorch on a V100; offline we implement the needed subset --
// dense float32 tensors, a handful of fused ops, and reverse-mode autodiff --
// from scratch, parallelized over the host cores via support::ThreadPool.
//
// Semantics:
//   * A Tensor is a shared handle to a node holding value, optional grad,
//     parents, and a backward function. Ops run eagerly (forward on call)
//     and record the tape when any input requires grad.
//   * backward() topologically sorts the reachable tape and accumulates
//     gradients; it may be called on scalars (loss) only.
//   * Shapes are row-major, rank 1 or 2. Batch and time dimensions are
//     folded into rows ([B*T, d]); the fused attention op is told B/H/T.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace mpirical::tensor {

namespace detail {
struct Node;
}

/// Flat float storage behind a tensor value: either an owned buffer or a
/// non-owning view over external memory (e.g. a tensor section of an mmap'd
/// snapshot) whose lifetime is pinned by a shared owner handle.
///
/// The interface mirrors the slice of std::vector<float> the codebase uses,
/// so call sites compile unchanged. Constness is load-bearing: const access
/// never copies, while MUTABLE access to a view first materializes it into an
/// owned copy (copy-on-write) so writers never touch foreign (possibly
/// read-only-mapped) memory. Materialization is not thread-safe; mutable
/// access requires the usual exclusive ownership writers need anyway.
class Storage {
 public:
  using value_type = float;

  Storage() = default;
  Storage(std::vector<float> data)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(data)), size_(owned_.size()) {}
  Storage& operator=(std::vector<float> data) {
    owned_ = std::move(data);
    view_ = nullptr;
    owner_.reset();
    size_ = owned_.size();
    return *this;
  }

  /// Non-owning view over `size` floats at `data`; `owner` keeps the backing
  /// memory (an mmap or a shared buffer) alive for the view's lifetime.
  static Storage view(const float* data, std::size_t size,
                      std::shared_ptr<const void> owner) {
    Storage s;
    s.view_ = data;
    s.size_ = size;
    s.owner_ = std::move(owner);
    return s;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool is_view() const { return view_ != nullptr; }

  const float* data() const { return view_ ? view_ : owned_.data(); }
  const float* cdata() const { return data(); }
  float* data() {
    ensure_owned();
    return owned_.data();
  }

  float operator[](std::size_t i) const { return data()[i]; }
  float& operator[](std::size_t i) { return data()[i]; }

  const float* begin() const { return data(); }
  const float* end() const { return data() + size_; }
  float* begin() { return data(); }
  float* end() { return data() + size_; }

  void assign(std::size_t n, float v) {
    view_ = nullptr;
    owner_.reset();
    owned_.assign(n, v);
    size_ = n;
  }

  /// Copies a view into owned memory; no-op when already owned.
  void ensure_owned() {
    if (!view_) return;
    owned_.assign(view_, view_ + size_);
    view_ = nullptr;
    owner_.reset();
  }

  /// Explicit: converting to a vector is a deep copy -- an implicit
  /// conversion here silently turned `const std::vector<float>& x =
  /// t.value()` bindings into full-buffer copies.
  explicit operator std::vector<float>() const {
    return std::vector<float>(data(), data() + size_);
  }

 private:
  std::vector<float> owned_;
  const float* view_ = nullptr;  // non-null iff this is a view
  std::size_t size_ = 0;
  std::shared_ptr<const void> owner_;
};

inline bool operator==(const Storage& a, const Storage& b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin());
}
inline bool operator==(const Storage& a, const std::vector<float>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}
inline bool operator==(const std::vector<float>& a, const Storage& b) {
  return b == a;
}

class Tensor {
 public:
  Tensor() = default;

  /// Constructors.
  static Tensor zeros(std::vector<int> shape, bool requires_grad = false);
  static Tensor full(std::vector<int> shape, float fill,
                     bool requires_grad = false);
  static Tensor from_data(std::vector<int> shape, std::vector<float> data,
                          bool requires_grad = false);
  /// Gaussian init with the given stddev (transformer weight init).
  static Tensor randn(std::vector<int> shape, Rng& rng, float stddev,
                      bool requires_grad = false);
  /// Non-owning tensor over external memory (zero-copy snapshot load);
  /// `owner` keeps the backing mapping alive. Never requires grad.
  static Tensor from_view(std::vector<int> shape, const float* data,
                          std::shared_ptr<const void> owner);

  bool defined() const { return node_ != nullptr; }
  const std::vector<int>& shape() const;
  int dim(int i) const;
  int rank() const;
  std::size_t numel() const;

  Storage& value();
  const Storage& value() const;
  /// Repoints this tensor's storage at external memory (must match numel()).
  /// Grad state is unchanged -- a parameter stays trainable, its first
  /// mutable access simply materializes an owned copy.
  void set_view(const float* data, std::size_t size,
                std::shared_ptr<const void> owner);
  std::vector<float>& grad();
  const std::vector<float>& grad() const;
  bool requires_grad() const;
  void zero_grad();
  /// Frees the grad buffer without changing requires_grad; it reallocates
  /// lazily (ensure_grad) on the next backward/zero_grad/grad() access.
  /// Loaders call this so an eval-only model does not hold a dead
  /// model-sized gradient allocation.
  void release_grad();

  float item() const;  // requires numel()==1

  /// Runs reverse-mode autodiff from this scalar.
  void backward();

  /// Internal handle (used by ops).
  const std::shared_ptr<detail::Node>& node() const { return node_; }
  explicit Tensor(std::shared_ptr<detail::Node> node)
      : node_(std::move(node)) {}

 private:
  std::shared_ptr<detail::Node> node_;
};

// ---- ops -------------------------------------------------------------------

/// [m,k] x [k,n] -> [m,n]; parallel over rows.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Elementwise (same shape).
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

/// [m,n] + [n] broadcast over rows.
Tensor add_bias(const Tensor& x, const Tensor& bias);

Tensor scale(const Tensor& x, float s);
Tensor relu(const Tensor& x);
Tensor gelu(const Tensor& x);  // tanh approximation

/// Row-wise softmax over the last dimension.
Tensor softmax_rows(const Tensor& x);

/// Row-wise layer normalization with learned gamma/beta ([n]).
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);

/// Gathers rows of `table` ([V,d]) by ids -> [len(ids), d].
Tensor embedding(const std::vector<int>& ids, const Tensor& table);

/// [m,n] -> [n,m].
Tensor transpose(const Tensor& x);

/// Row slice [begin,end) as a copy (grads flow back into the slice).
Tensor slice_rows(const Tensor& x, int begin, int end);

/// Vertical concatenation of same-width matrices.
Tensor concat_rows(const std::vector<Tensor>& xs);

/// Inverted dropout; identity when !training or p == 0.
Tensor dropout(const Tensor& x, float p, Rng& rng, bool training);

/// Fused multi-head scaled-dot-product attention.
/// q: [B*Tq, d], k/v: [B*Tk, d], d = heads * head_dim.
/// `q_lens`/`kv_lens` give valid lengths per batch element (padding mask);
/// pass nullptr for fully valid. `causal` restricts to kv_pos <= q_pos
/// (Tq must equal Tk for causal use).
Tensor multi_head_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                            int batch, int heads, bool causal,
                            const std::vector<int>* q_lens = nullptr,
                            const std::vector<int>* kv_lens = nullptr);

/// Mean cross-entropy over rows of `logits` ([N,V]) against `targets` ([N]),
/// skipping rows whose target equals `ignore_index`. Numerically stable
/// (fused log-softmax). Returns a scalar.
Tensor cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                     int ignore_index = -1);

/// Token-level argmax accuracy against targets, skipping ignore_index rows.
/// (Not differentiable; monitoring only.)
double accuracy(const Tensor& logits, const std::vector<int>& targets,
                int ignore_index = -1);

// ---- raw helpers (no autograd; used by the inference path) -----------------

/// y[n] = x[m] @ W[m,n] (+ b[n] when b != nullptr). Forward-only GEMV used by
/// the incremental decoder.
void gemv_row(const float* x, const float* w, const float* b, float* y, int m,
              int n);

}  // namespace mpirical::tensor
