// Token model for the C lexer.
#pragma once

#include <string>
#include <vector>

namespace mpirical::lex {

enum class TokenKind {
  kIdentifier,    // foo, MPI_Init, my_var
  kKeyword,       // if, while, int, return, ...
  kIntLiteral,    // 42, 0x1F, 100000L
  kFloatLiteral,  // 3.14, 1e-6, .5f
  kStringLiteral, // "hello\n" (text keeps the quotes)
  kCharLiteral,   // 'a' (text keeps the quotes)
  kPunct,         // operators and punctuation: + - -> ( ) { } ; ...
  kDirective,     // whole preprocessor line: #include <mpi.h>
  kEndOfFile,
};

const char* token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;  // exact source spelling
  int line = 0;      // 1-based
  int column = 0;    // 1-based

  bool is(TokenKind k) const { return kind == k; }
  bool is_punct(const char* s) const {
    return kind == TokenKind::kPunct && text == s;
  }
  bool is_keyword(const char* s) const {
    return kind == TokenKind::kKeyword && text == s;
  }
};

/// The C keywords recognized by the lexer (C99 subset used by MPI codes).
bool is_c_keyword(const std::string& word);

}  // namespace mpirical::lex
