// C lexer.
//
// Produces a flat token stream with 1-based source locations. Preprocessor
// lines are captured as single kDirective tokens (the parser passes them
// through verbatim, matching how the paper's pipeline treats headers).
// Comments are skipped. Malformed input (unterminated string/comment, stray
// byte) raises mpirical::Error with the offending location.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "clex/token.hpp"

namespace mpirical::lex {

/// Lexes a full C translation unit into tokens (terminated by kEndOfFile).
std::vector<Token> tokenize(std::string_view source);

/// Number of tokens excluding directives and the EOF marker. This is the
/// "token count" used by the paper's 320-token exclusion criterion.
std::size_t code_token_count(const std::vector<Token>& tokens);

}  // namespace mpirical::lex
