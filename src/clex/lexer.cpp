#include "clex/lexer.hpp"

#include <array>
#include <cctype>
#include <sstream>
#include <unordered_set>

#include "support/check.hpp"

namespace mpirical::lex {

namespace {

const std::unordered_set<std::string>& keyword_set() {
  static const std::unordered_set<std::string> kw = {
      "auto",     "break",    "case",     "char",   "const",    "continue",
      "default",  "do",       "double",   "else",   "enum",     "extern",
      "float",    "for",      "goto",     "if",     "inline",   "int",
      "long",     "register", "restrict", "return", "short",    "signed",
      "sizeof",   "static",   "struct",   "switch", "typedef",  "union",
      "unsigned", "void",     "volatile", "while",
  };
  return kw;
}

// Multi-character punctuators, longest first so maximal munch works.
constexpr std::array<const char*, 19> kPunct3Plus = {
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=",
};
constexpr std::array<const char*, 6> kPunct2Extra = {"&=", "|=", "^=",
                                                     "##", "::", "//"};

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool match(std::string_view s) {
    if (src_.substr(pos_, s.size()) != s) return false;
    for (std::size_t i = 0; i < s.size(); ++i) advance();
    return true;
  }

  int line() const { return line_; }
  int column() const { return col_; }
  std::size_t pos() const { return pos_; }
  std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "lex error at line " << line_ << ", column " << col_ << ": " << msg;
    throw Error(os.str());
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

void skip_line_comment(Cursor& cur) {
  while (!cur.done() && cur.peek() != '\n') cur.advance();
}

void skip_block_comment(Cursor& cur) {
  // Caller consumed "/*".
  while (!cur.done()) {
    if (cur.peek() == '*' && cur.peek(1) == '/') {
      cur.advance();
      cur.advance();
      return;
    }
    cur.advance();
  }
  cur.fail("unterminated block comment");
}

Token lex_directive(Cursor& cur) {
  Token tok;
  tok.kind = TokenKind::kDirective;
  tok.line = cur.line();
  tok.column = cur.column();
  const std::size_t start = cur.pos();
  // A directive runs to end of line; backslash-newline continues it.
  while (!cur.done()) {
    if (cur.peek() == '\\' && cur.peek(1) == '\n') {
      cur.advance();
      cur.advance();
      continue;
    }
    if (cur.peek() == '\n') break;
    cur.advance();
  }
  tok.text = std::string(cur.slice(start));
  // Trim trailing carriage return if present.
  while (!tok.text.empty() &&
         (tok.text.back() == '\r' || tok.text.back() == ' ')) {
    tok.text.pop_back();
  }
  return tok;
}

Token lex_number(Cursor& cur) {
  Token tok;
  tok.line = cur.line();
  tok.column = cur.column();
  const std::size_t start = cur.pos();
  bool is_float = false;

  if (cur.peek() == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
    cur.advance();
    cur.advance();
    while (std::isxdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(cur.peek()))) cur.advance();
    if (cur.peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(cur.peek(1)))) {
      is_float = true;
      cur.advance();
      while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
        cur.advance();
      }
    } else if (cur.peek() == '.' &&
               !std::isalpha(static_cast<unsigned char>(cur.peek(1)))) {
      is_float = true;
      cur.advance();
    }
    if (cur.peek() == 'e' || cur.peek() == 'E') {
      const char sign = cur.peek(1);
      const char digit = (sign == '+' || sign == '-') ? cur.peek(2) : sign;
      if (std::isdigit(static_cast<unsigned char>(digit))) {
        is_float = true;
        cur.advance();  // e
        if (sign == '+' || sign == '-') cur.advance();
        while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
          cur.advance();
        }
      }
    }
  }
  // Suffixes: integer (u/l combos) or float (f/l).
  while (std::isalpha(static_cast<unsigned char>(cur.peek()))) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(cur.peek())));
    if (c == 'u' || c == 'l') {
      cur.advance();
    } else if (c == 'f' && is_float) {
      cur.advance();
    } else if (c == 'f' && !is_float) {
      // "0f" style is not valid C; stop and let the parser complain if needed.
      break;
    } else {
      break;
    }
  }
  tok.text = std::string(cur.slice(start));
  tok.kind = is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral;
  return tok;
}

Token lex_quoted(Cursor& cur, char quote) {
  Token tok;
  tok.kind = quote == '"' ? TokenKind::kStringLiteral : TokenKind::kCharLiteral;
  tok.line = cur.line();
  tok.column = cur.column();
  const std::size_t start = cur.pos();
  cur.advance();  // opening quote
  while (!cur.done()) {
    const char c = cur.peek();
    if (c == '\n') cur.fail("unterminated literal");
    if (c == '\\') {
      cur.advance();
      if (cur.done()) cur.fail("unterminated escape");
      cur.advance();
      continue;
    }
    cur.advance();
    if (c == quote) {
      tok.text = std::string(cur.slice(start));
      return tok;
    }
  }
  cur.fail("unterminated literal");
}

Token lex_word(Cursor& cur) {
  Token tok;
  tok.line = cur.line();
  tok.column = cur.column();
  const std::size_t start = cur.pos();
  while (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
         cur.peek() == '_') {
    cur.advance();
  }
  tok.text = std::string(cur.slice(start));
  tok.kind = is_c_keyword(tok.text) ? TokenKind::kKeyword
                                    : TokenKind::kIdentifier;
  return tok;
}

Token lex_punct(Cursor& cur) {
  Token tok;
  tok.kind = TokenKind::kPunct;
  tok.line = cur.line();
  tok.column = cur.column();
  for (const char* p : kPunct3Plus) {
    if (cur.match(p)) {
      tok.text = p;
      return tok;
    }
  }
  for (const char* p : kPunct2Extra) {
    if (cur.match(p)) {
      tok.text = p;
      return tok;
    }
  }
  const char c = cur.peek();
  static const std::string kSingles = "+-*/%=<>!&|^~?:;,.()[]{}";
  if (kSingles.find(c) != std::string::npos) {
    cur.advance();
    tok.text = std::string(1, c);
    return tok;
  }
  cur.fail(std::string("unexpected character '") + c + "'");
}

}  // namespace

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIntLiteral: return "int_literal";
    case TokenKind::kFloatLiteral: return "float_literal";
    case TokenKind::kStringLiteral: return "string_literal";
    case TokenKind::kCharLiteral: return "char_literal";
    case TokenKind::kPunct: return "punct";
    case TokenKind::kDirective: return "directive";
    case TokenKind::kEndOfFile: return "eof";
  }
  return "unknown";
}

bool is_c_keyword(const std::string& word) {
  return keyword_set().count(word) > 0;
}

std::vector<Token> tokenize(std::string_view source) {
  Cursor cur(source);
  std::vector<Token> out;
  bool at_line_start = true;

  while (!cur.done()) {
    const char c = cur.peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      if (c == '\n') at_line_start = true;
      cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '/') {
      skip_line_comment(cur);
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      skip_block_comment(cur);
      continue;
    }
    if (c == '#' && at_line_start) {
      out.push_back(lex_directive(cur));
      continue;
    }
    at_line_start = false;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
      out.push_back(lex_number(cur));
    } else if (c == '"' || c == '\'') {
      out.push_back(lex_quoted(cur, c));
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(lex_word(cur));
    } else {
      out.push_back(lex_punct(cur));
    }
  }

  Token eof;
  eof.kind = TokenKind::kEndOfFile;
  eof.line = cur.line();
  eof.column = cur.column();
  out.push_back(eof);
  return out;
}

std::size_t code_token_count(const std::vector<Token>& tokens) {
  std::size_t n = 0;
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kDirective && t.kind != TokenKind::kEndOfFile) {
      ++n;
    }
  }
  return n;
}

}  // namespace mpirical::lex
