#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/check.hpp"

namespace mpirical::metrics {

PrfCounts match_call_sites(const std::vector<ast::CallSite>& predicted,
                           const std::vector<ast::CallSite>& truth,
                           int line_tolerance) {
  return match_call_sites_filtered(predicted, truth, line_tolerance,
                                   [](const std::string&) { return true; });
}

PrfCounts match_call_sites_filtered(
    const std::vector<ast::CallSite>& predicted,
    const std::vector<ast::CallSite>& truth, int line_tolerance,
    const std::function<bool(const std::string&)>& keep) {
  std::vector<const ast::CallSite*> pred;
  std::vector<const ast::CallSite*> gt;
  for (const auto& p : predicted) {
    if (keep(p.callee)) pred.push_back(&p);
  }
  for (const auto& t : truth) {
    if (keep(t.callee)) gt.push_back(&t);
  }

  std::vector<bool> used(gt.size(), false);
  PrfCounts counts;
  for (const auto* p : pred) {
    int best = -1;
    int best_delta = line_tolerance + 1;
    for (std::size_t i = 0; i < gt.size(); ++i) {
      if (used[i] || gt[i]->callee != p->callee) continue;
      const int delta = std::abs(gt[i]->line - p->line);
      if (delta < best_delta) {
        best_delta = delta;
        best = static_cast<int>(i);
      }
    }
    if (best >= 0 && best_delta <= line_tolerance) {
      used[static_cast<std::size_t>(best)] = true;
      ++counts.tp;
    } else {
      ++counts.fp;
    }
  }
  for (std::size_t i = 0; i < gt.size(); ++i) {
    if (!used[i]) ++counts.fn;
  }
  return counts;
}

double bleu(const std::vector<std::string>& candidate,
            const std::vector<std::string>& reference, int max_n) {
  MR_CHECK(max_n >= 1, "bleu requires max_n >= 1");
  if (candidate.empty() || reference.empty()) return 0.0;

  double log_sum = 0.0;
  for (int n = 1; n <= max_n; ++n) {
    const std::size_t un = static_cast<std::size_t>(n);
    if (candidate.size() < un) {
      // No n-grams of this order; use the epsilon-smoothed value.
      log_sum += std::log(1e-9) / max_n;
      continue;
    }
    std::map<std::vector<std::string>, std::size_t> ref_counts;
    if (reference.size() >= un) {
      for (std::size_t i = 0; i + un <= reference.size(); ++i) {
        std::vector<std::string> gram(reference.begin() + i,
                                      reference.begin() + i + un);
        ++ref_counts[gram];
      }
    }
    std::size_t matched = 0;
    const std::size_t total = candidate.size() - un + 1;
    std::map<std::vector<std::string>, std::size_t> used;
    for (std::size_t i = 0; i + un <= candidate.size(); ++i) {
      std::vector<std::string> gram(candidate.begin() + i,
                                    candidate.begin() + i + un);
      auto it = ref_counts.find(gram);
      if (it != ref_counts.end() && used[gram] < it->second) {
        ++used[gram];
        ++matched;
      }
    }
    // Lin-Och style +1 smoothing for n >= 2.
    double p;
    if (n == 1) {
      p = total == 0 ? 0.0
                     : static_cast<double>(matched) /
                           static_cast<double>(total);
    } else {
      p = (static_cast<double>(matched) + 1.0) /
          (static_cast<double>(total) + 1.0);
    }
    if (p <= 0.0) p = 1e-9;
    log_sum += std::log(p) / max_n;
  }

  // Brevity penalty.
  const double c = static_cast<double>(candidate.size());
  const double r = static_cast<double>(reference.size());
  const double bp = c >= r ? 1.0 : std::exp(1.0 - r / c);
  return bp * std::exp(log_sum);
}

namespace {

/// Greedy in-order unigram alignment: candidate position -> reference
/// position (or -1).
std::vector<int> align_unigrams(const std::vector<std::string>& candidate,
                                const std::vector<std::string>& reference) {
  std::vector<bool> ref_used(reference.size(), false);
  std::vector<int> align(candidate.size(), -1);
  std::size_t search_from = 0;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    // Prefer the first unmatched occurrence at or after the previous match
    // (keeps alignments monotone where possible), else any unmatched one.
    int found = -1;
    for (std::size_t j = search_from; j < reference.size(); ++j) {
      if (!ref_used[j] && reference[j] == candidate[i]) {
        found = static_cast<int>(j);
        break;
      }
    }
    if (found < 0) {
      for (std::size_t j = 0; j < search_from && j < reference.size(); ++j) {
        if (!ref_used[j] && reference[j] == candidate[i]) {
          found = static_cast<int>(j);
          break;
        }
      }
    }
    if (found >= 0) {
      ref_used[static_cast<std::size_t>(found)] = true;
      align[i] = found;
      search_from = static_cast<std::size_t>(found) + 1;
    }
  }
  return align;
}

}  // namespace

double meteor(const std::vector<std::string>& candidate,
              const std::vector<std::string>& reference) {
  if (candidate.empty() || reference.empty()) return 0.0;
  const auto align = align_unigrams(candidate, reference);
  std::size_t matches = 0;
  for (int a : align) {
    if (a >= 0) ++matches;
  }
  if (matches == 0) return 0.0;

  const double m = static_cast<double>(matches);
  const double p = m / static_cast<double>(candidate.size());
  const double r = m / static_cast<double>(reference.size());
  const double fmean = 10.0 * p * r / (r + 9.0 * p);

  // Chunks: maximal runs of adjacent candidate matches mapping to adjacent
  // reference positions.
  std::size_t chunks = 0;
  int prev_ref = -2;
  bool in_chunk = false;
  for (std::size_t i = 0; i < align.size(); ++i) {
    if (align[i] < 0) {
      in_chunk = false;
      prev_ref = -2;
      continue;
    }
    if (!in_chunk || align[i] != prev_ref + 1) ++chunks;
    in_chunk = true;
    prev_ref = align[i];
  }
  const double frag = static_cast<double>(chunks) / m;
  const double penalty = 0.5 * frag * frag * frag;
  return fmean * (1.0 - penalty);
}

std::size_t lcs_length(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0;
  // Rolling one-row DP.
  std::vector<std::size_t> prev(b.size() + 1, 0);
  std::vector<std::size_t> curr(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

double rouge_l(const std::vector<std::string>& candidate,
               const std::vector<std::string>& reference) {
  if (candidate.empty() || reference.empty()) return 0.0;
  const double lcs = static_cast<double>(lcs_length(candidate, reference));
  if (lcs == 0.0) return 0.0;
  const double p = lcs / static_cast<double>(candidate.size());
  const double r = lcs / static_cast<double>(reference.size());
  return 2.0 * p * r / (p + r);
}

bool exact_match(const std::vector<std::string>& candidate,
                 const std::vector<std::string>& reference) {
  return candidate == reference;
}

}  // namespace mpirical::metrics
