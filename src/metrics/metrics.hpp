// Evaluation metrics, matching the paper's Section VI.
//
// Classification view (RQ1 + RQ2): a predicted MPI call counts as a true
// positive when an unmatched ground-truth call has the same function name and
// a location within the line tolerance (the paper uses one line). Remaining
// predictions are false positives; remaining ground-truth calls are false
// negatives. True negatives are out of scope (as in the paper).
//
// Sequence view: BLEU-4 (smoothed, with brevity penalty), METEOR (unigram
// F-mean with fragmentation penalty), ROUGE-L (LCS F-measure) and exact-match
// accuracy over whole token sequences.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cast/node.hpp"

namespace mpirical::metrics {

struct PrfCounts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  PrfCounts& operator+=(const PrfCounts& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
    return *this;
  }

  // Counts merge commutatively and exactly (integers), so sharded partial
  // sums reduce to the same totals in any order; equality backs the
  // shard-invariance differential suite.
  friend PrfCounts operator+(PrfCounts a, const PrfCounts& b) {
    a += b;
    return a;
  }
  friend bool operator==(const PrfCounts& a, const PrfCounts& b) {
    return a.tp == b.tp && a.fp == b.fp && a.fn == b.fn;
  }
  friend bool operator!=(const PrfCounts& a, const PrfCounts& b) {
    return !(a == b);
  }

  double precision() const {
    return tp + fp == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fn);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Greedy one-to-one matching of predicted vs. ground-truth call sites with
/// the given line tolerance. Predictions are matched in order to the nearest
/// (by |line delta|) unmatched ground-truth site with the same callee.
PrfCounts match_call_sites(const std::vector<ast::CallSite>& predicted,
                           const std::vector<ast::CallSite>& truth,
                           int line_tolerance = 1);

/// Same, but restricted to calls satisfying `keep` (e.g. Common Core only).
PrfCounts match_call_sites_filtered(
    const std::vector<ast::CallSite>& predicted,
    const std::vector<ast::CallSite>& truth, int line_tolerance,
    const std::function<bool(const std::string&)>& keep);

/// Smoothed corpus BLEU-N over one candidate/reference pair.
double bleu(const std::vector<std::string>& candidate,
            const std::vector<std::string>& reference, int max_n = 4);

/// METEOR (exact unigram matching, F-mean alpha = 0.9, fragmentation
/// penalty 0.5 * (chunks / matches)^3).
double meteor(const std::vector<std::string>& candidate,
              const std::vector<std::string>& reference);

/// ROUGE-L F1 (LCS-based).
double rouge_l(const std::vector<std::string>& candidate,
               const std::vector<std::string>& reference);

/// Longest common subsequence length (exposed for tests).
std::size_t lcs_length(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

/// Whole-sequence exact match.
bool exact_match(const std::vector<std::string>& candidate,
                 const std::vector<std::string>& reference);

}  // namespace mpirical::metrics
