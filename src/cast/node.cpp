#include "cast/node.hpp"

#include <functional>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace mpirical::ast {

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kTranslationUnit: return "translation_unit";
    case NodeKind::kPreprocDirective: return "preproc_directive";
    case NodeKind::kFunctionDefinition: return "function_definition";
    case NodeKind::kParameterList: return "parameter_list";
    case NodeKind::kParameterDeclaration: return "parameter_declaration";
    case NodeKind::kTypeSpec: return "type_spec";
    case NodeKind::kDeclarator: return "declarator";
    case NodeKind::kDeclaration: return "declaration";
    case NodeKind::kInitDeclarator: return "init_declarator";
    case NodeKind::kCompoundStatement: return "compound_statement";
    case NodeKind::kExpressionStatement: return "expression_statement";
    case NodeKind::kIfStatement: return "if_statement";
    case NodeKind::kWhileStatement: return "while_statement";
    case NodeKind::kDoStatement: return "do_statement";
    case NodeKind::kForStatement: return "for_statement";
    case NodeKind::kReturnStatement: return "return_statement";
    case NodeKind::kBreakStatement: return "break_statement";
    case NodeKind::kContinueStatement: return "continue_statement";
    case NodeKind::kSwitchStatement: return "switch_statement";
    case NodeKind::kCaseStatement: return "case_statement";
    case NodeKind::kIdentifier: return "identifier";
    case NodeKind::kNumberLiteral: return "number_literal";
    case NodeKind::kStringLiteral: return "string_literal";
    case NodeKind::kCharLiteral: return "char_literal";
    case NodeKind::kCallExpression: return "call_expression";
    case NodeKind::kBinaryExpression: return "binary_expression";
    case NodeKind::kUnaryExpression: return "unary_expression";
    case NodeKind::kPointerExpression: return "pointer_expression";
    case NodeKind::kUpdateExpression: return "update_expression";
    case NodeKind::kAssignmentExpression: return "assignment_expression";
    case NodeKind::kConditionalExpression: return "conditional_expression";
    case NodeKind::kCastExpression: return "cast_expression";
    case NodeKind::kParenthesizedExpression: return "parenthesized_expression";
    case NodeKind::kSubscriptExpression: return "subscript_expression";
    case NodeKind::kFieldExpression: return "field_expression";
    case NodeKind::kSizeofExpression: return "sizeof_expression";
    case NodeKind::kInitList: return "init_list";
    case NodeKind::kCommaExpression: return "comma_expression";
    case NodeKind::kEmptyExpr: return "empty_expr";
  }
  return "unknown";
}

NodePtr make_node(NodeKind kind, std::string text, int line) {
  return std::make_unique<Node>(kind, std::move(text), line);
}

NodePtr clone(const Node& node) {
  auto copy = std::make_unique<Node>();
  copy->kind = node.kind;
  copy->line = node.line;
  copy->text = node.text;
  copy->aux = node.aux;
  copy->children.reserve(node.children.size());
  for (const auto& c : node.children) {
    MR_ASSERT(c != nullptr);
    copy->children.push_back(clone(*c));
  }
  return copy;
}

bool structurally_equal(const Node& a, const Node& b) {
  if (a.kind != b.kind || a.text != b.text || a.aux != b.aux) return false;
  if (a.children.size() != b.children.size()) return false;
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (!structurally_equal(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

bool is_statement(NodeKind kind) {
  switch (kind) {
    case NodeKind::kCompoundStatement:
    case NodeKind::kExpressionStatement:
    case NodeKind::kIfStatement:
    case NodeKind::kWhileStatement:
    case NodeKind::kDoStatement:
    case NodeKind::kForStatement:
    case NodeKind::kReturnStatement:
    case NodeKind::kBreakStatement:
    case NodeKind::kContinueStatement:
    case NodeKind::kSwitchStatement:
    case NodeKind::kCaseStatement:
    case NodeKind::kDeclaration:
      return true;
    default:
      return false;
  }
}

bool is_expression(NodeKind kind) {
  switch (kind) {
    case NodeKind::kIdentifier:
    case NodeKind::kNumberLiteral:
    case NodeKind::kStringLiteral:
    case NodeKind::kCharLiteral:
    case NodeKind::kCallExpression:
    case NodeKind::kBinaryExpression:
    case NodeKind::kUnaryExpression:
    case NodeKind::kPointerExpression:
    case NodeKind::kUpdateExpression:
    case NodeKind::kAssignmentExpression:
    case NodeKind::kConditionalExpression:
    case NodeKind::kCastExpression:
    case NodeKind::kParenthesizedExpression:
    case NodeKind::kSubscriptExpression:
    case NodeKind::kFieldExpression:
    case NodeKind::kSizeofExpression:
    case NodeKind::kInitList:
    case NodeKind::kCommaExpression:
    case NodeKind::kEmptyExpr:
      return true;
    default:
      return false;
  }
}

void visit(const Node& node, const std::function<void(const Node&)>& fn) {
  fn(node);
  for (const auto& c : node.children) visit(*c, fn);
}

std::vector<CallSite> collect_calls(const Node& root) {
  std::vector<CallSite> out;
  visit(root, [&](const Node& n) {
    if (n.kind == NodeKind::kCallExpression) {
      out.push_back(CallSite{n.text, n.line});
    }
  });
  return out;
}

std::vector<CallSite> collect_mpi_calls(const Node& root) {
  std::vector<CallSite> out;
  for (CallSite& site : collect_calls(root)) {
    if (starts_with(site.callee, "MPI_")) out.push_back(std::move(site));
  }
  return out;
}

std::size_t node_count(const Node& root) {
  std::size_t n = 0;
  visit(root, [&](const Node&) { ++n; });
  return n;
}

}  // namespace mpirical::ast
