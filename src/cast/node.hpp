// AST node model for the C subset handled by the library.
//
// Nodes use a compact generic representation: a kind tag (named after the
// tree-sitter C grammar, which is what the paper's X-SBT is built from), the
// source line, a text payload whose meaning depends on the kind (identifier
// name, literal spelling, operator, type text, ...), a small integer `aux`
// (pointer depth, prefix/postfix flag, ...), and an ordered child list.
//
// Child conventions per kind (documented here, enforced by the parser and
// relied upon by the printer, X-SBT linearizer and interpreter):
//
//   translation_unit        children: top-level items
//   preproc_directive       text: the whole line ("#include <mpi.h>")
//   function_definition     children: [type_spec, declarator, parameter_list,
//                                      compound_statement]
//   parameter_list          children: parameter_declaration*
//   parameter_declaration   children: [type_spec, declarator]
//   type_spec               text: "unsigned long", "MPI_Status", ...
//   declarator              text: name; aux: pointer depth;
//                           children: array dimension exprs (empty_expr for [])
//   declaration             children: [type_spec, init_declarator+]
//   init_declarator         children: [declarator, initializer?]
//   compound_statement      children: statements
//   expression_statement    children: [expr?]
//   if_statement            children: [cond, then, else?]
//   while_statement         children: [cond, body]
//   do_statement            children: [body, cond]
//   for_statement           children: [init, cond, update, body]
//                           (init: declaration | expression_statement |
//                            empty_expr; cond/update: expr | empty_expr)
//   return_statement        children: [expr?]
//   break_statement / continue_statement
//   switch_statement        children: [cond, compound_statement(case*)]
//   case_statement          text: "case" | "default";
//                           children: [value?] then body statements
//   identifier              text: name
//   number_literal          text: spelling (int or float)
//   string_literal          text: spelling including quotes
//   char_literal            text: spelling including quotes
//   call_expression         text: callee name; children: arguments
//   binary_expression       text: operator; children: [lhs, rhs]
//   unary_expression        text: "!" | "-" | "+" | "~"; children: [operand]
//   pointer_expression      text: "*" | "&"; children: [operand]
//   update_expression       text: "++" | "--"; aux: 0 prefix / 1 postfix;
//                           children: [operand]
//   assignment_expression   text: "=", "+=", ...; children: [lhs, rhs]
//   conditional_expression  children: [cond, then, else]
//   cast_expression         text: target type; aux: pointer depth;
//                           children: [operand]
//   parenthesized_expression children: [expr]
//   subscript_expression    children: [base, index]
//   field_expression        text: field; aux: 0 '.' / 1 '->'; children: [base]
//   sizeof_expression       text: type (if aux==0) else children: [expr]
//   init_list               children: initializer exprs
//   comma_expression        children: [lhs, rhs]
//   empty_expr              placeholder for omitted for-clauses / dimensions
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mpirical::ast {

enum class NodeKind {
  kTranslationUnit,
  kPreprocDirective,
  kFunctionDefinition,
  kParameterList,
  kParameterDeclaration,
  kTypeSpec,
  kDeclarator,
  kDeclaration,
  kInitDeclarator,
  kCompoundStatement,
  kExpressionStatement,
  kIfStatement,
  kWhileStatement,
  kDoStatement,
  kForStatement,
  kReturnStatement,
  kBreakStatement,
  kContinueStatement,
  kSwitchStatement,
  kCaseStatement,
  kIdentifier,
  kNumberLiteral,
  kStringLiteral,
  kCharLiteral,
  kCallExpression,
  kBinaryExpression,
  kUnaryExpression,
  kPointerExpression,
  kUpdateExpression,
  kAssignmentExpression,
  kConditionalExpression,
  kCastExpression,
  kParenthesizedExpression,
  kSubscriptExpression,
  kFieldExpression,
  kSizeofExpression,
  kInitList,
  kCommaExpression,
  kEmptyExpr,
};

/// Tree-sitter style grammar name, e.g. "compound_statement". Used by X-SBT.
const char* node_kind_name(NodeKind kind);

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  NodeKind kind = NodeKind::kEmptyExpr;
  int line = 0;  // 1-based source line of the node's first token
  std::string text;
  int aux = 0;
  std::vector<NodePtr> children;

  Node() = default;
  Node(NodeKind k, std::string t = {}, int ln = 0)
      : kind(k), line(ln), text(std::move(t)) {}

  Node* child(std::size_t i) const { return children[i].get(); }
  std::size_t child_count() const { return children.size(); }
  void add(NodePtr c) { children.push_back(std::move(c)); }
};

NodePtr make_node(NodeKind kind, std::string text = {}, int line = 0);

/// Deep copy.
NodePtr clone(const Node& node);

/// Structural equality: kind, text, aux, children -- source lines ignored.
bool structurally_equal(const Node& a, const Node& b);

/// True for statement-level kinds (used by X-SBT and the printer).
bool is_statement(NodeKind kind);

/// True for expression-level kinds.
bool is_expression(NodeKind kind);

/// Depth-first pre-order visit; `fn` may not mutate structure.
void visit(const Node& node, const std::function<void(const Node&)>& fn);

/// A function call site discovered in a tree.
struct CallSite {
  std::string callee;
  int line = 0;  // line of the call expression
};

/// Collects all call_expression sites in pre-order.
std::vector<CallSite> collect_calls(const Node& root);

/// Collects call sites whose callee starts with "MPI_".
std::vector<CallSite> collect_mpi_calls(const Node& root);

/// Number of AST nodes (for stats / sanity checks).
std::size_t node_count(const Node& root);

}  // namespace mpirical::ast
