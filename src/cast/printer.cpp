#include "cast/printer.hpp"

#include <sstream>

#include "support/check.hpp"

namespace mpirical::ast {

namespace {

class Printer {
 public:
  std::string render(const Node& root) {
    out_.str("");
    if (root.kind == NodeKind::kTranslationUnit) {
      for (const auto& item : root.children) emit_top_level(*item);
    } else if (is_statement(root.kind)) {
      emit_statement(root);
    } else {
      out_ << expr(root) << '\n';
    }
    return out_.str();
  }

  std::string expr(const Node& e) {
    switch (e.kind) {
      case NodeKind::kIdentifier:
      case NodeKind::kNumberLiteral:
      case NodeKind::kStringLiteral:
      case NodeKind::kCharLiteral:
        return e.text;
      case NodeKind::kEmptyExpr:
        return "";
      case NodeKind::kCallExpression: {
        std::string s = e.text + "(";
        for (std::size_t i = 0; i < e.children.size(); ++i) {
          if (i > 0) s += ", ";
          s += expr(*e.children[i]);
        }
        return s + ")";
      }
      case NodeKind::kBinaryExpression:
        return expr(*e.child(0)) + " " + e.text + " " + expr(*e.child(1));
      case NodeKind::kUnaryExpression:
        return e.text + expr(*e.child(0));
      case NodeKind::kPointerExpression:
        return e.text + expr(*e.child(0));
      case NodeKind::kUpdateExpression:
        return e.aux == 0 ? e.text + expr(*e.child(0))
                          : expr(*e.child(0)) + e.text;
      case NodeKind::kAssignmentExpression:
        return expr(*e.child(0)) + " " + e.text + " " + expr(*e.child(1));
      case NodeKind::kConditionalExpression:
        return expr(*e.child(0)) + " ? " + expr(*e.child(1)) + " : " +
               expr(*e.child(2));
      case NodeKind::kCastExpression: {
        std::string s = "(" + e.text;
        for (int i = 0; i < e.aux; ++i) s += " *";
        return s + ")" + expr(*e.child(0));
      }
      case NodeKind::kParenthesizedExpression:
        return "(" + expr(*e.child(0)) + ")";
      case NodeKind::kSubscriptExpression:
        return expr(*e.child(0)) + "[" + expr(*e.child(1)) + "]";
      case NodeKind::kFieldExpression:
        return expr(*e.child(0)) + (e.aux == 1 ? "->" : ".") + e.text;
      case NodeKind::kSizeofExpression:
        if (e.children.empty()) return "sizeof(" + e.text + ")";
        return "sizeof(" + expr(*e.child(0)) + ")";
      case NodeKind::kInitList: {
        std::string s = "{";
        for (std::size_t i = 0; i < e.children.size(); ++i) {
          if (i > 0) s += ", ";
          s += expr(*e.children[i]);
        }
        return s + "}";
      }
      case NodeKind::kCommaExpression:
        return expr(*e.child(0)) + ", " + expr(*e.child(1));
      default:
        MR_CHECK(false, std::string("not an expression node: ") +
                            node_kind_name(e.kind));
    }
  }

 private:
  void indent() {
    for (int i = 0; i < depth_; ++i) out_ << "    ";
  }

  std::string declarator_text(const Node& d) {
    MR_ASSERT(d.kind == NodeKind::kDeclarator);
    std::string s;
    for (int i = 0; i < d.aux; ++i) s += "*";
    s += d.text;
    for (const auto& dim : d.children) {
      s += "[";
      s += expr(*dim);
      s += "]";
    }
    return s;
  }

  std::string declaration_text(const Node& decl) {
    MR_ASSERT(decl.kind == NodeKind::kDeclaration);
    std::string s = decl.child(0)->text;  // type_spec
    s += " ";
    for (std::size_t i = 1; i < decl.children.size(); ++i) {
      if (i > 1) s += ", ";
      const Node& init_decl = *decl.children[i];
      MR_ASSERT(init_decl.kind == NodeKind::kInitDeclarator);
      s += declarator_text(*init_decl.child(0));
      if (init_decl.child_count() == 2) {
        s += " = ";
        s += expr(*init_decl.child(1));
      }
    }
    return s + ";";
  }

  void emit_top_level(const Node& item) {
    switch (item.kind) {
      case NodeKind::kPreprocDirective:
        out_ << item.text << '\n';
        break;
      case NodeKind::kFunctionDefinition:
        emit_function(item);
        break;
      case NodeKind::kDeclaration:
        indent();
        out_ << declaration_text(item) << '\n';
        break;
      default:
        MR_CHECK(false, std::string("unexpected top-level node: ") +
                            node_kind_name(item.kind));
    }
  }

  void emit_function(const Node& fn) {
    const Node& type = *fn.child(0);
    const Node& decl = *fn.child(1);
    const Node& params = *fn.child(2);
    const Node& body = *fn.child(3);
    out_ << type.text << " ";
    for (int i = 0; i < decl.aux; ++i) out_ << "*";
    out_ << decl.text << "(";
    if (params.children.empty()) {
      out_ << "";
    }
    for (std::size_t i = 0; i < params.children.size(); ++i) {
      if (i > 0) out_ << ", ";
      const Node& p = *params.children[i];
      MR_ASSERT(p.kind == NodeKind::kParameterDeclaration);
      out_ << p.child(0)->text;
      const Node& pd = *p.child(1);
      if (!pd.text.empty() || pd.aux > 0 || !pd.children.empty()) {
        out_ << " " << declarator_text(pd);
      }
    }
    out_ << ") {\n";
    ++depth_;
    for (const auto& stmt : body.children) emit_statement(*stmt);
    --depth_;
    indent();
    out_ << "}\n";
  }

  void emit_block(const Node& stmt) {
    // Renders `stmt` as a brace-enclosed block body (opening brace already
    // emitted by the caller on its own header line).
    if (stmt.kind == NodeKind::kCompoundStatement) {
      ++depth_;
      for (const auto& s : stmt.children) emit_statement(*s);
      --depth_;
    } else {
      ++depth_;
      emit_statement(stmt);
      --depth_;
    }
  }

  void emit_statement(const Node& s) {
    switch (s.kind) {
      case NodeKind::kCompoundStatement:
        indent();
        out_ << "{\n";
        ++depth_;
        for (const auto& c : s.children) emit_statement(*c);
        --depth_;
        indent();
        out_ << "}\n";
        break;
      case NodeKind::kDeclaration:
        indent();
        out_ << declaration_text(s) << '\n';
        break;
      case NodeKind::kExpressionStatement:
        indent();
        if (!s.children.empty() &&
            s.child(0)->kind != NodeKind::kEmptyExpr) {
          out_ << expr(*s.child(0));
        }
        out_ << ";\n";
        break;
      case NodeKind::kIfStatement: {
        indent();
        out_ << "if (" << expr(*s.child(0)) << ") {\n";
        emit_block(*s.child(1));
        if (s.child_count() == 3) {
          indent();
          out_ << "} else {\n";
          emit_block(*s.child(2));
        }
        indent();
        out_ << "}\n";
        break;
      }
      case NodeKind::kWhileStatement:
        indent();
        out_ << "while (" << expr(*s.child(0)) << ") {\n";
        emit_block(*s.child(1));
        indent();
        out_ << "}\n";
        break;
      case NodeKind::kDoStatement:
        indent();
        out_ << "do {\n";
        emit_block(*s.child(0));
        indent();
        out_ << "} while (" << expr(*s.child(1)) << ");\n";
        break;
      case NodeKind::kForStatement: {
        indent();
        out_ << "for (";
        const Node& init = *s.child(0);
        if (init.kind == NodeKind::kDeclaration) {
          out_ << declaration_text(init);
        } else if (init.kind == NodeKind::kExpressionStatement) {
          if (!init.children.empty() &&
              init.child(0)->kind != NodeKind::kEmptyExpr) {
            out_ << expr(*init.child(0));
          }
          out_ << ";";
        } else {
          out_ << ";";
        }
        out_ << " ";
        if (s.child(1)->kind != NodeKind::kEmptyExpr) {
          out_ << expr(*s.child(1));
        }
        out_ << "; ";
        if (s.child(2)->kind != NodeKind::kEmptyExpr) {
          out_ << expr(*s.child(2));
        }
        out_ << ") {\n";
        emit_block(*s.child(3));
        indent();
        out_ << "}\n";
        break;
      }
      case NodeKind::kReturnStatement:
        indent();
        out_ << "return";
        if (!s.children.empty() &&
            s.child(0)->kind != NodeKind::kEmptyExpr) {
          out_ << " " << expr(*s.child(0));
        }
        out_ << ";\n";
        break;
      case NodeKind::kBreakStatement:
        indent();
        out_ << "break;\n";
        break;
      case NodeKind::kContinueStatement:
        indent();
        out_ << "continue;\n";
        break;
      case NodeKind::kSwitchStatement:
        indent();
        out_ << "switch (" << expr(*s.child(0)) << ") {\n";
        ++depth_;
        for (const auto& c : s.child(1)->children) emit_statement(*c);
        --depth_;
        indent();
        out_ << "}\n";
        break;
      case NodeKind::kCaseStatement: {
        indent();
        std::size_t body_start = 0;
        if (s.text == "case") {
          out_ << "case " << expr(*s.child(0)) << ":\n";
          body_start = 1;
        } else {
          out_ << "default:\n";
        }
        ++depth_;
        for (std::size_t i = body_start; i < s.children.size(); ++i) {
          emit_statement(*s.children[i]);
        }
        --depth_;
        break;
      }
      case NodeKind::kPreprocDirective:
        out_ << s.text << '\n';
        break;
      default:
        MR_CHECK(false, std::string("unexpected statement node: ") +
                            node_kind_name(s.kind));
    }
  }

  std::ostringstream out_;
  int depth_ = 0;
};

}  // namespace

std::string print_code(const Node& root) {
  Printer printer;
  return printer.render(root);
}

std::string print_expression(const Node& e) {
  Printer printer;
  return printer.expr(e);
}

}  // namespace mpirical::ast
