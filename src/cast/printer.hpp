// Standardizing pretty-printer: regenerates C source from an AST.
//
// This is the paper's "code standardization" step (Section V-A3): every
// program is regenerated from its AST with canonical indentation, one
// statement per line, and no stray blank lines, so that token positions and
// line numbers are comparable across the corpus and model outputs.
//
// Formatting contract (tests rely on it):
//   * 4-space indentation, braces K&R style ("if (x) {" ... "}")
//   * exactly one statement per line
//   * a single space around binary/assignment operators, after commas and
//     statement keywords; no space between a callee and '('
//   * compound statements always use braces, even for single statements
#pragma once

#include <string>

#include "cast/node.hpp"

namespace mpirical::ast {

/// Renders a full translation unit (or any statement subtree).
std::string print_code(const Node& root);

/// Renders a single expression subtree on one line.
std::string print_expression(const Node& expr);

}  // namespace mpirical::ast
