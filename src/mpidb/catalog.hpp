// Catalog of MPI routines.
//
// This is the label space of the classification view of MPI-RICAL: the paper
// reports 456 distinct MPI functions across MPICodeCorpus (the MPI-4 standard
// defines 430+). The catalog records every routine name the library knows,
// its category, and its argument count, and identifies the "MPI Common Core"
// -- the eight routines the paper singles out in Table Ib whose frequencies
// dominate the corpus.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mpirical::mpidb {

enum class Category {
  kEnvironment,   // Init, Finalize, Abort, Wtime, ...
  kPointToPoint,  // Send, Recv, Isend, Probe, ...
  kCollective,    // Bcast, Reduce, Gather, Barrier, ...
  kCommunicator,  // Comm_rank, Comm_size, Comm_split, ...
  kDatatype,      // Type_commit, Type_vector, ...
  kGroup,         // Group_incl, Group_union, ...
  kTopology,      // Cart_create, Dims_create, ...
  kRma,           // Win_create, Put, Get, ...
  kIo,            // File_open, File_read, ...
  kRequest,       // Wait, Test, Waitall, ...
  kInfo,          // Info_create, ...
  kOther,
};

const char* category_name(Category c);

struct Routine {
  std::string name;   // e.g. "MPI_Send"
  Category category = Category::kOther;
  int arity = 0;      // number of arguments in the C binding
};

/// All routines known to the catalog, in a stable order.
const std::vector<Routine>& all_routines();

/// Looks up a routine by exact name.
std::optional<Routine> find_routine(const std::string& name);

/// True if `name` is a known MPI routine ("MPI_" prefix and in the catalog).
bool is_known_routine(const std::string& name);

/// True for any identifier with the "MPI_" call prefix (catalogued or not).
bool has_mpi_prefix(const std::string& name);

/// The MPI Common Core (Table Ib): Init, Finalize, Comm_rank, Comm_size,
/// Send, Recv, Reduce, Bcast.
const std::vector<std::string>& common_core();
bool is_common_core(const std::string& name);

/// Number of routines in the catalog (the classification label count).
std::size_t catalog_size();

}  // namespace mpirical::mpidb
