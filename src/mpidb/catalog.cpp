#include "mpidb/catalog.hpp"

#include <unordered_map>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace mpirical::mpidb {

namespace {

std::vector<Routine> build_catalog() {
  using C = Category;
  // Arities follow the MPI-3.1 C bindings.
  return {
      // Environment management.
      {"MPI_Init", C::kEnvironment, 2},
      {"MPI_Init_thread", C::kEnvironment, 4},
      {"MPI_Finalize", C::kEnvironment, 0},
      {"MPI_Initialized", C::kEnvironment, 1},
      {"MPI_Finalized", C::kEnvironment, 1},
      {"MPI_Abort", C::kEnvironment, 2},
      {"MPI_Wtime", C::kEnvironment, 0},
      {"MPI_Wtick", C::kEnvironment, 0},
      {"MPI_Get_processor_name", C::kEnvironment, 2},
      {"MPI_Get_version", C::kEnvironment, 2},
      {"MPI_Get_library_version", C::kEnvironment, 2},
      {"MPI_Query_thread", C::kEnvironment, 1},
      {"MPI_Is_thread_main", C::kEnvironment, 1},
      {"MPI_Pcontrol", C::kEnvironment, 1},
      {"MPI_Buffer_attach", C::kEnvironment, 2},
      {"MPI_Buffer_detach", C::kEnvironment, 2},
      {"MPI_Alloc_mem", C::kEnvironment, 3},
      {"MPI_Free_mem", C::kEnvironment, 1},
      // Point-to-point.
      {"MPI_Send", C::kPointToPoint, 6},
      {"MPI_Recv", C::kPointToPoint, 7},
      {"MPI_Ssend", C::kPointToPoint, 6},
      {"MPI_Bsend", C::kPointToPoint, 6},
      {"MPI_Rsend", C::kPointToPoint, 6},
      {"MPI_Isend", C::kPointToPoint, 7},
      {"MPI_Irecv", C::kPointToPoint, 7},
      {"MPI_Issend", C::kPointToPoint, 7},
      {"MPI_Ibsend", C::kPointToPoint, 7},
      {"MPI_Irsend", C::kPointToPoint, 7},
      {"MPI_Sendrecv", C::kPointToPoint, 12},
      {"MPI_Sendrecv_replace", C::kPointToPoint, 9},
      {"MPI_Probe", C::kPointToPoint, 4},
      {"MPI_Iprobe", C::kPointToPoint, 5},
      {"MPI_Mprobe", C::kPointToPoint, 5},
      {"MPI_Improbe", C::kPointToPoint, 6},
      {"MPI_Mrecv", C::kPointToPoint, 5},
      {"MPI_Imrecv", C::kPointToPoint, 5},
      {"MPI_Get_count", C::kPointToPoint, 3},
      {"MPI_Get_elements", C::kPointToPoint, 3},
      {"MPI_Send_init", C::kPointToPoint, 7},
      {"MPI_Recv_init", C::kPointToPoint, 7},
      {"MPI_Ssend_init", C::kPointToPoint, 7},
      {"MPI_Bsend_init", C::kPointToPoint, 7},
      {"MPI_Rsend_init", C::kPointToPoint, 7},
      // Collectives.
      {"MPI_Barrier", C::kCollective, 1},
      {"MPI_Ibarrier", C::kCollective, 2},
      {"MPI_Bcast", C::kCollective, 5},
      {"MPI_Ibcast", C::kCollective, 6},
      {"MPI_Reduce", C::kCollective, 7},
      {"MPI_Ireduce", C::kCollective, 8},
      {"MPI_Allreduce", C::kCollective, 6},
      {"MPI_Iallreduce", C::kCollective, 7},
      {"MPI_Gather", C::kCollective, 8},
      {"MPI_Igather", C::kCollective, 9},
      {"MPI_Gatherv", C::kCollective, 9},
      {"MPI_Igatherv", C::kCollective, 10},
      {"MPI_Scatter", C::kCollective, 8},
      {"MPI_Iscatter", C::kCollective, 9},
      {"MPI_Scatterv", C::kCollective, 9},
      {"MPI_Iscatterv", C::kCollective, 10},
      {"MPI_Allgather", C::kCollective, 7},
      {"MPI_Iallgather", C::kCollective, 8},
      {"MPI_Allgatherv", C::kCollective, 8},
      {"MPI_Iallgatherv", C::kCollective, 9},
      {"MPI_Alltoall", C::kCollective, 7},
      {"MPI_Ialltoall", C::kCollective, 8},
      {"MPI_Alltoallv", C::kCollective, 9},
      {"MPI_Ialltoallv", C::kCollective, 10},
      {"MPI_Alltoallw", C::kCollective, 9},
      {"MPI_Reduce_scatter", C::kCollective, 6},
      {"MPI_Reduce_scatter_block", C::kCollective, 6},
      {"MPI_Reduce_local", C::kCollective, 5},
      {"MPI_Scan", C::kCollective, 6},
      {"MPI_Iscan", C::kCollective, 7},
      {"MPI_Exscan", C::kCollective, 6},
      {"MPI_Iexscan", C::kCollective, 7},
      {"MPI_Op_create", C::kCollective, 3},
      {"MPI_Op_free", C::kCollective, 1},
      // Communicators.
      {"MPI_Comm_rank", C::kCommunicator, 2},
      {"MPI_Comm_size", C::kCommunicator, 2},
      {"MPI_Comm_dup", C::kCommunicator, 2},
      {"MPI_Comm_idup", C::kCommunicator, 3},
      {"MPI_Comm_create", C::kCommunicator, 3},
      {"MPI_Comm_create_group", C::kCommunicator, 4},
      {"MPI_Comm_split", C::kCommunicator, 4},
      {"MPI_Comm_split_type", C::kCommunicator, 5},
      {"MPI_Comm_free", C::kCommunicator, 1},
      {"MPI_Comm_compare", C::kCommunicator, 3},
      {"MPI_Comm_group", C::kCommunicator, 2},
      {"MPI_Comm_test_inter", C::kCommunicator, 2},
      {"MPI_Comm_remote_size", C::kCommunicator, 2},
      {"MPI_Comm_remote_group", C::kCommunicator, 2},
      {"MPI_Intercomm_create", C::kCommunicator, 6},
      {"MPI_Intercomm_merge", C::kCommunicator, 3},
      {"MPI_Comm_set_name", C::kCommunicator, 2},
      {"MPI_Comm_get_name", C::kCommunicator, 3},
      {"MPI_Comm_set_attr", C::kCommunicator, 3},
      {"MPI_Comm_get_attr", C::kCommunicator, 4},
      {"MPI_Comm_delete_attr", C::kCommunicator, 2},
      {"MPI_Comm_create_keyval", C::kCommunicator, 4},
      {"MPI_Comm_free_keyval", C::kCommunicator, 1},
      {"MPI_Comm_get_parent", C::kCommunicator, 1},
      {"MPI_Comm_spawn", C::kCommunicator, 8},
      {"MPI_Comm_spawn_multiple", C::kCommunicator, 9},
      {"MPI_Comm_connect", C::kCommunicator, 5},
      {"MPI_Comm_accept", C::kCommunicator, 5},
      {"MPI_Comm_disconnect", C::kCommunicator, 1},
      // Groups.
      {"MPI_Group_size", C::kGroup, 2},
      {"MPI_Group_rank", C::kGroup, 2},
      {"MPI_Group_translate_ranks", C::kGroup, 5},
      {"MPI_Group_compare", C::kGroup, 3},
      {"MPI_Group_union", C::kGroup, 3},
      {"MPI_Group_intersection", C::kGroup, 3},
      {"MPI_Group_difference", C::kGroup, 3},
      {"MPI_Group_incl", C::kGroup, 4},
      {"MPI_Group_excl", C::kGroup, 4},
      {"MPI_Group_range_incl", C::kGroup, 4},
      {"MPI_Group_range_excl", C::kGroup, 4},
      {"MPI_Group_free", C::kGroup, 1},
      // Datatypes.
      {"MPI_Type_size", C::kDatatype, 2},
      {"MPI_Type_commit", C::kDatatype, 1},
      {"MPI_Type_free", C::kDatatype, 1},
      {"MPI_Type_contiguous", C::kDatatype, 3},
      {"MPI_Type_vector", C::kDatatype, 5},
      {"MPI_Type_hvector", C::kDatatype, 5},
      {"MPI_Type_create_hvector", C::kDatatype, 5},
      {"MPI_Type_indexed", C::kDatatype, 5},
      {"MPI_Type_hindexed", C::kDatatype, 5},
      {"MPI_Type_create_indexed_block", C::kDatatype, 5},
      {"MPI_Type_create_hindexed", C::kDatatype, 5},
      {"MPI_Type_create_struct", C::kDatatype, 5},
      {"MPI_Type_create_subarray", C::kDatatype, 7},
      {"MPI_Type_create_darray", C::kDatatype, 10},
      {"MPI_Type_create_resized", C::kDatatype, 4},
      {"MPI_Type_dup", C::kDatatype, 2},
      {"MPI_Type_get_extent", C::kDatatype, 3},
      {"MPI_Type_get_true_extent", C::kDatatype, 3},
      {"MPI_Type_lb", C::kDatatype, 2},
      {"MPI_Type_ub", C::kDatatype, 2},
      {"MPI_Type_extent", C::kDatatype, 2},
      {"MPI_Type_struct", C::kDatatype, 5},
      {"MPI_Pack", C::kDatatype, 7},
      {"MPI_Unpack", C::kDatatype, 7},
      {"MPI_Pack_size", C::kDatatype, 4},
      {"MPI_Address", C::kDatatype, 2},
      {"MPI_Get_address", C::kDatatype, 2},
      // Topologies.
      {"MPI_Cart_create", C::kTopology, 6},
      {"MPI_Dims_create", C::kTopology, 3},
      {"MPI_Cart_rank", C::kTopology, 3},
      {"MPI_Cart_coords", C::kTopology, 4},
      {"MPI_Cart_shift", C::kTopology, 5},
      {"MPI_Cart_sub", C::kTopology, 3},
      {"MPI_Cart_get", C::kTopology, 5},
      {"MPI_Cartdim_get", C::kTopology, 2},
      {"MPI_Graph_create", C::kTopology, 6},
      {"MPI_Graph_neighbors", C::kTopology, 4},
      {"MPI_Graph_neighbors_count", C::kTopology, 3},
      {"MPI_Topo_test", C::kTopology, 2},
      {"MPI_Dist_graph_create", C::kTopology, 9},
      {"MPI_Dist_graph_create_adjacent", C::kTopology, 10},
      {"MPI_Dist_graph_neighbors", C::kTopology, 7},
      {"MPI_Dist_graph_neighbors_count", C::kTopology, 4},
      {"MPI_Neighbor_allgather", C::kTopology, 7},
      {"MPI_Neighbor_allgatherv", C::kTopology, 8},
      {"MPI_Neighbor_alltoall", C::kTopology, 7},
      {"MPI_Neighbor_alltoallv", C::kTopology, 9},
      // One-sided (RMA).
      {"MPI_Win_create", C::kRma, 6},
      {"MPI_Win_allocate", C::kRma, 6},
      {"MPI_Win_allocate_shared", C::kRma, 6},
      {"MPI_Win_create_dynamic", C::kRma, 3},
      {"MPI_Win_free", C::kRma, 1},
      {"MPI_Win_fence", C::kRma, 2},
      {"MPI_Win_start", C::kRma, 3},
      {"MPI_Win_complete", C::kRma, 1},
      {"MPI_Win_post", C::kRma, 3},
      {"MPI_Win_wait", C::kRma, 1},
      {"MPI_Win_lock", C::kRma, 4},
      {"MPI_Win_lock_all", C::kRma, 2},
      {"MPI_Win_unlock", C::kRma, 2},
      {"MPI_Win_unlock_all", C::kRma, 1},
      {"MPI_Win_flush", C::kRma, 2},
      {"MPI_Win_flush_all", C::kRma, 1},
      {"MPI_Win_sync", C::kRma, 1},
      {"MPI_Put", C::kRma, 8},
      {"MPI_Get", C::kRma, 8},
      {"MPI_Accumulate", C::kRma, 9},
      {"MPI_Get_accumulate", C::kRma, 12},
      {"MPI_Fetch_and_op", C::kRma, 6},
      {"MPI_Compare_and_swap", C::kRma, 7},
      {"MPI_Rput", C::kRma, 9},
      {"MPI_Rget", C::kRma, 9},
      {"MPI_Raccumulate", C::kRma, 10},
      // IO.
      {"MPI_File_open", C::kIo, 5},
      {"MPI_File_close", C::kIo, 1},
      {"MPI_File_delete", C::kIo, 2},
      {"MPI_File_set_size", C::kIo, 2},
      {"MPI_File_get_size", C::kIo, 2},
      {"MPI_File_set_view", C::kIo, 6},
      {"MPI_File_get_view", C::kIo, 5},
      {"MPI_File_read", C::kIo, 5},
      {"MPI_File_read_all", C::kIo, 5},
      {"MPI_File_read_at", C::kIo, 6},
      {"MPI_File_read_at_all", C::kIo, 6},
      {"MPI_File_write", C::kIo, 5},
      {"MPI_File_write_all", C::kIo, 5},
      {"MPI_File_write_at", C::kIo, 6},
      {"MPI_File_write_at_all", C::kIo, 6},
      {"MPI_File_seek", C::kIo, 3},
      {"MPI_File_get_position", C::kIo, 2},
      {"MPI_File_sync", C::kIo, 1},
      {"MPI_File_set_atomicity", C::kIo, 2},
      {"MPI_File_preallocate", C::kIo, 2},
      // Request completion.
      {"MPI_Wait", C::kRequest, 2},
      {"MPI_Waitall", C::kRequest, 3},
      {"MPI_Waitany", C::kRequest, 4},
      {"MPI_Waitsome", C::kRequest, 5},
      {"MPI_Test", C::kRequest, 3},
      {"MPI_Testall", C::kRequest, 4},
      {"MPI_Testany", C::kRequest, 5},
      {"MPI_Testsome", C::kRequest, 5},
      {"MPI_Request_free", C::kRequest, 1},
      {"MPI_Request_get_status", C::kRequest, 3},
      {"MPI_Cancel", C::kRequest, 1},
      {"MPI_Test_cancelled", C::kRequest, 2},
      {"MPI_Start", C::kRequest, 1},
      {"MPI_Startall", C::kRequest, 2},
      // Info objects.
      {"MPI_Info_create", C::kInfo, 1},
      {"MPI_Info_free", C::kInfo, 1},
      {"MPI_Info_set", C::kInfo, 3},
      {"MPI_Info_get", C::kInfo, 5},
      {"MPI_Info_delete", C::kInfo, 2},
      {"MPI_Info_dup", C::kInfo, 2},
      {"MPI_Info_get_nkeys", C::kInfo, 2},
      {"MPI_Info_get_nthkey", C::kInfo, 3},
      {"MPI_Info_get_valuelen", C::kInfo, 4},
      // Error handling.
      {"MPI_Errhandler_create", C::kOther, 2},
      {"MPI_Errhandler_set", C::kOther, 2},
      {"MPI_Errhandler_get", C::kOther, 2},
      {"MPI_Errhandler_free", C::kOther, 1},
      {"MPI_Error_string", C::kOther, 3},
      {"MPI_Error_class", C::kOther, 2},
      {"MPI_Comm_set_errhandler", C::kOther, 2},
      {"MPI_Comm_get_errhandler", C::kOther, 2},
      {"MPI_Comm_create_errhandler", C::kOther, 2},
      {"MPI_Add_error_class", C::kOther, 1},
      {"MPI_Add_error_code", C::kOther, 2},
      {"MPI_Add_error_string", C::kOther, 2},
      {"MPI_Status_set_elements", C::kOther, 3},
      {"MPI_Status_set_cancelled", C::kOther, 2},
      {"MPI_Attr_get", C::kOther, 4},
      {"MPI_Attr_put", C::kOther, 3},
      {"MPI_Attr_delete", C::kOther, 2},
      {"MPI_Keyval_create", C::kOther, 4},
      {"MPI_Keyval_free", C::kOther, 1},
      {"MPI_Open_port", C::kOther, 2},
      {"MPI_Close_port", C::kOther, 1},
      {"MPI_Publish_name", C::kOther, 3},
      {"MPI_Unpublish_name", C::kOther, 3},
      {"MPI_Lookup_name", C::kOther, 3},
  };
}

struct CatalogIndex {
  std::vector<Routine> routines;
  std::unordered_map<std::string, std::size_t> by_name;

  CatalogIndex() : routines(build_catalog()) {
    for (std::size_t i = 0; i < routines.size(); ++i) {
      by_name.emplace(routines[i].name, i);
    }
    MR_CHECK(by_name.size() == routines.size(),
             "duplicate routine name in MPI catalog");
  }
};

const CatalogIndex& index() {
  static const CatalogIndex idx;
  return idx;
}

}  // namespace

const char* category_name(Category c) {
  switch (c) {
    case Category::kEnvironment: return "environment";
    case Category::kPointToPoint: return "point_to_point";
    case Category::kCollective: return "collective";
    case Category::kCommunicator: return "communicator";
    case Category::kDatatype: return "datatype";
    case Category::kGroup: return "group";
    case Category::kTopology: return "topology";
    case Category::kRma: return "rma";
    case Category::kIo: return "io";
    case Category::kRequest: return "request";
    case Category::kInfo: return "info";
    case Category::kOther: return "other";
  }
  return "unknown";
}

const std::vector<Routine>& all_routines() { return index().routines; }

std::optional<Routine> find_routine(const std::string& name) {
  const auto& idx = index();
  auto it = idx.by_name.find(name);
  if (it == idx.by_name.end()) return std::nullopt;
  return idx.routines[it->second];
}

bool is_known_routine(const std::string& name) {
  return index().by_name.count(name) > 0;
}

bool has_mpi_prefix(const std::string& name) {
  return starts_with(name, "MPI_");
}

const std::vector<std::string>& common_core() {
  static const std::vector<std::string> core = {
      "MPI_Finalize",  "MPI_Comm_rank", "MPI_Comm_size", "MPI_Init",
      "MPI_Recv",      "MPI_Send",      "MPI_Reduce",    "MPI_Bcast",
  };
  return core;
}

bool is_common_core(const std::string& name) {
  for (const auto& n : common_core()) {
    if (n == name) return true;
  }
  return false;
}

std::size_t catalog_size() { return all_routines().size(); }

}  // namespace mpirical::mpidb
