#include "mpisim/world.hpp"

#include <chrono>

#include "support/check.hpp"
#include "support/timer.hpp"

namespace mpirical::mpisim {

using interp::Value;
using interp::ValueKind;

MpiWorld::MpiWorld(int size) : size_(size), mailboxes_(size) {
  MR_CHECK(size >= 1, "MPI world needs at least one rank");
  rendezvous_.contributions.resize(static_cast<std::size_t>(size));
}

void MpiWorld::check_abort() const {
  if (aborted_) {
    throw Error("MPI_Abort called with code " + std::to_string(abort_code_));
  }
}

bool MpiWorld::matches(const Message& m, int src, int tag) const {
  if (src != interp::kMpiAnySource && m.src != src) return false;
  if (tag != interp::kMpiAnyTag && m.tag != tag) return false;
  return true;
}

void MpiWorld::send(int src, int dst, int tag, std::vector<Value> data) {
  MR_CHECK(dst >= 0 && dst < size_, "send to invalid rank");
  {
    std::lock_guard<std::mutex> lock(mu_);
    check_abort();
    mailboxes_[static_cast<std::size_t>(dst)].messages.push_back(
        Message{src, tag, std::move(data)});
  }
  cv_.notify_all();
}

Message MpiWorld::recv(int dst, int src, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  auto& box = mailboxes_[static_cast<std::size_t>(dst)].messages;
  for (;;) {
    check_abort();
    for (auto it = box.begin(); it != box.end(); ++it) {
      if (matches(*it, src, tag)) {
        Message m = std::move(*it);
        box.erase(it);
        return m;
      }
    }
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

Message MpiWorld::probe(int dst, int src, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  auto& box = mailboxes_[static_cast<std::size_t>(dst)].messages;
  for (;;) {
    check_abort();
    for (const auto& m : box) {
      if (matches(m, src, tag)) return m;
    }
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

bool MpiWorld::iprobe(int dst, int src, int tag, Message* out) {
  std::lock_guard<std::mutex> lock(mu_);
  check_abort();
  for (const auto& m : mailboxes_[static_cast<std::size_t>(dst)].messages) {
    if (matches(m, src, tag)) {
      if (out) *out = m;
      return true;
    }
  }
  return false;
}

std::vector<Value> MpiWorld::rendezvous(
    int rank, std::vector<Value> data,
    const std::function<std::vector<Value>(
        std::vector<std::vector<Value>>&)>& combine) {
  std::unique_lock<std::mutex> lock(mu_);
  // Wait for the previous round to fully drain before starting a new one.
  const long long my_generation = rendezvous_.generation;
  while (rendezvous_.departed > 0 &&
         rendezvous_.generation == my_generation) {
    check_abort();
    cv_.wait_for(lock, std::chrono::milliseconds(10));
  }

  const long long gen = rendezvous_.generation;
  rendezvous_.contributions[static_cast<std::size_t>(rank)] = std::move(data);
  ++rendezvous_.arrived;
  if (rendezvous_.arrived == size_) {
    rendezvous_.result = combine(rendezvous_.contributions);
    rendezvous_.arrived = 0;
    rendezvous_.departed = size_;
    ++rendezvous_.generation;
    cv_.notify_all();
  } else {
    while (rendezvous_.generation == gen) {
      check_abort();
      cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
  }
  std::vector<Value> result = rendezvous_.result;
  --rendezvous_.departed;
  if (rendezvous_.departed == 0) {
    for (auto& c : rendezvous_.contributions) c.clear();
    cv_.notify_all();
  }
  return result;
}

namespace {

Value combine_pair(const Value& a, const Value& b, long long op) {
  const bool dbl =
      a.kind == ValueKind::kDouble || b.kind == ValueKind::kDouble;
  switch (op) {
    case interp::kMpiSum:
      return dbl ? Value::make_double(a.as_double() + b.as_double())
                 : Value::make_int(a.as_int() + b.as_int());
    case interp::kMpiProd:
      return dbl ? Value::make_double(a.as_double() * b.as_double())
                 : Value::make_int(a.as_int() * b.as_int());
    case interp::kMpiMin:
      if (dbl) {
        return Value::make_double(std::min(a.as_double(), b.as_double()));
      }
      return Value::make_int(std::min(a.as_int(), b.as_int()));
    case interp::kMpiMax:
      if (dbl) {
        return Value::make_double(std::max(a.as_double(), b.as_double()));
      }
      return Value::make_int(std::max(a.as_int(), b.as_int()));
    default:
      MR_CHECK(false, "unsupported MPI reduction op tag " +
                          std::to_string(op));
  }
}

std::vector<Value> combine_elementwise(
    std::vector<std::vector<Value>>& contributions, long long op) {
  std::vector<Value> acc = contributions[0];
  for (std::size_t r = 1; r < contributions.size(); ++r) {
    MR_CHECK(contributions[r].size() == acc.size(),
             "mismatched reduce contribution sizes");
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] = combine_pair(acc[i], contributions[r][i], op);
    }
  }
  return acc;
}

std::vector<Value> concatenate(
    std::vector<std::vector<Value>>& contributions) {
  std::vector<Value> out;
  for (const auto& c : contributions) {
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

}  // namespace

std::vector<Value> MpiWorld::reduce(int rank, int root, long long op,
                                    std::vector<Value> data) {
  (void)root;  // every rank receives the result; non-roots discard it
  return rendezvous(rank, std::move(data), [op](auto& contributions) {
    return combine_elementwise(contributions, op);
  });
}

std::vector<Value> MpiWorld::allreduce(int rank, long long op,
                                       std::vector<Value> data) {
  return reduce(rank, /*root=*/0, op, std::move(data));
}

std::vector<Value> MpiWorld::bcast(int rank, int root,
                                   std::vector<Value> data) {
  if (rank != root) data.clear();
  return rendezvous(rank, std::move(data), [root](auto& contributions) {
    return contributions[static_cast<std::size_t>(root)];
  });
}

std::vector<Value> MpiWorld::gather(int rank, int root,
                                    std::vector<Value> data) {
  (void)root;
  return rendezvous(rank, std::move(data), [](auto& contributions) {
    return concatenate(contributions);
  });
}

std::vector<Value> MpiWorld::allgather(int rank, std::vector<Value> data) {
  return gather(rank, 0, std::move(data));
}

std::vector<Value> MpiWorld::scatter(int rank, int root,
                                     std::vector<Value> data,
                                     std::size_t chunk) {
  if (rank != root) data.clear();
  std::vector<Value> all =
      rendezvous(rank, std::move(data), [root](auto& contributions) {
        return contributions[static_cast<std::size_t>(root)];
      });
  std::vector<Value> mine;
  const std::size_t begin = static_cast<std::size_t>(rank) * chunk;
  for (std::size_t i = 0; i < chunk && begin + i < all.size(); ++i) {
    mine.push_back(all[begin + i]);
  }
  MR_CHECK(mine.size() == chunk, "scatter: root buffer too small");
  return mine;
}

std::vector<Value> MpiWorld::scan(int rank, long long op, bool exclusive,
                                  std::vector<Value> data) {
  const std::size_t width = data.size();
  std::vector<Value> all =
      rendezvous(rank, std::move(data), [](auto& contributions) {
        return concatenate(contributions);
      });
  // Prefix-combine contributions 0..rank (exclusive: 0..rank-1).
  const int upto = exclusive ? rank - 1 : rank;
  std::vector<Value> acc;
  for (int r = 0; r <= upto; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * width;
    if (acc.empty()) {
      acc.assign(all.begin() + static_cast<std::ptrdiff_t>(base),
                 all.begin() + static_cast<std::ptrdiff_t>(base + width));
    } else {
      for (std::size_t i = 0; i < width; ++i) {
        acc[i] = combine_pair(acc[i], all[base + i], op);
      }
    }
  }
  if (acc.empty()) acc.assign(width, Value::make_int(0));
  return acc;
}

void MpiWorld::barrier(int rank) {
  rendezvous(rank, {}, [](auto&) { return std::vector<Value>(); });
}

void MpiWorld::abort(int rank, long long code) {
  (void)rank;
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
    abort_code_ = code;
  }
  cv_.notify_all();
  throw Error("MPI_Abort called with code " + std::to_string(code));
}

// ---- RankApi -----------------------------------------------------------------

namespace {

/// Reads `count` cells starting at a pointer value.
std::vector<Value> read_buffer(const Value& ptr, long long count) {
  MR_CHECK(ptr.kind == ValueKind::kPointer && ptr.box,
           "MPI buffer argument must be a pointer");
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    out.push_back(interp::Cell{ptr.box, ptr.offset + i}.deref());
  }
  return out;
}

/// Writes values through a pointer.
void write_buffer(const Value& ptr, const std::vector<Value>& values) {
  MR_CHECK(ptr.kind == ValueKind::kPointer && ptr.box,
           "MPI output argument must be a pointer");
  for (std::size_t i = 0; i < values.size(); ++i) {
    interp::Cell{ptr.box, ptr.offset + static_cast<long long>(i)}.deref() =
        values[i];
  }
}

void write_status(const Value& status_ptr, int src, int tag) {
  if (status_ptr.is_null_pointer()) return;  // MPI_STATUS_IGNORE
  write_buffer(status_ptr,
               {Value::make_int(src), Value::make_int(tag)});
}

Value ok() { return Value::make_int(interp::kMpiSuccess); }

}  // namespace

Value RankApi::call(interp::Interpreter& interp, const std::string& name,
                    std::vector<Value>& args) {
  (void)interp;
  auto need = [&](std::size_t n) {
    MR_CHECK(args.size() == n, name + ": wrong argument count");
  };

  if (name == "MPI_Init") return ok();
  if (name == "MPI_Init_thread") return ok();
  if (name == "MPI_Finalize") { need(0); return ok(); }
  if (name == "MPI_Initialized" || name == "MPI_Finalized") {
    need(1);
    write_buffer(args[0], {Value::make_int(1)});
    return ok();
  }
  if (name == "MPI_Comm_rank") {
    need(2);
    write_buffer(args[1], {Value::make_int(rank_)});
    return ok();
  }
  if (name == "MPI_Comm_size") {
    need(2);
    write_buffer(args[1], {Value::make_int(world_->size())});
    return ok();
  }
  if (name == "MPI_Comm_dup") {
    need(2);
    write_buffer(args[1], {Value::make_int(interp::kMpiCommWorld)});
    return ok();
  }
  if (name == "MPI_Comm_free") { need(1); return ok(); }
  if (name == "MPI_Get_processor_name") {
    need(2);
    const std::string node = "simnode" + std::to_string(rank_);
    std::vector<Value> chars;
    for (char c : node) chars.push_back(Value::make_int(c));
    chars.push_back(Value::make_int(0));
    write_buffer(args[0], chars);
    write_buffer(args[1], {Value::make_int(static_cast<long long>(
                      node.size()))});
    return ok();
  }
  if (name == "MPI_Wtime") {
    need(0);
    // Seconds since the first MPI_Wtime call in this process, via the same
    // Timer every other duration measurement uses. MPI only promises a
    // per-process arbitrary epoch, and steady_clock's raw time_since_epoch
    // origin is unspecified anyway -- anchoring to first use keeps the
    // values small and the clock policy in support/timer.hpp.
    static const Timer wtime_epoch;
    return Value::make_double(wtime_epoch.seconds());
  }
  if (name == "MPI_Wtick") { need(0); return Value::make_double(1e-9); }
  if (name == "MPI_Abort") {
    need(2);
    world_->abort(rank_, args[1].as_int());
    return ok();
  }
  if (name == "MPI_Barrier") {
    need(1);
    world_->barrier(rank_);
    return ok();
  }
  if (name == "MPI_Type_size") {
    need(2);
    write_buffer(args[1], {Value::make_int(1)});  // cell-addressed
    return ok();
  }
  if (name == "MPI_Send" || name == "MPI_Ssend" || name == "MPI_Bsend" ||
      name == "MPI_Rsend") {
    need(6);
    world_->send(rank_, static_cast<int>(args[3].as_int()),
                 static_cast<int>(args[4].as_int()),
                 read_buffer(args[0], args[1].as_int()));
    return ok();
  }
  if (name == "MPI_Recv") {
    need(7);
    Message m = world_->recv(rank_, static_cast<int>(args[3].as_int()),
                             static_cast<int>(args[4].as_int()));
    MR_CHECK(static_cast<long long>(m.data.size()) <= args[1].as_int(),
             "MPI_Recv: message longer than receive buffer");
    write_buffer(args[0], m.data);
    write_status(args[6], m.src, m.tag);
    return ok();
  }
  if (name == "MPI_Sendrecv") {
    need(12);
    world_->send(rank_, static_cast<int>(args[3].as_int()),
                 static_cast<int>(args[4].as_int()),
                 read_buffer(args[0], args[1].as_int()));
    Message m = world_->recv(rank_, static_cast<int>(args[8].as_int()),
                             static_cast<int>(args[9].as_int()));
    MR_CHECK(static_cast<long long>(m.data.size()) <= args[6].as_int(),
             "MPI_Sendrecv: message longer than receive buffer");
    write_buffer(args[5], m.data);
    write_status(args[11], m.src, m.tag);
    return ok();
  }
  if (name == "MPI_Probe") {
    need(4);
    Message m = world_->probe(rank_, static_cast<int>(args[0].as_int()),
                              static_cast<int>(args[1].as_int()));
    write_status(args[3], m.src, m.tag);
    return ok();
  }
  if (name == "MPI_Iprobe") {
    need(5);
    Message m;
    const bool found =
        world_->iprobe(rank_, static_cast<int>(args[0].as_int()),
                       static_cast<int>(args[1].as_int()), &m);
    write_buffer(args[3], {Value::make_int(found ? 1 : 0)});
    if (found) write_status(args[4], m.src, m.tag);
    return ok();
  }
  if (name == "MPI_Get_count") {
    // Status box does not record length; corpus programs only use
    // fixed-size protocols, so report 1.
    need(3);
    write_buffer(args[2], {Value::make_int(1)});
    return ok();
  }
  if (name == "MPI_Bcast") {
    need(5);
    const int root = static_cast<int>(args[3].as_int());
    const long long count = args[1].as_int();
    std::vector<Value> data;
    if (rank_ == root) data = read_buffer(args[0], count);
    const auto result = world_->bcast(rank_, root, std::move(data));
    write_buffer(args[0], result);
    return ok();
  }
  if (name == "MPI_Reduce") {
    need(7);
    const int root = static_cast<int>(args[5].as_int());
    const auto result =
        world_->reduce(rank_, root, args[4].as_int(),
                       read_buffer(args[0], args[2].as_int()));
    if (rank_ == root) write_buffer(args[1], result);
    return ok();
  }
  if (name == "MPI_Allreduce") {
    need(6);
    const auto result = world_->allreduce(
        rank_, args[4].as_int(), read_buffer(args[0], args[2].as_int()));
    write_buffer(args[1], result);
    return ok();
  }
  if (name == "MPI_Gather") {
    need(8);
    const int root = static_cast<int>(args[6].as_int());
    const auto result =
        world_->gather(rank_, root, read_buffer(args[0], args[1].as_int()));
    if (rank_ == root) write_buffer(args[3], result);
    return ok();
  }
  if (name == "MPI_Allgather") {
    need(7);
    const auto result =
        world_->allgather(rank_, read_buffer(args[0], args[1].as_int()));
    write_buffer(args[3], result);
    return ok();
  }
  if (name == "MPI_Scatter") {
    need(8);
    const int root = static_cast<int>(args[6].as_int());
    const long long chunk = args[1].as_int();
    std::vector<Value> data;
    if (rank_ == root) {
      data = read_buffer(args[0],
                         chunk * static_cast<long long>(world_->size()));
    }
    const auto mine = world_->scatter(rank_, root, std::move(data),
                                      static_cast<std::size_t>(chunk));
    write_buffer(args[3], mine);
    return ok();
  }
  if (name == "MPI_Scan" || name == "MPI_Exscan") {
    need(6);
    const auto result =
        world_->scan(rank_, args[4].as_int(), name == "MPI_Exscan",
                     read_buffer(args[0], args[2].as_int()));
    write_buffer(args[1], result);
    return ok();
  }
  MR_CHECK(false, "simulated MPI runtime does not implement " + name);
}

}  // namespace mpirical::mpisim
