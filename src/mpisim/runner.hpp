// Executes an MPI C program under the simulated runtime: one interpreter per
// rank, one thread per rank, shared MpiWorld. This is the library's
// "compile and run" oracle (paper Section VI-C validates generated programs
// by compiling and executing them).
#pragma once

#include <string>
#include <vector>

#include "cast/node.hpp"

namespace mpirical::mpisim {

struct RunResult {
  bool ok = false;
  std::string error;                     // first failure, if any
  std::vector<std::string> rank_output;  // captured stdout per rank
  std::vector<long long> exit_codes;

  /// All rank outputs concatenated in rank order.
  std::string merged_output() const;
};

struct RunOptions {
  int num_ranks = 4;
  long long max_steps_per_rank = 200'000'000;
};

/// Parses and runs `source`. Parse errors are reported via RunResult::error.
RunResult run_mpi_source(const std::string& source, const RunOptions& options);

/// Runs an already-parsed translation unit.
RunResult run_mpi_program(const ast::Node& tu, const RunOptions& options);

}  // namespace mpirical::mpisim
