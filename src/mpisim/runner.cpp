#include "mpisim/runner.hpp"

#include <mutex>
#include <thread>

#include "cinterp/interp.hpp"
#include "cparse/parser.hpp"
#include "mpisim/world.hpp"
#include "support/check.hpp"

namespace mpirical::mpisim {

std::string RunResult::merged_output() const {
  std::string out;
  for (const auto& o : rank_output) out += o;
  return out;
}

RunResult run_mpi_program(const ast::Node& tu, const RunOptions& options) {
  RunResult result;
  result.rank_output.resize(static_cast<std::size_t>(options.num_ranks));
  result.exit_codes.assign(static_cast<std::size_t>(options.num_ranks), 0);

  MpiWorld world(options.num_ranks);
  std::mutex error_mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.num_ranks));

  for (int r = 0; r < options.num_ranks; ++r) {
    threads.emplace_back([&, r] {
      RankApi api(&world, r);
      interp::InterpreterOptions iopts;
      iopts.max_steps = options.max_steps_per_rank;
      interp::Interpreter interp(tu, &api, iopts);
      try {
        result.exit_codes[static_cast<std::size_t>(r)] = interp.run_main();
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (result.error.empty()) {
          result.error =
              "rank " + std::to_string(r) + ": " + e.what();
        }
        // Unblock peers that might be waiting on this rank.
        try {
          world.abort(r, -1);
        } catch (...) {
          // abort() throws by design; the failure is already recorded.
        }
      }
      result.rank_output[static_cast<std::size_t>(r)] = interp.output();
    });
  }
  for (auto& t : threads) t.join();

  result.ok = result.error.empty();
  return result;
}

RunResult run_mpi_source(const std::string& source,
                         const RunOptions& options) {
  ast::NodePtr tu;
  try {
    tu = parse::parse_translation_unit(source);
  } catch (const Error& e) {
    RunResult result;
    result.error = std::string("parse error: ") + e.what();
    return result;
  }
  return run_mpi_program(*tu, options);
}

}  // namespace mpirical::mpisim
