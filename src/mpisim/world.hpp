// Simulated MPI runtime.
//
// MpiWorld hosts R ranks inside one process: point-to-point messages travel
// through per-destination mailboxes (buffered sends, blocking receives with
// MPI_ANY_SOURCE / MPI_ANY_TAG matching), and collectives synchronize through
// a generation-counted rendezvous that mirrors how an SPMD program calls them
// in lockstep. RankApi adapts one rank's view onto the interpreter's MpiApi
// interface.
//
// Supported routines: Init, Finalize, Initialized, Finalized, Abort,
// Comm_rank, Comm_size, Comm_dup, Comm_free, Get_processor_name, Wtime,
// Wtick, Barrier, Send, Ssend, Recv, Sendrecv, Probe, Iprobe, Get_count,
// Bcast, Reduce, Allreduce, Gather, Allgather, Scatter, Scan, Exscan,
// Type_size. Anything else raises an error naming the routine.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "cinterp/interp.hpp"

namespace mpirical::mpisim {

struct Message {
  int src = 0;
  int tag = 0;
  std::vector<interp::Value> data;
};

class MpiWorld {
 public:
  explicit MpiWorld(int size);

  int size() const { return size_; }

  // Point-to-point.
  void send(int src, int dst, int tag, std::vector<interp::Value> data);
  Message recv(int dst, int src /*or any*/, int tag /*or any*/);
  Message probe(int dst, int src, int tag);  // blocks; does not consume
  bool iprobe(int dst, int src, int tag, Message* out);

  // Collectives. Every rank contributes `data`; the result each rank should
  // observe is returned. `op` uses the kMpi* op tags (ignored for
  // gather/bcast-style primitives).
  std::vector<interp::Value> reduce(int rank, int root, long long op,
                                    std::vector<interp::Value> data);
  std::vector<interp::Value> allreduce(int rank, long long op,
                                       std::vector<interp::Value> data);
  std::vector<interp::Value> bcast(int rank, int root,
                                   std::vector<interp::Value> data);
  std::vector<interp::Value> gather(int rank, int root,
                                    std::vector<interp::Value> data);
  std::vector<interp::Value> allgather(int rank,
                                       std::vector<interp::Value> data);
  std::vector<interp::Value> scatter(int rank, int root,
                                     std::vector<interp::Value> data,
                                     std::size_t chunk);
  std::vector<interp::Value> scan(int rank, long long op, bool exclusive,
                                  std::vector<interp::Value> data);
  void barrier(int rank);

  /// Abort: wakes every blocked rank with an error.
  void abort(int rank, long long code);

 private:
  struct Mailbox {
    std::deque<Message> messages;
  };

  struct Rendezvous {
    std::vector<std::vector<interp::Value>> contributions;
    std::vector<interp::Value> result;  // combined/concatenated payload
    int arrived = 0;
    int departed = 0;
    long long generation = 0;
  };

  bool matches(const Message& m, int src, int tag) const;
  void check_abort() const;

  /// Runs one rendezvous round: deposit, wait for all, combine once, leave.
  /// `combine` runs on the last-arriving rank over all contributions.
  std::vector<interp::Value> rendezvous(
      int rank, std::vector<interp::Value> data,
      const std::function<std::vector<interp::Value>(
          std::vector<std::vector<interp::Value>>&)>& combine);

  const int size_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Mailbox> mailboxes_;  // indexed by destination rank
  Rendezvous rendezvous_;
  bool aborted_ = false;
  long long abort_code_ = 0;
};

/// Per-rank adapter implementing the interpreter's MpiApi.
class RankApi : public interp::MpiApi {
 public:
  RankApi(MpiWorld* world, int rank) : world_(world), rank_(rank) {}

  interp::Value call(interp::Interpreter& interp, const std::string& name,
                     std::vector<interp::Value>& args) override;

  int rank() const { return rank_; }

 private:
  MpiWorld* world_;
  int rank_;
};

}  // namespace mpirical::mpisim
