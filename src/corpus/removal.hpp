// MPI function removal -- the dataset-construction step of the paper (Fig. 4).
//
// Given a parsed MPI program, produces the "Removed-Locations" variant: every
// MPI function call is deleted so that both the function identity and its
// location are lost. The removed calls (with their line numbers in the
// *standardized label code*) become the supervision signal.
//
// Removal rules (applied to statements, preserving parseability):
//   * an expression statement whose expression is an MPI call (possibly
//     wrapped in assignments/casts, e.g. `rc = MPI_Send(...);`) is dropped;
//   * a declaration whose initializer is an MPI call (e.g.
//     `double t0 = MPI_Wtime();`) keeps the declaration, drops the init;
//   * MPI calls in other positions (conditions, arguments) have the entire
//     innermost enclosing statement dropped -- this matches the paper's
//     "replaced with an empty string" semantics while keeping valid C.
#pragma once

#include <string>
#include <vector>

#include "cast/node.hpp"

namespace mpirical::corpus {

struct RemovalResult {
  ast::NodePtr stripped;                 // AST with MPI calls removed
  std::vector<ast::CallSite> removed;    // calls removed, label-code lines
};

/// Strips MPI calls from `label_root`. Line numbers in `removed` refer to the
/// standardized printing of `label_root` (callers should pass an AST that was
/// produced by parsing standardized code so lines already agree).
RemovalResult remove_mpi_calls(const ast::Node& label_root);

/// True if the subtree contains any MPI call.
bool contains_mpi_call(const ast::Node& node);

}  // namespace mpirical::corpus
