#include "corpus/dataset.hpp"

#include <atomic>
#include <mutex>

#include "cast/printer.hpp"
#include "clex/lexer.hpp"
#include "corpus/removal.hpp"
#include "cparse/parser.hpp"
#include "snapshot/snapshot.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"
#include "xsbt/xsbt.hpp"

namespace mpirical::corpus {

bool make_example(const std::string& source, std::size_t max_tokens,
                  Example& out) {
  ast::NodePtr raw;
  try {
    raw = parse::parse_translation_unit(source);
  } catch (const Error&) {
    return false;  // parse gate (paper: pycparser failure -> exclude)
  }

  // Standardize, then reparse so AST line numbers match the standardized
  // text (the coordinate system every downstream metric uses).
  const std::string label_code = ast::print_code(*raw);
  ast::NodePtr label = parse::parse_translation_unit(label_code);

  const auto tokens = lex::tokenize(label_code);
  const std::size_t token_count = lex::code_token_count(tokens);
  if (token_count > max_tokens) return false;  // exclusion criterion

  RemovalResult removal = remove_mpi_calls(*label);
  out.label_code = label_code;
  out.input_code = ast::print_code(*removal.stripped);
  out.input_xsbt = xsbt::xsbt_string(*removal.stripped);
  out.ground_truth = std::move(removal.removed);
  out.label_token_count = token_count;
  return true;
}

Dataset build_dataset(const DatasetConfig& config) {
  MR_CHECK(config.train_fraction > 0.0 && config.val_fraction >= 0.0 &&
               config.train_fraction + config.val_fraction < 1.0,
           "invalid dataset split fractions");

  const auto corpus =
      build_corpus(CorpusConfig{config.corpus_size, config.seed});

  std::vector<Example> examples(corpus.size());
  std::vector<char> ok(corpus.size(), 0);
  std::atomic<std::size_t> parse_failures{0};
  std::atomic<std::size_t> too_long{0};

  parallel_for(
      0, corpus.size(),
      [&](std::size_t i) {
        Example ex;
        ex.id = corpus[i].id;
        ex.family = corpus[i].family;
        // Distinguish parse failures from length exclusions for accounting.
        try {
          (void)parse::parse_translation_unit(corpus[i].source);
        } catch (const Error&) {
          parse_failures.fetch_add(1);
          return;
        }
        if (!make_example(corpus[i].source, config.max_tokens, ex)) {
          too_long.fetch_add(1);
          return;
        }
        examples[i] = std::move(ex);
        ok[i] = 1;
      },
      /*grain=*/32);

  std::vector<Example> kept;
  kept.reserve(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (ok[i]) kept.push_back(std::move(examples[i]));
  }

  // Seeded shuffle, then 80:10:10 split.
  Rng rng(config.seed ^ 0xD1B54A32D192ED03ULL);
  rng.shuffle(kept);

  Dataset ds;
  ds.total_programs = corpus.size();
  ds.parse_failures = parse_failures.load();
  ds.excluded_too_long = too_long.load();
  const std::size_t n = kept.size();
  const std::size_t n_train =
      static_cast<std::size_t>(static_cast<double>(n) * config.train_fraction);
  const std::size_t n_val =
      static_cast<std::size_t>(static_cast<double>(n) * config.val_fraction);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n_train) {
      ds.train.push_back(std::move(kept[i]));
    } else if (i < n_train + n_val) {
      ds.val.push_back(std::move(kept[i]));
    } else {
      ds.test.push_back(std::move(kept[i]));
    }
  }
  return ds;
}

void encode_examples(snapshot::ByteWriter& w,
                     const std::vector<Example>& examples) {
  w.u32(static_cast<std::uint32_t>(examples.size()));
  for (const auto& ex : examples) {
    w.i32(ex.id);
    w.u32(static_cast<std::uint32_t>(ex.family));
    w.bytes(ex.label_code);
    w.bytes(ex.input_code);
    w.bytes(ex.input_xsbt);
    w.u32(static_cast<std::uint32_t>(ex.ground_truth.size()));
    for (const auto& call : ex.ground_truth) {
      w.bytes(call.callee);
      w.i32(call.line);
    }
    w.u64(ex.label_token_count);
  }
}

std::vector<Example> decode_examples(std::string_view payload) {
  snapshot::ByteReader r(payload);
  const std::uint32_t count = r.u32();
  // Every encoded example costs >= 4 bytes of length prefixes alone, so a
  // forged count cannot force an outsized reserve.
  MR_CHECK(count <= payload.size() / 4,
           "corpus example count exceeds payload");
  std::vector<Example> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Example ex;
    ex.id = r.i32();
    const std::uint32_t family = r.u32();
    MR_CHECK(family < static_cast<std::uint32_t>(kFamilyCount),
             "corpus example has unknown family");
    ex.family = static_cast<Family>(family);
    ex.label_code = std::string(r.bytes());
    ex.input_code = std::string(r.bytes());
    ex.input_xsbt = std::string(r.bytes());
    const std::uint32_t calls = r.u32();
    MR_CHECK(calls <= payload.size() / 8,
             "corpus call-site count exceeds payload");
    ex.ground_truth.reserve(calls);
    for (std::uint32_t c = 0; c < calls; ++c) {
      ast::CallSite call;
      call.callee = std::string(r.bytes());
      call.line = r.i32();
      ex.ground_truth.push_back(std::move(call));
    }
    ex.label_token_count = r.u64();
    out.push_back(std::move(ex));
  }
  r.done();
  return out;
}

}  // namespace mpirical::corpus
