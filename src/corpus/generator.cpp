#include "corpus/generator.hpp"

#include <initializer_list>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace mpirical::corpus {

namespace {

std::string pick(Rng& rng, std::initializer_list<const char*> options) {
  std::vector<std::string> v(options.begin(), options.end());
  return rng.pick(v);
}

std::string itos(long v) { return std::to_string(v); }

/// Shared per-program randomized context: names and optional features.
struct Ctx {
  explicit Ctx(Rng& r) : rng(r) {
    rank = pick(rng, {"rank", "my_rank", "myid", "me", "world_rank", "pid"});
    size = pick(rng, {"size", "nprocs", "numprocs", "world_size", "npes"});
    i = pick(rng, {"i", "j", "k", "idx"});
    n = pick(rng, {"n", "num_elements", "count", "total_n", "num_steps", "len"});
    timing = rng.next_bool(0.15);
    debug = rng.next_bool(0.12);
    end_barrier = rng.next_bool(0.08);
    hello = rng.next_bool(0.10);
  }

  Rng& rng;
  std::string rank;
  std::string size;
  std::string i;
  std::string n;
  bool timing;
  bool debug;
  bool end_barrier;
  bool hello;
};

using Lines = std::vector<std::string>;

void headers(Lines& out, bool stdlib = false, bool math = false,
             bool mpi = true) {
  out.push_back("#include <stdio.h>");
  if (stdlib) out.push_back("#include <stdlib.h>");
  if (math) out.push_back("#include <math.h>");
  if (mpi) out.push_back("#include <mpi.h>");
}

void main_open(Lines& out) {
  out.push_back("int main(int argc, char **argv) {");
}

/// Declares rank/size and emits Init + Comm_rank + Comm_size (the invariant
/// opening of nearly every real MPI program).
void mpi_prologue(Ctx& c, Lines& out) {
  out.push_back("    int " + c.rank + ";");
  out.push_back("    int " + c.size + ";");
  out.push_back("    MPI_Init(&argc, &argv);");
  if (c.rng.next_bool()) {
    out.push_back("    MPI_Comm_rank(MPI_COMM_WORLD, &" + c.rank + ");");
    out.push_back("    MPI_Comm_size(MPI_COMM_WORLD, &" + c.size + ");");
  } else {
    out.push_back("    MPI_Comm_size(MPI_COMM_WORLD, &" + c.size + ");");
    out.push_back("    MPI_Comm_rank(MPI_COMM_WORLD, &" + c.rank + ");");
  }
  if (c.hello) {
    out.push_back("    printf(\"process %d of %d\\n\", " + c.rank + ", " +
                  c.size + ");");
  }
  if (c.rng.next_bool(0.06)) {
    out.push_back("    char node_name[128];");
    out.push_back("    int name_len;");
    out.push_back("    MPI_Get_processor_name(node_name, &name_len);");
  }
}

void timing_start(Ctx& c, Lines& out) {
  if (!c.timing) return;
  out.push_back("    double t_start;");
  out.push_back("    double t_end;");
  if (c.rng.next_bool(0.5)) out.push_back("    MPI_Barrier(MPI_COMM_WORLD);");
  out.push_back("    t_start = MPI_Wtime();");
}

void timing_end(Ctx& c, Lines& out) {
  if (!c.timing) return;
  out.push_back("    t_end = MPI_Wtime();");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"elapsed: %f seconds\\n\", t_end - t_start);");
  out.push_back("    }");
}

void mpi_epilogue(Ctx& c, Lines& out) {
  if (c.end_barrier) out.push_back("    MPI_Barrier(MPI_COMM_WORLD);");
  out.push_back("    MPI_Finalize();");
  out.push_back("    return 0;");
  out.push_back("}");
}

std::string assemble(const Lines& out) { return join(out, "\n") + "\n"; }

// ---------------------------------------------------------------------------
// Families
// ---------------------------------------------------------------------------

std::string gen_pi_riemann(Rng& rng) {
  Ctx c(rng);
  const std::string local = pick(rng, {"local_sum", "my_sum", "partial", "lsum"});
  const std::string pi = pick(rng, {"pi", "pi_approx", "total", "pi_estimate"});
  const std::string x = pick(rng, {"x", "mid", "xi"});
  const std::string h = pick(rng, {"h", "step", "width", "dx"});
  const long steps = rng.pick(std::vector<long>{1000, 10000, 100000, 500000});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(steps) + ";");
  out.push_back("    double " + h + ";");
  out.push_back("    double " + local + " = 0.0;");
  out.push_back("    double " + pi + " = 0.0;");
  out.push_back("    double " + x + ";");
  timing_start(c, out);
  out.push_back("    " + h + " = 1.0 / (double)" + c.n + ";");
  out.push_back("    for (" + c.i + " = " + c.rank + "; " + c.i + " < " +
                c.n + "; " + c.i + " += " + c.size + ") {");
  out.push_back("        " + x + " = " + h + " * ((double)" + c.i +
                " + 0.5);");
  out.push_back("        " + local + " += 4.0 / (1.0 + " + x + " * " + x +
                ");");
  out.push_back("    }");
  out.push_back("    " + local + " = " + local + " * " + h + ";");
  if (rng.next_bool(0.75)) {
    out.push_back("    MPI_Reduce(&" + local + ", &" + pi +
                  ", 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);");
    timing_end(c, out);
    out.push_back("    if (" + c.rank + " == 0) {");
    out.push_back("        printf(\"pi is approximately %.12f\\n\", " + pi +
                  ");");
    out.push_back("    }");
  } else {
    out.push_back("    MPI_Allreduce(&" + local + ", &" + pi +
                  ", 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);");
    timing_end(c, out);
    out.push_back("    if (" + c.rank + " == 0) {");
    out.push_back("        printf(\"pi = %.12f\\n\", " + pi + ");");
    out.push_back("    }");
  }
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_pi_montecarlo(Rng& rng) {
  Ctx c(rng);
  const std::string hits = pick(rng, {"hits", "count_in", "inside", "local_hits"});
  const std::string total = pick(rng, {"total_hits", "global_hits", "all_hits"});
  const std::string seed = pick(rng, {"seed", "state", "lcg_state"});
  const long trials = rng.pick(std::vector<long>{1000, 5000, 20000, 100000});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(trials) + ";");
  out.push_back("    long " + hits + " = 0;");
  out.push_back("    long " + total + " = 0;");
  out.push_back("    long " + seed + " = 12345 + 777 * " + c.rank + ";");
  out.push_back("    double x;");
  out.push_back("    double y;");
  timing_start(c, out);
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < " + c.n + "; " +
                c.i + "++) {");
  out.push_back("        " + seed + " = (" + seed +
                " * 1103515245 + 12345) % 2147483648;");
  out.push_back("        x = (double)(" + seed +
                " % 100000) / 100000.0;");
  out.push_back("        " + seed + " = (" + seed +
                " * 1103515245 + 12345) % 2147483648;");
  out.push_back("        y = (double)(" + seed +
                " % 100000) / 100000.0;");
  out.push_back("        if (x * x + y * y <= 1.0) {");
  out.push_back("            " + hits + "++;");
  out.push_back("        }");
  out.push_back("    }");
  out.push_back("    MPI_Reduce(&" + hits + ", &" + total +
                ", 1, MPI_LONG, MPI_SUM, 0, MPI_COMM_WORLD);");
  timing_end(c, out);
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        double pi = 4.0 * (double)" + total + " / ((double)" +
                c.n + " * (double)" + c.size + ");");
  out.push_back("        printf(\"pi estimate: %.8f\\n\", pi);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_vector_dot(Rng& rng) {
  Ctx c(rng);
  const std::string a = pick(rng, {"a", "vec_a", "u", "first"});
  const std::string b = pick(rng, {"b", "vec_b", "v", "second"});
  const std::string local = pick(rng, {"local_dot", "my_dot", "partial_dot"});
  const std::string dot = pick(rng, {"dot", "global_dot", "result"});
  const long n = rng.pick(std::vector<long>{64, 128, 256, 512});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    double " + a + "[" + itos(n) + "];");
  out.push_back("    double " + b + "[" + itos(n) + "];");
  out.push_back("    double " + local + " = 0.0;");
  out.push_back("    double " + dot + " = 0.0;");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < " + c.n + "; " +
                c.i + "++) {");
  out.push_back("        " + a + "[" + c.i + "] = (double)" + c.i +
                " * 0.5;");
  out.push_back("        " + b + "[" + c.i + "] = (double)(" + c.n +
                " - " + c.i + ");");
  out.push_back("    }");
  out.push_back("    int chunk = " + c.n + " / " + c.size + ";");
  out.push_back("    int start = " + c.rank + " * chunk;");
  out.push_back("    int stop = start + chunk;");
  out.push_back("    if (" + c.rank + " == " + c.size + " - 1) {");
  out.push_back("        stop = " + c.n + ";");
  out.push_back("    }");
  out.push_back("    for (" + c.i + " = start; " + c.i + " < stop; " + c.i +
                "++) {");
  out.push_back("        " + local + " += " + a + "[" + c.i + "] * " + b +
                "[" + c.i + "];");
  out.push_back("    }");
  if (rng.next_bool(0.7)) {
    out.push_back("    MPI_Reduce(&" + local + ", &" + dot +
                  ", 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);");
  } else {
    out.push_back("    MPI_Allreduce(&" + local + ", &" + dot +
                  ", 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);");
  }
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"dot product = %.4f\\n\", " + dot + ");");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_array_average(Rng& rng) {
  Ctx c(rng);
  const std::string data = pick(rng, {"data", "values", "array", "samples"});
  const std::string local = pick(rng, {"local_sum", "my_sum", "part_sum"});
  const std::string total = pick(rng, {"total", "global_sum", "sum_all"});
  const long n = rng.pick(std::vector<long>{64, 128, 256, 400});
  Lines out;
  headers(out, /*stdlib=*/true);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    int chunk = " + c.n + " / " + c.size + ";");
  out.push_back("    double " + data + "[" + itos(n) + "];");
  out.push_back("    double part[" + itos(n) + "];");
  out.push_back("    double " + local + " = 0.0;");
  out.push_back("    double " + total + " = 0.0;");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < " + c.n + "; " +
                c.i + "++) {");
  out.push_back("            " + data + "[" + c.i + "] = (double)(" + c.i +
                " % 17) + 1.0;");
  out.push_back("        }");
  out.push_back("    }");
  out.push_back("    MPI_Scatter(" + data + ", chunk, MPI_DOUBLE, part, "
                "chunk, MPI_DOUBLE, 0, MPI_COMM_WORLD);");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < chunk; " + c.i +
                "++) {");
  out.push_back("        " + local + " += part[" + c.i + "];");
  out.push_back("    }");
  out.push_back("    MPI_Reduce(&" + local + ", &" + total +
                ", 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        double average = " + total + " / (double)(chunk * " +
                c.size + ");");
  out.push_back("        printf(\"average = %.6f\\n\", average);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_min_max(Rng& rng) {
  Ctx c(rng);
  const std::string data = pick(rng, {"data", "values", "arr"});
  const long n = rng.pick(std::vector<long>{96, 128, 240, 320});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    double " + data + "[" + itos(n) + "];");
  out.push_back("    double local_min = 1000000.0;");
  out.push_back("    double local_max = -1000000.0;");
  out.push_back("    double global_min;");
  out.push_back("    double global_max;");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < " + c.n + "; " +
                c.i + "++) {");
  out.push_back("        " + data + "[" + c.i + "] = (double)((" + c.i +
                " * 37 + 11 * " + c.rank + ") % 101);");
  out.push_back("    }");
  out.push_back("    int chunk = " + c.n + " / " + c.size + ";");
  out.push_back("    int begin = " + c.rank + " * chunk;");
  out.push_back("    int end = begin + chunk;");
  out.push_back("    for (" + c.i + " = begin; " + c.i + " < end; " + c.i +
                "++) {");
  out.push_back("        if (" + data + "[" + c.i + "] < local_min) {");
  out.push_back("            local_min = " + data + "[" + c.i + "];");
  out.push_back("        }");
  out.push_back("        if (" + data + "[" + c.i + "] > local_max) {");
  out.push_back("            local_max = " + data + "[" + c.i + "];");
  out.push_back("        }");
  out.push_back("    }");
  out.push_back("    MPI_Reduce(&local_min, &global_min, 1, MPI_DOUBLE, "
                "MPI_MIN, 0, MPI_COMM_WORLD);");
  out.push_back("    MPI_Reduce(&local_max, &global_max, 1, MPI_DOUBLE, "
                "MPI_MAX, 0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"min = %.2f max = %.2f\\n\", global_min, "
                "global_max);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_matvec(Rng& rng) {
  Ctx c(rng);
  const long n = rng.pick(std::vector<long>{8, 12, 16, 24});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int col;");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    double mat[" + itos(n * n) + "];");
  out.push_back("    double x[" + itos(n) + "];");
  out.push_back("    double y[" + itos(n) + "];");
  out.push_back("    double y_local[" + itos(n) + "];");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < " + c.n +
                " * " + c.n + "; " + c.i + "++) {");
  out.push_back("            mat[" + c.i + "] = (double)(" + c.i +
                " % 7) + 1.0;");
  out.push_back("        }");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < " + c.n + "; " +
                c.i + "++) {");
  out.push_back("            x[" + c.i + "] = (double)(" + c.i + " + 1);");
  out.push_back("        }");
  out.push_back("    }");
  out.push_back("    MPI_Bcast(mat, " + c.n + " * " + c.n +
                ", MPI_DOUBLE, 0, MPI_COMM_WORLD);");
  out.push_back("    MPI_Bcast(x, " + c.n + ", MPI_DOUBLE, 0, "
                "MPI_COMM_WORLD);");
  out.push_back("    int rows = " + c.n + " / " + c.size + ";");
  out.push_back("    int first = " + c.rank + " * rows;");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < rows; " + c.i +
                "++) {");
  out.push_back("        double acc = 0.0;");
  out.push_back("        for (col = 0; col < " + c.n + "; col++) {");
  out.push_back("            acc += mat[(first + " + c.i + ") * " + c.n +
                " + col] * x[col];");
  out.push_back("        }");
  out.push_back("        y_local[" + c.i + "] = acc;");
  out.push_back("    }");
  out.push_back("    MPI_Gather(y_local, rows, MPI_DOUBLE, y, rows, "
                "MPI_DOUBLE, 0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        double checksum = 0.0;");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < rows * " +
                c.size + "; " + c.i + "++) {");
  out.push_back("            checksum += y[" + c.i + "];");
  out.push_back("        }");
  out.push_back("        printf(\"matvec checksum = %.4f\\n\", checksum);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_sum_reduce_gather(Rng& rng) {
  Ctx c(rng);
  const std::string local = pick(rng, {"local_sum", "partial", "my_part"});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " +
                itos(rng.pick(std::vector<long>{100, 400, 1000})) + ";");
  out.push_back("    double " + local + " = 0.0;");
  out.push_back("    double total = 0.0;");
  out.push_back("    double parts[64];");
  out.push_back("    for (" + c.i + " = " + c.rank + "; " + c.i + " < " +
                c.n + "; " + c.i + " += " + c.size + ") {");
  out.push_back("        " + local + " += (double)" + c.i + ";");
  out.push_back("    }");
  out.push_back("    MPI_Reduce(&" + local + ", &total, 1, MPI_DOUBLE, "
                "MPI_SUM, 0, MPI_COMM_WORLD);");
  out.push_back("    MPI_Gather(&" + local + ", 1, MPI_DOUBLE, parts, 1, "
                "MPI_DOUBLE, 0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"total = %.1f\\n\", total);");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < " + c.size +
                "; " + c.i + "++) {");
  out.push_back("            printf(\"part %d = %.1f\\n\", " + c.i +
                ", parts[" + c.i + "]);");
  out.push_back("        }");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_merge_sort_pair(Rng& rng) {
  Ctx c(rng);
  const long n = rng.pick(std::vector<long>{32, 64, 128});
  Lines out;
  headers(out);
  out.push_back("void local_sort(int *vals, int count) {");
  out.push_back("    int i;");
  out.push_back("    int j;");
  out.push_back("    for (i = 1; i < count; i++) {");
  out.push_back("        int key = vals[i];");
  out.push_back("        j = i - 1;");
  out.push_back("        while (j >= 0 && vals[j] > key) {");
  out.push_back("            vals[j + 1] = vals[j];");
  out.push_back("            j = j - 1;");
  out.push_back("        }");
  out.push_back("        vals[j + 1] = key;");
  out.push_back("    }");
  out.push_back("}");
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    int half = " + c.n + " / 2;");
  out.push_back("    int data[" + itos(n) + "];");
  out.push_back("    int other[" + itos(n) + "];");
  out.push_back("    int merged[" + itos(n) + "];");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < " + c.n + "; " +
                c.i + "++) {");
  out.push_back("        data[" + c.i + "] = (" + c.i +
                " * 73 + 19) % 997;");
  out.push_back("    }");
  out.push_back("    MPI_Status status;");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        MPI_Send(&data[half], half, MPI_INT, 1, 0, "
                "MPI_COMM_WORLD);");
  out.push_back("        local_sort(data, half);");
  out.push_back("        MPI_Recv(other, half, MPI_INT, 1, 1, "
                "MPI_COMM_WORLD, &status);");
  out.push_back("        int a = 0;");
  out.push_back("        int b = 0;");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < " + c.n + "; " +
                c.i + "++) {");
  out.push_back("            if (a < half && (b >= half || data[a] <= "
                "other[b])) {");
  out.push_back("                merged[" + c.i + "] = data[a];");
  out.push_back("                a++;");
  out.push_back("            } else {");
  out.push_back("                merged[" + c.i + "] = other[b];");
  out.push_back("                b++;");
  out.push_back("            }");
  out.push_back("        }");
  out.push_back("        printf(\"sorted first %d last %d\\n\", merged[0], "
                "merged[" + c.n + " - 1]);");
  out.push_back("    } else if (" + c.rank + " == 1) {");
  out.push_back("        MPI_Recv(other, half, MPI_INT, 0, 0, "
                "MPI_COMM_WORLD, &status);");
  out.push_back("        local_sort(other, half);");
  out.push_back("        MPI_Send(other, half, MPI_INT, 0, 1, "
                "MPI_COMM_WORLD);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_factorial(Rng& rng) {
  Ctx c(rng);
  const long n = rng.pick(std::vector<long>{12, 16, 20});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    double local_prod = 1.0;");
  out.push_back("    double result = 1.0;");
  out.push_back("    for (" + c.i + " = " + c.rank + " + 1; " + c.i +
                " <= " + c.n + "; " + c.i + " += " + c.size + ") {");
  out.push_back("        local_prod = local_prod * (double)" + c.i + ";");
  out.push_back("    }");
  out.push_back("    MPI_Reduce(&local_prod, &result, 1, MPI_DOUBLE, "
                "MPI_PROD, 0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"%d factorial is %.0f\\n\", " + c.n +
                ", result);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_fibonacci(Rng& rng) {
  Ctx c(rng);
  const long base = rng.pick(std::vector<long>{10, 16, 20});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    long fib_a = 0;");
  out.push_back("    long fib_b = 1;");
  out.push_back("    long fib_tmp;");
  out.push_back("    long results[64];");
  out.push_back("    int target = " + itos(base) + " + " + c.rank + ";");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < target; " + c.i +
                "++) {");
  out.push_back("        fib_tmp = fib_a + fib_b;");
  out.push_back("        fib_a = fib_b;");
  out.push_back("        fib_b = fib_tmp;");
  out.push_back("    }");
  out.push_back("    MPI_Gather(&fib_a, 1, MPI_LONG, results, 1, MPI_LONG, "
                "0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < " + c.size +
                "; " + c.i + "++) {");
  out.push_back("            printf(\"fib(%d) = %ld\\n\", " + itos(base) +
                " + " + c.i + ", results[" + c.i + "]);");
  out.push_back("        }");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_trapezoid(Rng& rng) {
  Ctx c(rng);
  const std::string integral = pick(rng, {"integral", "local_area", "area"});
  const long n = rng.pick(std::vector<long>{256, 1024, 4096});
  Lines out;
  headers(out, false, true);
  out.push_back("double f(double x) {");
  out.push_back("    return x * x + 1.0;");
  out.push_back("}");
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    double a = 0.0;");
  out.push_back("    double b = 4.0;");
  out.push_back("    double h = (b - a) / (double)" + c.n + ";");
  out.push_back("    int local_n = " + c.n + " / " + c.size + ";");
  out.push_back("    double local_a = a + (double)(" + c.rank +
                " * local_n) * h;");
  out.push_back("    double local_b = local_a + (double)local_n * h;");
  out.push_back("    double " + integral + ";");
  out.push_back("    double x;");
  out.push_back("    " + integral + " = (f(local_a) + f(local_b)) / 2.0;");
  out.push_back("    for (" + c.i + " = 1; " + c.i + " < local_n; " + c.i +
                "++) {");
  out.push_back("        x = local_a + (double)" + c.i + " * h;");
  out.push_back("        " + integral + " += f(x);");
  out.push_back("    }");
  out.push_back("    " + integral + " = " + integral + " * h;");
  if (rng.next_bool(0.6)) {
    // Pacheco-style send/recv aggregation at the root.
    out.push_back("    if (" + c.rank + " != 0) {");
    out.push_back("        MPI_Send(&" + integral +
                  ", 1, MPI_DOUBLE, 0, 0, MPI_COMM_WORLD);");
    out.push_back("    } else {");
    out.push_back("        double total = " + integral + ";");
    out.push_back("        double piece;");
    out.push_back("        MPI_Status status;");
    out.push_back("        int src;");
    out.push_back("        for (src = 1; src < " + c.size + "; src++) {");
    out.push_back("            MPI_Recv(&piece, 1, MPI_DOUBLE, src, 0, "
                  "MPI_COMM_WORLD, &status);");
    out.push_back("            total += piece;");
    out.push_back("        }");
    out.push_back("        printf(\"integral from %.1f to %.1f = %.8f\\n\", "
                  "a, b, total);");
    out.push_back("    }");
  } else {
    out.push_back("    double total = 0.0;");
    out.push_back("    MPI_Reduce(&" + integral +
                  ", &total, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);");
    out.push_back("    if (" + c.rank + " == 0) {");
    out.push_back("        printf(\"integral = %.8f\\n\", total);");
    out.push_back("    }");
  }
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_ring_token(Rng& rng) {
  Ctx c(rng);
  const std::string token = pick(rng, {"token", "value", "message", "tok"});
  const long tag = rng.pick(std::vector<long>{0, 1, 7, 42, 99});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + token + ";");
  out.push_back("    int next = (" + c.rank + " + 1) % " + c.size + ";");
  out.push_back("    int prev = (" + c.rank + " + " + c.size + " - 1) % " +
                c.size + ";");
  out.push_back("    MPI_Status status;");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        " + token + " = 100;");
  out.push_back("        MPI_Send(&" + token + ", 1, MPI_INT, next, " +
                itos(tag) + ", MPI_COMM_WORLD);");
  out.push_back("        MPI_Recv(&" + token + ", 1, MPI_INT, prev, " +
                itos(tag) + ", MPI_COMM_WORLD, &status);");
  out.push_back("        printf(\"token back at root: %d\\n\", " + token +
                ");");
  out.push_back("    } else {");
  out.push_back("        MPI_Recv(&" + token + ", 1, MPI_INT, prev, " +
                itos(tag) + ", MPI_COMM_WORLD, &status);");
  out.push_back("        " + token + " += " + c.rank + ";");
  out.push_back("        MPI_Send(&" + token + ", 1, MPI_INT, next, " +
                itos(tag) + ", MPI_COMM_WORLD);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_ping_pong(Rng& rng) {
  Ctx c(rng);
  const long iters = rng.pick(std::vector<long>{4, 8, 10, 16});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int counter = 0;");
  out.push_back("    int round;");
  out.push_back("    MPI_Status status;");
  out.push_back("    for (round = 0; round < " + itos(iters) +
                "; round++) {");
  out.push_back("        if (" + c.rank + " == 0) {");
  out.push_back("            counter++;");
  out.push_back("            MPI_Send(&counter, 1, MPI_INT, 1, 0, "
                "MPI_COMM_WORLD);");
  out.push_back("            MPI_Recv(&counter, 1, MPI_INT, 1, 0, "
                "MPI_COMM_WORLD, &status);");
  out.push_back("        } else if (" + c.rank + " == 1) {");
  out.push_back("            MPI_Recv(&counter, 1, MPI_INT, 0, 0, "
                "MPI_COMM_WORLD, &status);");
  out.push_back("            counter++;");
  out.push_back("            MPI_Send(&counter, 1, MPI_INT, 0, 0, "
                "MPI_COMM_WORLD);");
  out.push_back("        }");
  out.push_back("    }");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"final counter: %d\\n\", counter);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_halo_1d(Rng& rng) {
  Ctx c(rng);
  const std::string u = pick(rng, {"u", "grid", "field", "cells"});
  const long local_n = rng.pick(std::vector<long>{16, 32, 64});
  const long steps = rng.pick(std::vector<long>{2, 4, 8});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int step;");
  out.push_back("    int local_n = " + itos(local_n) + ";");
  out.push_back("    double " + u + "[" + itos(local_n + 2) + "];");
  out.push_back("    double " + u + "_new[" + itos(local_n + 2) + "];");
  out.push_back("    int left = " + c.rank + " - 1;");
  out.push_back("    int right = " + c.rank + " + 1;");
  out.push_back("    MPI_Status status;");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < local_n + 2; " +
                c.i + "++) {");
  out.push_back("        " + u + "[" + c.i + "] = (double)(" + c.rank +
                " * local_n + " + c.i + ");");
  out.push_back("    }");
  out.push_back("    for (step = 0; step < " + itos(steps) + "; step++) {");
  if (rng.next_bool(0.5)) {
    out.push_back("        if (left >= 0) {");
    out.push_back("            MPI_Sendrecv(&" + u + "[1], 1, MPI_DOUBLE, "
                  "left, 0, &" + u + "[0], 1, MPI_DOUBLE, left, 0, "
                  "MPI_COMM_WORLD, &status);");
    out.push_back("        }");
    out.push_back("        if (right < " + c.size + ") {");
    out.push_back("            MPI_Sendrecv(&" + u + "[local_n], 1, "
                  "MPI_DOUBLE, right, 0, &" + u + "[local_n + 1], 1, "
                  "MPI_DOUBLE, right, 0, MPI_COMM_WORLD, &status);");
    out.push_back("        }");
  } else {
    out.push_back("        if (left >= 0) {");
    out.push_back("            MPI_Send(&" + u + "[1], 1, MPI_DOUBLE, left, "
                  "1, MPI_COMM_WORLD);");
    out.push_back("        }");
    out.push_back("        if (right < " + c.size + ") {");
    out.push_back("            MPI_Recv(&" + u + "[local_n + 1], 1, "
                  "MPI_DOUBLE, right, 1, MPI_COMM_WORLD, &status);");
    out.push_back("            MPI_Send(&" + u + "[local_n], 1, MPI_DOUBLE, "
                  "right, 2, MPI_COMM_WORLD);");
    out.push_back("        }");
    out.push_back("        if (left >= 0) {");
    out.push_back("            MPI_Recv(&" + u + "[0], 1, MPI_DOUBLE, left, "
                  "2, MPI_COMM_WORLD, &status);");
    out.push_back("        }");
  }
  out.push_back("        for (" + c.i + " = 1; " + c.i + " <= local_n; " +
                c.i + "++) {");
  out.push_back("            " + u + "_new[" + c.i + "] = 0.5 * (" + u +
                "[" + c.i + " - 1] + " + u + "[" + c.i + " + 1]);");
  out.push_back("        }");
  out.push_back("        for (" + c.i + " = 1; " + c.i + " <= local_n; " +
                c.i + "++) {");
  out.push_back("            " + u + "[" + c.i + "] = " + u + "_new[" + c.i +
                "];");
  out.push_back("        }");
  out.push_back("    }");
  out.push_back("    double local_sum = 0.0;");
  out.push_back("    double total = 0.0;");
  out.push_back("    for (" + c.i + " = 1; " + c.i + " <= local_n; " + c.i +
                "++) {");
  out.push_back("        local_sum += " + u + "[" + c.i + "];");
  out.push_back("    }");
  out.push_back("    MPI_Reduce(&local_sum, &total, 1, MPI_DOUBLE, MPI_SUM, "
                "0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"field sum = %.4f\\n\", total);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_master_worker(Rng& rng) {
  Ctx c(rng);
  const long scale = rng.pick(std::vector<long>{3, 5, 10});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    MPI_Status status;");
  out.push_back("    int task;");
  out.push_back("    int answer;");
  out.push_back("    int worker;");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        int grand_total = 0;");
  out.push_back("        for (worker = 1; worker < " + c.size +
                "; worker++) {");
  out.push_back("            task = worker * " + itos(scale) + ";");
  out.push_back("            MPI_Send(&task, 1, MPI_INT, worker, 10, "
                "MPI_COMM_WORLD);");
  out.push_back("        }");
  out.push_back("        for (worker = 1; worker < " + c.size +
                "; worker++) {");
  out.push_back("            MPI_Recv(&answer, 1, MPI_INT, MPI_ANY_SOURCE, "
                "20, MPI_COMM_WORLD, &status);");
  out.push_back("            grand_total += answer;");
  out.push_back("        }");
  out.push_back("        printf(\"grand total = %d\\n\", grand_total);");
  out.push_back("    } else {");
  out.push_back("        MPI_Recv(&task, 1, MPI_INT, 0, 10, MPI_COMM_WORLD, "
                "&status);");
  out.push_back("        answer = task * task;");
  out.push_back("        MPI_Send(&answer, 1, MPI_INT, 0, 20, "
                "MPI_COMM_WORLD);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_bcast_scatter_gather(Rng& rng) {
  Ctx c(rng);
  const long n = rng.pick(std::vector<long>{64, 128, 256});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    double scale = 0.0;");
  out.push_back("    double full[" + itos(n) + "];");
  out.push_back("    double mine[" + itos(n) + "];");
  out.push_back("    double out[" + itos(n) + "];");
  out.push_back("    int chunk = " + c.n + " / " + c.size + ";");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        scale = 2.5;");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < " + c.n + "; " +
                c.i + "++) {");
  out.push_back("            full[" + c.i + "] = (double)" + c.i + ";");
  out.push_back("        }");
  out.push_back("    }");
  out.push_back("    MPI_Bcast(&scale, 1, MPI_DOUBLE, 0, MPI_COMM_WORLD);");
  out.push_back("    MPI_Scatter(full, chunk, MPI_DOUBLE, mine, chunk, "
                "MPI_DOUBLE, 0, MPI_COMM_WORLD);");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < chunk; " + c.i +
                "++) {");
  out.push_back("        mine[" + c.i + "] = mine[" + c.i + "] * scale;");
  out.push_back("    }");
  out.push_back("    MPI_Gather(mine, chunk, MPI_DOUBLE, out, chunk, "
                "MPI_DOUBLE, 0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        double checksum = 0.0;");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < chunk * " +
                c.size + "; " + c.i + "++) {");
  out.push_back("            checksum += out[" + c.i + "];");
  out.push_back("        }");
  out.push_back("        printf(\"scaled checksum = %.2f\\n\", checksum);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_allreduce_norm(Rng& rng) {
  Ctx c(rng);
  const long n = rng.pick(std::vector<long>{48, 96, 192});
  Lines out;
  headers(out, false, true);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int local_n = " + itos(n) + ";");
  out.push_back("    double v[" + itos(n) + "];");
  out.push_back("    double local_sq = 0.0;");
  out.push_back("    double global_sq = 0.0;");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < local_n; " + c.i +
                "++) {");
  out.push_back("        v[" + c.i + "] = (double)(" + c.rank + " + 1) * "
                "0.25 + (double)" + c.i + " * 0.01;");
  out.push_back("    }");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < local_n; " + c.i +
                "++) {");
  out.push_back("        local_sq += v[" + c.i + "] * v[" + c.i + "];");
  out.push_back("    }");
  out.push_back("    MPI_Allreduce(&local_sq, &global_sq, 1, MPI_DOUBLE, "
                "MPI_SUM, MPI_COMM_WORLD);");
  out.push_back("    double norm = sqrt(global_sq);");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < local_n; " + c.i +
                "++) {");
  out.push_back("        v[" + c.i + "] = v[" + c.i + "] / norm;");
  out.push_back("    }");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"norm = %.6f\\n\", norm);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_prefix_scan(Rng& rng) {
  Ctx c(rng);
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int mine = " + c.rank + " + 1;");
  out.push_back("    int prefix = 0;");
  if (rng.next_bool(0.75)) {
    out.push_back("    MPI_Scan(&mine, &prefix, 1, MPI_INT, MPI_SUM, "
                  "MPI_COMM_WORLD);");
  } else {
    out.push_back("    MPI_Exscan(&mine, &prefix, 1, MPI_INT, MPI_SUM, "
                  "MPI_COMM_WORLD);");
  }
  out.push_back("    printf(\"rank %d prefix %d\\n\", " + c.rank +
                ", prefix);");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_histogram(Rng& rng) {
  Ctx c(rng);
  const long n = rng.pick(std::vector<long>{128, 256, 512});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    int bins[10];");
  out.push_back("    int global_bins[10];");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < 10; " + c.i +
                "++) {");
  out.push_back("        bins[" + c.i + "] = 0;");
  out.push_back("    }");
  out.push_back("    for (" + c.i + " = " + c.rank + "; " + c.i + " < " +
                c.n + "; " + c.i + " += " + c.size + ") {");
  out.push_back("        int value = (" + c.i + " * 31 + 7) % 100;");
  out.push_back("        bins[value / 10] = bins[value / 10] + 1;");
  out.push_back("    }");
  out.push_back("    MPI_Reduce(bins, global_bins, 10, MPI_INT, MPI_SUM, 0, "
                "MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        for (" + c.i + " = 0; " + c.i + " < 10; " + c.i +
                "++) {");
  out.push_back("            printf(\"bin %d: %d\\n\", " + c.i +
                ", global_bins[" + c.i + "]);");
  out.push_back("        }");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_heat_residual(Rng& rng) {
  Ctx c(rng);
  const long local_n = rng.pick(std::vector<long>{24, 48, 96});
  const long max_steps = rng.pick(std::vector<long>{5, 10, 20});
  Lines out;
  headers(out, false, true);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int step;");
  out.push_back("    int local_n = " + itos(local_n) + ";");
  out.push_back("    double t[" + itos(local_n) + "];");
  out.push_back("    double t_next[" + itos(local_n) + "];");
  out.push_back("    double local_res;");
  out.push_back("    double global_res;");
  out.push_back("    for (" + c.i + " = 0; " + c.i + " < local_n; " + c.i +
                "++) {");
  out.push_back("        t[" + c.i + "] = (double)((" + c.i + " + " + c.rank +
                ") % 13);");
  out.push_back("    }");
  out.push_back("    for (step = 0; step < " + itos(max_steps) +
                "; step++) {");
  out.push_back("        local_res = 0.0;");
  out.push_back("        for (" + c.i + " = 1; " + c.i + " < local_n - 1; " +
                c.i + "++) {");
  out.push_back("            t_next[" + c.i + "] = 0.25 * t[" + c.i +
                " - 1] + 0.5 * t[" + c.i + "] + 0.25 * t[" + c.i + " + 1];");
  out.push_back("            local_res += fabs(t_next[" + c.i + "] - t[" +
                c.i + "]);");
  out.push_back("        }");
  out.push_back("        for (" + c.i + " = 1; " + c.i + " < local_n - 1; " +
                c.i + "++) {");
  out.push_back("            t[" + c.i + "] = t_next[" + c.i + "];");
  out.push_back("        }");
  out.push_back("        MPI_Allreduce(&local_res, &global_res, 1, "
                "MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);");
  out.push_back("        if (global_res < 0.0001) {");
  out.push_back("            break;");
  out.push_back("        }");
  out.push_back("    }");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"final residual %.6f\\n\", global_res);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_stats_mean_var(Rng& rng) {
  Ctx c(rng);
  const long n = rng.pick(std::vector<long>{100, 250, 1000});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    double local_stats[2];");
  out.push_back("    double global_stats[2];");
  out.push_back("    local_stats[0] = 0.0;");
  out.push_back("    local_stats[1] = 0.0;");
  out.push_back("    for (" + c.i + " = " + c.rank + "; " + c.i + " < " +
                c.n + "; " + c.i + " += " + c.size + ") {");
  out.push_back("        double sample = (double)((" + c.i +
                " * 13 + 5) % 50);");
  out.push_back("        local_stats[0] += sample;");
  out.push_back("        local_stats[1] += sample * sample;");
  out.push_back("    }");
  out.push_back("    MPI_Reduce(local_stats, global_stats, 2, MPI_DOUBLE, "
                "MPI_SUM, 0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        double mean = global_stats[0] / (double)" + c.n +
                ";");
  out.push_back("        double variance = global_stats[1] / (double)" +
                c.n + " - mean * mean;");
  out.push_back("        printf(\"mean %.4f variance %.4f\\n\", mean, "
                "variance);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_search_count(Rng& rng) {
  Ctx c(rng);
  const long n = rng.pick(std::vector<long>{200, 500, 2000});
  Lines out;
  headers(out);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  out.push_back("    int " + c.n + " = " + itos(n) + ";");
  out.push_back("    int target = 0;");
  out.push_back("    int local_count = 0;");
  out.push_back("    int total_count = 0;");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        target = " + itos(rng.next_int(1, 9)) + ";");
  out.push_back("    }");
  out.push_back("    MPI_Bcast(&target, 1, MPI_INT, 0, MPI_COMM_WORLD);");
  out.push_back("    for (" + c.i + " = " + c.rank + "; " + c.i + " < " +
                c.n + "; " + c.i + " += " + c.size + ") {");
  out.push_back("        int value = (" + c.i + " * 7 + 3) % 10;");
  out.push_back("        if (value == target) {");
  out.push_back("            local_count++;");
  out.push_back("        }");
  out.push_back("    }");
  out.push_back("    MPI_Reduce(&local_count, &total_count, 1, MPI_INT, "
                "MPI_SUM, 0, MPI_COMM_WORLD);");
  out.push_back("    if (" + c.rank + " == 0) {");
  out.push_back("        printf(\"found %d occurrences of %d\\n\", "
                "total_count, target);");
  out.push_back("    }");
  mpi_epilogue(c, out);
  return assemble(out);
}

std::string gen_serial_utility(Rng& rng) {
  // A minority of files in a mined MPI corpus contain no MPI at all
  // (helpers, generators, postprocessing). Short serial programs.
  const int which = static_cast<int>(rng.next_below(3));
  Lines out;
  headers(out, false, false, /*mpi=*/false);
  main_open(out);
  if (which == 0) {
    const long n = rng.pick(std::vector<long>{10, 50, 100});
    out.push_back("    int i;");
    out.push_back("    long total = 0;");
    out.push_back("    for (i = 1; i <= " + itos(n) + "; i++) {");
    out.push_back("        total += i * i;");
    out.push_back("    }");
    out.push_back("    printf(\"sum of squares: %ld\\n\", total);");
  } else if (which == 1) {
    out.push_back("    int a = " + itos(rng.next_int(20, 400)) + ";");
    out.push_back("    int b = " + itos(rng.next_int(4, 60)) + ";");
    out.push_back("    while (b != 0) {");
    out.push_back("        int r = a % b;");
    out.push_back("        a = b;");
    out.push_back("        b = r;");
    out.push_back("    }");
    out.push_back("    printf(\"gcd: %d\\n\", a);");
  } else {
    const long n = rng.pick(std::vector<long>{5, 9, 12});
    out.push_back("    int i;");
    out.push_back("    for (i = 1; i <= " + itos(n) + "; i++) {");
    out.push_back("        printf(\"%d squared is %d\\n\", i, i * i);");
    out.push_back("    }");
  }
  out.push_back("    return 0;");
  out.push_back("}");
  return assemble(out);
}

std::string gen_composite(Rng& rng);  // defined after the table below

using GenFn = std::string (*)(Rng&);

struct FamilyEntry {
  Family family;
  const char* name;
  GenFn fn;
  double weight;  // corpus sampling weight
};

const std::vector<FamilyEntry>& family_table() {
  static const std::vector<FamilyEntry> table = {
      {Family::kPiRiemann, "pi_riemann", gen_pi_riemann, 8.0},
      {Family::kPiMonteCarlo, "pi_montecarlo", gen_pi_montecarlo, 6.0},
      {Family::kVectorDot, "vector_dot", gen_vector_dot, 7.0},
      {Family::kArrayAverage, "array_average", gen_array_average, 6.0},
      {Family::kMinMax, "min_max", gen_min_max, 5.0},
      {Family::kMatVec, "matvec", gen_matvec, 5.0},
      {Family::kSumReduceGather, "sum_reduce_gather", gen_sum_reduce_gather,
       5.0},
      {Family::kMergeSortPair, "merge_sort_pair", gen_merge_sort_pair, 4.0},
      {Family::kFactorial, "factorial", gen_factorial, 4.0},
      {Family::kFibonacci, "fibonacci", gen_fibonacci, 4.0},
      {Family::kTrapezoid, "trapezoid", gen_trapezoid, 6.0},
      {Family::kRingToken, "ring_token", gen_ring_token, 5.0},
      {Family::kPingPong, "ping_pong", gen_ping_pong, 4.0},
      {Family::kHalo1D, "halo_1d", gen_halo_1d, 5.0},
      {Family::kMasterWorker, "master_worker", gen_master_worker, 5.0},
      {Family::kBcastScatterGather, "bcast_scatter_gather",
       gen_bcast_scatter_gather, 4.0},
      {Family::kAllreduceNorm, "allreduce_norm", gen_allreduce_norm, 4.0},
      {Family::kPrefixScan, "prefix_scan", gen_prefix_scan, 2.0},
      {Family::kHistogram, "histogram", gen_histogram, 4.0},
      {Family::kHeatResidual, "heat_residual", gen_heat_residual, 4.0},
      {Family::kStatsMeanVar, "stats_mean_var", gen_stats_mean_var, 4.0},
      {Family::kSearchCount, "search_count", gen_search_count, 4.0},
      {Family::kCompositePipeline, "composite_pipeline", gen_composite, 62.0},
      {Family::kSerialUtility, "serial_utility", gen_serial_utility, 6.0},
  };
  return table;
}

std::string gen_composite(Rng& rng) {
  // Long programs: an MPI prologue followed by 3-12 independent kernels
  // whose bodies are inlined one after another. Reproduces the >=51-line
  // and >=100-line mass of Table Ia.
  Ctx c(rng);
  const int phases = static_cast<int>(rng.next_int(3, 12));
  Lines out;
  headers(out, false, true);
  main_open(out);
  mpi_prologue(c, out);
  out.push_back("    int " + c.i + ";");
  timing_start(c, out);
  for (int phase = 0; phase < phases; ++phase) {
    const std::string p = "p" + std::to_string(phase);
    const int kind = static_cast<int>(rng.next_below(4));
    out.push_back("    double " + p + "_local = 0.0;");
    out.push_back("    double " + p + "_global = 0.0;");
    if (kind == 0) {
      const long n = rng.pick(std::vector<long>{1000, 5000, 20000});
      out.push_back("    for (" + c.i + " = " + c.rank + "; " + c.i + " < " +
                    itos(n) + "; " + c.i + " += " + c.size + ") {");
      out.push_back("        " + p + "_local += (double)" + c.i + " * 0.5;");
      out.push_back("    }");
      out.push_back("    MPI_Reduce(&" + p + "_local, &" + p +
                    "_global, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);");
    } else if (kind == 1) {
      const long n = rng.pick(std::vector<long>{500, 2000});
      out.push_back("    for (" + c.i + " = " + c.rank + "; " + c.i + " < " +
                    itos(n) + "; " + c.i + " += " + c.size + ") {");
      out.push_back("        double term = 1.0 / ((double)" + c.i +
                    " + 1.0);");
      out.push_back("        " + p + "_local += term;");
      out.push_back("    }");
      out.push_back("    MPI_Allreduce(&" + p + "_local, &" + p +
                    "_global, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);");
    } else if (kind == 2) {
      out.push_back("    " + p + "_local = (double)(" + c.rank +
                    " + 1) * 3.0;");
      out.push_back("    MPI_Reduce(&" + p + "_local, &" + p +
                    "_global, 1, MPI_DOUBLE, MPI_MAX, 0, MPI_COMM_WORLD);");
    } else {
      out.push_back("    " + p + "_local = (double)(" + c.rank + " * 2 + 1);");
      out.push_back("    MPI_Scan(&" + p + "_local, &" + p +
                    "_global, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);");
    }
    out.push_back("    if (" + c.rank + " == 0) {");
    out.push_back("        printf(\"phase %d result %.4f\\n\", " +
                  std::to_string(phase) + ", " + p + "_global);");
    out.push_back("    }");
    if (rng.next_bool(0.4)) {
      out.push_back("    if (" + p + "_global < 0.0) {");
      out.push_back("        printf(\"phase %d underflow\\n\", " +
                    std::to_string(phase) + ");");
      out.push_back("    }");
    }
    if (rng.next_bool(0.3)) {
      out.push_back("    MPI_Barrier(MPI_COMM_WORLD);");
    }
  }
  timing_end(c, out);
  mpi_epilogue(c, out);
  return assemble(out);
}

}  // namespace

const char* family_name(Family family) {
  for (const auto& e : family_table()) {
    if (e.family == family) return e.name;
  }
  return "unknown";
}

const std::vector<Family>& all_families() {
  static const std::vector<Family> families = [] {
    std::vector<Family> v;
    for (const auto& e : family_table()) v.push_back(e.family);
    return v;
  }();
  return families;
}

std::string generate_program(Family family, Rng& rng) {
  for (const auto& e : family_table()) {
    if (e.family == family) return e.fn(rng);
  }
  MR_CHECK(false, "unknown program family");
}

Family sample_family(Rng& rng) {
  static const std::vector<double> weights = [] {
    std::vector<double> w;
    for (const auto& e : family_table()) w.push_back(e.weight);
    return w;
  }();
  return family_table()[rng.pick_weighted(weights)].family;
}

GeneratedProgram generate_random_program(Rng& rng) {
  const Family family = sample_family(rng);
  return GeneratedProgram{family, generate_program(family, rng)};
}

}  // namespace mpirical::corpus
