// Synthetic MPICodeCorpus program generator.
//
// The paper's corpus was mined from ~16,500 GitHub repositories; offline we
// synthesize it instead (see DESIGN.md, substitution table). Programs are
// drawn from ~20 parameterized families of domain-decomposition MPI codes --
// the same kinds of numerical kernels the paper's intro and benchmark use
// (pi, dot products, matrix-vector, reductions, halo exchanges, master/worker
// patterns, ...). Every family randomizes identifiers, constants, loop
// shapes and optional statements (timing, debug prints, barriers) so no two
// programs are textually identical, while remaining:
//   * parseable by cparse (the corpus inclusion criterion),
//   * strippable by corpus::remove_mpi_calls (dataset construction),
//   * runnable under cinterp + mpisim (validity oracle).
//
// Family weights are tuned so corpus statistics reproduce the paper's
// Table Ia (length mix), Table Ib (exponentially decaying function counts,
// Common Core at the head) and Fig. 3 (Init..Finalize span ratio).
#pragma once

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace mpirical::corpus {

enum class Family {
  kPiRiemann,
  kPiMonteCarlo,
  kVectorDot,
  kArrayAverage,
  kMinMax,
  kMatVec,
  kSumReduceGather,
  kMergeSortPair,
  kFactorial,
  kFibonacci,
  kTrapezoid,
  kRingToken,
  kPingPong,
  kHalo1D,
  kMasterWorker,
  kBcastScatterGather,
  kAllreduceNorm,
  kPrefixScan,
  kHistogram,
  kHeatResidual,
  kStatsMeanVar,
  kSearchCount,
  kCompositePipeline,  // several kernels chained; produces long programs
  kSerialUtility,      // no MPI at all (a minority of mined files have none)
};

inline constexpr int kFamilyCount = 24;

const char* family_name(Family family);
const std::vector<Family>& all_families();

/// Generates one program of the given family. Deterministic given rng state.
std::string generate_program(Family family, Rng& rng);

/// Samples a family with corpus-realistic weights.
Family sample_family(Rng& rng);

/// Convenience: sample_family + generate_program.
struct GeneratedProgram {
  Family family;
  std::string source;
};
GeneratedProgram generate_random_program(Rng& rng);

}  // namespace mpirical::corpus
