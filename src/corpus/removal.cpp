#include "corpus/removal.hpp"

#include "mpidb/catalog.hpp"
#include "support/check.hpp"

namespace mpirical::corpus {

using ast::Node;
using ast::NodeKind;
using ast::NodePtr;

namespace {

void record_calls(const Node& subtree, std::vector<ast::CallSite>& removed) {
  for (auto& site : ast::collect_mpi_calls(subtree)) {
    removed.push_back(site);
  }
}

/// Statement-level rewrite. Returns nullptr when the statement is dropped.
NodePtr rewrite_statement(const Node& stmt, std::vector<ast::CallSite>& removed);

NodePtr rewrite_block(const Node& block,
                      std::vector<ast::CallSite>& removed) {
  auto out = ast::make_node(block.kind, block.text, block.line);
  out->aux = block.aux;
  for (const auto& child : block.children) {
    NodePtr replacement = rewrite_statement(*child, removed);
    if (replacement) out->add(std::move(replacement));
  }
  return out;
}

NodePtr rewrite_statement(const Node& stmt,
                          std::vector<ast::CallSite>& removed) {
  switch (stmt.kind) {
    case NodeKind::kExpressionStatement: {
      if (!stmt.children.empty() && contains_mpi_call(*stmt.child(0))) {
        record_calls(*stmt.child(0), removed);
        return nullptr;  // drop the whole statement
      }
      return ast::clone(stmt);
    }
    case NodeKind::kDeclaration: {
      // Keep declarations; drop initializers that invoke MPI.
      auto out = ast::make_node(stmt.kind, stmt.text, stmt.line);
      out->add(ast::clone(*stmt.child(0)));
      for (std::size_t i = 1; i < stmt.children.size(); ++i) {
        const Node& init_decl = *stmt.children[i];
        auto copy = ast::make_node(init_decl.kind, init_decl.text,
                                   init_decl.line);
        copy->add(ast::clone(*init_decl.child(0)));
        if (init_decl.child_count() == 2) {
          if (contains_mpi_call(*init_decl.child(1))) {
            record_calls(*init_decl.child(1), removed);
          } else {
            copy->add(ast::clone(*init_decl.child(1)));
          }
        }
        out->add(std::move(copy));
      }
      return out;
    }
    case NodeKind::kCompoundStatement:
      return rewrite_block(stmt, removed);
    case NodeKind::kIfStatement:
    case NodeKind::kWhileStatement:
    case NodeKind::kDoStatement:
    case NodeKind::kForStatement:
    case NodeKind::kSwitchStatement: {
      // A control-flow condition/clause touching MPI drops the whole
      // statement; otherwise rewrite the bodies recursively.
      const std::size_t body_begin =
          stmt.kind == NodeKind::kDoStatement ? 0 : 0;
      (void)body_begin;
      bool header_has_mpi = false;
      for (const auto& child : stmt.children) {
        if (!ast::is_statement(child->kind) && contains_mpi_call(*child)) {
          header_has_mpi = true;
        }
      }
      if (header_has_mpi) {
        record_calls(stmt, removed);
        return nullptr;
      }
      auto out = ast::make_node(stmt.kind, stmt.text, stmt.line);
      out->aux = stmt.aux;
      for (const auto& child : stmt.children) {
        if (ast::is_statement(child->kind)) {
          NodePtr replacement = rewrite_statement(*child, removed);
          if (replacement) {
            out->add(std::move(replacement));
          } else {
            // A dropped loop/if body becomes an empty block to stay valid.
            out->add(ast::make_node(NodeKind::kCompoundStatement, {},
                                    child->line));
          }
        } else {
          out->add(ast::clone(*child));
        }
      }
      return out;
    }
    case NodeKind::kCaseStatement: {
      auto out = ast::make_node(stmt.kind, stmt.text, stmt.line);
      std::size_t i = 0;
      if (stmt.text == "case") {
        out->add(ast::clone(*stmt.child(0)));
        i = 1;
      }
      for (; i < stmt.children.size(); ++i) {
        NodePtr replacement = rewrite_statement(*stmt.children[i], removed);
        if (replacement) out->add(std::move(replacement));
      }
      return out;
    }
    case NodeKind::kReturnStatement: {
      if (!stmt.children.empty() && contains_mpi_call(*stmt.child(0))) {
        // `return MPI_...(...)` -> bare return (location signal removed).
        record_calls(*stmt.child(0), removed);
        return ast::make_node(NodeKind::kReturnStatement, {}, stmt.line);
      }
      return ast::clone(stmt);
    }
    default:
      return ast::clone(stmt);
  }
}

}  // namespace

bool contains_mpi_call(const Node& node) {
  if (node.kind == NodeKind::kCallExpression &&
      mpidb::has_mpi_prefix(node.text)) {
    return true;
  }
  for (const auto& c : node.children) {
    if (contains_mpi_call(*c)) return true;
  }
  return false;
}

RemovalResult remove_mpi_calls(const Node& label_root) {
  MR_CHECK(label_root.kind == NodeKind::kTranslationUnit,
           "remove_mpi_calls expects a translation unit");
  RemovalResult result;
  auto out = ast::make_node(NodeKind::kTranslationUnit, {}, label_root.line);
  for (const auto& item : label_root.children) {
    if (item->kind == NodeKind::kFunctionDefinition) {
      auto fn = ast::make_node(item->kind, item->text, item->line);
      fn->add(ast::clone(*item->child(0)));
      fn->add(ast::clone(*item->child(1)));
      fn->add(ast::clone(*item->child(2)));
      fn->add(rewrite_block(*item->child(3), result.removed));
      out->add(std::move(fn));
    } else {
      out->add(ast::clone(*item));
    }
  }
  result.stripped = std::move(out);
  return result;
}

}  // namespace mpirical::corpus
