#include "corpus/stats.hpp"

#include <algorithm>
#include <mutex>
#include <set>

#include "clex/lexer.hpp"
#include "cparse/parser.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace mpirical::corpus {

CorpusStats compute_stats(const std::vector<ProgramRecord>& corpus,
                          std::size_t max_tokens) {
  CorpusStats stats;
  stats.n_files = corpus.size();
  std::mutex mu;

  parallel_for(
      0, corpus.size(),
      [&](std::size_t idx) {
        const std::string& src = corpus[idx].source;
        const int lines = count_lines(src);

        ast::NodePtr tree;
        try {
          tree = parse::parse_translation_unit(src);
        } catch (const Error&) {
          std::lock_guard<std::mutex> lock(mu);
          ++stats.parse_failures;
          return;
        }

        const auto calls = ast::collect_mpi_calls(*tree);
        std::set<std::string> distinct;
        int init_line = -1;
        int finalize_line = -1;
        for (const auto& call : calls) {
          distinct.insert(call.callee);
          if (call.callee == "MPI_Init" && init_line < 0) {
            init_line = call.line;
          }
          if (call.callee == "MPI_Finalize") finalize_line = call.line;
        }

        const std::size_t tokens =
            lex::code_token_count(lex::tokenize(src));

        std::lock_guard<std::mutex> lock(mu);
        if (lines <= 10) {
          ++stats.len_le_10;
        } else if (lines <= 50) {
          ++stats.len_11_50;
        } else if (lines <= 99) {
          ++stats.len_51_99;
        } else {
          ++stats.len_ge_100;
        }
        for (const auto& name : distinct) {
          ++stats.function_file_counts[name];
        }
        if (init_line >= 0 && finalize_line >= 0 && lines > 0) {
          double ratio = static_cast<double>(finalize_line - init_line + 1) /
                         static_cast<double>(lines);
          if (ratio < 0.0) ratio = 0.0;
          if (ratio > 1.0) ratio = 1.0;
          std::size_t bin = static_cast<std::size_t>(
              ratio * static_cast<double>(CorpusStats::kRatioBins));
          if (bin >= CorpusStats::kRatioBins) bin = CorpusStats::kRatioBins - 1;
          ++stats.ratio_histogram[bin];
          ++stats.files_with_init_and_finalize;
        }
        if (tokens <= max_tokens) ++stats.within_token_limit;
      },
      /*grain=*/32);

  return stats;
}

std::vector<std::pair<std::string, std::size_t>> sorted_function_counts(
    const CorpusStats& stats) {
  std::vector<std::pair<std::string, std::size_t>> out(
      stats.function_file_counts.begin(), stats.function_file_counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace mpirical::corpus
