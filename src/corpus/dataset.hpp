// Dataset creation pipeline (paper Fig. 4):
//
//   corpus program --> parse gate --> standardize --> token-count exclusion
//     --> MPI-call removal --> (input code, input X-SBT, label code,
//                               ground-truth call sites)
//
// Programs that fail to parse or exceed the token limit are excluded, exactly
// like the paper's pycparser + 320-token criteria. The resulting examples are
// split train/validation/test 80:10:10 with a seeded shuffle.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cast/node.hpp"
#include "corpus/corpus.hpp"

namespace mpirical::snapshot {
class ByteWriter;
}

namespace mpirical::corpus {

struct Example {
  int id = 0;
  Family family = Family::kPiRiemann;
  std::string label_code;   // standardized MPI program (the label)
  std::string input_code;   // standardized program with MPI calls removed
  std::string input_xsbt;   // X-SBT linearization of the stripped AST
  std::vector<ast::CallSite> ground_truth;  // removed calls, label-code lines
  std::size_t label_token_count = 0;
};

struct DatasetConfig {
  std::size_t corpus_size = 2000;
  std::uint64_t seed = 42;
  std::size_t max_tokens = 320;  // paper's hardware-motivated exclusion
  double train_fraction = 0.8;
  double val_fraction = 0.1;     // remainder goes to test
};

struct Dataset {
  std::vector<Example> train;
  std::vector<Example> val;
  std::vector<Example> test;
  // Pipeline accounting (reported by the corpus benches).
  std::size_t total_programs = 0;
  std::size_t parse_failures = 0;
  std::size_t excluded_too_long = 0;

  std::size_t example_count() const {
    return train.size() + val.size() + test.size();
  }
};

/// Runs the full pipeline over a fresh corpus built from `config`.
Dataset build_dataset(const DatasetConfig& config);

/// Processes one source program; returns false if it fails the parse gate or
/// the token-count exclusion. On success fills `out` (id/family left as-is).
bool make_example(const std::string& source, std::size_t max_tokens,
                  Example& out);

/// Snapshot payload for one materialized split: every Example field, so a
/// shard worker (or a bench run started from MPIRICAL_SNAPSHOT_PATH) gets
/// the EXACT examples the driver evaluates instead of re-deriving the corpus
/// from environment knobs.
void encode_examples(snapshot::ByteWriter& w,
                     const std::vector<Example>& examples);
/// Parses an encode_examples payload (a snapshot section view); strings are
/// copied exactly once, out of the view into the Examples. Throws Error on
/// truncation or forged counts.
std::vector<Example> decode_examples(std::string_view payload);

}  // namespace mpirical::corpus
