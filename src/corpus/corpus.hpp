// Corpus construction: the synthetic analogue of mining GitHub.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/generator.hpp"

namespace mpirical::corpus {

struct ProgramRecord {
  int id = 0;
  Family family = Family::kPiRiemann;
  std::string source;  // raw generated C source (pre-standardization)
};

struct CorpusConfig {
  std::size_t num_programs = 1000;
  std::uint64_t seed = 42;
};

/// Builds `num_programs` programs in parallel. Deterministic: program i is
/// generated from Rng(seed, i) regardless of thread count.
std::vector<ProgramRecord> build_corpus(const CorpusConfig& config);

}  // namespace mpirical::corpus
