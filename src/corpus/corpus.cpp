#include "corpus/corpus.hpp"

#include "support/thread_pool.hpp"

namespace mpirical::corpus {

std::vector<ProgramRecord> build_corpus(const CorpusConfig& config) {
  std::vector<ProgramRecord> out(config.num_programs);
  parallel_for(
      0, config.num_programs,
      [&](std::size_t i) {
        // Per-program stream: mix the index into the seed so parallel
        // generation is order-independent.
        Rng rng(config.seed * 0x9E3779B97F4A7C15ULL + i * 0xBF58476D1CE4E5B9ULL +
                1);
        GeneratedProgram prog = generate_random_program(rng);
        out[i] = ProgramRecord{static_cast<int>(i), prog.family,
                               std::move(prog.source)};
      },
      /*grain=*/64);
  return out;
}

}  // namespace mpirical::corpus
