// Corpus statistics: everything Table Ia, Table Ib and Fig. 3 report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"

namespace mpirical::corpus {

struct CorpusStats {
  std::size_t n_files = 0;
  std::size_t parse_failures = 0;

  // Table Ia: code length histogram (raw source lines).
  std::size_t len_le_10 = 0;
  std::size_t len_11_50 = 0;
  std::size_t len_51_99 = 0;
  std::size_t len_ge_100 = 0;

  // Table Ib: per-file function occurrence counts (multiple calls of the
  // same function in one file count once).
  std::map<std::string, std::size_t> function_file_counts;

  // Fig. 3: histogram (kRatioBins bins over [0,1]) of the ratio between the
  // Init..Finalize span and the whole program length.
  static constexpr std::size_t kRatioBins = 20;
  std::vector<std::size_t> ratio_histogram =
      std::vector<std::size_t>(kRatioBins, 0);
  std::size_t files_with_init_and_finalize = 0;

  // Exclusion accounting (paper: ~50% dropped by the 320-token limit).
  std::size_t within_token_limit = 0;
};

/// Computes statistics over a corpus. `max_tokens` is used only for the
/// within_token_limit accounting.
CorpusStats compute_stats(const std::vector<ProgramRecord>& corpus,
                          std::size_t max_tokens = 320);

/// Table Ib helper: function counts sorted by count, descending.
std::vector<std::pair<std::string, std::size_t>> sorted_function_counts(
    const CorpusStats& stats);

}  // namespace mpirical::corpus
