// The paper's numerical-computation benchmark (Table III): 11 hand-written,
// fully-runnable MPI C programs with domain decomposition. Each carries a
// validation oracle (expected output key + numeric value) so the suite can be
// executed under mpisim and checked end-to-end -- the paper's "compiled and
// ran the generated programs" evaluation.
#pragma once

#include <string>
#include <vector>

#include "mpisim/runner.hpp"

namespace mpirical::benchsuite {

struct BenchmarkProgram {
  std::string name;       // Table III row name
  std::string source;     // complete MPI C program
  int ranks = 4;
  std::string expect_key;  // substring preceding the value in the output
  double expect_value = 0.0;
  double tolerance = 0.0;
  bool numeric_check = true;  // false: expect_key substring match only
};

/// All 11 programs, in Table III order.
const std::vector<BenchmarkProgram>& programs();

/// Finds a program by Table III name.
const BenchmarkProgram& program_by_name(const std::string& name);

/// Runs a program's source (or any candidate source claiming to implement
/// it) under the simulated MPI runtime and applies the validation oracle.
struct ValidationResult {
  bool ran = false;        // executed without runtime errors
  bool valid = false;      // oracle satisfied
  std::string detail;      // error or mismatch description
};
ValidationResult validate(const BenchmarkProgram& program,
                          const std::string& source);

}  // namespace mpirical::benchsuite
