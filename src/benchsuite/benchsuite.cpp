#include "benchsuite/benchsuite.hpp"

#include <cmath>
#include <cstdlib>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace mpirical::benchsuite {

namespace {

std::vector<BenchmarkProgram> build_programs() {
  std::vector<BenchmarkProgram> out;

  out.push_back({"Array Average", R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int n = 64;
    double data[64];
    double part[64];
    double local_sum = 0.0;
    double total = 0.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int chunk = n / size;
    if (rank == 0) {
        for (i = 0; i < n; i++) {
            data[i] = (double)(i % 17) + 1.0;
        }
    }
    MPI_Scatter(data, chunk, MPI_DOUBLE, part, chunk, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    for (i = 0; i < chunk; i++) {
        local_sum += part[i];
    }
    MPI_Reduce(&local_sum, &total, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        double average = total / (double)n;
        printf("average = %.6f\n", average);
    }
    MPI_Finalize();
    return 0;
}
)", 4, "average =", 8.59375, 1e-4, true});

  out.push_back({"Vector Dot Product", R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int n = 64;
    double a[64];
    double b[64];
    double local_dot = 0.0;
    double dot = 0.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    for (i = 0; i < n; i++) {
        a[i] = (double)i * 0.5;
        b[i] = (double)(n - i);
    }
    int chunk = n / size;
    int start = rank * chunk;
    int stop = start + chunk;
    for (i = start; i < stop; i++) {
        local_dot += a[i] * b[i];
    }
    MPI_Reduce(&local_dot, &dot, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("dot product = %.4f\n", dot);
    }
    MPI_Finalize();
    return 0;
}
)", 4, "dot product =", 21840.0, 1e-3, true});

  out.push_back({"Min-Max", R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int n = 64;
    double data[64];
    double local_min = 1000000.0;
    double local_max = -1000000.0;
    double global_min;
    double global_max;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    for (i = 0; i < n; i++) {
        data[i] = (double)((i * 37) % 101);
    }
    int chunk = n / size;
    int begin = rank * chunk;
    int end = begin + chunk;
    for (i = begin; i < end; i++) {
        if (data[i] < local_min) {
            local_min = data[i];
        }
        if (data[i] > local_max) {
            local_max = data[i];
        }
    }
    MPI_Reduce(&local_min, &global_min, 1, MPI_DOUBLE, MPI_MIN, 0, MPI_COMM_WORLD);
    MPI_Reduce(&local_max, &global_max, 1, MPI_DOUBLE, MPI_MAX, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("min = %.2f max = %.2f\n", global_min, global_max);
    }
    MPI_Finalize();
    return 0;
}
)", 4, "min = 0.00 max = 100.00", 0.0, 0.0, false});

  out.push_back({"Matrix-Vector Multiplication", R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int col;
    int n = 8;
    double mat[64];
    double x[8];
    double y[8];
    double y_local[8];
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    if (rank == 0) {
        for (i = 0; i < n * n; i++) {
            mat[i] = (double)(i % 7) + 1.0;
        }
        for (i = 0; i < n; i++) {
            x[i] = (double)(i + 1);
        }
    }
    MPI_Bcast(mat, n * n, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    MPI_Bcast(x, n, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    int rows = n / size;
    for (i = 0; i < rows; i++) {
        double acc = 0.0;
        for (col = 0; col < n; col++) {
            acc += mat[(rank * rows + i) * n + col] * x[col];
        }
        y_local[i] = acc;
    }
    MPI_Gather(y_local, rows, MPI_DOUBLE, y, rows, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        double checksum = 0.0;
        for (i = 0; i < n; i++) {
            checksum += y[i];
        }
        printf("matvec checksum = %.4f\n", checksum);
    }
    MPI_Finalize();
    return 0;
}
)", 4, "matvec checksum =", 1156.0, 1e-3, true});

  out.push_back({"Sum (Reduce & Gather)", R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int n = 100;
    double local_sum = 0.0;
    double total = 0.0;
    double parts[64];
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    for (i = rank; i < n; i += size) {
        local_sum += (double)i;
    }
    MPI_Reduce(&local_sum, &total, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    MPI_Gather(&local_sum, 1, MPI_DOUBLE, parts, 1, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("total = %.1f\n", total);
        for (i = 0; i < size; i++) {
            printf("part %d = %.1f\n", i, parts[i]);
        }
    }
    MPI_Finalize();
    return 0;
}
)", 4, "total =", 4950.0, 1e-6, true});

  out.push_back({"Merge Sort", R"(#include <stdio.h>
#include <mpi.h>

void local_sort(int *vals, int count) {
    int i;
    int j;
    for (i = 1; i < count; i++) {
        int key = vals[i];
        j = i - 1;
        while (j >= 0 && vals[j] > key) {
            vals[j + 1] = vals[j];
            j = j - 1;
        }
        vals[j + 1] = key;
    }
}

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int mine[4];
    int all[16];
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    for (i = 0; i < 4; i++) {
        mine[i] = ((rank * 4 + i) * 73 + 19) % 997;
    }
    local_sort(mine, 4);
    MPI_Gather(mine, 4, MPI_INT, all, 4, MPI_INT, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        local_sort(all, 16);
        printf("sorted first %d last %d\n", all[0], all[15]);
    }
    MPI_Finalize();
    return 0;
}
)", 4, "sorted first 19 last 968", 0.0, 0.0, false});

  out.push_back({"Pi Monte-Carlo", R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int n = 20000;
    long hits = 0;
    long total_hits = 0;
    long seed = 12345;
    double x;
    double y;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    seed = seed + 777 * rank;
    for (i = 0; i < n; i++) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        x = (double)(seed % 100000) / 100000.0;
        seed = (seed * 1103515245 + 12345) % 2147483648;
        y = (double)(seed % 100000) / 100000.0;
        if (x * x + y * y <= 1.0) {
            hits++;
        }
    }
    MPI_Reduce(&hits, &total_hits, 1, MPI_LONG, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        double pi = 4.0 * (double)total_hits / ((double)n * (double)size);
        printf("pi estimate: %.8f\n", pi);
    }
    MPI_Finalize();
    return 0;
}
)", 4, "pi estimate:", 3.14159265, 0.1, true});

  out.push_back({"Pi Riemann Sum", R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int n = 100000;
    double h;
    double local_sum = 0.0;
    double pi = 0.0;
    double x;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    h = 1.0 / (double)n;
    for (i = rank; i < n; i += size) {
        x = h * ((double)i + 0.5);
        local_sum += 4.0 / (1.0 + x * x);
    }
    local_sum = local_sum * h;
    MPI_Reduce(&local_sum, &pi, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("pi is approximately %.12f\n", pi);
    }
    MPI_Finalize();
    return 0;
}
)", 4, "pi is approximately", 3.14159265358979, 1e-6, true});

  out.push_back({"Factorial", R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int n = 12;
    double local_prod = 1.0;
    double result = 1.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    for (i = rank + 1; i <= n; i += size) {
        local_prod = local_prod * (double)i;
    }
    MPI_Reduce(&local_prod, &result, 1, MPI_DOUBLE, MPI_PROD, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("%d factorial is %.0f\n", n, result);
    }
    MPI_Finalize();
    return 0;
}
)", 4, "12 factorial is", 479001600.0, 0.5, true});

  out.push_back({"Fibonacci", R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    long fib_a = 0;
    long fib_b = 1;
    long fib_tmp;
    long results[64];
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int target = 10 + rank;
    for (i = 0; i < target; i++) {
        fib_tmp = fib_a + fib_b;
        fib_a = fib_b;
        fib_b = fib_tmp;
    }
    MPI_Gather(&fib_a, 1, MPI_LONG, results, 1, MPI_LONG, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        for (i = 0; i < size; i++) {
            printf("fib(%d) = %ld\n", 10 + i, results[i]);
        }
    }
    MPI_Finalize();
    return 0;
}
)", 4, "fib(12) = 144", 0.0, 0.0, false});

  out.push_back({"Trapezoidal Rule (Integration)", R"(#include <stdio.h>
#include <mpi.h>

double f(double x) {
    return x * x + 1.0;
}

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int n = 256;
    double a = 0.0;
    double b = 4.0;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    double h = (b - a) / (double)n;
    int local_n = n / size;
    double local_a = a + (double)(rank * local_n) * h;
    double local_b = local_a + (double)local_n * h;
    double integral;
    double x;
    integral = (f(local_a) + f(local_b)) / 2.0;
    for (i = 1; i < local_n; i++) {
        x = local_a + (double)i * h;
        integral += f(x);
    }
    integral = integral * h;
    if (rank != 0) {
        MPI_Send(&integral, 1, MPI_DOUBLE, 0, 0, MPI_COMM_WORLD);
    } else {
        double total = integral;
        double piece;
        MPI_Status status;
        int src;
        for (src = 1; src < size; src++) {
            MPI_Recv(&piece, 1, MPI_DOUBLE, src, 0, MPI_COMM_WORLD, &status);
            total += piece;
        }
        printf("integral from %.1f to %.1f = %.8f\n", a, b, total);
    }
    MPI_Finalize();
    return 0;
}
)", 4, "integral from 0.0 to 4.0 =", 25.33333333, 0.01, true});

  return out;
}

}  // namespace

const std::vector<BenchmarkProgram>& programs() {
  static const std::vector<BenchmarkProgram> progs = build_programs();
  return progs;
}

const BenchmarkProgram& program_by_name(const std::string& name) {
  for (const auto& p : programs()) {
    if (p.name == name) return p;
  }
  MR_CHECK(false, "unknown benchmark program: " + name);
}

ValidationResult validate(const BenchmarkProgram& program,
                          const std::string& source) {
  ValidationResult result;
  mpisim::RunOptions opts;
  opts.num_ranks = program.ranks;
  const mpisim::RunResult run = mpisim::run_mpi_source(source, opts);
  if (!run.ok) {
    result.detail = run.error;
    return result;
  }
  result.ran = true;

  const std::string output = run.merged_output();
  const std::size_t pos = output.find(program.expect_key);
  if (pos == std::string::npos) {
    result.detail = "expected output key not found: " + program.expect_key;
    return result;
  }
  if (!program.numeric_check) {
    result.valid = true;
    return result;
  }
  const char* tail = output.c_str() + pos + program.expect_key.size();
  char* end = nullptr;
  const double value = std::strtod(tail, &end);
  if (end == tail) {
    result.detail = "no numeric value after key";
    return result;
  }
  if (std::fabs(value - program.expect_value) <= program.tolerance) {
    result.valid = true;
  } else {
    result.detail = "value " + std::to_string(value) + " differs from " +
                    std::to_string(program.expect_value);
  }
  return result;
}

}  // namespace mpirical::benchsuite
