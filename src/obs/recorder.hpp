// Structured phase-measurement recorder (the ROADMAP's follow-up to the
// serving work, in the style of dss_mehnert::measurement): RAII ScopedPhase
// timers forming a named phase hierarchy, monotonic counters, and low-rate
// gauges, all merged into one StatsSnapshot on demand.
//
// Hot-path discipline: recording must be provably inert. ScopedPhase and
// counter_add touch only a PER-THREAD buffer of fixed capacity (no
// allocation, no lock) using relaxed atomics that the owning thread alone
// writes; when the recorder is disabled (the default) every entry point is a
// single relaxed load. Nothing here feeds back into decode -- recorder-on vs
// recorder-off runs produce bitwise-identical tokens and summaries
// (tests/test_obs_equivalence.cpp pins this).
//
// Phase identity is the slash-joined path of the enclosing ScopedPhase
// names on the current thread ("serve" nesting "encode" renders as
// "serve/encode"); record_phase/merge_phase take absolute paths, so
// measurements shipped from shard workers land in the same tree. All timing
// is steady_clock.
//
// MPIRICAL_STATS=<path> enables the global recorder at startup and appends
// one JSON line (the BENCH_*.json convention) to <path> at process exit.
// Processes that leave via _exit (the serve daemon) call dump() explicitly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace mpirical::obs {

/// Aggregated observations of one phase path.
struct PhaseStat {
  std::string path;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  double max_ms() const { return static_cast<double>(max_ns) / 1e6; }
};

struct CounterStat {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeStat {
  std::string name;
  double last = 0.0;
  double max = 0.0;
};

/// Point-in-time merge of every thread's buffers, sorted by path/name.
struct StatsSnapshot {
  std::vector<PhaseStat> phases;
  std::vector<CounterStat> counters;
  std::vector<GaugeStat> gauges;

  const PhaseStat* find_phase(const std::string& path) const;
  const CounterStat* find_counter(const std::string& name) const;

  /// One JSON object (no trailing newline) tagged with `label` and this
  /// process's pid, fitting the BENCH_*.json JSON-lines convention:
  /// {"stats":label,"pid":N,"phases":{path:{count,total_ms,max_ms}},
  ///  "counters":{name:value},"gauges":{name:{last,max}}}
  std::string to_json(const std::string& label) const;
};

class Recorder {
 public:
  /// The process-wide recorder. Leaked on purpose: thread-local buffers and
  /// atexit dump hooks may outlive any static destruction order.
  static Recorder& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// End-of-run dump target ("" = none). Set from MPIRICAL_STATS at first
  /// use; tests override it directly.
  void set_dump_path(std::string path);
  std::string dump_path() const;

  /// Adds `delta` to a flat monotonic counter. Lock-free after the first
  /// call from each thread; no-op while disabled.
  void counter_add(const char* name, std::uint64_t delta);

  /// Sets a low-rate gauge (tracks last and max). Takes the registry mutex;
  /// no-op while disabled.
  void gauge_set(const char* name, double value);

  /// Records one externally-measured observation of an ABSOLUTE phase path
  /// (independent of the calling thread's ScopedPhase nesting). Lock-free
  /// after the first call from each thread; no-op while disabled.
  void record_phase(const char* path, std::uint64_t ns);

  /// Merges pre-aggregated phase observations (a shard worker's shipped
  /// report, a test fixture) under an absolute path. Takes the registry
  /// mutex; works even while disabled so a driver can always account for a
  /// worker that recorded.
  void merge_phase(const std::string& path, std::uint64_t count,
                   std::uint64_t total_ns, std::uint64_t max_ns);
  void merge_counter(const std::string& name, std::uint64_t value);

  /// Merges retired + live thread buffers. Concurrent recording keeps
  /// running; in-flight observations may or may not be included.
  StatsSnapshot snapshot();

  /// Zeroes every accumulated value (interned paths survive -- other
  /// threads' cached ids stay valid). Test hook; quiesce recording first.
  void reset();

  /// Appends to_json(label) + "\n" to dump_path() via a single O_APPEND
  /// write. No-op when no dump path is set. Swallows I/O errors (stats must
  /// never fail a run).
  void dump(const std::string& label);

  // Implementation details, public only so the .cpp's TLS anchor can name
  // them; not part of the API.
  struct ThreadBuf;
  class Registry;

 private:
  friend class ScopedPhase;

  Recorder();
  ~Recorder() = delete;  // leaked singleton

  ThreadBuf& thread_buf();
  std::uint32_t resolve_child(ThreadBuf& tb, std::uint32_t parent,
                              const char* name);
  std::uint32_t resolve_counter(ThreadBuf& tb, const char* name);

  std::atomic<bool> enabled_{false};
  Registry* registry_;  // leaked with the recorder
};

/// RAII phase timer. Construction pushes `name` onto the calling thread's
/// phase stack (becoming the parent of nested ScopedPhases); destruction
/// accumulates the elapsed steady_clock time into the thread buffer. A
/// no-op (one relaxed load) while the recorder is disabled.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  std::uint32_t id_ = 0;
  std::uint32_t parent_ = 0;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

}  // namespace mpirical::obs
