#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include <unistd.h>

#include "support/io.hpp"

namespace mpirical::obs {

namespace {

// Fixed per-thread capacities: the hot path indexes flat arrays, never
// allocates. Paths interned beyond the cap are dropped (id 0), not errors --
// observability must not take down a run.
constexpr std::size_t kMaxPhases = 512;
constexpr std::size_t kMaxCounters = 256;

struct PlainAccum {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

void merge_accum(PlainAccum& into, std::uint64_t count, std::uint64_t total_ns,
                 std::uint64_t max_ns) {
  into.count += count;
  into.total_ns += total_ns;
  into.max_ns = std::max(into.max_ns, max_ns);
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_fixed(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

}  // namespace

/// Per-thread accumulation buffer. Only the owning thread writes the cells
/// (relaxed atomics so snapshot() may read them concurrently without tearing
/// or UB); the registry merges a thread's cells into the retired pool when
/// the thread exits.
struct Recorder::ThreadBuf {
  struct Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
  };
  Cell phases[kMaxPhases];
  std::atomic<std::uint64_t> counters[kMaxCounters] = {};
  std::uint32_t current = 0;  // innermost live ScopedPhase (0 = root)

  // Call-site caches: (parent, name pointer) -> interned id, so steady-state
  // resolution is a short linear scan over this thread's distinct sites
  // instead of a locked string lookup. Name pointers are the callers'
  // string literals; a moved pointer just costs one re-intern.
  struct PhaseSite {
    std::uint32_t parent;
    const char* name;
    std::uint32_t id;
  };
  struct CounterSite {
    const char* name;
    std::uint32_t id;
  };
  std::vector<PhaseSite> phase_sites;
  std::vector<CounterSite> counter_sites;

  void bump_phase(std::uint32_t id, std::uint64_t ns) {
    if (id == 0 || id >= kMaxPhases) return;
    Cell& c = phases[id];
    c.count.fetch_add(1, std::memory_order_relaxed);
    c.total_ns.fetch_add(ns, std::memory_order_relaxed);
    if (ns > c.max_ns.load(std::memory_order_relaxed)) {
      c.max_ns.store(ns, std::memory_order_relaxed);
    }
  }
};

/// Interned name tables + retired accumulators + the live thread-buffer
/// list. One mutex guards all of it; the hot path never takes it after a
/// call site's first resolution on each thread.
class Recorder::Registry {
 public:
  Registry() {
    nodes_.push_back({0, "", ""});  // id 0: root / dropped sentinel
    retired_phases_.resize(1);
  }

  std::uint32_t intern_child(std::uint32_t parent, const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return intern_child_locked(parent, name);
  }

  std::uint32_t intern_counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return intern_counter_locked(name);
  }

  void register_buf(ThreadBuf* buf) {
    std::lock_guard<std::mutex> lock(mu_);
    bufs_.push_back(buf);
  }

  void retire_buf(ThreadBuf* buf) {
    std::lock_guard<std::mutex> lock(mu_);
    merge_buf_locked(*buf);
    bufs_.erase(std::remove(bufs_.begin(), bufs_.end(), buf), bufs_.end());
  }

  void merge_phase(const std::string& path, std::uint64_t count,
                   std::uint64_t total_ns, std::uint64_t max_ns) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint32_t id = intern_child_locked(0, path);
    if (id == 0) return;
    merge_accum(retired_phases_[id], count, total_ns, max_ns);
  }

  void merge_counter(const std::string& name, std::uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint32_t id = intern_counter_locked(name);
    if (id >= retired_counters_.size()) retired_counters_.resize(id + 1, 0);
    retired_counters_[id] += value;
  }

  void gauge_set(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = gauges_.try_emplace(name, GaugeStat{name, value, value});
    if (!inserted) {
      it->second.last = value;
      it->second.max = std::max(it->second.max, value);
    }
  }

  StatsSnapshot snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PlainAccum> totals = retired_phases_;
    totals.resize(nodes_.size());
    std::vector<std::uint64_t> counter_totals = retired_counters_;
    counter_totals.resize(counter_names_.size(), 0);
    for (ThreadBuf* buf : bufs_) {
      for (std::size_t id = 1; id < nodes_.size() && id < kMaxPhases; ++id) {
        const ThreadBuf::Cell& c = buf->phases[id];
        merge_accum(totals[id], c.count.load(std::memory_order_relaxed),
                    c.total_ns.load(std::memory_order_relaxed),
                    c.max_ns.load(std::memory_order_relaxed));
      }
      for (std::size_t id = 0;
           id < counter_names_.size() && id < kMaxCounters; ++id) {
        counter_totals[id] +=
            buf->counters[id].load(std::memory_order_relaxed);
      }
    }
    // Group by RENDERED path: a node interned as one "a/b" segment and a
    // nested a -> b chain are the same phase to every consumer.
    std::map<std::string, PhaseStat> by_path;
    for (std::size_t id = 1; id < nodes_.size(); ++id) {
      const PlainAccum& a = totals[id];
      if (a.count == 0 && a.total_ns == 0) continue;
      PhaseStat& p = by_path[nodes_[id].path];
      p.path = nodes_[id].path;
      p.count += a.count;
      p.total_ns += a.total_ns;
      p.max_ns = std::max(p.max_ns, a.max_ns);
    }
    std::map<std::string, std::uint64_t> by_name;
    for (std::size_t id = 0; id < counter_names_.size(); ++id) {
      if (counter_totals[id] != 0) by_name[counter_names_[id]] += counter_totals[id];
    }
    StatsSnapshot snap;
    for (auto& [path, stat] : by_path) snap.phases.push_back(std::move(stat));
    for (const auto& [name, value] : by_name) {
      snap.counters.push_back({name, value});
    }
    for (const auto& [name, gauge] : gauges_) snap.gauges.push_back(gauge);
    return snap;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& a : retired_phases_) a = PlainAccum{};
    for (auto& v : retired_counters_) v = 0;
    gauges_.clear();
    for (ThreadBuf* buf : bufs_) {
      for (std::size_t id = 0; id < kMaxPhases; ++id) {
        buf->phases[id].count.store(0, std::memory_order_relaxed);
        buf->phases[id].total_ns.store(0, std::memory_order_relaxed);
        buf->phases[id].max_ns.store(0, std::memory_order_relaxed);
      }
      for (std::size_t id = 0; id < kMaxCounters; ++id) {
        buf->counters[id].store(0, std::memory_order_relaxed);
      }
    }
  }

  void set_dump_path(std::string path) {
    std::lock_guard<std::mutex> lock(mu_);
    dump_path_ = std::move(path);
  }

  std::string dump_path() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dump_path_;
  }

 private:
  struct Node {
    std::uint32_t parent;
    std::string name;
    std::string path;  // slash-joined ancestor names
  };

  std::uint32_t intern_child_locked(std::uint32_t parent,
                                    const std::string& name) {
    const auto key = std::make_pair(parent, name);
    const auto it = children_.find(key);
    if (it != children_.end()) return it->second;
    if (nodes_.size() >= kMaxPhases) return 0;  // over capacity: drop
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    Node node;
    node.parent = parent;
    node.name = name;
    node.path = parent == 0 ? name : nodes_[parent].path + "/" + name;
    nodes_.push_back(std::move(node));
    retired_phases_.emplace_back();
    children_.emplace(key, id);
    return id;
  }

  std::uint32_t intern_counter_locked(const std::string& name) {
    const auto it = counter_ids_.find(name);
    if (it != counter_ids_.end()) return it->second;
    // The capacity cap reserves the LAST slot as a shared overflow bucket
    // (still counted, path precision lost) rather than dropping data.
    const auto id = static_cast<std::uint32_t>(
        std::min(counter_names_.size(), kMaxCounters - 1));
    if (counter_names_.size() < kMaxCounters) counter_names_.push_back(name);
    counter_ids_.emplace(name, id);
    return id;
  }

  void merge_buf_locked(ThreadBuf& buf) {
    for (std::size_t id = 1; id < nodes_.size() && id < kMaxPhases; ++id) {
      const ThreadBuf::Cell& c = buf.phases[id];
      merge_accum(retired_phases_[id],
                  c.count.load(std::memory_order_relaxed),
                  c.total_ns.load(std::memory_order_relaxed),
                  c.max_ns.load(std::memory_order_relaxed));
    }
    if (retired_counters_.size() < counter_names_.size()) {
      retired_counters_.resize(counter_names_.size(), 0);
    }
    for (std::size_t id = 0; id < counter_names_.size() && id < kMaxCounters;
         ++id) {
      retired_counters_[id] +=
          buf.counters[id].load(std::memory_order_relaxed);
    }
  }

  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> children_;
  std::vector<PlainAccum> retired_phases_;  // indexed by node id
  std::vector<std::string> counter_names_;
  std::map<std::string, std::uint32_t> counter_ids_;
  std::vector<std::uint64_t> retired_counters_;  // indexed by counter id
  std::map<std::string, GaugeStat> gauges_;
  std::vector<ThreadBuf*> bufs_;
  std::string dump_path_;
};

namespace {

/// TLS anchor: registers the buffer on first touch, retires (merges) it when
/// the thread exits. The recorder itself is leaked, so the registry is
/// always alive when a late thread unwinds.
struct ThreadBufOwner {
  Recorder::Registry* registry;
  Recorder::ThreadBuf* buf;
  explicit ThreadBufOwner(Recorder::Registry* reg)
      : registry(reg), buf(new Recorder::ThreadBuf) {
    registry->register_buf(buf);
  }
  ~ThreadBufOwner() {
    registry->retire_buf(buf);
    delete buf;
  }
};

}  // namespace

Recorder::Recorder() : registry_(new Registry) {
  const char* env = std::getenv("MPIRICAL_STATS");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    registry_->set_dump_path(env);
    enabled_.store(true, std::memory_order_relaxed);
    // The serve daemon leaves via _exit and calls dump() itself; everyone
    // else gets the end-of-run dump for free.
    std::atexit([] { Recorder::global().dump("exit"); });
  }
}

Recorder& Recorder::global() {
  static Recorder* instance = new Recorder;
  return *instance;
}

Recorder::ThreadBuf& Recorder::thread_buf() {
  thread_local ThreadBufOwner owner(registry_);
  return *owner.buf;
}

std::uint32_t Recorder::resolve_child(ThreadBuf& tb, std::uint32_t parent,
                                      const char* name) {
  for (const auto& site : tb.phase_sites) {
    if (site.parent == parent && site.name == name) return site.id;
  }
  const std::uint32_t id = registry_->intern_child(parent, name);
  tb.phase_sites.push_back({parent, name, id});
  return id;
}

std::uint32_t Recorder::resolve_counter(ThreadBuf& tb, const char* name) {
  for (const auto& site : tb.counter_sites) {
    if (site.name == name) return site.id;
  }
  const std::uint32_t id = registry_->intern_counter(name);
  tb.counter_sites.push_back({name, id});
  return id;
}

void Recorder::set_dump_path(std::string path) {
  registry_->set_dump_path(std::move(path));
}

std::string Recorder::dump_path() const { return registry_->dump_path(); }

void Recorder::counter_add(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  ThreadBuf& tb = thread_buf();
  const std::uint32_t id = resolve_counter(tb, name);
  if (id < kMaxCounters) {
    tb.counters[id].fetch_add(delta, std::memory_order_relaxed);
  }
}

void Recorder::gauge_set(const char* name, double value) {
  if (!enabled()) return;
  registry_->gauge_set(name, value);
}

void Recorder::record_phase(const char* path, std::uint64_t ns) {
  if (!enabled()) return;
  ThreadBuf& tb = thread_buf();
  tb.bump_phase(resolve_child(tb, 0, path), ns);
}

void Recorder::merge_phase(const std::string& path, std::uint64_t count,
                           std::uint64_t total_ns, std::uint64_t max_ns) {
  registry_->merge_phase(path, count, total_ns, max_ns);
}

void Recorder::merge_counter(const std::string& name, std::uint64_t value) {
  registry_->merge_counter(name, value);
}

StatsSnapshot Recorder::snapshot() { return registry_->snapshot(); }

void Recorder::reset() { registry_->reset(); }

void Recorder::dump(const std::string& label) {
  const std::string path = registry_->dump_path();
  if (path.empty()) return;
  try {
    io::append_line(path, snapshot().to_json(label));
  } catch (...) {
    // Stats are best-effort; a full disk must not fail the run.
  }
}

ScopedPhase::ScopedPhase(const char* name) {
  Recorder& r = Recorder::global();
  if (!r.enabled()) return;
  Recorder::ThreadBuf& tb = r.thread_buf();
  parent_ = tb.current;
  id_ = r.resolve_child(tb, parent_, name);
  tb.current = id_;
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

ScopedPhase::~ScopedPhase() {
  if (!active_) return;
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  Recorder& r = Recorder::global();
  Recorder::ThreadBuf& tb = r.thread_buf();
  tb.current = parent_;
  tb.bump_phase(id_, ns);
}

const PhaseStat* StatsSnapshot::find_phase(const std::string& path) const {
  for (const auto& p : phases) {
    if (p.path == path) return &p;
  }
  return nullptr;
}

const CounterStat* StatsSnapshot::find_counter(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string StatsSnapshot::to_json(const std::string& label) const {
  std::string out = "{\"stats\":";
  append_escaped(out, label);
  out += ",\"pid\":" + std::to_string(static_cast<long>(::getpid()));
  out += ",\"phases\":{";
  bool first = true;
  for (const auto& p : phases) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, p.path);
    out += ":{\"count\":" + std::to_string(p.count) + ",\"total_ms\":";
    append_fixed(out, p.total_ms());
    out += ",\"max_ms\":";
    append_fixed(out, p.max_ms());
    out += "}";
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& c : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, c.name);
    out += ":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, g.name);
    out += ":{\"last\":";
    append_fixed(out, g.last);
    out += ",\"max\":";
    append_fixed(out, g.max);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace mpirical::obs
