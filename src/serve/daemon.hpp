// Daemon entry points: load a world snapshot once, serve it until told to
// stop.
//
// Shared by the standalone binary (tools/mpirical_served.cpp), the serve
// bench's self-exec'd daemon role, and the fault/differential tests, so
// every consumer boots the daemon the exact same way.
#pragma once

#include <string>

#include "serve/server.hpp"

namespace mpirical::serve {

struct DaemonOptions {
  /// World snapshot to mmap (model weights stay zero-copy views into the
  /// mapping for the daemon's lifetime). Eval- and dataset-shape snapshots
  /// both work; only the model is served.
  std::string snapshot_path;
  /// Exactly one of socket_path (Unix-domain) / tcp_addr ("host:port",
  /// port 0 = ephemeral) must be set.
  std::string socket_path;
  std::string tcp_addr;
  std::size_t max_wave = 0;   // 0 = shard::decode_wave_size()
  bool barrier_mode = false;  // per-wave-barrier baseline (bench control)
};

/// Blocks serving until a client sends kServeShutdown; returns the final
/// serving stats.
ServerStats run_daemon(const DaemonOptions& options);

/// Self-exec hook for binaries that re-exec themselves as the daemon (the
/// serve bench and tests): when MPIRICAL_SERVE_ROLE=daemon, reads
/// MPIRICAL_SERVE_SNAPSHOT / MPIRICAL_SERVE_SOCKET (or MPIRICAL_SERVE_TCP =
/// host:port) / MPIRICAL_SERVE_WAVE / MPIRICAL_SERVE_BARRIER, runs the
/// daemon, and _exits -- it never returns. In any other role it returns
/// immediately. Call first in main().
void maybe_run_serve_daemon();

}  // namespace mpirical::serve
