#include "serve/client.hpp"

#include "support/check.hpp"

namespace mpirical::serve {

using shard::FrameType;

Client::Client(const std::string& socket_path, int connect_timeout_ms)
    : transport_(shard::unix_connect(socket_path, connect_timeout_ms)) {}

Client::Client(const std::string& host, std::uint16_t port,
               int connect_timeout_ms)
    : transport_(shard::tcp_connect(host, port, connect_timeout_ms)) {}

std::uint64_t Client::send(const std::string& input_code,
                           const std::string& input_xsbt, int beam_width) {
  shard::TranslateWireRequest req;
  req.id = next_id_++;
  req.input_code = input_code;
  req.input_xsbt = input_xsbt;
  req.beam_width = beam_width < 1 ? 1 : beam_width;
  const bool sent = transport_.send(shard::encode_frame(
      FrameType::kTranslateRequest, shard::encode_translate_request(req)));
  MR_CHECK(sent, "serve daemon is gone (send failed)");
  return req.id;
}

std::optional<shard::TranslateWireResult> Client::recv() {
  for (;;) {
    if (auto frame = parser_.next()) {
      MR_CHECK(frame->type == FrameType::kTranslateResult,
               "unexpected frame type from serve daemon");
      return shard::decode_translate_result(frame->payload);
    }
    const std::string bytes = transport_.recv_some();
    if (bytes.empty()) {
      MR_CHECK(!parser_.has_partial(),
               "serve stream truncated mid-frame (daemon died?)");
      return std::nullopt;
    }
    parser_.feed(bytes.data(), bytes.size());
  }
}

void Client::finish() { transport_.close(); }

void Client::send_shutdown() {
  transport_.send(shard::encode_frame(FrameType::kServeShutdown, ""));
}

std::vector<std::string> Client::translate_batch(
    const std::vector<core::MpiRical::TranslateRequest>& inputs,
    int beam_width) {
  std::vector<std::uint64_t> ids(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ids[i] = send(inputs[i].input_code, inputs[i].input_xsbt, beam_width);
  }
  finish();
  std::vector<std::string> out(inputs.size());
  std::vector<bool> got(inputs.size(), false);
  std::size_t remaining = inputs.size();
  while (remaining > 0) {
    auto res = recv();
    MR_CHECK(res.has_value(), "serve daemon closed before delivering all "
                              "results");
    // Results arrive in completion order; ids restore input order.
    std::size_t slot = inputs.size();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == res->id) {
        slot = i;
        break;
      }
    }
    MR_CHECK(slot < inputs.size() && !got[slot],
             "serve daemon returned an unknown or duplicate result id");
    got[slot] = true;
    out[slot] = std::move(res->output_code);
    --remaining;
  }
  return out;
}

}  // namespace mpirical::serve
