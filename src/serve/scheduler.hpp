// Admission control between the serve daemon's connection readers and its
// single decode-engine thread.
//
// Reader threads enqueue decoded TranslateWireRequests; the engine thread
// calls admit() once per wave step to top its decode stream back up. The
// CONTINUOUS policy (the tentpole): while lanes are mid-decode, admit()
// never blocks -- it hands over up to (max_wave - live) queued requests so
// new arrivals join the running wave at the next step boundary. The BARRIER
// policy is the control the serve bench compares against: a new wave is
// admitted only once the previous one fully drains, i.e. the per-wave
// barrier translate_batch imposes.
//
// Shutdown drains: after shutdown(), new enqueues are refused but
// everything already queued or decoding runs to completion; drained()
// tells the engine when it may exit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "shard/protocol.hpp"

namespace mpirical::serve {

/// One queued translate request, tagged with the connection that owes the
/// result. `conn` is an opaque refcount the server threads share (the
/// engine casts it back to its Connection type); the scheduler only keys
/// cancellation on `conn_id`.
struct ServeJob {
  std::uint64_t conn_id = 0;
  std::shared_ptr<void> conn;
  shard::TranslateWireRequest request;
  /// Stamped by Scheduler::enqueue; the engine turns it into the
  /// serve/queue_wait phase when it admits the job.
  std::chrono::steady_clock::time_point enqueued{};
};

/// Thread-safe. One engine thread calls admit()/drained(); any number of
/// reader threads call enqueue()/cancel_connection()/shutdown().
class Scheduler {
 public:
  /// `max_wave` caps concurrently-decoding requests (KV-cache memory bound,
  /// like translate_batch's wave size). `barrier_mode` selects the per-wave
  /// barrier baseline instead of continuous refill.
  Scheduler(std::size_t max_wave, bool barrier_mode);

  /// Queues a request. Returns false once shutdown began -- the job is NOT
  /// queued and the caller should abort its connection.
  bool enqueue(ServeJob job);

  /// Drops every queued (not yet admitted) job of a dead connection and
  /// returns how many were dropped, so the caller can settle its in-flight
  /// accounting. Jobs already decoding finish; the engine discards their
  /// results.
  std::size_t cancel_connection(std::uint64_t conn_id);

  /// Refuses new enqueues from now on; queued work still runs. Wakes a
  /// blocked admit().
  void shutdown();

  /// Engine thread: hands over the next admissible jobs given `live` lanes
  /// currently decoding. Blocks only when the engine is idle (live == 0)
  /// and nothing is queued; with lanes live it returns immediately (empty
  /// in barrier mode, up to max_wave - live jobs in continuous mode) so the
  /// engine keeps stepping.
  std::vector<ServeJob> admit(std::size_t live);

  /// True when the engine may exit: shutdown requested, queue empty, and
  /// nothing live.
  bool drained(std::size_t live) const;

  bool shutting_down() const;

 private:
  const std::size_t max_wave_;
  const bool barrier_mode_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ServeJob> queue_;
  bool shutdown_ = false;
};

}  // namespace mpirical::serve
