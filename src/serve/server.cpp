#include "serve/server.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "core/stream.hpp"
#include "obs/recorder.hpp"
#include "serve/scheduler.hpp"
#include "shard/partition.hpp"
#include "shard/transport.hpp"
#include "support/check.hpp"
#include "support/process.hpp"

namespace mpirical::serve {

using shard::FrameType;

/// One accepted client. The reader thread and the engine thread share it by
/// shared_ptr (jobs carry the refcount), so it outlives whichever side
/// finishes first.
struct Server::Connection {
  std::uint64_t id = 0;
  shard::SocketTransport transport;
  std::atomic<bool> dead{false};          // aborted: results are discarded
  std::atomic<bool> eof{false};           // client half-closed cleanly
  std::atomic<std::size_t> inflight{0};   // queued + decoding requests

  Connection(std::uint64_t conn_id, int fd) : id(conn_id), transport(fd) {}

  /// Half-close handshake: once the client has said "no more requests" and
  /// every owed result went out, close our send side so the client's recv
  /// drains to EOF. Reader and engine both call this after updating their
  /// half of the condition, so whichever observes the final state closes
  /// (SocketTransport::close is idempotent).
  void maybe_finish() {
    if (eof.load(std::memory_order_acquire) &&
        inflight.load(std::memory_order_acquire) == 0) {
      transport.close();
    }
  }
};

Server::Server(const core::MpiRical& model, ServerOptions options)
    : model_(&model),
      options_(std::move(options)),
      scheduler_(options_.max_wave != 0 ? options_.max_wave
                                        : shard::decode_wave_size(),
                 options_.barrier_mode) {
  MR_CHECK(options_.socket_path.empty() != options_.tcp_addr.empty(),
           "serve needs exactly one of socket_path / tcp_addr");
}

Server::~Server() = default;

ServerStats Server::stats() const {
  ServerStats s;
  s.served = served_.load();
  s.joined_running_wave = joined_running_wave_.load();
  s.aborted_connections = aborted_connections_.load();
  s.accepted_connections = accepted_connections_.load();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& weak : conns_) {
      if (!weak.expired()) ++s.tracked_connections;
    }
  }
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    // Readers that flagged themselves finished but have not been joined yet
    // count as reaped: they are done with client I/O, just awaiting the
    // accept loop's next turn.
    s.live_readers = readers_.size() > finished_readers_.size()
                         ? readers_.size() - finished_readers_.size()
                         : 0;
  }
  if (obs::Recorder::global().enabled()) {
    const obs::StatsSnapshot snap = obs::Recorder::global().snapshot();
    for (const auto& p : snap.phases) {
      if (p.path.rfind("serve/", 0) == 0) s.phases.push_back(p);
    }
  }
  return s;
}

void Server::reap_finished_readers() {
  std::vector<std::uint64_t> finished;
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    finished.swap(finished_readers_);
  }
  for (const std::uint64_t id : finished) {
    std::thread reader;
    {
      std::lock_guard<std::mutex> lock(readers_mu_);
      const auto it = readers_.find(id);
      if (it == readers_.end()) continue;
      reader = std::move(it->second);
      readers_.erase(it);
    }
    // The thread flagged itself finished as its last act, so this join
    // returns promptly -- it never waits on client I/O.
    if (reader.joinable()) reader.join();
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const std::weak_ptr<Connection>& weak) {
                                return weak.expired();
                              }),
               conns_.end());
}

void Server::request_shutdown() {
  scheduler_.shutdown();
  // Unblock the accept loop; ::shutdown (not close) so the fd stays valid
  // for run()'s final close whatever thread we race with.
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  shard::FrameParser parser;
  bool abort = false;
  for (;;) {
    const std::string bytes = conn->transport.recv_some();
    if (bytes.empty()) {
      // EOF at a frame boundary is the clean "no more requests" half-close;
      // EOF mid-frame is a client dying mid-request.
      abort = parser.has_partial();
      break;
    }
    bool stop = false;
    try {
      parser.feed(bytes.data(), bytes.size());
      while (auto frame = parser.next()) {
        if (frame->type == FrameType::kServeShutdown) {
          request_shutdown();
          continue;  // keep reading; the client half-closes when done
        }
        MR_CHECK(frame->type == FrameType::kTranslateRequest,
                 "unexpected frame type on serve connection");
        ServeJob job;
        job.conn_id = conn->id;
        job.conn = conn;
        job.request = shard::decode_translate_request(frame->payload);
        conn->inflight.fetch_add(1, std::memory_order_acq_rel);
        if (!scheduler_.enqueue(std::move(job))) {
          // Shutting down: this request will never run, so cut the
          // connection rather than leave the client waiting forever.
          conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
          abort = true;
          stop = true;
          break;
        }
      }
    } catch (const Error&) {
      // Garbage frame (bad magic/type/length) or malformed payload: the
      // stream is unrecoverable -- framing offers no resync point.
      abort = true;
      stop = true;
    }
    if (stop) break;
  }
  if (abort) {
    conn->dead.store(true, std::memory_order_release);
    const std::size_t cancelled = scheduler_.cancel_connection(conn->id);
    conn->inflight.fetch_sub(cancelled, std::memory_order_acq_rel);
    conn->transport.close();
    aborted_connections_.fetch_add(1);
  } else {
    conn->eof.store(true, std::memory_order_release);
    conn->maybe_finish();
  }
  // Last act: flag this reader reapable so the accept loop can join it (a
  // thread cannot join itself) instead of accumulating one exited thread
  // per connection ever served.
  std::lock_guard<std::mutex> lock(readers_mu_);
  finished_readers_.push_back(conn->id);
}

void Server::engine_loop() {
  core::TranslateStream stream(*model_);
  struct Ticket {
    std::shared_ptr<Connection> conn;
    std::uint64_t wire_id = 0;
    bool joined = false;
  };
  std::unordered_map<core::TranslateStream::TicketId, Ticket> tickets;
  obs::Recorder& rec = obs::Recorder::global();

  for (;;) {
    const std::size_t live = stream.live();
    if (scheduler_.drained(live)) break;

    // Top the wave back up: new requests join at this step boundary while
    // older lanes keep their positions (continuous batching). In barrier
    // mode this returns nothing until the wave drains.
    std::vector<ServeJob> jobs = scheduler_.admit(live);
    if (!jobs.empty()) {
      const bool joined = live > 0;
      // Per-request queue residency, and separately the subset that joined
      // a wave already mid-decode (the continuous-batching win).
      if (rec.enabled()) {
        const auto now = std::chrono::steady_clock::now();
        for (const auto& job : jobs) {
          const std::uint64_t wait_ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  now - job.enqueued)
                  .count());
          rec.record_phase("serve/queue_wait", wait_ns);
          if (joined) rec.record_phase("serve/wave_join", wait_ns);
        }
      }
      std::vector<core::MpiRical::TranslateRequest> inputs(jobs.size());
      std::vector<int> widths(jobs.size());
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        inputs[i].input_code = std::move(jobs[i].request.input_code);
        inputs[i].input_xsbt = std::move(jobs[i].request.input_xsbt);
        widths[i] = jobs[i].request.beam_width;
      }
      std::vector<core::TranslateStream::TicketId> ids;
      {
        obs::ScopedPhase encode_phase("serve/encode");
        ids = stream.submit(inputs, widths);
      }
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        Ticket ticket;
        ticket.conn = std::static_pointer_cast<Connection>(jobs[i].conn);
        ticket.wire_id = jobs[i].request.id;
        ticket.joined = joined;
        tickets.emplace(ids[i], std::move(ticket));
      }
      if (joined) joined_running_wave_.fetch_add(jobs.size());
    }
    if (stream.idle()) continue;  // woken empty (shutdown); recheck drained
    rec.gauge_set("serve/wave_occupancy",
                  static_cast<double>(stream.live()));

    std::vector<core::TranslateStream::Finished> finished;
    {
      obs::ScopedPhase step_phase("serve/decode_steps");
      finished = stream.step();
    }
    for (auto& fin : finished) {
      const auto it = tickets.find(fin.id);
      MR_ASSERT(it != tickets.end());
      Ticket& ticket = it->second;
      if (!ticket.conn->dead.load(std::memory_order_acquire)) {
        shard::TranslateWireResult res;
        res.id = ticket.wire_id;
        res.output_code = std::move(fin.output_code);
        res.joined_running_wave = ticket.joined ? 1 : 0;
        // A send failure means the client vanished mid-decode; nothing to
        // do -- its reader will abort the connection when it sees EOF.
        obs::ScopedPhase write_phase("serve/result_write");
        ticket.conn->transport.send(shard::encode_frame(
            FrameType::kTranslateResult, shard::encode_translate_result(res)));
        served_.fetch_add(1);
      }
      ticket.conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
      ticket.conn->maybe_finish();
      tickets.erase(it);
    }
  }
}

void Server::run() {
  support::ignore_sigpipe();
  const bool tcp = !options_.tcp_addr.empty();
  if (tcp) {
    const auto [host, port] = shard::split_host_port(options_.tcp_addr);
    std::uint16_t bound = 0;
    const int fd = shard::tcp_listen(host, port, /*backlog=*/64, &bound);
    tcp_port_.store(bound, std::memory_order_release);
    listen_fd_.store(fd, std::memory_order_release);
  } else {
    listen_fd_.store(shard::unix_listen(options_.socket_path, /*backlog=*/64),
                     std::memory_order_release);
  }
  std::thread engine([this] { engine_loop(); });
  std::uint64_t next_conn = 1;
  for (;;) {
    // Both accept helpers retry transient failures internally (EMFILE and
    // friends back off until descriptors free up) and return -1 only for a
    // genuinely closed/shut-down listener -- a daemon that hit its fd limit
    // under load resumes accepting instead of silently dying here.
    const int fd = tcp ? shard::tcp_accept(listen_fd_.load())
                       : shard::unix_accept(listen_fd_.load());
    if (fd < 0) break;  // listener shut down
    reap_finished_readers();
    if (scheduler_.shutting_down()) {
      ::close(fd);
      continue;  // raced request_shutdown; accept() fails next iteration
    }
    accepted_connections_.fetch_add(1);
    auto conn = std::make_shared<Connection>(next_conn++, fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    std::thread reader([this, conn] { reader_loop(conn); });
    std::lock_guard<std::mutex> lock(readers_mu_);
    readers_.emplace(conn->id, std::move(reader));
  }
  // Drain: the engine exits only once every queued/decoding request has
  // delivered. THEN release any reader still blocked on a client that never
  // closes its end.
  engine.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& weak : conns_) {
      if (auto conn = weak.lock()) {
        conn->transport.close();
        conn->transport.shutdown_recv();
      }
    }
  }
  for (;;) {
    std::thread reader;
    {
      std::lock_guard<std::mutex> lock(readers_mu_);
      if (readers_.empty()) break;
      auto it = readers_.begin();
      reader = std::move(it->second);
      readers_.erase(it);
    }
    if (reader.joinable()) reader.join();
  }
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    finished_readers_.clear();
  }
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
  if (!tcp) ::unlink(options_.socket_path.c_str());
}

}  // namespace mpirical::serve
