// The persistent serving daemon's core loop.
//
// One Server owns a listening Unix-domain socket and three kinds of
// threads:
//   * the ACCEPT loop (the caller's thread inside run()), which turns each
//     connection into a SocketTransport + reader thread;
//   * one READER per connection, which parses length-prefixed frames
//     (shard::FrameParser -- the same framing the eval shards speak) into
//     scheduler jobs and classifies stream endings: clean half-close (EOF
//     at a frame boundary) lets in-flight work finish, while garbage frames
//     or a mid-frame cut abort the connection and cancel its queued work;
//   * the ENGINE thread, the sole owner of the TranslateStream and the sole
//     writer of result frames, which steps the decode wave continuously and
//     refills it from the scheduler at step boundaries.
//
// Because the decode engine is rowstable, every response is token-identical
// to what MpiRical::translate_batch would produce for the same input,
// regardless of arrival order or what else shared the waves
// (tests/test_serve_equivalence.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/model.hpp"
#include "obs/recorder.hpp"
#include "serve/scheduler.hpp"

namespace mpirical::serve {

struct ServerOptions {
  /// Unix-domain listening address. Exactly one of socket_path / tcp_addr
  /// must be set.
  std::string socket_path;
  /// TCP listening address as "host:port" (port 0 = pick an ephemeral port;
  /// read it back with Server::bound_tcp_port). Same framing, same protocol
  /// -- remote clients just dial instead of opening a socket file.
  std::string tcp_addr;
  /// Cap on concurrently-decoding requests; 0 = shard::decode_wave_size()
  /// (the same MPIRICAL_DECODE_WAVE knob translate_batch obeys).
  std::size_t max_wave = 0;
  /// Per-wave-barrier admission instead of continuous refill -- the
  /// baseline bench_serve compares the tentpole against.
  bool barrier_mode = false;
};

struct ServerStats {
  std::uint64_t served = 0;                // results delivered
  std::uint64_t joined_running_wave = 0;   // admitted while lanes were live
  std::uint64_t aborted_connections = 0;   // garbage frames / mid-frame cuts
  std::uint64_t accepted_connections = 0;  // lifetime accepts
  // Steady-state gauges (the churn regression): finished readers are
  // joined and dead connections pruned as the accept loop turns, so both
  // stay bounded by the number of LIVE clients instead of growing with
  // every connection ever served.
  std::uint64_t tracked_connections = 0;   // conns_ entries still alive
  std::uint64_t live_readers = 0;          // reader threads not yet reaped
  // Engine phase timings ("serve/..." from the global recorder, present
  // only while the recorder is enabled -- MPIRICAL_STATS set): per-request
  // queue_wait / wave_join and per-step encode / decode_steps /
  // result_write, plus the wave_occupancy gauge via the stats dump.
  std::vector<obs::PhaseStat> phases;
};

class Server {
 public:
  /// The model must outlive the server.
  Server(const core::MpiRical& model, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and serves until a client sends kServeShutdown (or
  /// request_shutdown() is called); every request already queued or
  /// decoding is drained before returning. Blocks the calling thread.
  void run();

  /// Stops admission (new connections and new requests), shuts the
  /// listener down, and lets run() drain and return. Safe from any thread.
  void request_shutdown();

  /// The actual TCP port once run() has bound a tcp_addr listener (the
  /// port-0 ephemeral case); 0 before bind or for Unix-domain servers.
  std::uint16_t bound_tcp_port() const {
    return tcp_port_.load(std::memory_order_acquire);
  }

  ServerStats stats() const;

 private:
  struct Connection;
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void engine_loop();
  /// Joins reader threads whose connections have ended and prunes expired
  /// connection entries -- called as the accept loop turns so a long-lived
  /// daemon's bookkeeping tracks LIVE clients, not lifetime clients.
  void reap_finished_readers();

  const core::MpiRical* model_;
  ServerOptions options_;
  Scheduler scheduler_;
  std::atomic<int> listen_fd_{-1};
  std::atomic<std::uint16_t> tcp_port_{0};
  mutable std::mutex conns_mu_;
  std::vector<std::weak_ptr<Connection>> conns_;
  mutable std::mutex readers_mu_;
  std::unordered_map<std::uint64_t, std::thread> readers_;
  std::vector<std::uint64_t> finished_readers_;
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> joined_running_wave_{0};
  std::atomic<std::uint64_t> aborted_connections_{0};
  std::atomic<std::uint64_t> accepted_connections_{0};
};

}  // namespace mpirical::serve
