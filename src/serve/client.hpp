// Client side of the serve protocol: pipelined requests over one
// Unix-domain connection.
//
// send() never waits for results, so a client can keep the daemon's decode
// wave full; results come back in COMPLETION order (continuous batching
// finishes short programs early) carrying the client-chosen request id.
// translate_batch() is the order-restoring convenience wrapper the tests
// and bench build on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "shard/protocol.hpp"
#include "shard/transport.hpp"

namespace mpirical::serve {

/// Not thread-safe; use one Client per thread (connections are cheap).
class Client {
 public:
  /// Connects to the daemon at `socket_path`, waiting up to
  /// `connect_timeout_ms` for it to finish booting (snapshot load).
  explicit Client(const std::string& socket_path,
                  int connect_timeout_ms = 30000);

  /// Connects to a TCP daemon at host:port (same retry-while-booting
  /// semantics; TCP_NODELAY is set -- the protocol is request/response on
  /// small frames).
  Client(const std::string& host, std::uint16_t port,
         int connect_timeout_ms = 30000);

  /// Pipelines one request; returns the id its result will carry.
  std::uint64_t send(const std::string& input_code,
                     const std::string& input_xsbt, int beam_width = 1);

  /// Next result in completion order. nullopt once the daemon has closed
  /// the stream (all results after a finish() were delivered, or the daemon
  /// shut down / aborted the connection). Throws Error on a corrupt or
  /// mid-frame-truncated stream.
  std::optional<shard::TranslateWireResult> recv();

  /// Half-close: no more requests. The daemon finishes this connection's
  /// in-flight work, delivers the results, then EOF follows.
  void finish();

  /// Asks the daemon to stop admitting, drain every live request, and exit.
  void send_shutdown();

  /// Convenience: pipelines all inputs, half-closes, and drains the
  /// results back into INPUT order. Token-identical to
  /// MpiRical::translate_batch on the served model for any arrival order.
  std::vector<std::string> translate_batch(
      const std::vector<core::MpiRical::TranslateRequest>& inputs,
      int beam_width = 1);

 private:
  shard::SocketTransport transport_;
  shard::FrameParser parser_;
  std::uint64_t next_id_ = 1;
};

}  // namespace mpirical::serve
