#include "serve/scheduler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mpirical::serve {

Scheduler::Scheduler(std::size_t max_wave, bool barrier_mode)
    : max_wave_(max_wave), barrier_mode_(barrier_mode) {
  MR_CHECK(max_wave >= 1, "serve wave size must be >= 1");
}

bool Scheduler::enqueue(ServeJob job) {
  job.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(job));
  }
  cv_.notify_all();
  return true;
}

std::size_t Scheduler::cancel_connection(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t before = queue_.size();
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [conn_id](const ServeJob& job) {
                                return job.conn_id == conn_id;
                              }),
               queue_.end());
  return before - queue_.size();
}

void Scheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool Scheduler::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

std::vector<ServeJob> Scheduler::admit(std::size_t live) {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<ServeJob> out;
  if (live == 0) {
    // Idle engine: sleep until work or shutdown (spinning here would burn a
    // core between requests).
    cv_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
  } else if (barrier_mode_ || live >= max_wave_) {
    return out;  // barrier: wave must drain first; continuous: wave is full
  }
  const std::size_t room = max_wave_ - std::min(live, max_wave_);
  while (out.size() < room && !queue_.empty()) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

bool Scheduler::drained(std::size_t live) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_ && queue_.empty() && live == 0;
}

}  // namespace mpirical::serve
