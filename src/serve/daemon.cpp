#include "serve/daemon.hpp"

#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include "core/world_snapshot.hpp"
#include "nn/packed_model.hpp"
#include "obs/recorder.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/process.hpp"

namespace mpirical::serve {

ServerStats run_daemon(const DaemonOptions& options) {
  support::ignore_sigpipe();
  MR_CHECK(!options.snapshot_path.empty(), "daemon needs a snapshot path");
  core::World world = core::load_world_snapshot(options.snapshot_path);
  // Pack every weight panel right after the snapshot mmap, before the socket
  // goes live: steady-state serve waves then touch zero pack work, and the
  // first request doesn't pay the one-time cost either.
  nn::PackedModel::warm_cache(world.model.transformer());
  ServerOptions server_options;
  server_options.socket_path = options.socket_path;
  server_options.tcp_addr = options.tcp_addr;
  server_options.max_wave = options.max_wave;
  server_options.barrier_mode = options.barrier_mode;
  Server server(world.model, server_options);
  server.run();
  return server.stats();
}

void maybe_run_serve_daemon() {
  const char* role = std::getenv("MPIRICAL_SERVE_ROLE");
  if (role == nullptr || std::string(role) != "daemon") return;
  const char* snapshot = std::getenv("MPIRICAL_SERVE_SNAPSHOT");
  const char* socket = std::getenv("MPIRICAL_SERVE_SOCKET");
  const char* tcp = std::getenv("MPIRICAL_SERVE_TCP");
  int code = 0;
  try {
    MR_CHECK(snapshot != nullptr && (socket != nullptr || tcp != nullptr),
             "daemon role needs MPIRICAL_SERVE_SNAPSHOT and one of "
             "MPIRICAL_SERVE_SOCKET / MPIRICAL_SERVE_TCP");
    DaemonOptions options;
    options.snapshot_path = snapshot;
    if (socket != nullptr) options.socket_path = socket;
    if (tcp != nullptr) options.tcp_addr = tcp;
    options.max_wave = static_cast<std::size_t>(
        support::env_long("MPIRICAL_SERVE_WAVE", 0, 0, 4096));
    options.barrier_mode =
        support::env_long("MPIRICAL_SERVE_BARRIER", 0, 0, 1) != 0;
    const ServerStats stats = run_daemon(options);
    std::fprintf(stderr,
                 "[mpirical_served] served=%llu joined_running_wave=%llu "
                 "aborted_connections=%llu\n",
                 static_cast<unsigned long long>(stats.served),
                 static_cast<unsigned long long>(stats.joined_running_wave),
                 static_cast<unsigned long long>(stats.aborted_connections));
    for (const auto& p : stats.phases) {
      std::fprintf(stderr,
                   "[mpirical_served] phase %s count=%llu total_ms=%.3f "
                   "max_ms=%.3f\n",
                   p.path.c_str(), static_cast<unsigned long long>(p.count),
                   p.total_ms(), p.max_ms());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[mpirical_served] fatal: %s\n", e.what());
    code = 1;
  }
  // _exit, not exit: the parent binary's atexit hooks (bench harness state,
  // gtest registries) belong to the client role, not to this forked daemon
  // -- which also means the recorder's atexit dump will not fire, so flush
  // it explicitly while the process still can.
  obs::Recorder::global().dump("serve_daemon");
  std::fflush(nullptr);
  ::_exit(code);
}

}  // namespace mpirical::serve
