#include "snapshot/snapshot.hpp"

#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/check.hpp"

namespace mpirical::snapshot {

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  return fnv1a64_accum(kFnv1a64Init, data, n);
}

std::uint64_t fnv1a64_accum(std::uint64_t state, const void* data,
                            std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= 0x100000001B3ULL;
  }
  return state;
}

bool host_is_little_endian() {
  const std::uint32_t probe = 1;
  unsigned char byte0 = 0;
  std::memcpy(&byte0, &probe, 1);
  return byte0 == 1;
}

bool snapshot_enabled() {
  const char* env = std::getenv("MPIRICAL_SNAPSHOT");
  return env == nullptr || std::string_view(env) != "0";
}

bool snapshot_int8_enabled() {
  const char* env = std::getenv("MPIRICAL_SNAPSHOT_INT8");
  return env != nullptr && std::string_view(env) != "0";
}

bool snapshot_verify_lazy() {
  const char* env = std::getenv("MPIRICAL_SNAPSHOT_VERIFY");
  return env != nullptr && std::string_view(env) == "lazy";
}

bool has_snapshot_magic(std::string_view bytes) {
  if (bytes.size() < 4) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[static_cast<size_t>(i)]))
             << (8 * i);
  }
  return magic == kMagic;
}

// ---- ByteWriter / ByteReader ------------------------------------------------

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void ByteWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::bytes(std::string_view s) {
  MR_CHECK(s.size() <= (std::uint64_t{1} << 32) - 1,
           "snapshot string field too large");
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void ByteWriter::raw(const void* data, std::size_t n) {
  out_.append(static_cast<const char*>(data), n);
}

void ByteReader::need(std::size_t n) const {
  MR_CHECK(pos_ + n <= data_.size(), "truncated snapshot payload");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string_view ByteReader::bytes() {
  const std::uint32_t n = u32();
  need(n);
  std::string_view s = data_.substr(pos_, n);
  pos_ += n;
  return s;
}

void ByteReader::done() const {
  MR_CHECK(pos_ == data_.size(), "trailing bytes in snapshot payload");
}

// ---- Builder ----------------------------------------------------------------

namespace {

std::size_t align_up(std::size_t n) {
  return (n + kAlign - 1) & ~(kAlign - 1);
}

void put_u32_at(std::string& buf, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void put_u64_at(std::string& buf, std::size_t pos, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

std::uint32_t get_u32_at(std::string_view buf, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64_at(std::string_view buf, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::size_t Builder::add(SectionKind kind, std::string_view name,
                         std::string payload) {
  MR_CHECK(name.size() <= kSectionNameMax,
           "snapshot section name too long: " + std::string(name));
  Pending p;
  p.kind = kind;
  p.name = std::string(name);
  p.payload = std::move(payload);
  sections_.push_back(std::move(p));
  return sections_.size() - 1;
}

std::string Builder::finish() const {
  MR_CHECK(host_is_little_endian(),
           "snapshot format requires a little-endian host");
  const std::size_t table_size = sections_.size() * kSectionEntrySize;
  std::size_t offset = align_up(kHeaderSize + table_size);
  std::vector<std::size_t> offsets(sections_.size());
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    offsets[i] = offset;
    offset = align_up(offset + sections_[i].payload.size());
  }
  const std::size_t file_size = offset;

  std::string out(file_size, '\0');
  // Section table + payloads first, so the table checksum can be stamped
  // into the header afterwards.
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Pending& s = sections_[i];
    const std::size_t entry = kHeaderSize + i * kSectionEntrySize;
    put_u32_at(out, entry + 0, static_cast<std::uint32_t>(s.kind));
    put_u32_at(out, entry + 4, 0);  // reserved
    put_u64_at(out, entry + 8, offsets[i]);
    put_u64_at(out, entry + 16, s.payload.size());
    put_u64_at(out, entry + 24, fnv1a64(s.payload.data(), s.payload.size()));
    std::memcpy(&out[entry + 32], s.name.data(), s.name.size());
    std::memcpy(&out[offsets[i]], s.payload.data(), s.payload.size());
  }

  put_u32_at(out, 0, kMagic);
  put_u32_at(out, 4, kVersion);
  put_u64_at(out, 8, file_size);
  put_u32_at(out, 16, static_cast<std::uint32_t>(sections_.size()));
  put_u32_at(out, 20, 0);  // flags
  put_u64_at(out, 24, fnv1a64(out.data() + kHeaderSize, table_size));
  return out;
}

// ---- Snapshot reader --------------------------------------------------------

Snapshot::~Snapshot() {
  if (mapped_ && map_addr_ != nullptr) {
    ::munmap(map_addr_, size_);
  }
}

void Snapshot::verify_section(std::size_t i) const {
  if (!lazy_verify_) return;
  auto& flag = verified_[i];
  if (flag.load(std::memory_order_acquire) != 0) return;
  const Section& s = sections_[i];
  MR_CHECK(checksums_[i] == fnv1a64(s.payload.data(), s.payload.size()),
           "snapshot section '" + s.name + "' checksum mismatch");
  flag.store(1, std::memory_order_release);
}

const Section& Snapshot::section(std::size_t i) const {
  MR_CHECK(i < sections_.size(), "snapshot section index out of range");
  verify_section(i);
  return sections_[i];
}

const Section* Snapshot::find(SectionKind kind, std::string_view name) const {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    if (s.kind == kind && (name.empty() || s.name == name)) {
      verify_section(i);
      return &s;
    }
  }
  return nullptr;
}

const Section& Snapshot::require(SectionKind kind,
                                 std::string_view name) const {
  const Section* s = find(kind, name);
  MR_CHECK(s != nullptr, "snapshot missing required section (kind " +
                             std::to_string(static_cast<unsigned>(kind)) +
                             ", name '" + std::string(name) + "')");
  return *s;
}

void Snapshot::parse_and_validate() {
  MR_CHECK(host_is_little_endian(),
           "snapshot format requires a little-endian host");
  lazy_verify_ = snapshot_verify_lazy();
  const std::string_view buf(data_, size_);
  MR_CHECK(size_ >= kHeaderSize, "snapshot truncated: no header");
  MR_CHECK(get_u32_at(buf, 0) == kMagic, "bad snapshot magic");
  const std::uint32_t version = get_u32_at(buf, 4);
  MR_CHECK(version == kVersion,
           "unsupported snapshot version " + std::to_string(version) +
               " (expected " + std::to_string(kVersion) + ")");
  const std::uint64_t file_size = get_u64_at(buf, 8);
  MR_CHECK(file_size == size_,
           "snapshot size mismatch: header says " + std::to_string(file_size) +
               " bytes, file has " + std::to_string(size_));
  const std::uint32_t count = get_u32_at(buf, 16);
  // An absurd section count cannot request more table bytes than the file
  // holds (also caps the parse loop before any allocation).
  MR_CHECK(count <= (size_ - kHeaderSize) / kSectionEntrySize,
           "snapshot section table exceeds file size");
  const std::size_t table_size = count * kSectionEntrySize;
  MR_CHECK(get_u64_at(buf, 24) ==
               fnv1a64(data_ + kHeaderSize, table_size),
           "snapshot section table checksum mismatch");

  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t entry = kHeaderSize + i * kSectionEntrySize;
    const std::uint32_t kind = get_u32_at(buf, entry + 0);
    MR_CHECK(kind >= static_cast<std::uint32_t>(SectionKind::kModelConfig) &&
                 kind <= static_cast<std::uint32_t>(SectionKind::kTensorDataI8),
             "snapshot section " + std::to_string(i) + " has unknown kind " +
                 std::to_string(kind));
    const std::uint64_t off = get_u64_at(buf, entry + 8);
    const std::uint64_t len = get_u64_at(buf, entry + 16);
    MR_CHECK(off % kAlign == 0,
             "snapshot section " + std::to_string(i) + " is misaligned");
    MR_CHECK(off >= kHeaderSize + table_size && off <= size_ &&
                 len <= size_ - off,
             "snapshot section " + std::to_string(i) +
                 " points past end of file");
    const char* name_begin = data_ + entry + 32;
    const std::size_t name_len =
        ::strnlen(name_begin, kSectionNameMax + 1);
    MR_CHECK(name_len <= kSectionNameMax,
             "snapshot section name not NUL-terminated");
    Section s;
    s.kind = static_cast<SectionKind>(kind);
    s.name.assign(name_begin, name_len);
    s.payload = std::string_view(data_ + off, len);
    const std::uint64_t expected = get_u64_at(buf, entry + 24);
    if (lazy_verify_) {
      checksums_.push_back(expected);
    } else {
      MR_CHECK(expected == fnv1a64(s.payload.data(), s.payload.size()),
               "snapshot section '" + s.name + "' checksum mismatch");
    }
    sections_.push_back(std::move(s));
  }
  if (lazy_verify_ && count > 0) {
    verified_ = std::make_unique<std::atomic<std::uint8_t>[]>(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      verified_[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::shared_ptr<const Snapshot> Snapshot::map_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  MR_CHECK(fd >= 0, "cannot open snapshot: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    MR_CHECK(false, "cannot stat snapshot: " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderSize) {
    ::close(fd);
    MR_CHECK(false, "snapshot truncated: no header (" + path + ")");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file content alive
  MR_CHECK(addr != MAP_FAILED, "mmap failed for snapshot: " + path);

  std::shared_ptr<Snapshot> snap(new Snapshot());
  snap->data_ = static_cast<const char*>(addr);
  snap->size_ = size;
  snap->mapped_ = true;
  snap->map_addr_ = addr;
  snap->parse_and_validate();  // dtor munmaps on throw
  return snap;
}

std::shared_ptr<const Snapshot> Snapshot::from_bytes(std::string bytes) {
  std::shared_ptr<Snapshot> snap(new Snapshot());
  snap->owned_ = std::move(bytes);
  snap->data_ = snap->owned_.data();
  snap->size_ = snap->owned_.size();
  snap->parse_and_validate();
  return snap;
}

}  // namespace mpirical::snapshot
