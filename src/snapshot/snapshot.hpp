// Zero-copy binary snapshot container: the on-disk format that ships a
// trained MpiRical (config + vocab + transformer weights) and materialized
// corpus splits to eval workers as ONE mmap-able file, replacing the
// rebuild-the-world-from-env worker startup (PR 4's dominant spawn cost) and
// the text-parsed legacy checkpoint.
//
// Layout (all integers little-endian; the format requires a little-endian
// host because tensor payloads are raw native float32 and loads are
// zero-copy views into the mapping):
//
//   offset 0, 64 bytes     Header
//     u32  magic           "MPSN" (0x4E53504D read as LE u32)
//     u32  version         kVersion (readers reject any other value)
//     u64  file_size       total bytes, including padding
//     u32  section_count
//     u32  flags           reserved, 0
//     u64  table_checksum  FNV-1a 64 over the section-table bytes
//     ...zero padding to 64 bytes
//
//   offset 64              Section table: section_count x 64-byte entries
//     u32  kind            SectionKind
//     u32  reserved        0
//     u64  offset          payload start (64-byte aligned, from file start)
//     u64  size            payload bytes (excluding padding)
//     u64  checksum        FNV-1a 64 over the payload bytes
//     char name[32]        NUL-padded section name
//
//   payloads               each 64-byte aligned, zero-padded between
//
// Every payload starts on a 64-byte boundary so a float tensor section can
// be consumed in place (cache-line aligned) by tensor::Storage views; the
// Snapshot reader validates header sanity, table bounds, and every checksum
// at open, throwing Error with a diagnostic on any corruption -- truncation,
// bit flips, tables pointing past EOF, or version skew never reach the
// consumers (tests/test_snapshot.cpp fuzzes all of these).
//
// The container knows nothing about models: domain encoders (Transformer,
// Vocab, corpus splits, ModelConfig) serialize themselves into sections via
// ByteWriter and parse them back with the bounds-checked ByteReader over
// string_views of the mapping.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mpirical::snapshot {

constexpr std::uint32_t kMagic = 0x4E53504D;  // "MPSN" little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kAlign = 64;
constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kSectionEntrySize = 64;
constexpr std::size_t kSectionNameMax = 31;  // NUL-terminated within 32

enum class SectionKind : std::uint32_t {
  kModelConfig = 1,       // core::ModelConfig fields
  kTransformerConfig = 2, // nn::TransformerConfig fields
  kVocab = 3,             // token table
  kTensorIndex = 4,       // parameter directory (shapes + data sections)
  kTensorData = 5,        // raw float32 payload of one parameter
  kCorpus = 6,            // one materialized example split
  kMeta = 7,              // free-form key/value info (accounting, provenance)
  kTensorDataI8 = 8,      // int8-quantized parameter: u32 rows, u32 cols,
                          // f32 scales[cols], int8 payload[rows*cols]
};

/// FNV-1a 64-bit over a byte range (the per-section checksum).
std::uint64_t fnv1a64(const void* data, std::size_t n);

/// Incremental FNV-1a 64-bit: fold `n` more bytes into a running state.
/// Seed with kFnv1a64Init; folding a byte sequence piecewise yields exactly
/// fnv1a64() over the concatenation, which is what lets a shard worker
/// verify a chunked in-band snapshot stream without rebuffering it.
constexpr std::uint64_t kFnv1a64Init = 0xCBF29CE484222325ULL;
std::uint64_t fnv1a64_accum(std::uint64_t state, const void* data,
                            std::size_t n);

/// True on little-endian hosts (the only ones the format supports).
bool host_is_little_endian();

/// MPIRICAL_SNAPSHOT env gate: unset or any value but "0" = enabled.
/// Disabling reverts save() to the legacy text checkpoint and shard workers
/// to rebuild-from-env (reading existing snapshot files keeps working).
bool snapshot_enabled();

/// MPIRICAL_SNAPSHOT_INT8 env gate (default off): when enabled, model saves
/// emit int8-quantized weight sections (kTensorDataI8) instead of raw f32 for
/// the 2D linear weights. Readers handle both kinds regardless of the gate
/// (dequantize-on-load), so quantized snapshots round-trip through every
/// existing path; the default-off gate is what keeps freshly written
/// snapshots readable by pre-int8 binaries.
bool snapshot_int8_enabled();

/// MPIRICAL_SNAPSHOT_VERIFY env knob: "lazy" defers per-section payload
/// checksum verification from open to a section's first view (header, table
/// checksum, bounds, and alignment are still validated eagerly). Any other
/// value (or unset) keeps the default eager full verification at open.
bool snapshot_verify_lazy();

// ---- payload encoding helpers ----------------------------------------------

/// Little-endian append-only payload encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v);
  void f64(double v);
  /// Length-prefixed byte string.
  void bytes(std::string_view s);
  /// Raw bytes, no length prefix.
  void raw(const void* data, std::size_t n);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader over a payload view. Never copies the
/// underlying bytes; `bytes()` returns a string_view into the payload, so
/// parsing an mmap'd section costs one copy per field the CALLER chooses to
/// own, not two. Throws Error on any out-of-bounds read.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32();
  double f64();
  /// Length-prefixed byte string as a view into the payload.
  std::string_view bytes();
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws unless the payload was consumed exactly.
  void done() const;

 private:
  void need(std::size_t n) const;
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- container --------------------------------------------------------------

/// Assembles a snapshot file image: sections are appended, then finish()
/// lays out header + table + 64-byte-aligned payloads and stamps checksums.
class Builder {
 public:
  /// Appends a section (payload copied). Returns the section index.
  std::size_t add(SectionKind kind, std::string_view name,
                  std::string payload);
  std::string finish() const;

 private:
  struct Pending {
    SectionKind kind;
    std::string name;
    std::string payload;
  };
  std::vector<Pending> sections_;
};

/// One parsed section-table entry plus its payload view into the mapping.
struct Section {
  SectionKind kind = SectionKind::kMeta;
  std::string name;
  std::string_view payload;
};

/// A validated, opened snapshot. Holds the backing bytes (an mmap or an
/// owned buffer); tensors and other zero-copy consumers keep the mapping
/// alive by holding the shared_ptr returned by map_file/from_bytes (or an
/// owner() aliased to it).
class Snapshot {
 public:
  /// mmaps `path` read-only and validates it. Zero-copy: section payloads
  /// are views into the mapping.
  static std::shared_ptr<const Snapshot> map_file(const std::string& path);
  /// Validates an in-memory image (tests, transports). The Snapshot owns
  /// the buffer; payloads view into it.
  static std::shared_ptr<const Snapshot> from_bytes(std::string bytes);

  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  std::size_t section_count() const { return sections_.size(); }
  const Section& section(std::size_t i) const;
  /// First section of `kind` (and `name`, unless empty); null when absent.
  const Section* find(SectionKind kind, std::string_view name = {}) const;
  /// Like find, but throws Error naming the missing section.
  const Section& require(SectionKind kind, std::string_view name = {}) const;

  std::size_t total_bytes() const { return size_; }
  bool is_mapped() const { return mapped_; }

 private:
  Snapshot() = default;
  void parse_and_validate();
  /// In lazy-verify mode, checks section i's payload checksum on first
  /// access (idempotent, race-safe); no-op in eager mode where open already
  /// verified everything.
  void verify_section(std::size_t i) const;

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;       // mmap vs owned buffer
  void* map_addr_ = nullptr;  // munmap handle when mapped_
  std::string owned_;         // backing bytes when !mapped_
  std::vector<Section> sections_;
  bool lazy_verify_ = false;  // latched from MPIRICAL_SNAPSHOT_VERIFY at open
  std::vector<std::uint64_t> checksums_;  // expected, from the section table
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> verified_;
};

/// Owner handle for zero-copy views into `snap` (aliases the control block,
/// so the mapping lives as long as any view does).
inline std::shared_ptr<const void> owner_of(
    const std::shared_ptr<const Snapshot>& snap) {
  return std::shared_ptr<const void>(snap, snap.get());
}

/// True when `bytes` (a file prefix) starts with the snapshot magic.
bool has_snapshot_magic(std::string_view bytes);

}  // namespace mpirical::snapshot
