// Recursive-descent parser for the C subset used by MPI numerical codes.
//
// This plays the role pycparser plays in the paper's pipeline (dataset
// inclusion gate + AST source) and TreeSitter plays for X-SBT. The grammar
// covers: preprocessor passthrough, function definitions, declarations with
// initializers and arrays, the full statement set (if/else, while, do, for,
// switch/case, return, break, continue, compound), and C expressions with
// standard precedence (assignment, conditional, logical, bitwise, equality,
// relational, shift, additive, multiplicative, casts, unary, postfix).
//
// Typedef-style type names (MPI_Status, size_t, ...) are recognized from a
// built-in table; programs must not reuse them as variable names.
// Parse failures raise mpirical::Error with line/column -- callers that use
// parsing as a dataset filter catch the error (see corpus::try_parse).
#pragma once

#include <string>
#include <string_view>

#include "cast/node.hpp"

namespace mpirical::parse {

/// Parses a full translation unit. Throws mpirical::Error on malformed input.
ast::NodePtr parse_translation_unit(std::string_view source);

/// Parses a single expression (convenience for tests and tools).
ast::NodePtr parse_expression_string(std::string_view source);

/// True if `name` is one of the built-in typedef-style type names.
bool is_typedef_name(const std::string& name);

}  // namespace mpirical::parse
