#include "cparse/parser.hpp"

#include <sstream>
#include <unordered_set>

#include "clex/lexer.hpp"
#include "support/check.hpp"

namespace mpirical::parse {

using ast::Node;
using ast::NodeKind;
using ast::NodePtr;
using ast::make_node;
using lex::Token;
using lex::TokenKind;

namespace {

const std::unordered_set<std::string>& typedef_names() {
  static const std::unordered_set<std::string> names = {
      "size_t",       "ssize_t",     "ptrdiff_t", "FILE",        "time_t",
      "int8_t",       "int16_t",     "int32_t",   "int64_t",     "uint8_t",
      "uint16_t",     "uint32_t",    "uint64_t",  "MPI_Status",  "MPI_Comm",
      "MPI_Datatype", "MPI_Op",      "MPI_Request", "MPI_Group", "MPI_File",
      "MPI_Win",      "MPI_Aint",    "MPI_Offset", "MPI_Info",   "MPI_Errhandler",
  };
  return names;
}

const std::unordered_set<std::string>& type_keywords() {
  static const std::unordered_set<std::string> kws = {
      "void",   "char",     "short",  "int",    "long",     "float",
      "double", "signed",   "unsigned", "const", "static",  "struct",
      "extern", "register", "volatile", "inline",
  };
  return kws;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex::tokenize(source)) {}

  NodePtr translation_unit() {
    auto tu = make_node(NodeKind::kTranslationUnit, {}, 1);
    while (!peek().is(TokenKind::kEndOfFile)) {
      if (peek().is(TokenKind::kDirective)) {
        auto d = make_node(NodeKind::kPreprocDirective, peek().text,
                           peek().line);
        advance();
        tu->add(std::move(d));
        continue;
      }
      tu->add(external_declaration());
    }
    return tu;
  }

  NodePtr expression_only() {
    auto e = expression();
    expect_kind(TokenKind::kEndOfFile, "trailing tokens after expression");
    return e;
  }

 private:
  // ---- token plumbing -----------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  const Token& advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  bool accept_punct(const char* s) {
    if (peek().is_punct(s)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_punct(const char* s) {
    if (!accept_punct(s)) {
      fail(std::string("expected '") + s + "', found '" + peek().text + "'");
    }
  }

  bool accept_keyword(const char* s) {
    if (peek().is_keyword(s)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_kind(TokenKind k, const char* msg) {
    if (!peek().is(k)) fail(msg);
  }

  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "parse error at line " << peek().line << ", column "
       << peek().column << ": " << msg;
    throw Error(os.str());
  }

  // ---- types --------------------------------------------------------------

  bool at_type_start(std::size_t ahead = 0) const {
    const Token& t = peek(ahead);
    if (t.kind == TokenKind::kKeyword) return type_keywords().count(t.text) > 0;
    if (t.kind == TokenKind::kIdentifier) {
      return typedef_names().count(t.text) > 0;
    }
    return false;
  }

  /// Consumes a type specifier (qualifiers + base type words) into its
  /// canonical single-space-joined spelling.
  NodePtr type_spec() {
    const int line = peek().line;
    std::string text;
    bool saw_base = false;
    for (;;) {
      const Token& t = peek();
      if (t.kind == TokenKind::kKeyword && type_keywords().count(t.text)) {
        if (t.text == "struct") {
          advance();
          expect_kind(TokenKind::kIdentifier, "expected struct tag");
          if (!text.empty()) text += ' ';
          text += "struct " + advance().text;
          saw_base = true;
          continue;
        }
        if (!text.empty()) text += ' ';
        text += t.text;
        if (t.text != "const" && t.text != "static" && t.text != "extern" &&
            t.text != "register" && t.text != "volatile" &&
            t.text != "inline") {
          saw_base = true;
        }
        advance();
        continue;
      }
      if (!saw_base && t.kind == TokenKind::kIdentifier &&
          typedef_names().count(t.text)) {
        if (!text.empty()) text += ' ';
        text += t.text;
        saw_base = true;
        advance();
        continue;
      }
      break;
    }
    if (text.empty()) fail("expected type specifier");
    // "unsigned"/"signed"/"long"/"short" alone imply int; keep spelling as-is.
    return make_node(NodeKind::kTypeSpec, text, line);
  }

  /// declarator := '*'* name ('[' expr? ']')*
  NodePtr declarator(bool name_required = true) {
    const int line = peek().line;
    int pointer_depth = 0;
    while (accept_punct("*")) ++pointer_depth;
    auto d = make_node(NodeKind::kDeclarator, {}, line);
    d->aux = pointer_depth;
    if (peek().is(TokenKind::kIdentifier)) {
      d->text = advance().text;
    } else if (name_required) {
      fail("expected declarator name");
    }
    while (accept_punct("[")) {
      if (peek().is_punct("]")) {
        d->add(make_node(NodeKind::kEmptyExpr, {}, peek().line));
      } else {
        d->add(expression());
      }
      expect_punct("]");
    }
    return d;
  }

  // ---- external declarations ----------------------------------------------

  NodePtr external_declaration() {
    if (!at_type_start()) {
      fail("expected declaration or function definition");
    }
    const int line = peek().line;
    auto type = type_spec();
    auto decl = declarator();
    if (peek().is_punct("(")) {
      return function_rest(std::move(type), std::move(decl), line);
    }
    return declaration_rest(std::move(type), std::move(decl), line);
  }

  NodePtr function_rest(NodePtr type, NodePtr decl, int line) {
    auto fn = make_node(NodeKind::kFunctionDefinition, decl->text, line);
    expect_punct("(");
    auto params = make_node(NodeKind::kParameterList, {}, line);
    if (!peek().is_punct(")")) {
      if (peek().is_keyword("void") && peek(1).is_punct(")")) {
        advance();  // bare "void" parameter list
      } else {
        for (;;) {
          params->add(parameter_declaration());
          if (!accept_punct(",")) break;
        }
      }
    }
    expect_punct(")");
    fn->add(std::move(type));
    fn->add(std::move(decl));
    fn->add(std::move(params));
    if (!peek().is_punct("{")) {
      fail("expected function body ('{'); prototypes are not supported");
    }
    fn->add(compound_statement());
    return fn;
  }

  NodePtr parameter_declaration() {
    const int line = peek().line;
    if (!at_type_start()) fail("expected parameter type");
    auto p = make_node(NodeKind::kParameterDeclaration, {}, line);
    p->add(type_spec());
    p->add(declarator(/*name_required=*/false));
    return p;
  }

  NodePtr declaration_rest(NodePtr type, NodePtr first_decl, int line) {
    auto decl = make_node(NodeKind::kDeclaration, {}, line);
    decl->add(std::move(type));
    decl->add(init_declarator_rest(std::move(first_decl)));
    while (accept_punct(",")) {
      decl->add(init_declarator_rest(declarator()));
    }
    expect_punct(";");
    return decl;
  }

  NodePtr init_declarator_rest(NodePtr d) {
    auto init = make_node(NodeKind::kInitDeclarator, {}, d->line);
    init->add(std::move(d));
    if (accept_punct("=")) {
      if (peek().is_punct("{")) {
        init->add(init_list());
      } else {
        init->add(assignment_expression());
      }
    }
    return init;
  }

  NodePtr init_list() {
    const int line = peek().line;
    expect_punct("{");
    auto list = make_node(NodeKind::kInitList, {}, line);
    if (!peek().is_punct("}")) {
      for (;;) {
        if (peek().is_punct("{")) {
          list->add(init_list());
        } else {
          list->add(assignment_expression());
        }
        if (!accept_punct(",")) break;
      }
    }
    expect_punct("}");
    return list;
  }

  // ---- statements -----------------------------------------------------------

  NodePtr compound_statement() {
    const int line = peek().line;
    expect_punct("{");
    auto block = make_node(NodeKind::kCompoundStatement, {}, line);
    while (!peek().is_punct("}")) {
      if (peek().is(TokenKind::kEndOfFile)) fail("unterminated block");
      block->add(statement());
    }
    expect_punct("}");
    return block;
  }

  NodePtr statement() {
    const Token& t = peek();
    if (t.is(TokenKind::kDirective)) {
      auto d = make_node(NodeKind::kPreprocDirective, t.text, t.line);
      advance();
      return d;
    }
    if (t.is_punct("{")) return compound_statement();
    if (t.is_keyword("if")) return if_statement();
    if (t.is_keyword("while")) return while_statement();
    if (t.is_keyword("do")) return do_statement();
    if (t.is_keyword("for")) return for_statement();
    if (t.is_keyword("switch")) return switch_statement();
    if (t.is_keyword("return")) {
      const int line = t.line;
      advance();
      auto ret = make_node(NodeKind::kReturnStatement, {}, line);
      if (!peek().is_punct(";")) ret->add(expression());
      expect_punct(";");
      return ret;
    }
    if (t.is_keyword("break")) {
      const int line = t.line;
      advance();
      expect_punct(";");
      return make_node(NodeKind::kBreakStatement, {}, line);
    }
    if (t.is_keyword("continue")) {
      const int line = t.line;
      advance();
      expect_punct(";");
      return make_node(NodeKind::kContinueStatement, {}, line);
    }
    if (at_type_start()) {
      const int line = t.line;
      auto type = type_spec();
      auto decl = declarator();
      return declaration_rest(std::move(type), std::move(decl), line);
    }
    // Expression statement (possibly empty).
    const int line = t.line;
    auto stmt = make_node(NodeKind::kExpressionStatement, {}, line);
    if (!peek().is_punct(";")) stmt->add(comma_expression());
    expect_punct(";");
    return stmt;
  }

  /// Wraps a statement in a compound statement unless it already is one.
  /// This normalizes unbraced bodies (including `else if` chains) so that
  /// parse -> print -> parse is a fixed point (the printer always braces).
  NodePtr as_block(NodePtr stmt) {
    if (stmt->kind == NodeKind::kCompoundStatement) return stmt;
    auto block = make_node(NodeKind::kCompoundStatement, {}, stmt->line);
    block->add(std::move(stmt));
    return block;
  }

  NodePtr if_statement() {
    const int line = peek().line;
    advance();  // if
    expect_punct("(");
    auto node = make_node(NodeKind::kIfStatement, {}, line);
    node->add(comma_expression());
    expect_punct(")");
    node->add(as_block(statement()));
    if (accept_keyword("else")) node->add(as_block(statement()));
    return node;
  }

  NodePtr while_statement() {
    const int line = peek().line;
    advance();  // while
    expect_punct("(");
    auto node = make_node(NodeKind::kWhileStatement, {}, line);
    node->add(comma_expression());
    expect_punct(")");
    node->add(as_block(statement()));
    return node;
  }

  NodePtr do_statement() {
    const int line = peek().line;
    advance();  // do
    auto node = make_node(NodeKind::kDoStatement, {}, line);
    node->add(as_block(statement()));
    if (!accept_keyword("while")) fail("expected 'while' after do-body");
    expect_punct("(");
    node->add(comma_expression());
    expect_punct(")");
    expect_punct(";");
    return node;
  }

  NodePtr for_statement() {
    const int line = peek().line;
    advance();  // for
    expect_punct("(");
    auto node = make_node(NodeKind::kForStatement, {}, line);
    // init clause
    if (peek().is_punct(";")) {
      advance();
      node->add(make_node(NodeKind::kEmptyExpr, {}, line));
    } else if (at_type_start()) {
      auto type = type_spec();
      auto decl = declarator();
      node->add(declaration_rest(std::move(type), std::move(decl), line));
    } else {
      auto stmt = make_node(NodeKind::kExpressionStatement, {}, peek().line);
      stmt->add(comma_expression());
      expect_punct(";");
      node->add(std::move(stmt));
    }
    // condition
    if (peek().is_punct(";")) {
      node->add(make_node(NodeKind::kEmptyExpr, {}, peek().line));
    } else {
      node->add(comma_expression());
    }
    expect_punct(";");
    // update
    if (peek().is_punct(")")) {
      node->add(make_node(NodeKind::kEmptyExpr, {}, peek().line));
    } else {
      node->add(comma_expression());
    }
    expect_punct(")");
    node->add(as_block(statement()));
    return node;
  }

  NodePtr switch_statement() {
    const int line = peek().line;
    advance();  // switch
    expect_punct("(");
    auto node = make_node(NodeKind::kSwitchStatement, {}, line);
    node->add(comma_expression());
    expect_punct(")");
    expect_punct("{");
    auto body = make_node(NodeKind::kCompoundStatement, {}, peek().line);
    while (!peek().is_punct("}")) {
      body->add(case_statement());
    }
    expect_punct("}");
    node->add(std::move(body));
    return node;
  }

  NodePtr case_statement() {
    const int line = peek().line;
    NodePtr node;
    if (accept_keyword("case")) {
      node = make_node(NodeKind::kCaseStatement, "case", line);
      node->add(conditional_expression());
    } else if (accept_keyword("default")) {
      node = make_node(NodeKind::kCaseStatement, "default", line);
    } else {
      fail("expected 'case' or 'default' in switch body");
    }
    expect_punct(":");
    while (!peek().is_punct("}") && !peek().is_keyword("case") &&
           !peek().is_keyword("default")) {
      node->add(statement());
    }
    return node;
  }

  // ---- expressions ----------------------------------------------------------

  NodePtr comma_expression() {
    auto lhs = expression();
    while (peek().is_punct(",")) {
      const int line = peek().line;
      advance();
      auto node = make_node(NodeKind::kCommaExpression, {}, line);
      node->add(std::move(lhs));
      node->add(expression());
      lhs = std::move(node);
    }
    return lhs;
  }

  NodePtr expression() { return assignment_expression(); }

  bool at_assignment_op() const {
    if (!peek().is(TokenKind::kPunct)) return false;
    const std::string& s = peek().text;
    return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
           s == "%=" || s == "&=" || s == "|=" || s == "^=" || s == "<<=" ||
           s == ">>=";
  }

  NodePtr assignment_expression() {
    auto lhs = conditional_expression();
    if (at_assignment_op()) {
      const Token& op = peek();
      auto node =
          make_node(NodeKind::kAssignmentExpression, op.text, op.line);
      advance();
      node->add(std::move(lhs));
      node->add(assignment_expression());  // right-associative
      return node;
    }
    return lhs;
  }

  NodePtr conditional_expression() {
    auto cond = binary_expression(0);
    if (peek().is_punct("?")) {
      const int line = peek().line;
      advance();
      auto node = make_node(NodeKind::kConditionalExpression, {}, line);
      node->add(std::move(cond));
      node->add(comma_expression());
      expect_punct(":");
      node->add(conditional_expression());
      return node;
    }
    return cond;
  }

  /// Precedence-climbing over binary operators. Level 0 is lowest (||).
  int binary_precedence(const std::string& op) const {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return -1;
  }

  NodePtr binary_expression(int min_prec) {
    auto lhs = unary_expression();
    for (;;) {
      if (!peek().is(TokenKind::kPunct)) return lhs;
      const int prec = binary_precedence(peek().text);
      if (prec < 0 || prec < min_prec) return lhs;
      const Token& op = peek();
      auto node = make_node(NodeKind::kBinaryExpression, op.text, op.line);
      advance();
      node->add(std::move(lhs));
      node->add(binary_expression(prec + 1));  // left-associative
      lhs = std::move(node);
    }
  }

  NodePtr unary_expression() {
    const Token& t = peek();
    if (t.is_punct("++") || t.is_punct("--")) {
      auto node = make_node(NodeKind::kUpdateExpression, t.text, t.line);
      node->aux = 0;  // prefix
      advance();
      node->add(unary_expression());
      return node;
    }
    if (t.is_punct("!") || t.is_punct("~") || t.is_punct("-") ||
        t.is_punct("+")) {
      auto node = make_node(NodeKind::kUnaryExpression, t.text, t.line);
      advance();
      node->add(unary_expression());
      return node;
    }
    if (t.is_punct("*") || t.is_punct("&")) {
      auto node = make_node(NodeKind::kPointerExpression, t.text, t.line);
      advance();
      node->add(unary_expression());
      return node;
    }
    if (t.is_keyword("sizeof")) {
      const int line = t.line;
      advance();
      auto node = make_node(NodeKind::kSizeofExpression, {}, line);
      if (peek().is_punct("(") && at_type_start(1)) {
        advance();  // (
        auto type = type_spec();
        std::string text = type->text;
        while (accept_punct("*")) text += " *";
        node->text = text;
        expect_punct(")");
      } else if (accept_punct("(")) {
        node->aux = 1;
        node->add(comma_expression());
        expect_punct(")");
      } else {
        node->aux = 1;
        node->add(unary_expression());
      }
      return node;
    }
    // Cast: '(' type ')' unary
    if (t.is_punct("(") && at_type_start(1)) {
      const int line = t.line;
      advance();  // (
      auto type = type_spec();
      int pointer_depth = 0;
      while (accept_punct("*")) ++pointer_depth;
      expect_punct(")");
      auto node = make_node(NodeKind::kCastExpression, type->text, line);
      node->aux = pointer_depth;
      node->add(unary_expression());
      return node;
    }
    return postfix_expression();
  }

  NodePtr postfix_expression() {
    auto e = primary_expression();
    for (;;) {
      const Token& t = peek();
      if (t.is_punct("[")) {
        auto node = make_node(NodeKind::kSubscriptExpression, {}, t.line);
        advance();
        node->add(std::move(e));
        node->add(comma_expression());
        expect_punct("]");
        e = std::move(node);
      } else if (t.is_punct(".") || t.is_punct("->")) {
        auto node = make_node(NodeKind::kFieldExpression, {}, t.line);
        node->aux = t.text == "->" ? 1 : 0;
        advance();
        expect_kind(TokenKind::kIdentifier, "expected field name");
        node->text = advance().text;
        node->children.insert(node->children.begin(), std::move(e));
        e = std::move(node);
      } else if (t.is_punct("++") || t.is_punct("--")) {
        auto node = make_node(NodeKind::kUpdateExpression, t.text, t.line);
        node->aux = 1;  // postfix
        advance();
        node->add(std::move(e));
        e = std::move(node);
      } else if (t.is_punct("(")) {
        if (e->kind != NodeKind::kIdentifier) {
          fail("only direct calls of named functions are supported");
        }
        auto node = make_node(NodeKind::kCallExpression, e->text, e->line);
        advance();
        if (!peek().is_punct(")")) {
          for (;;) {
            node->add(assignment_expression());
            if (!accept_punct(",")) break;
          }
        }
        expect_punct(")");
        e = std::move(node);
      } else {
        return e;
      }
    }
  }

  NodePtr primary_expression() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kIdentifier: {
        auto node = make_node(NodeKind::kIdentifier, t.text, t.line);
        advance();
        return node;
      }
      case TokenKind::kIntLiteral:
      case TokenKind::kFloatLiteral: {
        auto node = make_node(NodeKind::kNumberLiteral, t.text, t.line);
        advance();
        return node;
      }
      case TokenKind::kStringLiteral: {
        auto node = make_node(NodeKind::kStringLiteral, t.text, t.line);
        advance();
        return node;
      }
      case TokenKind::kCharLiteral: {
        auto node = make_node(NodeKind::kCharLiteral, t.text, t.line);
        advance();
        return node;
      }
      default:
        break;
    }
    if (t.is_punct("(")) {
      const int line = t.line;
      advance();
      auto node = make_node(NodeKind::kParenthesizedExpression, {}, line);
      node->add(comma_expression());
      expect_punct(")");
      return node;
    }
    fail(std::string("unexpected token '") + t.text + "' in expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ast::NodePtr parse_translation_unit(std::string_view source) {
  Parser parser(source);
  return parser.translation_unit();
}

ast::NodePtr parse_expression_string(std::string_view source) {
  Parser parser(source);
  return parser.expression_only();
}

bool is_typedef_name(const std::string& name) {
  return typedef_names().count(name) > 0;
}

}  // namespace mpirical::parse
