// AST linearization: SBT and X-SBT.
//
// SPT-Code feeds the encoder "code [SEP] linearized-AST". Classic SBT
// (structure-based traversal, Hu et al. 2018) emits every node including
// terminals and their values, which makes sequences 3x+ longer than the code.
// X-SBT (SPT-Code's contribution) keeps only syntactic structure -- statement
// and composite-expression nodes -- in an XML-like form, cutting the length by
// more than half while remaining unambiguous.
//
// Token shapes (one logical token per entry, space-joined in the string form):
//   SBT:    "( name value )" per node (value omitted when empty)
//   X-SBT:  "<name>" children "</name>" for interior nodes, "<name/>" leaves
//
// Terminal kinds (identifier, literals, empty_expr) and purely lexical kinds
// (type_spec, declarator) are excluded from X-SBT.
#pragma once

#include <string>
#include <vector>

#include "cast/node.hpp"

namespace mpirical::xsbt {

/// Classic SBT over the full tree, including terminal values.
std::vector<std::string> sbt_tokens(const ast::Node& root);

/// X-SBT: structural nodes only, XML-like tags.
std::vector<std::string> xsbt_tokens(const ast::Node& root);

/// Space-joined convenience forms.
std::string sbt_string(const ast::Node& root);
std::string xsbt_string(const ast::Node& root);

/// True if `kind` appears in X-SBT output.
bool xsbt_keeps(ast::NodeKind kind);

}  // namespace mpirical::xsbt
