#include "xsbt/xsbt.hpp"

#include "support/strings.hpp"

namespace mpirical::xsbt {

using ast::Node;
using ast::NodeKind;

namespace {

void sbt_walk(const Node& n, std::vector<std::string>& out) {
  out.push_back("(");
  out.push_back(ast::node_kind_name(n.kind));
  if (!n.text.empty()) out.push_back(n.text);
  for (const auto& c : n.children) sbt_walk(*c, out);
  out.push_back(")");
}

bool xsbt_has_kept_descendant(const Node& n) {
  for (const auto& c : n.children) {
    if (xsbt_keeps(c->kind) || xsbt_has_kept_descendant(*c)) return true;
  }
  return false;
}

void xsbt_walk(const Node& n, std::vector<std::string>& out) {
  if (!xsbt_keeps(n.kind)) {
    // Skip the node but keep looking for kept descendants (e.g. the
    // initializer expression inside an init_declarator).
    for (const auto& c : n.children) xsbt_walk(*c, out);
    return;
  }
  const std::string name = ast::node_kind_name(n.kind);
  if (xsbt_has_kept_descendant(n)) {
    out.push_back("<" + name + ">");
    for (const auto& c : n.children) xsbt_walk(*c, out);
    out.push_back("</" + name + ">");
  } else {
    out.push_back("<" + name + "/>");
  }
}

}  // namespace

bool xsbt_keeps(ast::NodeKind kind) {
  switch (kind) {
    // Terminals and purely lexical nodes are dropped.
    case NodeKind::kIdentifier:
    case NodeKind::kNumberLiteral:
    case NodeKind::kStringLiteral:
    case NodeKind::kCharLiteral:
    case NodeKind::kEmptyExpr:
    case NodeKind::kTypeSpec:
    case NodeKind::kDeclarator:
    case NodeKind::kInitDeclarator:
    case NodeKind::kTranslationUnit:
    case NodeKind::kPreprocDirective:
      return false;
    default:
      return true;
  }
}

std::vector<std::string> sbt_tokens(const Node& root) {
  std::vector<std::string> out;
  sbt_walk(root, out);
  return out;
}

std::vector<std::string> xsbt_tokens(const Node& root) {
  std::vector<std::string> out;
  xsbt_walk(root, out);
  return out;
}

std::string sbt_string(const Node& root) {
  return join(sbt_tokens(root), " ");
}

std::string xsbt_string(const Node& root) {
  return join(xsbt_tokens(root), " ");
}

}  // namespace mpirical::xsbt
