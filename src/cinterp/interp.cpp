#include "cinterp/interp.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "support/strings.hpp"

namespace mpirical::interp {

using ast::Node;
using ast::NodeKind;

Box make_box(std::size_t cells, ValueKind kind) {
  auto box = std::make_shared<std::vector<Value>>(cells);
  if (kind == ValueKind::kDouble) {
    for (auto& v : *box) v = Value::make_double(0.0);
  }
  return box;
}

namespace {

ValueKind kind_of_type(const std::string& type_text) {
  if (contains(type_text, "double") || contains(type_text, "float")) {
    return ValueKind::kDouble;
  }
  return ValueKind::kInt;
}

bool is_status_type(const std::string& type_text) {
  return contains(type_text, "MPI_Status");
}

}  // namespace

Interpreter::Interpreter(const Node& tu, MpiApi* mpi,
                         InterpreterOptions options)
    : tu_(tu), mpi_(mpi), options_(options) {
  MR_CHECK(tu.kind == NodeKind::kTranslationUnit,
           "interpreter expects a translation unit");
  for (const auto& item : tu.children) {
    if (item->kind == NodeKind::kFunctionDefinition) {
      functions_[item->text] = item.get();
    }
  }
  constants_ = {
      {"MPI_COMM_WORLD", Value::make_int(kMpiCommWorld)},
      {"MPI_INT", Value::make_int(kMpiInt)},
      {"MPI_LONG", Value::make_int(kMpiLong)},
      {"MPI_FLOAT", Value::make_int(kMpiFloat)},
      {"MPI_DOUBLE", Value::make_int(kMpiDouble)},
      {"MPI_CHAR", Value::make_int(kMpiChar)},
      {"MPI_SUM", Value::make_int(kMpiSum)},
      {"MPI_PROD", Value::make_int(kMpiProd)},
      {"MPI_MIN", Value::make_int(kMpiMin)},
      {"MPI_MAX", Value::make_int(kMpiMax)},
      {"MPI_ANY_SOURCE", Value::make_int(kMpiAnySource)},
      {"MPI_ANY_TAG", Value::make_int(kMpiAnyTag)},
      {"MPI_SUCCESS", Value::make_int(kMpiSuccess)},
      {"MPI_STATUS_IGNORE", Value::make_pointer(nullptr, 0)},
      {"NULL", Value::make_pointer(nullptr, 0)},
      {"RAND_MAX", Value::make_int(2147483647)},
  };
}

void Interpreter::bump_steps() {
  if (++steps_ > options_.max_steps) {
    throw Error("interpreter step budget exceeded (possible infinite loop)");
  }
}

Cell& Interpreter::define(const std::string& name, Cell cell) {
  MR_CHECK(!scopes_.empty(), "no active scope");
  auto& vars = scopes_.back().vars;
  vars[name] = std::move(cell);
  return vars[name];
}

Cell* Interpreter::lookup(const std::string& name) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->vars.find(name);
    if (found != it->vars.end()) return &found->second;
  }
  return nullptr;
}

long long Interpreter::run_main() {
  auto it = functions_.find("main");
  MR_CHECK(it != functions_.end(), "program has no main function");
  const Value result = call_function("main", {});
  return result.as_int();
}

Value Interpreter::call_function(const std::string& name,
                                 std::vector<Value> args) {
  auto it = functions_.find(name);
  MR_CHECK(it != functions_.end(), "call to undefined function: " + name);
  const Node& fn = *it->second;
  MR_CHECK(++depth_ <= options_.max_call_depth, "call depth exceeded");

  scopes_.emplace_back();
  const Node& params = *fn.child(2);
  if (name == "main") {
    // Synthesize argc/argv if declared.
    if (params.child_count() >= 1) {
      const Node& p0 = *params.child(0);
      Box argc_box = make_box(1, ValueKind::kInt);
      (*argc_box)[0] = Value::make_int(options_.argc);
      define(p0.child(1)->text, Cell{argc_box, 0});
    }
    if (params.child_count() >= 2) {
      const Node& p1 = *params.child(1);
      Box argv_box = make_box(1, ValueKind::kInt);
      (*argv_box)[0] = Value::make_pointer(nullptr, 0);
      define(p1.child(1)->text, Cell{argv_box, 0});
    }
  } else {
    MR_CHECK(params.child_count() == args.size(),
             "argument count mismatch calling " + name);
    for (std::size_t i = 0; i < args.size(); ++i) {
      const Node& param = *params.child(i);
      const Node& decl = *param.child(1);
      Box box = make_box(1, args[i].kind);
      (*box)[0] = args[i];
      define(decl.text, Cell{box, 0});
    }
  }

  Value return_value = Value::make_int(0);
  exec_block(*fn.child(3), &return_value);
  scopes_.pop_back();
  --depth_;
  return return_value;
}

// ---- builtins ----------------------------------------------------------------

Value Interpreter::call_builtin(const std::string& name,
                                std::vector<Value>& args, bool* handled) {
  *handled = true;
  auto need = [&](std::size_t n) {
    MR_CHECK(args.size() == n, name + ": wrong argument count");
  };
  if (name == "printf") {
    MR_CHECK(!args.empty(), "printf needs a format string");
    // The format string value is a pointer whose box holds char codes; we
    // stored literals as interned strings -- see kStringLiteral eval.
    MR_CHECK(args[0].kind == ValueKind::kPointer && args[0].box,
             "printf format must be a string");
    std::string fmt;
    for (std::size_t i = static_cast<std::size_t>(args[0].offset);
         i < args[0].box->size(); ++i) {
      const long long c = (*args[0].box)[i].i;
      if (c == 0) break;
      fmt += static_cast<char>(c);
    }
    output_ += format_printf(fmt,
                             std::vector<Value>(args.begin() + 1, args.end()));
    return Value::make_int(static_cast<long long>(fmt.size()));
  }
  if (name == "sqrt") { need(1); return Value::make_double(std::sqrt(args[0].as_double())); }
  if (name == "fabs") { need(1); return Value::make_double(std::fabs(args[0].as_double())); }
  if (name == "abs") { need(1); return Value::make_int(std::llabs(args[0].as_int())); }
  if (name == "pow") { need(2); return Value::make_double(std::pow(args[0].as_double(), args[1].as_double())); }
  if (name == "sin") { need(1); return Value::make_double(std::sin(args[0].as_double())); }
  if (name == "cos") { need(1); return Value::make_double(std::cos(args[0].as_double())); }
  if (name == "tan") { need(1); return Value::make_double(std::tan(args[0].as_double())); }
  if (name == "exp") { need(1); return Value::make_double(std::exp(args[0].as_double())); }
  if (name == "log") { need(1); return Value::make_double(std::log(args[0].as_double())); }
  if (name == "floor") { need(1); return Value::make_double(std::floor(args[0].as_double())); }
  if (name == "ceil") { need(1); return Value::make_double(std::ceil(args[0].as_double())); }
  if (name == "malloc") {
    need(1);
    const long long cells = args[0].as_int();
    MR_CHECK(cells >= 0 && cells < 100'000'000, "malloc size out of range");
    return Value::make_pointer(
        make_box(static_cast<std::size_t>(cells), ValueKind::kInt), 0);
  }
  if (name == "calloc") {
    need(2);
    const long long cells = args[0].as_int() * args[1].as_int();
    MR_CHECK(cells >= 0 && cells < 100'000'000, "calloc size out of range");
    return Value::make_pointer(
        make_box(static_cast<std::size_t>(cells), ValueKind::kInt), 0);
  }
  if (name == "free") {
    need(1);
    return Value::make_int(0);  // boxes are reference counted
  }
  if (name == "exit") {
    need(1);
    throw Error("exit(" + std::to_string(args[0].as_int()) + ") called");
  }
  if (name == "srand") {
    need(1);
    rand_state_ =
        static_cast<unsigned long long>(args[0].as_int()) * 2 + 1;
    return Value::make_int(0);
  }
  if (name == "rand") {
    need(0);
    // Deterministic LCG (same across platforms).
    rand_state_ = rand_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return Value::make_int(
        static_cast<long long>((rand_state_ >> 33) & 0x7FFFFFFF));
  }
  if (starts_with(name, "MPI_")) {
    MR_CHECK(mpi_ != nullptr,
             "MPI call '" + name + "' outside an MPI runtime");
    return mpi_->call(*this, name, args);
  }
  *handled = false;
  return Value::make_int(0);
}

std::string Interpreter::format_printf(const std::string& format,
                                       const std::vector<Value>& args) const {
  std::string out;
  std::size_t arg_index = 0;
  for (std::size_t i = 0; i < format.size(); ++i) {
    const char c = format[i];
    if (c != '%') {
      out += c;
      continue;
    }
    if (i + 1 < format.size() && format[i + 1] == '%') {
      out += '%';
      ++i;
      continue;
    }
    // Collect the conversion spec.
    std::string spec = "%";
    ++i;
    while (i < format.size() &&
           (std::isdigit(static_cast<unsigned char>(format[i])) ||
            format[i] == '.' || format[i] == '-' || format[i] == '+' ||
            format[i] == 'l')) {
      spec += format[i];
      ++i;
    }
    MR_CHECK(i < format.size(), "dangling % in printf format");
    const char conv = format[i];
    spec += conv;
    MR_CHECK(arg_index < args.size(), "printf: missing argument");
    const Value& arg = args[arg_index++];
    char buf[128];
    switch (conv) {
      case 'd':
      case 'i':
      case 'u': {
        // Normalize any length modifier to long long.
        std::string s2 = spec.substr(0, spec.size() - 1);
        s2.erase(std::remove(s2.begin(), s2.end(), 'l'), s2.end());
        s2 += "lld";
        std::snprintf(buf, sizeof(buf), s2.c_str(), arg.as_int());
        out += buf;
        break;
      }
      case 'f':
      case 'e':
      case 'g': {
        std::string s2 = spec;
        s2.erase(std::remove(s2.begin(), s2.end(), 'l'), s2.end());
        std::snprintf(buf, sizeof(buf), s2.c_str(), arg.as_double());
        out += buf;
        break;
      }
      case 'c':
        out += static_cast<char>(arg.as_int());
        break;
      case 's': {
        MR_CHECK(arg.kind == ValueKind::kPointer && arg.box,
                 "printf %s requires a string");
        for (std::size_t j = static_cast<std::size_t>(arg.offset);
             j < arg.box->size(); ++j) {
          const long long ch = (*arg.box)[j].i;
          if (ch == 0) break;
          out += static_cast<char>(ch);
        }
        break;
      }
      default:
        MR_CHECK(false, std::string("unsupported printf conversion %") + conv);
    }
  }
  return out;
}

// ---- expressions ----------------------------------------------------------------

Value Interpreter::eval(const Node& e) {
  bump_steps();
  switch (e.kind) {
    case NodeKind::kNumberLiteral: {
      const std::string& t = e.text;
      if (contains(t, ".") || contains(t, "e") || contains(t, "E")) {
        if (!starts_with(t, "0x") && !starts_with(t, "0X")) {
          return Value::make_double(std::stod(t));
        }
      }
      // Strip integer suffixes.
      std::string digits = t;
      while (!digits.empty() &&
             (digits.back() == 'l' || digits.back() == 'L' ||
              digits.back() == 'u' || digits.back() == 'U')) {
        digits.pop_back();
      }
      return Value::make_int(std::stoll(digits, nullptr, 0));
    }
    case NodeKind::kStringLiteral: {
      // Decode escapes into a char box with a trailing NUL.
      const std::string& t = e.text;
      auto box = make_box(0, ValueKind::kInt);
      box->reserve(t.size());
      for (std::size_t i = 1; i + 1 < t.size(); ++i) {
        char c = t[i];
        if (c == '\\' && i + 2 < t.size()) {
          ++i;
          switch (t[i]) {
            case 'n': c = '\n'; break;
            case 't': c = '\t'; break;
            case 'r': c = '\r'; break;
            case '0': c = '\0'; break;
            case '\\': c = '\\'; break;
            case '"': c = '"'; break;
            case '\'': c = '\''; break;
            default: c = t[i]; break;
          }
        }
        box->push_back(Value::make_int(c));
      }
      box->push_back(Value::make_int(0));
      return Value::make_pointer(box, 0);
    }
    case NodeKind::kCharLiteral: {
      const std::string& t = e.text;
      MR_CHECK(t.size() >= 3, "bad char literal");
      char c = t[1];
      if (c == '\\' && t.size() >= 4) {
        switch (t[2]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '\'': c = '\''; break;
          default: c = t[2]; break;
        }
      }
      return Value::make_int(c);
    }
    case NodeKind::kIdentifier: {
      // Array variables store their decayed pointer in the variable cell, so
      // plain value lookup covers scalars, pointers and arrays alike.
      if (Cell* cell = lookup(e.text)) return cell->deref();
      auto it = constants_.find(e.text);
      if (it != constants_.end()) return it->second;
      // Array variables are stored as pointer values in their cell, so a
      // miss here is a genuine unknown identifier.
      throw Error("undefined identifier: " + e.text);
    }
    case NodeKind::kParenthesizedExpression:
      return eval(*e.child(0));
    case NodeKind::kCallExpression: {
      std::vector<Value> args;
      args.reserve(e.child_count());
      for (const auto& a : e.children) args.push_back(eval(*a));
      bool handled = false;
      Value result = call_builtin(e.text, args, &handled);
      if (handled) return result;
      return call_function(e.text, std::move(args));
    }
    case NodeKind::kBinaryExpression: {
      const std::string& op = e.text;
      if (op == "&&") {
        if (!eval(*e.child(0)).truthy()) return Value::make_int(0);
        return Value::make_int(eval(*e.child(1)).truthy() ? 1 : 0);
      }
      if (op == "||") {
        if (eval(*e.child(0)).truthy()) return Value::make_int(1);
        return Value::make_int(eval(*e.child(1)).truthy() ? 1 : 0);
      }
      Value lhs = eval(*e.child(0));
      Value rhs = eval(*e.child(1));
      // Pointer arithmetic.
      if (lhs.kind == ValueKind::kPointer && (op == "+" || op == "-")) {
        if (rhs.kind == ValueKind::kPointer && op == "-") {
          return Value::make_int(lhs.offset - rhs.offset);
        }
        const long long delta = rhs.as_int();
        return Value::make_pointer(lhs.box,
                                   op == "+" ? lhs.offset + delta
                                             : lhs.offset - delta);
      }
      const bool dbl = lhs.kind == ValueKind::kDouble ||
                       rhs.kind == ValueKind::kDouble;
      if (op == "+") {
        return dbl ? Value::make_double(lhs.as_double() + rhs.as_double())
                   : Value::make_int(lhs.as_int() + rhs.as_int());
      }
      if (op == "-") {
        return dbl ? Value::make_double(lhs.as_double() - rhs.as_double())
                   : Value::make_int(lhs.as_int() - rhs.as_int());
      }
      if (op == "*") {
        return dbl ? Value::make_double(lhs.as_double() * rhs.as_double())
                   : Value::make_int(lhs.as_int() * rhs.as_int());
      }
      if (op == "/") {
        if (dbl) {
          return Value::make_double(lhs.as_double() / rhs.as_double());
        }
        MR_CHECK(rhs.as_int() != 0, "integer division by zero");
        return Value::make_int(lhs.as_int() / rhs.as_int());
      }
      if (op == "%") {
        MR_CHECK(rhs.as_int() != 0, "modulo by zero");
        return Value::make_int(lhs.as_int() % rhs.as_int());
      }
      if (op == "<<") return Value::make_int(lhs.as_int() << rhs.as_int());
      if (op == ">>") return Value::make_int(lhs.as_int() >> rhs.as_int());
      if (op == "&") return Value::make_int(lhs.as_int() & rhs.as_int());
      if (op == "|") return Value::make_int(lhs.as_int() | rhs.as_int());
      if (op == "^") return Value::make_int(lhs.as_int() ^ rhs.as_int());
      auto cmp = [&](auto pred) {
        if (dbl) return Value::make_int(pred(lhs.as_double(), rhs.as_double()) ? 1 : 0);
        return Value::make_int(pred(lhs.as_int(), rhs.as_int()) ? 1 : 0);
      };
      if (op == "<") return cmp([](auto a, auto b) { return a < b; });
      if (op == ">") return cmp([](auto a, auto b) { return a > b; });
      if (op == "<=") return cmp([](auto a, auto b) { return a <= b; });
      if (op == ">=") return cmp([](auto a, auto b) { return a >= b; });
      if (op == "==") return cmp([](auto a, auto b) { return a == b; });
      if (op == "!=") return cmp([](auto a, auto b) { return a != b; });
      throw Error("unsupported binary operator: " + op);
    }
    case NodeKind::kUnaryExpression: {
      Value v = eval(*e.child(0));
      if (e.text == "-") {
        return v.kind == ValueKind::kDouble ? Value::make_double(-v.d)
                                            : Value::make_int(-v.as_int());
      }
      if (e.text == "+") return v;
      if (e.text == "!") return Value::make_int(v.truthy() ? 0 : 1);
      if (e.text == "~") return Value::make_int(~v.as_int());
      throw Error("unsupported unary operator: " + e.text);
    }
    case NodeKind::kPointerExpression: {
      if (e.text == "&") {
        Cell cell = eval_lvalue(*e.child(0));
        return Value::make_pointer(cell.box, cell.offset);
      }
      // Dereference.
      Value p = eval(*e.child(0));
      MR_CHECK(p.kind == ValueKind::kPointer, "dereference of non-pointer");
      return Cell{p.box, p.offset}.deref();
    }
    case NodeKind::kUpdateExpression: {
      Cell cell = eval_lvalue(*e.child(0));
      Value old = cell.deref();
      const long long delta = e.text == "++" ? 1 : -1;
      Value updated =
          old.kind == ValueKind::kDouble
              ? Value::make_double(old.d + static_cast<double>(delta))
              : (old.kind == ValueKind::kPointer
                     ? Value::make_pointer(old.box, old.offset + delta)
                     : Value::make_int(old.i + delta));
      cell.deref() = updated;
      return e.aux == 1 ? old : updated;  // postfix returns the old value
    }
    case NodeKind::kAssignmentExpression: {
      Cell cell = eval_lvalue(*e.child(0));
      Value rhs = eval(*e.child(1));
      const std::string& op = e.text;
      if (op != "=") {
        // Compound: rewrite as lhs = lhs <op> rhs.
        Value lhs = cell.deref();
        const std::string base = op.substr(0, op.size() - 1);
        const bool dbl = lhs.kind == ValueKind::kDouble ||
                         rhs.kind == ValueKind::kDouble;
        if (base == "+") {
          rhs = dbl ? Value::make_double(lhs.as_double() + rhs.as_double())
                    : Value::make_int(lhs.as_int() + rhs.as_int());
        } else if (base == "-") {
          rhs = dbl ? Value::make_double(lhs.as_double() - rhs.as_double())
                    : Value::make_int(lhs.as_int() - rhs.as_int());
        } else if (base == "*") {
          rhs = dbl ? Value::make_double(lhs.as_double() * rhs.as_double())
                    : Value::make_int(lhs.as_int() * rhs.as_int());
        } else if (base == "/") {
          if (dbl) {
            rhs = Value::make_double(lhs.as_double() / rhs.as_double());
          } else {
            MR_CHECK(rhs.as_int() != 0, "integer division by zero");
            rhs = Value::make_int(lhs.as_int() / rhs.as_int());
          }
        } else if (base == "%") {
          MR_CHECK(rhs.as_int() != 0, "modulo by zero");
          rhs = Value::make_int(lhs.as_int() % rhs.as_int());
        } else if (base == "&") {
          rhs = Value::make_int(lhs.as_int() & rhs.as_int());
        } else if (base == "|") {
          rhs = Value::make_int(lhs.as_int() | rhs.as_int());
        } else if (base == "^") {
          rhs = Value::make_int(lhs.as_int() ^ rhs.as_int());
        } else if (base == "<<") {
          rhs = Value::make_int(lhs.as_int() << rhs.as_int());
        } else if (base == ">>") {
          rhs = Value::make_int(lhs.as_int() >> rhs.as_int());
        } else {
          MR_CHECK(false, "unsupported compound assignment: " + op);
        }
        // Preserve the declared kind of the target where sensible.
        if (lhs.kind == ValueKind::kDouble && rhs.kind == ValueKind::kInt) {
          rhs = Value::make_double(static_cast<double>(rhs.i));
        }
      } else {
        // Plain assignment coerces into the target's current kind.
        const Value& current = cell.deref();
        if (current.kind == ValueKind::kDouble &&
            rhs.kind == ValueKind::kInt) {
          rhs = Value::make_double(static_cast<double>(rhs.i));
        } else if (current.kind == ValueKind::kInt &&
                   rhs.kind == ValueKind::kDouble) {
          rhs = Value::make_int(static_cast<long long>(rhs.d));
        }
      }
      cell.deref() = rhs;
      return rhs;
    }
    case NodeKind::kConditionalExpression:
      return eval(*e.child(0)).truthy() ? eval(*e.child(1))
                                        : eval(*e.child(2));
    case NodeKind::kCastExpression: {
      Value v = eval(*e.child(0));
      if (e.aux > 0) {
        // Pointer casts are identity on the address, but `(double *)` over a
        // fresh (all-zero int) allocation retypes its cells -- this is how
        // `(double *)malloc(...)` gets double elements in the cell-addressed
        // model.
        if (v.kind == ValueKind::kPointer && v.box &&
            kind_of_type(e.text) == ValueKind::kDouble) {
          for (auto& cell : *v.box) {
            if (cell.kind == ValueKind::kInt && cell.i == 0) {
              cell = Value::make_double(0.0);
            }
          }
        }
        return v;
      }
      const ValueKind target = kind_of_type(e.text);
      if (contains(e.text, "void")) return v;
      if (target == ValueKind::kDouble) {
        return Value::make_double(v.as_double());
      }
      return Value::make_int(v.as_int());
    }
    case NodeKind::kSubscriptExpression: {
      Cell cell = eval_lvalue(e);
      return cell.deref();
    }
    case NodeKind::kFieldExpression: {
      Cell cell = eval_lvalue(e);
      return cell.deref();
    }
    case NodeKind::kSizeofExpression:
      return Value::make_int(1);  // cell-addressed memory (see value.hpp)
    case NodeKind::kCommaExpression: {
      eval(*e.child(0));
      return eval(*e.child(1));
    }
    case NodeKind::kEmptyExpr:
      return Value::make_int(1);
    default:
      MR_CHECK(false, std::string("cannot evaluate node: ") +
                          ast::node_kind_name(e.kind));
  }
}

Cell Interpreter::eval_lvalue(const Node& e) {
  bump_steps();
  switch (e.kind) {
    case NodeKind::kIdentifier: {
      Cell* cell = lookup(e.text);
      MR_CHECK(cell != nullptr, "undefined identifier: " + e.text);
      return *cell;
    }
    case NodeKind::kParenthesizedExpression:
      return eval_lvalue(*e.child(0));
    case NodeKind::kSubscriptExpression: {
      Value base = eval(*e.child(0));
      MR_CHECK(base.kind == ValueKind::kPointer,
               "subscript of non-pointer value");
      const long long idx = eval(*e.child(1)).as_int();
      return Cell{base.box, base.offset + idx};
    }
    case NodeKind::kPointerExpression: {
      MR_CHECK(e.text == "*", "cannot take lvalue of address-of");
      Value p = eval(*e.child(0));
      MR_CHECK(p.kind == ValueKind::kPointer, "dereference of non-pointer");
      return Cell{p.box, p.offset};
    }
    case NodeKind::kFieldExpression: {
      // MPI_Status fields: MPI_SOURCE at cell 0, MPI_TAG at cell 1.
      Cell base = e.aux == 1
                      ? [&] {
                          Value p = eval(*e.child(0));
                          MR_CHECK(p.kind == ValueKind::kPointer,
                                   "-> on non-pointer");
                          return Cell{p.box, p.offset};
                        }()
                      : eval_lvalue(*e.child(0));
      long long field_offset = 0;
      if (e.text == "MPI_SOURCE") {
        field_offset = 0;
      } else if (e.text == "MPI_TAG") {
        field_offset = 1;
      } else if (e.text == "MPI_ERROR") {
        field_offset = 2;
      } else {
        MR_CHECK(false, "unsupported struct field: " + e.text);
      }
      return Cell{base.box, base.offset + field_offset};
    }
    default:
      MR_CHECK(false, std::string("not an lvalue: ") +
                          ast::node_kind_name(e.kind));
  }
}

// ---- statements -----------------------------------------------------------------

void Interpreter::exec_declaration(const Node& decl) {
  const Node& type = *decl.child(0);
  for (std::size_t i = 1; i < decl.children.size(); ++i) {
    const Node& init_decl = *decl.children[i];
    const Node& declarator = *init_decl.child(0);
    const bool is_status = is_status_type(type.text);
    const ValueKind kind = kind_of_type(type.text);

    if (!declarator.children.empty()) {
      // Array: evaluate dimensions (multi-dim arrays flatten).
      long long cells = 1;
      for (const auto& dim : declarator.children) {
        MR_CHECK(dim->kind != NodeKind::kEmptyExpr,
                 "array dimension required: " + declarator.text);
        cells *= eval(*dim).as_int();
      }
      MR_CHECK(cells > 0 && cells < 100'000'000, "array size out of range");
      Box box = make_box(static_cast<std::size_t>(cells), kind);
      // The variable's own cell holds the decayed pointer.
      Box holder = make_box(1, ValueKind::kInt);
      (*holder)[0] = Value::make_pointer(box, 0);
      define(declarator.text, Cell{holder, 0});
      if (init_decl.child_count() == 2 &&
          init_decl.child(1)->kind == NodeKind::kInitList) {
        const Node& list = *init_decl.child(1);
        for (std::size_t j = 0;
             j < list.children.size() &&
             j < static_cast<std::size_t>(cells);
             ++j) {
          Value v = eval(*list.children[j]);
          (*box)[j] = kind == ValueKind::kDouble
                          ? Value::make_double(v.as_double())
                          : v;
        }
      }
      continue;
    }

    if (is_status && declarator.aux == 0) {
      // A status struct is a 3-cell box (SOURCE, TAG, ERROR); the variable's
      // cell refers to its first field, so &status addresses the box and
      // status.MPI_TAG offsets within it.
      Box box = make_box(3, ValueKind::kInt);
      define(declarator.text, Cell{box, 0});
      continue;
    }

    Box box = make_box(1, declarator.aux > 0 ? ValueKind::kInt : kind);
    if (declarator.aux > 0) (*box)[0] = Value::make_pointer(nullptr, 0);
    if (init_decl.child_count() == 2) {
      Value v = eval(*init_decl.child(1));
      if (declarator.aux == 0) {
        if (kind == ValueKind::kDouble && v.kind != ValueKind::kDouble) {
          v = Value::make_double(v.as_double());
        } else if (kind == ValueKind::kInt &&
                   v.kind == ValueKind::kDouble) {
          v = Value::make_int(v.as_int());
        }
      }
      (*box)[0] = v;
    }
    define(declarator.text, Cell{box, 0});
  }
}

Interpreter::Flow Interpreter::exec_block(const Node& block,
                                          Value* return_value) {
  scopes_.emplace_back();
  Flow flow = Flow::kNormal;
  for (const auto& stmt : block.children) {
    flow = exec(*stmt, return_value);
    if (flow != Flow::kNormal) break;
  }
  scopes_.pop_back();
  return flow;
}

Interpreter::Flow Interpreter::exec(const Node& s, Value* return_value) {
  bump_steps();
  switch (s.kind) {
    case NodeKind::kCompoundStatement:
      return exec_block(s, return_value);
    case NodeKind::kDeclaration:
      exec_declaration(s);
      return Flow::kNormal;
    case NodeKind::kExpressionStatement:
      if (!s.children.empty()) eval(*s.child(0));
      return Flow::kNormal;
    case NodeKind::kIfStatement: {
      if (eval(*s.child(0)).truthy()) {
        return exec(*s.child(1), return_value);
      }
      if (s.child_count() == 3) return exec(*s.child(2), return_value);
      return Flow::kNormal;
    }
    case NodeKind::kWhileStatement: {
      while (eval(*s.child(0)).truthy()) {
        const Flow flow = exec(*s.child(1), return_value);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) return flow;
      }
      return Flow::kNormal;
    }
    case NodeKind::kDoStatement: {
      do {
        const Flow flow = exec(*s.child(0), return_value);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) return flow;
      } while (eval(*s.child(1)).truthy());
      return Flow::kNormal;
    }
    case NodeKind::kForStatement: {
      scopes_.emplace_back();
      const Node& init = *s.child(0);
      if (init.kind == NodeKind::kDeclaration) {
        exec_declaration(init);
      } else if (init.kind == NodeKind::kExpressionStatement &&
                 !init.children.empty()) {
        eval(*init.child(0));
      }
      Flow result = Flow::kNormal;
      for (;;) {
        if (s.child(1)->kind != NodeKind::kEmptyExpr &&
            !eval(*s.child(1)).truthy()) {
          break;
        }
        const Flow flow = exec(*s.child(3), return_value);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) {
          result = flow;
          break;
        }
        if (s.child(2)->kind != NodeKind::kEmptyExpr) eval(*s.child(2));
      }
      scopes_.pop_back();
      return result;
    }
    case NodeKind::kReturnStatement: {
      if (!s.children.empty()) {
        *return_value = eval(*s.child(0));
      } else {
        *return_value = Value::make_int(0);
      }
      return Flow::kReturn;
    }
    case NodeKind::kBreakStatement:
      return Flow::kBreak;
    case NodeKind::kContinueStatement:
      return Flow::kContinue;
    case NodeKind::kSwitchStatement: {
      const long long v = eval(*s.child(0)).as_int();
      const Node& body = *s.child(1);
      bool matched = false;
      for (const auto& case_stmt : body.children) {
        if (!matched) {
          if (case_stmt->text == "default") {
            matched = true;
          } else if (eval(*case_stmt->child(0)).as_int() == v) {
            matched = true;
          }
        }
        if (matched) {
          const std::size_t begin = case_stmt->text == "case" ? 1 : 0;
          for (std::size_t i = begin; i < case_stmt->children.size(); ++i) {
            const Flow flow = exec(*case_stmt->children[i], return_value);
            if (flow == Flow::kBreak) return Flow::kNormal;
            if (flow == Flow::kReturn) return flow;
          }
        }
      }
      return Flow::kNormal;
    }
    case NodeKind::kPreprocDirective:
      return Flow::kNormal;
    default:
      MR_CHECK(false, std::string("cannot execute node: ") +
                          ast::node_kind_name(s.kind));
  }
}

}  // namespace mpirical::interp
