// Tree-walking interpreter for the C subset produced by the corpus generator
// and the numerical benchmark suite.
//
// Supports: int/long/char and float/double scalars, fixed arrays, malloc/free
// (cell-addressed; see value.hpp), pointers, all the statement forms the
// parser accepts, printf (captured into a per-instance buffer), the libm
// functions numerical codes use, and rand/srand as a deterministic LCG.
//
// MPI calls are delegated to an MpiApi implementation (mpisim provides the
// multi-rank one); with a null MpiApi, any MPI call raises an error -- which
// is itself useful, as it makes "this program still needs its MPI calls"
// observable to tests.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cast/node.hpp"
#include "cinterp/value.hpp"

namespace mpirical::interp {

class Interpreter;

/// Interface the MPI runtime implements; receives evaluated arguments.
class MpiApi {
 public:
  virtual ~MpiApi() = default;
  virtual Value call(Interpreter& interp, const std::string& name,
                     std::vector<Value>& args) = 0;
};

struct InterpreterOptions {
  long long max_steps = 200'000'000;  // statement/expression budget
  int max_call_depth = 200;
  int argc = 1;
};

class Interpreter {
 public:
  /// `tu` must outlive the interpreter. `mpi` may be null (serial programs).
  Interpreter(const ast::Node& tu, MpiApi* mpi,
              InterpreterOptions options = {});

  /// Runs main(); returns its exit code.
  long long run_main();

  /// Everything printf produced.
  const std::string& output() const { return output_; }

  /// Appends to the captured output (used by MPI builtins like Abort).
  void append_output(const std::string& text) { output_ += text; }

 private:
  struct Scope {
    std::unordered_map<std::string, Cell> vars;
  };

  enum class Flow { kNormal, kBreak, kContinue, kReturn };

  void bump_steps();
  Cell& define(const std::string& name, Cell cell);
  Cell* lookup(const std::string& name);

  Value call_function(const std::string& name, std::vector<Value> args);
  Value call_builtin(const std::string& name, std::vector<Value>& args,
                     bool* handled);

  Value eval(const ast::Node& e);
  Cell eval_lvalue(const ast::Node& e);
  Flow exec(const ast::Node& s, Value* return_value);
  Flow exec_block(const ast::Node& block, Value* return_value);
  void exec_declaration(const ast::Node& decl);

  std::string format_printf(const std::string& format,
                            const std::vector<Value>& args) const;

  const ast::Node& tu_;
  MpiApi* mpi_;
  InterpreterOptions options_;
  std::unordered_map<std::string, const ast::Node*> functions_;
  std::vector<Scope> scopes_;
  std::unordered_map<std::string, Value> constants_;
  std::string output_;
  long long steps_ = 0;
  int depth_ = 0;
  unsigned long long rand_state_ = 1;
};

// MPI constant tags shared between the interpreter and the runtime.
inline constexpr long long kMpiCommWorld = 91;
inline constexpr long long kMpiInt = 1;
inline constexpr long long kMpiLong = 2;
inline constexpr long long kMpiFloat = 3;
inline constexpr long long kMpiDouble = 4;
inline constexpr long long kMpiChar = 5;
inline constexpr long long kMpiSum = 11;
inline constexpr long long kMpiProd = 12;
inline constexpr long long kMpiMin = 13;
inline constexpr long long kMpiMax = 14;
inline constexpr long long kMpiAnySource = -1;
inline constexpr long long kMpiAnyTag = -1;
inline constexpr long long kMpiSuccess = 0;

}  // namespace mpirical::interp
