// Runtime value model for the C interpreter.
//
// Every variable lives in a heap "box" (a shared vector of cells): scalars
// are 1-cell boxes, arrays are N-cell boxes, and MPI_Status is a 2-cell box
// (MPI_SOURCE, MPI_TAG). A pointer is a (box, offset) pair, which makes
// address-of, array decay, pointer arithmetic and malloc uniform.
//
// sizeof(...) evaluates to 1: the interpreter is cell-addressed, not
// byte-addressed, so `malloc(n * sizeof(double))` allocates n cells. This is
// the only deliberate divergence from C semantics and is what all corpus and
// benchmark programs rely on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace mpirical::interp {

struct Value;
using Box = std::shared_ptr<std::vector<Value>>;

enum class ValueKind { kInt, kDouble, kPointer };

struct Value {
  ValueKind kind = ValueKind::kInt;
  long long i = 0;
  double d = 0.0;
  Box box;          // pointer target (null for null pointers)
  long long offset = 0;

  static Value make_int(long long v) {
    Value out;
    out.kind = ValueKind::kInt;
    out.i = v;
    return out;
  }
  static Value make_double(double v) {
    Value out;
    out.kind = ValueKind::kDouble;
    out.d = v;
    return out;
  }
  static Value make_pointer(Box box, long long offset) {
    Value out;
    out.kind = ValueKind::kPointer;
    out.box = std::move(box);
    out.offset = offset;
    return out;
  }

  bool is_null_pointer() const {
    return kind == ValueKind::kPointer && box == nullptr;
  }

  double as_double() const {
    switch (kind) {
      case ValueKind::kInt: return static_cast<double>(i);
      case ValueKind::kDouble: return d;
      case ValueKind::kPointer: MR_CHECK(false, "pointer used as number");
    }
    return 0.0;
  }
  long long as_int() const {
    switch (kind) {
      case ValueKind::kInt: return i;
      case ValueKind::kDouble: return static_cast<long long>(d);
      case ValueKind::kPointer: MR_CHECK(false, "pointer used as integer");
    }
    return 0;
  }
  bool truthy() const {
    switch (kind) {
      case ValueKind::kInt: return i != 0;
      case ValueKind::kDouble: return d != 0.0;
      case ValueKind::kPointer: return box != nullptr;
    }
    return false;
  }
};

/// An lvalue: a cell inside a box.
struct Cell {
  Box box;
  long long offset = 0;

  Value& deref() const {
    MR_CHECK(box != nullptr, "null pointer dereference");
    MR_CHECK(offset >= 0 &&
                 offset < static_cast<long long>(box->size()),
             "out-of-bounds access at offset " + std::to_string(offset));
    return (*box)[static_cast<std::size_t>(offset)];
  }
};

Box make_box(std::size_t cells, ValueKind kind);

}  // namespace mpirical::interp
