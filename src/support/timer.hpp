// Monotonic elapsed-time timer for training logs and benches. Deliberately
// steady_clock (not wall time): durations must be immune to NTP slews and
// clock jumps, and every duration measurement in the repo routes through
// this class or obs::ScopedPhase so the clock choice lives in one place.
#pragma once

#include <chrono>

namespace mpirical {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mpirical
