// Reusable scratch arena for per-wave inference panels.
//
// The batched decode/encode engines allocate the same large flat buffers
// (padded embedding panels, per-projection activations, FFN hidden panels)
// once per wave. Drawing them from a per-thread bump arena instead of fresh
// vectors means a pool thread that processes many waves touches the
// allocator only while the arena grows to the steady-state wave footprint;
// after that, every wave is pointer arithmetic. reset() rewinds the cursors
// without releasing memory, and capacity is observable so tests can assert
// that repeated waves stop growing (tests/test_kernels.cpp stress test).
//
// Chunks never resize once created, so pointers handed out stay valid until
// the owning arena is destroyed -- reset() only invalidates them logically
// (the next wave will overwrite the bytes).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace mpirical {

class ScratchArena {
 public:
  /// Returns a float buffer of `n` elements valid until the next reset().
  /// Contents are unspecified (callers that need zeros memset themselves).
  /// Returns nullptr for n == 0.
  float* floats(std::size_t n) {
    if (n == 0) return nullptr;
    for (auto& chunk : chunks_) {
      if (chunk.data.size() - chunk.used >= n) {
        float* p = chunk.data.data() + chunk.used;
        chunk.used += n;
        return p;
      }
    }
    chunks_.emplace_back();
    Chunk& chunk = chunks_.back();
    chunk.data.resize(std::max(n, kMinChunkFloats));
    chunk.used = n;
    return chunk.data.data();
  }

  /// Rewinds every chunk cursor; capacity is retained for the next wave.
  void reset() {
    for (auto& chunk : chunks_) chunk.used = 0;
  }

  /// Total floats held across chunks (the steady-state wave footprint once
  /// growth stops).
  std::size_t capacity_floats() const {
    std::size_t total = 0;
    for (const auto& chunk : chunks_) total += chunk.data.size();
    return total;
  }

  std::size_t chunk_count() const { return chunks_.size(); }

  /// The calling thread's arena. Each pool worker (and the main thread) owns
  /// one, so waves running on the same thread reuse the same memory and
  /// concurrent waves on different threads never contend.
  static ScratchArena& local() {
    static thread_local ScratchArena arena;
    return arena;
  }

 private:
  // 64 Ki floats (256 KiB): one chunk comfortably holds a smoke-sized wave,
  // and production waves settle after a handful of chunks.
  static constexpr std::size_t kMinChunkFloats = std::size_t{1} << 16;

  struct Chunk {
    std::vector<float> data;
    std::size_t used = 0;
  };
  std::vector<Chunk> chunks_;
};

}  // namespace mpirical
