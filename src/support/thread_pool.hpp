// Work-sharing thread pool with a blocking parallel_for.
//
// The pool is the single parallelism primitive in the library: tensor GEMMs,
// attention, corpus generation sweeps and the simulated MPI runtime's
// collectives all decompose into parallel_for over index ranges.
//
// Dispatch model: each parallel_for publishes ONE stack-allocated job whose
// remaining work is a single atomic cursor. Persistent workers (and the
// calling thread) claim contiguous chunks by fetch_add on the cursor -- no
// per-chunk heap allocation, no per-chunk mutex, and exactly two pool-mutex
// acquisitions per participating thread per job (join and leave). Tiny
// ranges never touch the pool: when one chunk covers the range the body runs
// inline on the caller. Nested parallel_for is safe because an owner always
// drains its own cursor, so completion never depends on a worker being free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mpirical {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs body(lo, hi) over disjoint chunks covering [begin, end). Blocks
  /// until all chunks complete; exceptions from `body` are rethrown on the
  /// caller (first one wins). `grain` is the minimum chunk size; 0 picks an
  /// automatic grain (~4 chunks per participant). Ranges that fit in one
  /// chunk run inline on the caller without touching the pool.
  template <typename Body>
  void for_range(std::size_t begin, std::size_t end, Body&& body,
                 std::size_t grain = 0) {
    if (begin >= end) return;
    const std::size_t chunk = chunk_size(end - begin, grain);
    if (chunk >= end - begin) {
      body(begin, end);
      return;
    }
    using Fn = std::remove_reference_t<Body>;
    run_job(begin, end, chunk,
            [](void* ctx, std::size_t lo, std::size_t hi) {
              (*static_cast<Fn*>(ctx))(lo, hi);
            },
            const_cast<void*>(static_cast<const void*>(std::addressof(body))));
  }

  /// Runs body(i) for i in [begin, end), splitting the range into contiguous
  /// chunks across the pool. Blocks until all iterations complete. `grain`
  /// is the minimum chunk size; small ranges run inline on the caller.
  /// Exceptions from `body` are rethrown on the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide pool, sized from MPIRICAL_THREADS or hardware concurrency.
  static ThreadPool& global();

 private:
  struct Job;
  using RangeFn = void (*)(void* ctx, std::size_t lo, std::size_t hi);

  std::size_t chunk_size(std::size_t n, std::size_t grain) const;
  void run_job(std::size_t begin, std::size_t end, std::size_t chunk,
               RangeFn fn, void* ctx);
  void work_on(Job& job);
  Job* ready_job_locked() const;
  void worker_loop();

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a job has claimable chunks
  std::condition_variable done_cv_;  // owners: a job lost its last worker
  Job* jobs_ = nullptr;              // intrusive list of live jobs
  bool stopping_ = false;
};

/// Convenience wrappers over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

template <typename Body>
void parallel_for_range(std::size_t begin, std::size_t end, Body&& body,
                        std::size_t grain = 0) {
  ThreadPool::global().for_range(begin, end, std::forward<Body>(body), grain);
}

}  // namespace mpirical
