// Work-sharing thread pool with a blocking parallel_for.
//
// The pool is the single parallelism primitive in the library: tensor matmuls,
// attention, corpus generation sweeps and the simulated MPI runtime's
// collectives all decompose into parallel_for over index ranges.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mpirical {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs body(i) for i in [begin, end), splitting the range into contiguous
  /// chunks across the pool. Blocks until all iterations complete. `grain`
  /// is the minimum chunk size; small ranges run inline on the caller.
  /// Exceptions from `body` are rethrown on the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide pool, sized from MPIRICAL_THREADS or hardware concurrency.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void submit(std::function<void()> fn);

  std::vector<std::thread> workers_;
  std::vector<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience wrapper over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace mpirical
