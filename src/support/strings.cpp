#include "support/strings.hpp"

#include <cctype>

namespace mpirical {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < s.size()) out.emplace_back(s.substr(start));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string strip(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

int count_lines(std::string_view s) {
  if (s.empty()) return 0;
  int n = 0;
  for (char c : s) {
    if (c == '\n') ++n;
  }
  if (s.back() != '\n') ++n;
  return n;
}

}  // namespace mpirical
