// Diagnostics: precondition checks and error reporting used across the library.
//
// MR_CHECK(cond, msg)   -- throws mpirical::Error when `cond` is false. Used for
//                          conditions that depend on inputs (always on).
// MR_ASSERT(cond)       -- internal invariant; also always on (cheap checks only).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mpirical {

/// Exception type thrown by all library-level failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace mpirical

#define MR_CHECK(cond, msg)                                                \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::mpirical::detail::raise_check_failure(#cond, __FILE__, __LINE__,   \
                                              (msg));                      \
    }                                                                      \
  } while (false)

#define MR_ASSERT(cond) MR_CHECK((cond), "internal invariant violated")
