#include "support/env.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "support/check.hpp"

namespace mpirical::support {

long env_long(const char* name, long fallback, long min_value,
              long max_value) {
  MR_ASSERT(min_value <= max_value);
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  // Full-string parse: strtol stopping early (nothing consumed, or trailing
  // junk) is garbage, not a number to fall back from. strtol itself skips
  // leading whitespace; a strict knob value must not.
  MR_CHECK(end != raw && *end == '\0' &&
               (raw[0] == '-' || raw[0] == '+' ||
                (raw[0] >= '0' && raw[0] <= '9')),
           std::string(name) + "=\"" + raw + "\" is not an integer");
  // Overflow saturates strtol at LONG_MIN/LONG_MAX (errno == ERANGE); the
  // clamp below maps either extreme onto the documented bound.
  return std::clamp(v, min_value, max_value);
}

}  // namespace mpirical::support
