// Process-global state that must be mutated exactly once, at a documented
// point, instead of sprinkled through call sites.
#pragma once

namespace mpirical::support {

/// Ignores SIGPIPE process-wide -- exactly once, no matter how many callers
/// race here (std::call_once). With the default disposition a write to a
/// vanished peer kills the process; ignored, it surfaces as EPIPE from
/// write()/send(), which the shard and serve transports turn into a clean
/// "peer gone" false return. This is the ONLY place the library touches the
/// process signal table for SIGPIPE; the entry points that depend on it
/// (sharded process evaluation, shard worker startup, the serve server and
/// client) call this on construction rather than re-installing per
/// operation. Never restored: every transport in this codebase requires it,
/// and flipping dispositions back and forth across threads would race.
void ignore_sigpipe();

}  // namespace mpirical::support
