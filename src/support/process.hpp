// Process-global state that must be mutated exactly once, at a documented
// point, instead of sprinkled through call sites.
#pragma once

namespace mpirical::support {

/// Ignores SIGPIPE process-wide -- exactly once, no matter how many callers
/// race here (std::call_once). With the default disposition a write to a
/// vanished peer kills the process; ignored, it surfaces as EPIPE from
/// write()/send(), which the shard and serve transports turn into a clean
/// "peer gone" false return. This is the ONLY place the library touches the
/// process signal table for SIGPIPE; the entry points that depend on it
/// (sharded process evaluation, shard worker startup, the serve server and
/// client) call this on construction rather than re-installing per
/// operation. Never restored: every transport in this codebase requires it,
/// and flipping dispositions back and forth across threads would race.
void ignore_sigpipe();

/// Closes every open file descriptor >= `lowfd`. For a forked child between
/// fork() and exec(): the parent may hold arbitrarily many descriptors
/// (serving daemon sockets, mmapped snapshots, other workers' pipes), and a
/// fixed `for (fd = N; fd < 1024; ++fd) close(fd)` loop silently leaks any
/// fd above its ceiling into the child -- where a leaked pipe write-end
/// keeps a sibling's stream from ever reporting EOF. Tries close_range(2)
/// first, falls back to walking /proc/self/fd with raw syscalls, and only
/// then to a bounded close() loop up to the RLIMIT_NOFILE ceiling.
/// Async-signal-safe (no allocation, no stdio) -- safe in a fork child of a
/// multithreaded process.
void close_fds_from(int lowfd);

}  // namespace mpirical::support
