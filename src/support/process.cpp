#include "support/process.hpp"

#include <csignal>
#include <cstdint>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace mpirical::support {

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

namespace {

/// /proc/self/fd walk with raw syscalls only (opendir allocates, which is
/// off-limits in a fork child of a multithreaded process). Returns true if
/// the walk ran; closes every listed fd >= lowfd except the directory fd
/// itself.
bool close_fds_via_proc(int lowfd) {
#ifdef SYS_getdents64
  const int dir_fd =
      static_cast<int>(::open("/proc/self/fd", O_RDONLY | O_DIRECTORY));
  if (dir_fd < 0) return false;
  struct LinuxDirent64 {
    std::uint64_t d_ino;
    std::int64_t d_off;
    unsigned short d_reclen;
    unsigned char d_type;
    char d_name[];
  };
  char buf[4096];
  // Closing entries mid-walk can shift the directory stream, so rewind and
  // rescan until a full pass closes nothing new (converges in <= 2 passes:
  // after the first, only dir_fd and fds below lowfd remain).
  for (bool closed_any = true; closed_any;) {
    closed_any = false;
    ::lseek(dir_fd, 0, SEEK_SET);
    long n;
    while ((n = ::syscall(SYS_getdents64, dir_fd, buf, sizeof(buf))) > 0) {
      for (long off = 0; off < n;) {
        const auto* ent = reinterpret_cast<const LinuxDirent64*>(buf + off);
        off += ent->d_reclen;
        // Parse the numeric name by hand: strtol is not async-signal-safe
        // everywhere, and names here are only ".", "..", or digits.
        int fd = 0;
        bool numeric = ent->d_name[0] != '\0';
        for (const char* p = ent->d_name; *p != '\0'; ++p) {
          if (*p < '0' || *p > '9') {
            numeric = false;
            break;
          }
          fd = fd * 10 + (*p - '0');
        }
        if (numeric && fd >= lowfd && fd != dir_fd) {
          ::close(fd);
          closed_any = true;
        }
      }
    }
  }
  ::close(dir_fd);
  return true;
#else
  (void)lowfd;
  return false;
#endif
}

}  // namespace

void close_fds_from(int lowfd) {
#ifdef SYS_close_range
  if (::syscall(SYS_close_range, static_cast<unsigned>(lowfd), ~0U, 0U) == 0) {
    return;
  }
#endif
  if (close_fds_via_proc(lowfd)) return;
  // Last resort: bounded loop up to the descriptor ceiling.
  struct rlimit rl;
  long max_fd = 1 << 16;
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 &&
      rl.rlim_cur != RLIM_INFINITY) {
    max_fd = static_cast<long>(rl.rlim_cur);
  }
  for (long fd = lowfd; fd < max_fd; ++fd) {
    ::close(static_cast<int>(fd));
  }
}

}  // namespace mpirical::support
