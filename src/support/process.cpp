#include "support/process.hpp"

#include <csignal>
#include <mutex>

namespace mpirical::support {

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

}  // namespace mpirical::support
