#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "support/env.hpp"

namespace mpirical {

// A parallel_for invocation, stack-owned by the calling thread. Workers claim
// [cursor, cursor+chunk) slices via fetch_add until the cursor passes `end`.
// The owner participates too, so the job completes even with zero workers.
//
// Lifetime: the job is only reachable through the pool's intrusive list.
// Workers join (active++) while holding the pool mutex, touch the job only
// between join and leave, and leave (active--) while holding the mutex again.
// The owner unlinks the job and then waits under the same mutex for
// active == 0, so no worker can hold a dangling pointer.
struct ThreadPool::Job {
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  RangeFn fn = nullptr;
  void* ctx = nullptr;
  int active = 0;  // workers currently inside work_on(); guarded by pool mu_
  std::exception_ptr error;  // first failure; guarded by pool mu_
  Job* next = nullptr;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::chunk_size(std::size_t n, std::size_t grain) const {
  if (workers_.empty()) return n;  // no pool: always inline
  // ~4 claimable chunks per participant balances dynamic load against cursor
  // traffic; `grain` puts a floor under the chunk so tiny bodies stay cheap.
  const std::size_t participants = workers_.size() + 1;
  const std::size_t auto_chunk = (n + participants * 4 - 1) / (participants * 4);
  return std::max(grain, std::max<std::size_t>(1, auto_chunk));
}

ThreadPool::Job* ThreadPool::ready_job_locked() const {
  for (Job* j = jobs_; j != nullptr; j = j->next) {
    if (j->cursor.load(std::memory_order_relaxed) < j->end) return j;
  }
  return nullptr;
}

void ThreadPool::work_on(Job& job) {
  for (;;) {
    const std::size_t lo =
        job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
    if (lo >= job.end) break;
    const std::size_t hi = std::min(job.end, lo + job.chunk);
    try {
      job.fn(job.ctx, lo, hi);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!job.error) job.error = std::current_exception();
      }
      // Abandon unclaimed chunks; in-flight ones finish on their own.
      job.cursor.store(job.end, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return stopping_ || ready_job_locked() != nullptr; });
      if (stopping_) return;
      job = ready_job_locked();
      if (!job) continue;
      ++job->active;
    }
    work_on(*job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--job->active == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_job(std::size_t begin, std::size_t end, std::size_t chunk,
                         RangeFn fn, void* ctx) {
  Job job;
  job.end = end;
  job.chunk = chunk;
  job.cursor.store(begin, std::memory_order_relaxed);
  job.fn = fn;
  job.ctx = ctx;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job.next = jobs_;
    jobs_ = &job;
  }
  work_cv_.notify_all();

  work_on(job);

  {
    std::unique_lock<std::mutex> lock(mu_);
    Job** link = &jobs_;
    while (*link != &job) link = &(*link)->next;
    *link = job.next;
    done_cv_.wait(lock, [&job] { return job.active == 0; });
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  for_range(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

ThreadPool& ThreadPool::global() {
  // MPIRICAL_THREADS: 0 (the default) sizes the pool from the hardware;
  // explicit values clamp to [0, 1024]; garbage throws out of the first
  // ThreadPool::global() call (support::env_long) instead of silently
  // meaning "auto".
  static ThreadPool pool(static_cast<std::size_t>(
      support::env_long("MPIRICAL_THREADS", 0, 0, 1024)));
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

}  // namespace mpirical
