#include "support/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "support/check.hpp"

namespace mpirical {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task.fn();
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(fn)});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  const std::size_t max_chunks = workers_.size() * 4;
  std::size_t chunks = (n + grain - 1) / grain;
  if (chunks > max_chunks) chunks = max_chunks;
  if (chunks <= 1 || workers_.empty()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  // Completion state is shared (not stack-owned): workers may still touch
  // the mutex/cv after the waiter observes remaining == 0 and returns, so
  // the last shared_ptr holder -- possibly a worker -- destroys it.
  struct SharedState {
    std::atomic<std::size_t> remaining;
    std::exception_ptr first_error;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<SharedState>();
  state->remaining.store(chunks);

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    submit([state, &body, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->first_error) {
          state->first_error = std::current_exception();
        }
      }
      if (state->remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    });
  }

  // Help drain the queue while waiting so nested parallel_for cannot deadlock.
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.back());
        queue_.pop_back();
      }
    }
    if (task.fn) {
      task.fn();
      continue;
    }
    std::unique_lock<std::mutex> lock(state->mu);
    if (state->remaining.load() == 0) break;
    state->cv.wait_for(lock, std::chrono::milliseconds(1));
    if (state->remaining.load() == 0) break;
  }

  if (state->first_error) std::rethrow_exception(state->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("MPIRICAL_THREADS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return static_cast<std::size_t>(0);
  }());
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

}  // namespace mpirical
