// Strict numeric environment readers.
//
// Every numeric MPIRICAL_* knob used to go through std::atol, which returns
// 0 on garbage -- MPIRICAL_EVAL_SHARDS=abc silently meant "1 shard" and a
// typo'd wave size silently changed decode wave membership (and therefore
// which kernel paths run). env_long is the single replacement: unset/empty
// means the documented fallback, anything that is not a full integer throws
// loudly (naming the variable and the offending value), and in-range values
// clamp to the caller's documented [min, max].
#pragma once

namespace mpirical::support {

/// Reads `name` from the environment as a base-10 integer.
///  - unset or empty          -> `fallback` (returned unclamped; callers pass
///                               an in-range default)
///  - not a full integer      -> throws Error ("MPIRICAL_FOO=\"abc\" ...");
///                               trailing junk ("5x", "5 ") counts as garbage
///  - parses but out of range -> clamped into [min_value, max_value]
///    (including values overflowing long)
long env_long(const char* name, long fallback, long min_value, long max_value);

}  // namespace mpirical::support
