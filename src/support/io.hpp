// Error-checked whole-file I/O, shared by checkpoint/snapshot code and the
// benches (previously duplicated across core/model.cpp and bench helpers).
#pragma once

#include <string>

namespace mpirical::io {

/// Reads an entire file as bytes. Throws Error (with the path) when the file
/// cannot be opened or read.
std::string read_file(const std::string& path);

/// Writes `data` to `path`, truncating. Throws Error (with the path) when
/// the file cannot be created or the write fails.
void write_file(const std::string& path, const std::string& data);

/// True when `path` exists and is a regular file.
bool file_exists(const std::string& path);

/// Reads the first `n` bytes of a file (fewer if the file is shorter);
/// returns empty when the file cannot be opened. Used for format sniffing.
std::string read_prefix(const std::string& path, std::size_t n);

}  // namespace mpirical::io
