// Error-checked whole-file I/O, shared by checkpoint/snapshot code and the
// benches (previously duplicated across core/model.cpp and bench helpers).
#pragma once

#include <string>

namespace mpirical::io {

/// RAII mkstemp file: created from `path_template` (which must end in
/// "XXXXXX"), written through the ORIGINAL descriptor (no close-then-reopen
/// window where another process could swap the name), and unlinked on
/// destruction -- so a temp file never outlives its owner even when an
/// exception unwinds past it. The shard layer's worker-snapshot files are
/// the motivating user: the pre-RAII code leaked /tmp files on every
/// throwing path and re-opened the mkstemp name by path.
class TempFile {
 public:
  /// Creates the file via mkstemp. Throws Error when creation fails.
  explicit TempFile(const std::string& path_template);
  ~TempFile();

  TempFile(TempFile&& other) noexcept;
  TempFile& operator=(TempFile&& other) noexcept;
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;

  const std::string& path() const { return path_; }

  /// Appends `data` through the mkstemp descriptor. Throws Error when the
  /// write fails (the destructor still unlinks the partial file).
  void write(const std::string& data);

  /// Closes the descriptor, keeping the file on disk (e.g. for other
  /// processes to open/mmap by name). Idempotent.
  void close_fd();

  /// Unlinks the file now instead of at destruction (the content stays
  /// alive for processes that already mapped it). Idempotent.
  void unlink_now();

 private:
  std::string path_;
  int fd_ = -1;
};

/// Reads an entire file as bytes. Throws Error (with the path) when the file
/// cannot be opened or read.
std::string read_file(const std::string& path);

/// Writes `data` to `path`, truncating. Throws Error (with the path) when
/// the file cannot be created or the write fails.
void write_file(const std::string& path, const std::string& data);

/// True when `path` exists and is a regular file.
bool file_exists(const std::string& path);

/// Appends `line` plus a trailing newline to `path` as ONE write() on an
/// O_APPEND descriptor, so concurrent appenders (two smoke runs sharing a
/// BENCH_*.json, a stats dump racing a bench record) never interleave
/// partial lines and a crash mid-append cannot leave a torn record from a
/// buffered stream. Throws Error when the file cannot be opened or written.
void append_line(const std::string& path, const std::string& line);

/// Reads the first `n` bytes of a file (fewer if the file is shorter);
/// returns empty when the file cannot be opened. Used for format sniffing.
std::string read_prefix(const std::string& path, std::size_t n);

}  // namespace mpirical::io
