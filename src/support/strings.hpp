// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mpirical {

/// Splits `s` on `sep` (single character). Keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` into lines (LF separated; a trailing newline does not produce a
/// final empty line).
std::vector<std::string> split_lines(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string strip(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// True if `s` contains `needle`.
bool contains(std::string_view s, std::string_view needle);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

/// Counts lines in `s` (number of LF + 1 for a non-empty tail; empty -> 0).
int count_lines(std::string_view s);

}  // namespace mpirical
