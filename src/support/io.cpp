#include "support/io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <stdlib.h>
#include <unistd.h>

#include "support/check.hpp"

namespace mpirical::io {

TempFile::TempFile(const std::string& path_template) {
  std::vector<char> buf(path_template.begin(), path_template.end());
  buf.push_back('\0');
  fd_ = ::mkstemp(buf.data());
  MR_CHECK(fd_ >= 0, "mkstemp failed for " + path_template + ": " +
                         std::strerror(errno));
  path_.assign(buf.data());
}

TempFile::~TempFile() {
  close_fd();
  unlink_now();
}

TempFile::TempFile(TempFile&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_) {
  other.path_.clear();
  other.fd_ = -1;
}

TempFile& TempFile::operator=(TempFile&& other) noexcept {
  if (this != &other) {
    close_fd();
    unlink_now();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    other.path_.clear();
    other.fd_ = -1;
  }
  return *this;
}

void TempFile::write(const std::string& data) {
  MR_CHECK(fd_ >= 0, "TempFile descriptor already closed: " + path_);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n < 0 && errno == EINTR) continue;
    MR_CHECK(n > 0, "failed writing temp file " + path_ + ": " +
                        std::strerror(errno));
    off += static_cast<std::size_t>(n);
  }
}

void TempFile::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TempFile::unlink_now() {
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MR_CHECK(in.good(), "cannot open file for reading: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  MR_CHECK(!in.bad(), "failed reading file: " + path);
  return os.str();
}

void write_file(const std::string& path, const std::string& data) {
  // Write-to-temp + rename, NOT in-place truncation: snapshot loads are
  // mmap views into the target inode, so truncating a file a live model
  // still maps would SIGBUS (or silently mutate) that model's weights.
  // rename() atomically swaps the name onto the new inode while existing
  // mappings keep the old one alive.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    MR_CHECK(out.good(), "cannot open file for writing: " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    MR_CHECK(out.good(), "failed writing file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    MR_CHECK(false, "cannot rename " + tmp + " over " + path);
  }
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void append_line(const std::string& path, const std::string& line) {
  // O_APPEND + ONE write() per record: the kernel makes the offset-seek and
  // the write atomic against every other O_APPEND writer of the same file,
  // so two concurrent smoke runs (or a run that dies mid-call) can never
  // interleave partial lines -- the guarantee std::ofstream's buffered
  // operator<< never gave.
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  } while (fd < 0 && errno == EINTR);
  MR_CHECK(fd >= 0, "cannot open file for appending: " + path);
  std::string record = line;
  record.push_back('\n');
  std::size_t off = 0;
  while (off < record.size()) {
    const ssize_t n = ::write(fd, record.data() + off, record.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      MR_CHECK(false, "failed appending to file: " + path);
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

std::string read_prefix(const std::string& path, std::size_t n) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::string buf(n, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(n));
  buf.resize(static_cast<std::size_t>(in.gcount()));
  return buf;
}

}  // namespace mpirical::io
