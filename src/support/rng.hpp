// Deterministic random number generation.
//
// All stochastic behaviour in the library (corpus synthesis, dataset splits,
// weight initialization, training shuffles) flows through Rng so that every
// experiment is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace mpirical {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n) {
    MR_CHECK(n > 0, "next_below requires positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    MR_CHECK(lo <= hi, "next_int requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Standard normal via Box-Muller (one value per call; no caching for
  /// simplicity/determinism).
  double next_gaussian();

  /// True with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element (vector must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    MR_CHECK(!v.empty(), "pick from empty vector");
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  /// Sample an index from unnormalized non-negative weights.
  std::size_t pick_weighted(const std::vector<double>& weights);

  /// `n` standard-normal floats (raw kernel inputs in tests and benches).
  std::vector<float> gaussian_vec(std::size_t n) {
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(next_gaussian());
    return v;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Base seed shared by every randomized test in the suite. Defaults to a
/// fixed constant so plain `ctest` runs are reproducible; overridable with
/// the MPIRICAL_TEST_SEED environment variable (read once, first use) to
/// re-roll the whole suite or replay a failure. Failing tests print this
/// value (see tests/testing.hpp).
std::uint64_t test_seed_base();

/// Rng for a randomized test: the global base seed mixed with a per-call-site
/// `salt` so tests draw independent streams while staying replayable from
/// the single base seed.
Rng test_rng(std::uint64_t salt);

}  // namespace mpirical
