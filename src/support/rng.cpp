#include "support/rng.hpp"

#include <cmath>

namespace mpirical {

double Rng::next_gaussian() {
  // Box-Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  const double two_pi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

std::size_t Rng::pick_weighted(const std::vector<double>& weights) {
  MR_CHECK(!weights.empty(), "pick_weighted from empty weights");
  double total = 0.0;
  for (double w : weights) {
    MR_CHECK(w >= 0.0, "pick_weighted requires non-negative weights");
    total += w;
  }
  MR_CHECK(total > 0.0, "pick_weighted requires positive total weight");
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace mpirical
