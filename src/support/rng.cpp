#include "support/rng.hpp"

#include <cmath>
#include <cstdlib>

namespace mpirical {

double Rng::next_gaussian() {
  // Box-Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  const double two_pi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

std::size_t Rng::pick_weighted(const std::vector<double>& weights) {
  MR_CHECK(!weights.empty(), "pick_weighted from empty weights");
  double total = 0.0;
  for (double w : weights) {
    MR_CHECK(w >= 0.0, "pick_weighted requires non-negative weights");
    total += w;
  }
  MR_CHECK(total > 0.0, "pick_weighted requires positive total weight");
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t test_seed_base() {
  static const std::uint64_t base = [] {
    if (const char* env = std::getenv("MPIRICAL_TEST_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 0);
      if (end != env) return static_cast<std::uint64_t>(v);
    }
    return static_cast<std::uint64_t>(0x5EEDBA5EDA7A1234ULL);
  }();
  return base;
}

Rng test_rng(std::uint64_t salt) {
  // splitmix-style finalization of the mix keeps nearby salts uncorrelated.
  std::uint64_t z = test_seed_base() + salt * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace mpirical
