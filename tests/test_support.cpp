#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/env.hpp"
#include "support/io.hpp"
#include "support/process.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    MR_CHECK(false, "context message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

TEST(Check, PassesSilently) { MR_CHECK(1 + 1 == 2, "never shown"); }

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  MR_SEEDED_RNG(rng, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  MR_SEEDED_RNG(rng, 7);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NextIntInclusiveBounds) {
  MR_SEEDED_RNG(rng, 3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, NextDoubleUnitInterval) {
  MR_SEEDED_RNG(rng, 11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  MR_SEEDED_RNG(rng, 13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  MR_SEEDED_RNG(rng, 5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, PickWeightedRespectsZeroWeight) {
  MR_SEEDED_RNG(rng, 9);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.pick_weighted(weights), 1u);
  }
}

TEST(Rng, PickWeightedCoversSupport) {
  MR_SEEDED_RNG(rng, 17);
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 6000; ++i) {
    ++counts[rng.pick_weighted(weights)];
  }
  EXPECT_GT(counts[0], 500);
  EXPECT_GT(counts[2], counts[0]);
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw Error("boom");
                   }),
      Error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  std::atomic<int> total{0};
  ThreadPool pool(2);
  pool.parallel_for(0, 3, [&](std::size_t) { total++; }, /*grain=*/100);
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ForRangeCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.for_range(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ForRangeChunksRespectGrain) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.for_range(
      3, 103,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      /*grain=*/7);
  std::size_t covered = 0;
  std::size_t below_grain = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LT(lo, hi);
    if (hi - lo < 7) ++below_grain;
    covered += hi - lo;
  }
  EXPECT_EQ(covered, 100u);
  // Only the tail chunk may be smaller than the requested grain.
  EXPECT_LE(below_grain, 1u);
}

TEST(ThreadPool, ConcurrentParallelForCallsFromManyThreads) {
  // Several external threads issuing parallel_for against the same pool must
  // each see their own range covered exactly once.
  ThreadPool pool(3);
  constexpr int kCallers = 6;
  constexpr std::size_t kRange = 5000;
  std::vector<std::atomic<std::size_t>> sums(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      for (int round = 0; round < 5; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(0, kRange, [&](std::size_t i) {
          sum.fetch_add(i, std::memory_order_relaxed);
        });
        sums[c].store(sum.load());
      }
    });
  }
  for (auto& t : callers) t.join();
  const std::size_t want = kRange * (kRange - 1) / 2;
  for (const auto& s : sums) EXPECT_EQ(s.load(), want);
}

TEST(ThreadPool, ExceptionLeavesPoolUsable) {
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.parallel_for(0, 1000,
                          [](std::size_t i) {
                            if (i == 321) throw Error("boom");
                          }),
        Error);
    std::atomic<int> total{0};
    pool.parallel_for(0, 100, [&](std::size_t) { total++; });
    EXPECT_EQ(total.load(), 100);
  }
}

TEST(ThreadPool, ExceptionInsideChunkedBody) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_range(0, 64,
                              [](std::size_t lo, std::size_t) {
                                if (lo >= 32) throw Error("chunk boom");
                              },
                              /*grain=*/4),
               Error);
}

TEST(ThreadPool, GrainEdgeCases) {
  ThreadPool pool(2);
  // grain of zero selects the automatic chunk size.
  std::atomic<int> total{0};
  pool.parallel_for(0, 100, [&](std::size_t) { total++; }, /*grain=*/0);
  EXPECT_EQ(total.load(), 100);
  // grain larger than the range runs inline.
  total = 0;
  pool.for_range(0, 5, [&](std::size_t lo, std::size_t hi) {
    total += static_cast<int>(hi - lo);
  }, /*grain=*/1000000);
  EXPECT_EQ(total.load(), 5);
  // single-element range.
  total = 0;
  pool.parallel_for(41, 42, [&](std::size_t i) {
    total += static_cast<int>(i);
  });
  EXPECT_EQ(total.load(), 41);
}

TEST(ThreadPool, DeepNestingStress) {
  std::atomic<int> total{0};
  parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 4, [&](std::size_t) {
      parallel_for(0, 4, [&](std::size_t) { total++; });
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitLines) {
  const auto lines = split_lines("one\ntwo\nthree\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "three");
  EXPECT_EQ(split_lines("no newline").size(), 1u);
  EXPECT_TRUE(split_lines("").empty());
}

TEST(Strings, JoinInverseOfSplit) {
  EXPECT_EQ(join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, Strip) {
  EXPECT_EQ(strip("  hello \t\n"), "hello");
  EXPECT_EQ(strip(""), "");
  EXPECT_EQ(strip("   "), "");
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(starts_with("MPI_Send", "MPI_"));
  EXPECT_FALSE(starts_with("MP", "MPI_"));
  EXPECT_TRUE(ends_with("file.c", ".c"));
  EXPECT_TRUE(contains("hello world", "lo wo"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("xyz", "q", "r"), "xyz");
}

TEST(Strings, CountLines) {
  EXPECT_EQ(count_lines(""), 0);
  EXPECT_EQ(count_lines("one"), 1);
  EXPECT_EQ(count_lines("one\n"), 1);
  EXPECT_EQ(count_lines("one\ntwo"), 2);
}

TEST(Timer, Monotonic) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

// ---- env_long ---------------------------------------------------------------

TEST(EnvLong, UnsetAndEmptyFallBack) {
  testutil::ScopedEnv unset("MPIRICAL_TEST_ENV_LONG", nullptr);
  EXPECT_EQ(support::env_long("MPIRICAL_TEST_ENV_LONG", 42, 0, 100), 42);
  testutil::ScopedEnv empty("MPIRICAL_TEST_ENV_LONG", "");
  EXPECT_EQ(support::env_long("MPIRICAL_TEST_ENV_LONG", 42, 0, 100), 42);
}

TEST(EnvLong, ParsesFullIntegers) {
  testutil::ScopedEnv env("MPIRICAL_TEST_ENV_LONG", "17");
  EXPECT_EQ(support::env_long("MPIRICAL_TEST_ENV_LONG", 1, 0, 100), 17);
  testutil::ScopedEnv neg("MPIRICAL_TEST_ENV_LONG", "-3");
  EXPECT_EQ(support::env_long("MPIRICAL_TEST_ENV_LONG", 1, -10, 100), -3);
}

TEST(EnvLong, GarbageThrowsLoudlyInsteadOfMeaningZero) {
  // The std::atol predecessor read all of these as 0 -- the bug class the
  // strict parser exists to kill.
  for (const char* bad : {"abc", "5x", "5 ", " 5", "1.5", "--2", ""}) {
    if (bad[0] == '\0') continue;  // empty is a documented fallback, tested above
    testutil::ScopedEnv env("MPIRICAL_TEST_ENV_LONG", bad);
    EXPECT_THROW(support::env_long("MPIRICAL_TEST_ENV_LONG", 1, 0, 100),
                 Error)
        << "value \"" << bad << "\" should not parse";
  }
}

TEST(EnvLong, OutOfRangeClampsIncludingOverflow) {
  testutil::ScopedEnv big("MPIRICAL_TEST_ENV_LONG", "999999");
  EXPECT_EQ(support::env_long("MPIRICAL_TEST_ENV_LONG", 1, 1, 64), 64);
  testutil::ScopedEnv small("MPIRICAL_TEST_ENV_LONG", "-7");
  EXPECT_EQ(support::env_long("MPIRICAL_TEST_ENV_LONG", 1, 1, 64), 1);
  // Saturates strtol (errno == ERANGE) and still clamps to the bound.
  testutil::ScopedEnv huge("MPIRICAL_TEST_ENV_LONG",
                           "99999999999999999999999999999");
  EXPECT_EQ(support::env_long("MPIRICAL_TEST_ENV_LONG", 1, 1, 64), 64);
}

// ---- io::TempFile (the worker-snapshot leak guard) --------------------------

TEST(TempFile, WritesThroughOriginalFdAndUnlinksOnDestruction) {
  std::string path;
  {
    io::TempFile tmp("/tmp/mpirical_test_tmp_XXXXXX");
    path = tmp.path();
    tmp.write("hello ");
    tmp.write("world");
    EXPECT_TRUE(io::file_exists(path));
    EXPECT_EQ(io::read_file(path), "hello world");
  }
  EXPECT_FALSE(io::file_exists(path));
}

TEST(TempFile, UnlinksWhenAnExceptionUnwindsPastIt) {
  // The regression this guards: evaluate_sharded_processes used to leak its
  // worker-snapshot temp file on every throwing path.
  std::string path;
  try {
    io::TempFile tmp("/tmp/mpirical_test_tmp_XXXXXX");
    path = tmp.path();
    tmp.write("doomed");
    throw Error("simulated driver failure");
  } catch (const Error&) {
  }
  ASSERT_FALSE(path.empty());
  EXPECT_FALSE(io::file_exists(path));
}

TEST(TempFile, CloseFdKeepsFileForByNameConsumers) {
  io::TempFile tmp("/tmp/mpirical_test_tmp_XXXXXX");
  tmp.write("mapped by workers");
  tmp.close_fd();
  tmp.close_fd();  // idempotent
  EXPECT_TRUE(io::file_exists(tmp.path()));
  EXPECT_EQ(io::read_file(tmp.path()), "mapped by workers");
}

TEST(TempFile, UnlinkNowIsIdempotentAndDisarmsDestructor) {
  io::TempFile tmp("/tmp/mpirical_test_tmp_XXXXXX");
  const std::string path = tmp.path();
  tmp.unlink_now();
  tmp.unlink_now();
  EXPECT_FALSE(io::file_exists(path));
}

TEST(TempFile, MoveTransfersOwnership) {
  std::string path;
  {
    io::TempFile outer = [] {
      io::TempFile inner("/tmp/mpirical_test_tmp_XXXXXX");
      inner.write("moved");
      return inner;
    }();
    path = outer.path();
    EXPECT_TRUE(io::file_exists(path));
    EXPECT_EQ(io::read_file(path), "moved");
  }
  EXPECT_FALSE(io::file_exists(path));
}

TEST(TempFile, RejectsBadTemplate) {
  EXPECT_THROW(io::TempFile("/nonexistent-dir/nope_XXXXXX"), Error);
}

// ---- ignore_sigpipe ---------------------------------------------------------

TEST(IgnoreSigpipe, WriteToClosedPipeFailsWithEpipeInsteadOfKilling) {
  support::ignore_sigpipe();
  support::ignore_sigpipe();  // idempotent (call_once underneath)
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  errno = 0;
  const ssize_t n = ::write(fds[1], "x", 1);
  EXPECT_EQ(n, -1);
  EXPECT_EQ(errno, EPIPE);  // still alive to observe it
  ::close(fds[1]);
}

}  // namespace
}  // namespace mpirical
