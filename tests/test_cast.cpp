#include <gtest/gtest.h>

#include "cast/node.hpp"
#include "cast/printer.hpp"
#include "corpus/generator.hpp"
#include "cparse/parser.hpp"
#include "support/rng.hpp"
#include "xsbt/xsbt.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

using ast::Node;
using ast::NodeKind;

TEST(Node, KindNamesMatchTreeSitterStyle) {
  EXPECT_STREQ(ast::node_kind_name(NodeKind::kCompoundStatement),
               "compound_statement");
  EXPECT_STREQ(ast::node_kind_name(NodeKind::kCallExpression),
               "call_expression");
  EXPECT_STREQ(ast::node_kind_name(NodeKind::kParameterDeclaration),
               "parameter_declaration");
}

TEST(Node, CloneIsDeepAndEqual) {
  const auto tree = parse::parse_translation_unit(
      "int main() { int x = 1 + 2; return x; }");
  const auto copy = ast::clone(*tree);
  EXPECT_TRUE(ast::structurally_equal(*tree, *copy));
  // Mutating the copy does not affect the original.
  copy->child(0)->text = "renamed";
  EXPECT_FALSE(ast::structurally_equal(*tree, *copy));
}

TEST(Node, StructuralEqualityIgnoresLines) {
  const auto a = parse::parse_translation_unit("int main() { return 0; }");
  const auto b =
      parse::parse_translation_unit("int main()\n{\n return 0;\n }");
  EXPECT_TRUE(ast::structurally_equal(*a, *b));
}

TEST(Node, CollectCallsFindsAllInOrder) {
  const auto tree = parse::parse_translation_unit(
      "int main() { f(); g(h()); return 0; }");
  const auto calls = ast::collect_calls(*tree);
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0].callee, "f");
  EXPECT_EQ(calls[1].callee, "g");
  EXPECT_EQ(calls[2].callee, "h");
}

TEST(Node, CollectMpiCallsFiltersPrefix) {
  const auto tree = parse::parse_translation_unit(
      "int main() { printf(\"x\"); MPI_Init(&argc, &argv); MPI_Finalize(); "
      "return 0; }");
  const auto calls = ast::collect_mpi_calls(*tree);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].callee, "MPI_Init");
  EXPECT_EQ(calls[1].callee, "MPI_Finalize");
}

TEST(Node, NodeCountPositive) {
  const auto tree = parse::parse_translation_unit("int main() { return 0; }");
  EXPECT_GT(ast::node_count(*tree), 5u);
}

TEST(Printer, CanonicalFormatting) {
  const auto tree = parse::parse_translation_unit(
      "int main(){int x=1;if(x){x=x+1;}return x;}");
  const std::string code = ast::print_code(*tree);
  EXPECT_EQ(code,
            "int main() {\n"
            "    int x = 1;\n"
            "    if (x) {\n"
            "        x = x + 1;\n"
            "    }\n"
            "    return x;\n"
            "}\n");
}

TEST(Printer, BracesAddedToUnbracedBodies) {
  const auto tree = parse::parse_translation_unit(
      "int main() { if (x) y = 1; else y = 2; return y; }");
  const std::string code = ast::print_code(*tree);
  EXPECT_NE(code.find("if (x) {"), std::string::npos);
  EXPECT_NE(code.find("} else {"), std::string::npos);
}

TEST(Printer, ForHeaderSpacing) {
  const auto tree = parse::parse_translation_unit(
      "int main() { for (i = 0; i < n; i++) { } return 0; }");
  EXPECT_NE(ast::print_code(*tree).find("for (i = 0; i < n; i++) {"),
            std::string::npos);
}

TEST(Printer, EmptyForClauses) {
  const auto tree = parse::parse_translation_unit(
      "int main() { for (;;) { break; } return 0; }");
  EXPECT_NE(ast::print_code(*tree).find("for (; ; ) {"), std::string::npos);
}

TEST(Printer, ExpressionRendering) {
  EXPECT_EQ(ast::print_expression(*parse::parse_expression_string(
                "a+b*c")),
            "a + b * c");
  EXPECT_EQ(ast::print_expression(*parse::parse_expression_string(
                "(a+b)*c")),
            "(a + b) * c");
  EXPECT_EQ(ast::print_expression(*parse::parse_expression_string(
                "f(x,y)[3]->tag")),
            "f(x, y)[3]->tag");
  EXPECT_EQ(ast::print_expression(*parse::parse_expression_string(
                "(double)(n%10)/10.0")),
            "(double)(n % 10) / 10.0");
  EXPECT_EQ(ast::print_expression(*parse::parse_expression_string(
                "a ? b : c")),
            "a ? b : c");
  EXPECT_EQ(ast::print_expression(*parse::parse_expression_string(
                "-x++")),
            "-x++");
}

TEST(Printer, StandardizationKillsBlankLinesAndIndentNoise) {
  const std::string messy =
      "#include <stdio.h>\n\n\nint main() {\n\n      int   x=3;\n\n   "
      "return x;\n}\n";
  const auto tree = parse::parse_translation_unit(messy);
  const std::string code = ast::print_code(*tree);
  EXPECT_EQ(code,
            "#include <stdio.h>\n"
            "int main() {\n"
            "    int x = 3;\n"
            "    return x;\n"
            "}\n");
}

TEST(Printer, DirectivesInsideFunctionsPreserved) {
  const auto tree = parse::parse_translation_unit("int main() { return 0; }");
  // Statement-level directives round-trip through print.
  (void)tree;
  const auto tree2 = parse::parse_translation_unit(
      "int main() {\n#define X 1\n    return 0;\n}\n");
  EXPECT_NE(ast::print_code(*tree2).find("#define X 1"), std::string::npos);
}

TEST(Xsbt, TagsBalance) {
  const auto tree = parse::parse_translation_unit(
      "int main() { while (x) { f(x); } return 0; }");
  const auto tokens = xsbt::xsbt_tokens(*tree);
  int depth = 0;
  for (const auto& t : tokens) {
    if (t.size() > 2 && t[1] == '/') {
      --depth;
    } else if (t.back() == '>' && t[t.size() - 2] != '/') {
      ++depth;
    }
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Xsbt, DropsTerminalsKeepsStructure) {
  const auto tree = parse::parse_translation_unit(
      "int main() { x = y + 1; return x; }");
  const std::string s = xsbt::xsbt_string(*tree);
  EXPECT_NE(s.find("assignment_expression"), std::string::npos);
  EXPECT_NE(s.find("binary_expression"), std::string::npos);
  EXPECT_EQ(s.find("identifier"), std::string::npos);
  EXPECT_EQ(s.find("number_literal"), std::string::npos);
}

TEST(Xsbt, MatchesPaperExampleShape) {
  // Fig. 2: a while with a call inside produces nested statement tags.
  const auto tree = parse::parse_translation_unit(
      "int main() { while (!done) { MPI_Comm_rank(MPI_COMM_WORLD, &rank); } "
      "return 0; }");
  const std::string s = xsbt::xsbt_string(*tree);
  EXPECT_NE(s.find("<while_statement>"), std::string::npos);
  EXPECT_NE(s.find("<call_expression>"), std::string::npos);
  EXPECT_NE(s.find("</while_statement>"), std::string::npos);
}

TEST(Xsbt, ShorterThanSbt) {
  MR_SEEDED_RNG(rng, 99);
  for (int i = 0; i < 10; ++i) {
    const auto prog = corpus::generate_random_program(rng);
    const auto tree = parse::parse_translation_unit(prog.source);
    const auto sbt = xsbt::sbt_tokens(*tree);
    const auto xs = xsbt::xsbt_tokens(*tree);
    EXPECT_LT(xs.size(), sbt.size() / 2)
        << "X-SBT should cut SBT length by more than half";
  }
}

TEST(Xsbt, Deterministic) {
  const auto tree = parse::parse_translation_unit(
      "int main() { for (i = 0; i < 3; i++) { f(i); } return 0; }");
  EXPECT_EQ(xsbt::xsbt_string(*tree), xsbt::xsbt_string(*tree));
}

TEST(Xsbt, LeafStatementsSelfClose) {
  const auto tree = parse::parse_translation_unit(
      "int main() { break; }");
  // break has no kept descendants -> self-closing tag.
  EXPECT_NE(xsbt::xsbt_string(*tree).find("<break_statement/>"),
            std::string::npos);
}

}  // namespace
}  // namespace mpirical
