#include <gtest/gtest.h>

#include <set>

#include "mpidb/catalog.hpp"

namespace mpirical::mpidb {
namespace {

TEST(Catalog, SizeIsSubstantial) {
  // The MPI standard defines 430+ routines; the catalog covers the broad
  // families (the classification label space of the paper).
  EXPECT_GE(catalog_size(), 200u);
}

TEST(Catalog, NoDuplicateNames) {
  std::set<std::string> names;
  for (const auto& r : all_routines()) {
    EXPECT_TRUE(names.insert(r.name).second) << r.name;
  }
}

TEST(Catalog, AllNamesHaveMpiPrefix) {
  for (const auto& r : all_routines()) {
    EXPECT_TRUE(has_mpi_prefix(r.name)) << r.name;
  }
}

TEST(Catalog, FindRoutineKnown) {
  const auto send = find_routine("MPI_Send");
  ASSERT_TRUE(send.has_value());
  EXPECT_EQ(send->arity, 6);
  EXPECT_EQ(send->category, Category::kPointToPoint);
}

TEST(Catalog, FindRoutineUnknown) {
  EXPECT_FALSE(find_routine("MPI_Frobnicate").has_value());
  EXPECT_FALSE(is_known_routine("printf"));
}

TEST(Catalog, AritiesOfCoreRoutines) {
  EXPECT_EQ(find_routine("MPI_Init")->arity, 2);
  EXPECT_EQ(find_routine("MPI_Finalize")->arity, 0);
  EXPECT_EQ(find_routine("MPI_Comm_rank")->arity, 2);
  EXPECT_EQ(find_routine("MPI_Recv")->arity, 7);
  EXPECT_EQ(find_routine("MPI_Reduce")->arity, 7);
  EXPECT_EQ(find_routine("MPI_Bcast")->arity, 5);
  EXPECT_EQ(find_routine("MPI_Sendrecv")->arity, 12);
  EXPECT_EQ(find_routine("MPI_Allreduce")->arity, 6);
}

TEST(Catalog, CommonCoreIsTableIb) {
  const auto& core = common_core();
  ASSERT_EQ(core.size(), 8u);
  for (const char* name :
       {"MPI_Init", "MPI_Finalize", "MPI_Comm_rank", "MPI_Comm_size",
        "MPI_Send", "MPI_Recv", "MPI_Reduce", "MPI_Bcast"}) {
    EXPECT_TRUE(is_common_core(name)) << name;
  }
  EXPECT_FALSE(is_common_core("MPI_Barrier"));
  EXPECT_FALSE(is_common_core("MPI_Allreduce"));
}

TEST(Catalog, CommonCoreRoutinesAreCatalogued) {
  for (const auto& name : common_core()) {
    EXPECT_TRUE(is_known_routine(name)) << name;
  }
}

TEST(Catalog, CategoryNames) {
  EXPECT_STREQ(category_name(Category::kCollective), "collective");
  EXPECT_STREQ(category_name(Category::kPointToPoint), "point_to_point");
}

TEST(Catalog, HasBroadCategoryCoverage) {
  std::set<Category> seen;
  for (const auto& r : all_routines()) seen.insert(r.category);
  EXPECT_GE(seen.size(), 10u);
}

}  // namespace
}  // namespace mpirical::mpidb
