#include <gtest/gtest.h>

#include "cast/node.hpp"
#include "cast/printer.hpp"
#include "corpus/generator.hpp"
#include "cparse/parser.hpp"
#include "support/rng.hpp"
#include "toklib/vocab.hpp"
#include "testing.hpp"

namespace mpirical::tok {
namespace {

TEST(Vocab, SpecialsOccupyFixedIds) {
  Vocab v;
  EXPECT_EQ(v.text_of(kPad), "[PAD]");
  EXPECT_EQ(v.text_of(kSos), "[SOS]");
  EXPECT_EQ(v.text_of(kEos), "[EOS]");
  EXPECT_EQ(v.text_of(kSep), "[SEP]");
  EXPECT_EQ(v.text_of(kUnk), "[UNK]");
  EXPECT_EQ(v.text_of(kNewline), "[NL]");
  EXPECT_EQ(v.size(), static_cast<std::size_t>(kFirstRegularId));
}

TEST(Vocab, AddIsIdempotent) {
  Vocab v;
  const TokenId a = v.add("foo");
  const TokenId b = v.add("foo");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), static_cast<std::size_t>(kFirstRegularId) + 1);
}

TEST(Vocab, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.id_of("never_added"), kUnk);
  EXPECT_FALSE(v.contains("never_added"));
}

TEST(Vocab, SerializeRoundTrip) {
  Vocab v;
  v.add("int");
  v.add("MPI_Send");
  v.add("\"a string\"");
  const Vocab w = Vocab::deserialize(v.serialize());
  EXPECT_EQ(w.size(), v.size());
  EXPECT_EQ(w.id_of("MPI_Send"), v.id_of("MPI_Send"));
  EXPECT_EQ(w.text_of(v.id_of("int")), "int");
}

TEST(Tokens, CodeToTokensInsertsNewlines) {
  const auto toks = code_to_tokens("int x;\nint y;\n");
  const std::vector<std::string> expected = {"int", "x", ";", "[NL]",
                                             "int", "y", ";"};
  EXPECT_EQ(toks, expected);
}

TEST(Tokens, BlankLinesProduceMultipleNewlineTokens) {
  const auto toks = code_to_tokens("a;\n\nb;");
  int nl = 0;
  for (const auto& t : toks) {
    if (t == "[NL]") ++nl;
  }
  EXPECT_EQ(nl, 2);
}

TEST(Tokens, RoundTripPreservesAstAndLines) {
  MR_SEEDED_RNG(rng, 1312);
  for (int i = 0; i < 20; ++i) {
    const auto prog = corpus::generate_random_program(rng);
    const auto tree = parse::parse_translation_unit(prog.source);
    const std::string standardized = ast::print_code(*tree);

    const auto tokens = code_to_tokens(standardized);
    const std::string rebuilt = tokens_to_code(tokens);

    const auto a = parse::parse_translation_unit(standardized);
    const auto b = parse::parse_translation_unit(rebuilt);
    ASSERT_TRUE(ast::structurally_equal(*a, *b));

    // Line numbers of calls must survive the token round trip -- that is
    // the location signal the model learns.
    const auto calls_a = ast::collect_mpi_calls(*a);
    const auto calls_b = ast::collect_mpi_calls(*b);
    ASSERT_EQ(calls_a.size(), calls_b.size());
    for (std::size_t c = 0; c < calls_a.size(); ++c) {
      EXPECT_EQ(calls_a[c].line, calls_b[c].line);
    }
  }
}

TEST(Tokens, EncodeDecodeRoundTrip) {
  Vocab v;
  const std::vector<std::string> tokens = {"int", "x", "=", "1", ";"};
  for (const auto& t : tokens) v.add(t);
  const auto ids = encode(v, tokens);
  const auto back = decode(v, ids);
  EXPECT_EQ(back, tokens);
}

TEST(Tokens, DecodeDropsControlTokens) {
  Vocab v;
  v.add("x");
  const std::vector<TokenId> ids = {kSos, v.id_of("x"), kPad, kEos};
  const auto back = decode(v, ids);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], "x");
}

TEST(Tokens, BuildVocabCoversAllSequences) {
  const std::vector<std::vector<std::string>> seqs = {{"a", "b"},
                                                      {"b", "c", "d"}};
  const Vocab v = build_vocab(seqs);
  for (const char* t : {"a", "b", "c", "d"}) {
    EXPECT_TRUE(v.contains(t)) << t;
  }
}

TEST(Tokens, StringLiteralsSurviveRoundTrip) {
  const std::string code = "int main() {\n    printf(\"x = %d\\n\", x);\n}\n";
  const auto toks = code_to_tokens(code);
  const std::string rebuilt = tokens_to_code(toks);
  EXPECT_NE(rebuilt.find("\"x = %d\\n\""), std::string::npos);
}

}  // namespace
}  // namespace mpirical::tok
