#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.hpp"
#include "nn/infer.hpp"
#include "nn/transformer.hpp"
#include "support/rng.hpp"
#include "testing.hpp"
#include "toklib/vocab.hpp"

namespace mpirical::nn {
namespace {

TransformerConfig tiny_config() {
  TransformerConfig cfg;
  cfg.vocab_size = 23;
  cfg.d_model = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 32;
  cfg.dropout = 0.0f;
  return cfg;
}

TEST(Transformer, EncodeShape) {
  MR_SEEDED_RNG(rng, 1);
  Transformer model(tiny_config(), rng);
  const std::vector<int> src = {4, 5, 6, 0, 7, 8, 9, 10};  // batch 2, len 4
  const std::vector<int> lens = {3, 4};
  Rng drop(0);
  auto enc = model.encode(src, 2, 4, lens, false, drop);
  EXPECT_EQ(enc.shape(), (std::vector<int>{8, 16}));
}

TEST(Transformer, DecodeShapeIsVocabLogits) {
  MR_SEEDED_RNG(rng, 2);
  Transformer model(tiny_config(), rng);
  const std::vector<int> src = {4, 5, 6, 7};
  const std::vector<int> src_lens = {4};
  Rng drop(0);
  auto enc = model.encode(src, 1, 4, src_lens, false, drop);
  const std::vector<int> tgt = {1, 4, 5};
  const std::vector<int> tgt_lens = {3};
  auto logits = model.decode(enc, tgt, 1, 3, tgt_lens, 4, src_lens, false,
                             drop);
  EXPECT_EQ(logits.shape(), (std::vector<int>{3, 23}));
}

TEST(Transformer, ParameterCountMatchesArchitecture) {
  MR_SEEDED_RNG(rng, 3);
  TransformerConfig cfg = tiny_config();
  Transformer model(cfg, rng);
  // embed V*d + per enc layer (2 LN + 4 linear d*d+d + 2 ffn) + dec layers
  // + 2 final LN + out proj.
  const std::size_t d = 16, v = 23, f = 32;
  const std::size_t lin = d * d + d;
  const std::size_t ffn = d * f + f + f * d + d;
  const std::size_t ln = 2 * d;
  const std::size_t enc_layer = 2 * ln + 4 * lin + ffn;
  const std::size_t dec_layer = 3 * ln + 8 * lin + ffn;
  const std::size_t expected = v * d + 2 * enc_layer + 2 * dec_layer +
                               2 * ln + (d * v + v);
  EXPECT_EQ(model.parameter_count(), expected);
}

TEST(Transformer, DeterministicForward) {
  Rng rng_a(7);
  Rng rng_b(7);
  Transformer a(tiny_config(), rng_a);
  Transformer b(tiny_config(), rng_b);
  const std::vector<int> src = {4, 9, 2, 1};
  const std::vector<int> lens = {4};
  Rng d1(0), d2(0);
  auto ea = a.encode(src, 1, 4, lens, false, d1);
  auto eb = b.encode(src, 1, 4, lens, false, d2);
  EXPECT_EQ(ea.value(), eb.value());
}

TEST(Transformer, PaddingInvariance) {
  // Extra PAD columns beyond src_lens must not change valid positions'
  // encoder output.
  MR_SEEDED_RNG(rng, 11);
  Transformer model(tiny_config(), rng);
  Rng drop(0);
  const std::vector<int> lens = {3};
  auto enc_short = model.encode({4, 5, 6}, 1, 3, lens, false, drop);
  auto enc_padded = model.encode({4, 5, 6, 0, 0}, 1, 5, lens, false, drop);
  for (int i = 0; i < 3 * 16; ++i) {
    EXPECT_NEAR(enc_short.value()[i], enc_padded.value()[i], 1e-5);
  }
}

TEST(Transformer, SerializeRoundTripPreservesForward) {
  MR_SEEDED_RNG(rng, 5);
  Transformer model(tiny_config(), rng);
  const std::string blob = model.serialize();
  Transformer loaded = Transformer::deserialize(blob);
  const std::vector<int> src = {4, 17, 3, 9};
  const std::vector<int> lens = {4};
  Rng d1(0), d2(0);
  auto a = model.encode(src, 1, 4, lens, false, d1);
  auto b = loaded.encode(src, 1, 4, lens, false, d2);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(loaded.config().d_model, 16);
}

TEST(Transformer, DeserializeRejectsGarbage) {
  EXPECT_THROW(Transformer::deserialize("not a checkpoint"), Error);
}

TEST(Adam, ConvergesOnLinearRegression) {
  // Fit y = x @ w_true with a single linear layer.
  Rng rng(6);
  tensor::Tensor w = tensor::Tensor::randn({4, 1}, rng, 0.1f, true);
  tensor::Tensor x = tensor::Tensor::randn({16, 4}, rng, 1.0f);
  tensor::Tensor w_true = tensor::Tensor::from_data({4, 1}, {1, -2, 3, 0.5});
  tensor::Tensor y = tensor::matmul(x, w_true);

  AdamConfig cfg;
  cfg.lr = 0.05f;
  cfg.warmup_steps = 0;
  Adam opt({w}, cfg);
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 200; ++step) {
    tensor::Tensor diff = tensor::sub(tensor::matmul(x, w), y);
    tensor::Tensor sq = tensor::mul(diff, diff);
    tensor::Tensor ones = tensor::Tensor::full({1, 16}, 1.0f / 16.0f);
    tensor::Tensor loss = tensor::matmul(ones, sq);
    if (step == 0) first_loss = loss.item();
    last_loss = loss.item();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.01);
  EXPECT_NEAR(w.value()[0], 1.0f, 0.1f);
  EXPECT_NEAR(w.value()[1], -2.0f, 0.1f);
}

TEST(Adam, WarmupScheduleShape) {
  Rng rng(7);
  tensor::Tensor w = tensor::Tensor::randn({2, 2}, rng, 0.1f, true);
  AdamConfig cfg;
  cfg.lr = 1.0f;
  cfg.warmup_steps = 10;
  Adam opt({w}, cfg);
  EXPECT_LT(opt.current_lr(), 0.2f);  // early: ramping up
  for (int i = 0; i < 10; ++i) {
    w.grad()[0] = 1.0f;
    opt.step();
  }
  EXPECT_NEAR(opt.current_lr(), 1.0f, 0.05f);  // peak at warmup end
  for (int i = 0; i < 30; ++i) {
    w.grad()[0] = 1.0f;
    opt.step();
  }
  EXPECT_LT(opt.current_lr(), 0.6f);  // decaying afterwards
}

TEST(Adam, GradClippingBoundsUpdate) {
  tensor::Tensor w = tensor::Tensor::zeros({1, 1}, true);
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.warmup_steps = 0;
  cfg.grad_clip = 1.0f;
  Adam opt({w}, cfg);
  w.grad()[0] = 1e6f;  // exploding gradient
  opt.step();
  EXPECT_LT(std::fabs(w.value()[0]), 0.2f);
}

TEST(Adam, RequiresGradParams) {
  tensor::Tensor w = tensor::Tensor::zeros({1, 1}, false);
  EXPECT_THROW(Adam({w}, AdamConfig{}), Error);
}

// The decisive KV-cache test: incremental decoding must reproduce the
// batched decoder's teacher-forced logits step by step.
TEST(IncrementalDecoder, MatchesBatchedDecoder) {
  MR_SEEDED_RNG(rng, 8);
  Transformer model(tiny_config(), rng);
  const std::vector<int> src = {4, 9, 13, 2, 6};
  const std::vector<int> src_lens = {5};
  const std::vector<int> tgt_in = {tok::kSos, 7, 11, 3, 15};
  const std::vector<int> tgt_lens = {5};

  Rng drop(0);
  auto enc = model.encode(src, 1, 5, src_lens, false, drop);
  auto logits = model.decode(enc, tgt_in, 1, 5, tgt_lens, 5, src_lens, false,
                             drop);

  IncrementalDecoder dec(model, src);
  for (int t = 0; t < 5; ++t) {
    const auto& step_logits = dec.step(tgt_in[static_cast<std::size_t>(t)]);
    for (int v = 0; v < 23; ++v) {
      EXPECT_NEAR(step_logits[static_cast<std::size_t>(v)],
                  logits.value()[static_cast<std::size_t>(t) * 23 + v], 1e-3)
          << "t=" << t << " v=" << v;
    }
  }
}

TEST(IncrementalDecoder, PositionAdvances) {
  MR_SEEDED_RNG(rng, 9);
  Transformer model(tiny_config(), rng);
  IncrementalDecoder dec(model, {4, 5});
  EXPECT_EQ(dec.position(), 0);
  dec.step(1);
  dec.step(2);
  EXPECT_EQ(dec.position(), 2);
}

TEST(GreedyDecode, StopsAtMaxLen) {
  MR_SEEDED_RNG(rng, 10);
  Transformer model(tiny_config(), rng);
  const auto out = greedy_decode(model, {4, 5, 6}, tok::kSos, tok::kEos, 7);
  EXPECT_LE(out.size(), 7u);
}

TEST(BeamDecode, WidthOneEqualsGreedy) {
  MR_SEEDED_RNG(rng, 111);
  Transformer model(tiny_config(), rng);
  const auto greedy = greedy_decode(model, {4, 5, 6}, tok::kSos, tok::kEos, 9);
  const auto beam = beam_decode(model, {4, 5, 6}, tok::kSos, tok::kEos, 9, 1);
  EXPECT_EQ(greedy, beam);
}

TEST(BeamDecode, RunsWithWiderBeam) {
  MR_SEEDED_RNG(rng, 12);
  Transformer model(tiny_config(), rng);
  const auto beam = beam_decode(model, {4, 5, 6}, tok::kSos, tok::kEos, 6, 3);
  EXPECT_LE(beam.size(), 6u);
}

TEST(Transformer, PositionalRowsDiffer) {
  MR_SEEDED_RNG(rng, 13);
  Transformer model(tiny_config(), rng);
  const auto& p0 = model.positional_row(0);
  const auto& p5 = model.positional_row(5);
  double diff = 0.0;
  for (std::size_t i = 0; i < p0.size(); ++i) {
    diff += std::fabs(p0[i] - p5[i]);
  }
  EXPECT_GT(diff, 0.5);
  EXPECT_THROW(model.positional_row(10000), Error);
}

}  // namespace
}  // namespace mpirical::nn
