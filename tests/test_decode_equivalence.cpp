// Differential harness for the batched beam-step decode engine: decode_batch
// must emit token-for-token identical outputs (and matching scores within
// 1e-5) to the per-hypothesis reference path across randomized model
// configs, beam widths 1-8, early-finishing hypotheses, and multi-request
// batches.
//
// The two paths use different kernels (GEMM rows vs per-hypothesis GEMVs),
// so their logits agree only to the last few ULPs; exact token equality is
// a probabilistic guarantee that holds because random-model logit gaps
// (~1e-2) dwarf that rounding noise. Under an MPIRICAL_TEST_SEED re-roll an
// astronomically unlucky near-tie could flip one argmax -- if a re-rolled
// run ever fails here with a one-token diff and a matching score, suspect a
// tie, not a bug, and check the divergence point's logit gap before
// anything else (the default fixed seed keeps CI deterministic).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/infer.hpp"
#include "nn/transformer.hpp"
#include "testing.hpp"

namespace mpirical::nn {
namespace {

constexpr int kSos = 1;
constexpr int kEos = 2;

TransformerConfig random_config(Rng& rng) {
  TransformerConfig cfg;
  const int d_choices[] = {16, 24, 32};
  cfg.d_model = d_choices[rng.next_below(3)];
  cfg.heads = rng.next_bool() ? 2 : 4;  // both divide every d_model choice
  cfg.ffn_dim = cfg.d_model * 2;
  cfg.vocab_size = 14 + static_cast<int>(rng.next_below(20));
  cfg.encoder_layers = 1 + static_cast<int>(rng.next_below(2));
  cfg.decoder_layers = 1 + static_cast<int>(rng.next_below(3));
  cfg.max_len = 48;
  cfg.dropout = 0.0f;
  return cfg;
}

std::vector<int> random_source(Rng& rng, const TransformerConfig& cfg) {
  const int len = 3 + static_cast<int>(rng.next_below(10));
  std::vector<int> src(static_cast<std::size_t>(len));
  for (auto& id : src) {
    id = 3 + static_cast<int>(
                 rng.next_below(static_cast<std::uint64_t>(cfg.vocab_size) - 3));
  }
  return src;
}

void expect_equivalent(const DecodeResult& got, const DecodeResult& want,
                       const std::string& what) {
  ASSERT_EQ(got.tokens, want.tokens) << what << ": token sequences diverged";
  ASSERT_NEAR(got.log_prob, want.log_prob,
              1e-5 * std::max(1.0, std::fabs(want.log_prob)))
      << what << ": scores diverged";
}

TEST(DecodeEquivalence, GreedyMatchesReferenceAcrossRandomModels) {
  MR_SEEDED_RNG(rng, 0xD0);
  for (int trial = 0; trial < 8; ++trial) {
    const TransformerConfig cfg = random_config(rng);
    Transformer model(cfg, rng);
    for (int s = 0; s < 3; ++s) {
      const std::vector<int> src = random_source(rng, cfg);
      DecodeRequest req{src, kSos, kEos, 24, 1};
      const auto batched = decode_batch(model, {req});
      const auto ref = decode_reference(model, src, kSos, kEos, 24, 1);
      expect_equivalent(batched[0], ref,
                        "greedy trial " + std::to_string(trial) + " src " +
                            std::to_string(s));
    }
  }
}

TEST(DecodeEquivalence, BeamWidths1Through8MatchReference) {
  MR_SEEDED_RNG(rng, 0xD1);
  for (int trial = 0; trial < 4; ++trial) {
    const TransformerConfig cfg = random_config(rng);
    Transformer model(cfg, rng);
    const std::vector<int> src = random_source(rng, cfg);
    for (int width = 1; width <= 8; ++width) {
      DecodeRequest req{src, kSos, kEos, 20, width};
      const auto batched = decode_batch(model, {req});
      const auto ref = decode_reference(model, src, kSos, kEos, 20, width);
      expect_equivalent(batched[0], ref,
                        "trial " + std::to_string(trial) + " width " +
                            std::to_string(width));
    }
  }
}

// Small vocabularies with wide beams make eos land in the top-k early and
// often, so beams carry finished hypotheses through many waves while live
// siblings keep forking -- the copy-on-write fork path under stress.
TEST(DecodeEquivalence, EarlyFinishingHypothesesMatchReference) {
  MR_SEEDED_RNG(rng, 0xD2);
  for (int trial = 0; trial < 6; ++trial) {
    TransformerConfig cfg = random_config(rng);
    cfg.vocab_size = 8 + static_cast<int>(rng.next_below(6));
    Transformer model(cfg, rng);
    const std::vector<int> src = random_source(rng, cfg);
    for (int width : {4, 6, 8}) {
      DecodeRequest req{src, kSos, kEos, 32, width};
      const auto batched = decode_batch(model, {req});
      const auto ref = decode_reference(model, src, kSos, kEos, 32, width);
      expect_equivalent(batched[0], ref,
                        "early-finish trial " + std::to_string(trial) +
                            " width " + std::to_string(width));
    }
  }
}

// Concurrent requests with different sources, lengths, and beam widths share
// GEMM waves; each must still match its own independent reference decode.
TEST(DecodeEquivalence, MultiRequestBatchMatchesPerRequestReference) {
  MR_SEEDED_RNG(rng, 0xD3);
  const TransformerConfig cfg = random_config(rng);
  Transformer model(cfg, rng);
  std::vector<DecodeRequest> reqs;
  for (int i = 0; i < 7; ++i) {
    DecodeRequest req;
    req.src_ids = random_source(rng, cfg);
    req.sos = kSos;
    req.eos = kEos;
    req.max_len = 10 + i * 3;  // staggered lengths finish at different waves
    req.beam_width = 1 + i;    // widths 1..7 in one wave
    reqs.push_back(std::move(req));
  }
  const auto batched = decode_batch(model, reqs);
  ASSERT_EQ(batched.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto ref = decode_reference(model, reqs[i].src_ids, kSos, kEos,
                                      reqs[i].max_len, reqs[i].beam_width);
    expect_equivalent(batched[i], ref, "request " + std::to_string(i));
  }
}

TEST(DecodeEquivalence, WrappersRouteThroughBatchedEngine) {
  MR_SEEDED_RNG(rng, 0xD4);
  const TransformerConfig cfg = random_config(rng);
  Transformer model(cfg, rng);
  const std::vector<int> src = random_source(rng, cfg);
  EXPECT_EQ(greedy_decode(model, src, kSos, kEos, 16),
            decode_reference(model, src, kSos, kEos, 16, 1).tokens);
  EXPECT_EQ(beam_decode(model, src, kSos, kEos, 16, 4),
            decode_reference(model, src, kSos, kEos, 16, 4).tokens);
}

TEST(DecodeEquivalence, DegenerateLengthsAndRepeatedDecodesAreStable) {
  MR_SEEDED_RNG(rng, 0xD5);
  const TransformerConfig cfg = random_config(rng);
  Transformer model(cfg, rng);
  const std::vector<int> src = random_source(rng, cfg);

  // Zero- and one-step budgets.
  for (int max_len : {0, 1}) {
    for (int width : {1, 4}) {
      DecodeRequest req{src, kSos, kEos, max_len, width};
      const auto batched = decode_batch(model, {req});
      const auto ref = decode_reference(model, src, kSos, kEos, max_len,
                                        width);
      expect_equivalent(batched[0], ref,
                        "max_len " + std::to_string(max_len) + " width " +
                            std::to_string(width));
      EXPECT_LE(batched[0].tokens.size(), static_cast<std::size_t>(max_len));
    }
  }

  // The engine is deterministic: decoding the same batch twice is identical.
  DecodeRequest req{src, kSos, kEos, 16, 4};
  const auto a = decode_batch(model, {req, req});
  const auto b = decode_batch(model, {req, req});
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(a[static_cast<std::size_t>(i)].tokens,
              b[static_cast<std::size_t>(i)].tokens);
    EXPECT_EQ(a[static_cast<std::size_t>(i)].log_prob,
              b[static_cast<std::size_t>(i)].log_prob);
  }
}

}  // namespace
}  // namespace mpirical::nn
