#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"
#include "tensor/tensor.hpp"
#include "testing.hpp"

namespace mpirical::tensor {
namespace {

// Numeric gradient check: perturb each input element, compare the finite
// difference of a scalar loss against the autograd gradient.
void check_gradients(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                     std::vector<Tensor> inputs, float eps = 1e-2f,
                     float tol = 2e-2f) {
  Tensor loss = fn(inputs);
  loss.backward();
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    auto& input = inputs[t];
    const auto analytic = input.grad();
    for (std::size_t i = 0; i < input.numel(); ++i) {
      const float original = input.value()[i];
      input.value()[i] = original + eps;
      const float up = fn(inputs).item();
      input.value()[i] = original - eps;
      const float down = fn(inputs).item();
      input.value()[i] = original;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(analytic[i], numeric,
                  tol * std::max(1.0f, std::fabs(numeric)))
          << "input " << t << " element " << i;
    }
  }
}

Tensor sum_all(const Tensor& x) {
  // Reduce to scalar via matmul with a ones vector twice.
  const int m = x.dim(0);
  const int n = x.dim(1);
  Tensor ones_right = Tensor::full({n, 1}, 1.0f);
  Tensor col = matmul(x, ones_right);          // [m,1]
  Tensor ones_left = Tensor::full({1, m}, 1.0f);
  return matmul(ones_left, col);               // [1,1]
}

TEST(Tensor, ZerosAndShape) {
  Tensor t = Tensor::zeros({3, 4});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.numel(), 12u);
  for (float v : t.value()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.0f, 2.0f, 3.0f}), Error);
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_THROW(Tensor::zeros({2}).item(), Error);
  EXPECT_EQ(Tensor::full({1}, 5.0f).item(), 5.0f);
}

TEST(Tensor, RandnStatistics) {
  MR_SEEDED_RNG(rng, 1);
  Tensor t = Tensor::randn({100, 100}, rng, 0.5f);
  double sum = 0.0;
  double sq = 0.0;
  for (float v : t.value()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / t.numel(), 0.0, 0.02);
  EXPECT_NEAR(sq / t.numel(), 0.25, 0.02);
}

TEST(Matmul, KnownProduct) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  const std::vector<float> expected = {58, 64, 139, 154};
  EXPECT_EQ(c.value(), expected);
}

TEST(Matmul, ShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor::zeros({2, 3}), Tensor::zeros({2, 3})), Error);
}

TEST(Matmul, GradientCheck) {
  MR_SEEDED_RNG(rng, 2);
  Tensor a = Tensor::randn({3, 4}, rng, 1.0f, true);
  Tensor b = Tensor::randn({4, 2}, rng, 1.0f, true);
  check_gradients(
      [](const std::vector<Tensor>& in) {
        return sum_all(matmul(in[0], in[1]));
      },
      {a, b});
}

TEST(Elementwise, AddSubMulValues) {
  Tensor a = Tensor::from_data({1, 3}, {1, 2, 3});
  Tensor b = Tensor::from_data({1, 3}, {10, 20, 30});
  EXPECT_EQ(add(a, b).value(), (std::vector<float>{11, 22, 33}));
  EXPECT_EQ(sub(b, a).value(), (std::vector<float>{9, 18, 27}));
  EXPECT_EQ(mul(a, b).value(), (std::vector<float>{10, 40, 90}));
}

TEST(Elementwise, GradientChecks) {
  MR_SEEDED_RNG(rng, 3);
  for (int which = 0; which < 3; ++which) {
    Tensor a = Tensor::randn({2, 3}, rng, 1.0f, true);
    Tensor b = Tensor::randn({2, 3}, rng, 1.0f, true);
    check_gradients(
        [which](const std::vector<Tensor>& in) {
          Tensor r = which == 0   ? add(in[0], in[1])
                     : which == 1 ? sub(in[0], in[1])
                                  : mul(in[0], in[1]);
          return sum_all(r);
        },
        {a, b});
  }
}

TEST(AddBias, BroadcastAndGradient) {
  MR_SEEDED_RNG(rng, 4);
  Tensor x = Tensor::randn({3, 4}, rng, 1.0f, true);
  Tensor b = Tensor::randn({4}, rng, 1.0f, true);
  Tensor y = add_bias(x, b);
  EXPECT_NEAR(y.value()[5], x.value()[5] + b.value()[1], 1e-6);
  check_gradients(
      [](const std::vector<Tensor>& in) {
        return sum_all(add_bias(in[0], in[1]));
      },
      {x, b});
}

TEST(Scale, ValuesAndGradient) {
  MR_SEEDED_RNG(rng, 5);
  Tensor x = Tensor::randn({2, 2}, rng, 1.0f, true);
  EXPECT_NEAR(scale(x, 2.5f).value()[3], x.value()[3] * 2.5f, 1e-6);
  check_gradients(
      [](const std::vector<Tensor>& in) {
        return sum_all(scale(in[0], -1.7f));
      },
      {x});
}

TEST(Activations, ReluForwardBackward) {
  Tensor x = Tensor::from_data({1, 4}, {-2, -0.5, 0.5, 2}, true);
  Tensor y = relu(x);
  EXPECT_EQ(y.value(), (std::vector<float>{0, 0, 0.5, 2}));
  check_gradients(
      [](const std::vector<Tensor>& in) { return sum_all(relu(in[0])); },
      {x});
}

TEST(Activations, GeluShapeAndGradient) {
  MR_SEEDED_RNG(rng, 6);
  Tensor x = Tensor::randn({2, 5}, rng, 1.0f, true);
  Tensor y = gelu(x);
  // GELU(0) == 0, GELU(large) ~ identity.
  Tensor z = gelu(Tensor::from_data({1, 2}, {0.0f, 10.0f}));
  EXPECT_NEAR(z.value()[0], 0.0f, 1e-6);
  EXPECT_NEAR(z.value()[1], 10.0f, 1e-3);
  check_gradients(
      [](const std::vector<Tensor>& in) { return sum_all(gelu(in[0])); },
      {x});
}

TEST(Softmax, RowsSumToOne) {
  MR_SEEDED_RNG(rng, 7);
  Tensor x = Tensor::randn({4, 6}, rng, 2.0f);
  Tensor p = softmax_rows(x);
  for (int i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 6; ++j) sum += p.value()[i * 6 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Softmax, StableWithLargeInputs) {
  Tensor x = Tensor::from_data({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor p = softmax_rows(x);
  for (float v : p.value()) EXPECT_NEAR(v, 1.0f / 3.0f, 1e-5);
}

TEST(Softmax, GradientCheck) {
  MR_SEEDED_RNG(rng, 8);
  Tensor x = Tensor::randn({3, 4}, rng, 1.0f, true);
  Tensor w = Tensor::randn({3, 4}, rng, 1.0f, false);
  check_gradients(
      [w](const std::vector<Tensor>& in) {
        return sum_all(mul(softmax_rows(in[0]), w));
      },
      {x});
}

TEST(LayerNorm, NormalizesRows) {
  MR_SEEDED_RNG(rng, 9);
  Tensor x = Tensor::randn({3, 8}, rng, 3.0f);
  Tensor gamma = Tensor::full({8}, 1.0f);
  Tensor beta = Tensor::zeros({8});
  Tensor y = layer_norm(x, gamma, beta);
  for (int i = 0; i < 3; ++i) {
    float mean = 0.0f;
    float var = 0.0f;
    for (int j = 0; j < 8; ++j) mean += y.value()[i * 8 + j];
    mean /= 8.0f;
    for (int j = 0; j < 8; ++j) {
      const float d = y.value()[i * 8 + j] - mean;
      var += d * d;
    }
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(LayerNorm, GradientCheck) {
  MR_SEEDED_RNG(rng, 10);
  Tensor x = Tensor::randn({2, 6}, rng, 1.0f, true);
  Tensor gamma = Tensor::randn({6}, rng, 0.3f, true);
  Tensor beta = Tensor::randn({6}, rng, 0.3f, true);
  Tensor w = Tensor::randn({2, 6}, rng, 1.0f, false);
  check_gradients(
      [w](const std::vector<Tensor>& in) {
        return sum_all(mul(layer_norm(in[0], in[1], in[2]), w));
      },
      {x, gamma, beta}, 1e-2f, 5e-2f);
}

TEST(Embedding, GatherAndScatterGrad) {
  Tensor table = Tensor::from_data({3, 2}, {1, 2, 3, 4, 5, 6}, true);
  Tensor rows = embedding({2, 0, 2}, table);
  EXPECT_EQ(rows.value(), (std::vector<float>{5, 6, 1, 2, 5, 6}));
  Tensor loss = sum_all(rows);
  loss.backward();
  // Row 2 gathered twice -> grad 2; row 0 once; row 1 never.
  EXPECT_EQ(table.grad(), (std::vector<float>{1, 1, 0, 0, 2, 2}));
}

TEST(Embedding, OutOfRangeThrows) {
  Tensor table = Tensor::zeros({3, 2});
  EXPECT_THROW(embedding({3}, table), Error);
}

TEST(Transpose, ValuesAndGradient) {
  Tensor x = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  Tensor y = transpose(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{3, 2}));
  EXPECT_EQ(y.value(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
  check_gradients(
      [](const std::vector<Tensor>& in) {
        return sum_all(transpose(in[0]));
      },
      {x});
}

TEST(SliceConcat, RoundTrip) {
  Tensor x = Tensor::from_data({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8}, true);
  Tensor top = slice_rows(x, 0, 2);
  Tensor bottom = slice_rows(x, 2, 4);
  Tensor back = concat_rows({top, bottom});
  EXPECT_EQ(back.value(), x.value());
  Tensor loss = sum_all(back);
  loss.backward();
  for (float g : x.grad()) EXPECT_EQ(g, 1.0f);
}

TEST(Dropout, IdentityWhenNotTraining) {
  MR_SEEDED_RNG(rng, 11);
  Tensor x = Tensor::full({2, 2}, 3.0f);
  Tensor y = dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(y.value(), x.value());
}

TEST(Dropout, PreservesExpectation) {
  MR_SEEDED_RNG(rng, 12);
  Tensor x = Tensor::full({100, 100}, 1.0f);
  Tensor y = dropout(x, 0.3f, rng, /*training=*/true);
  double sum = 0.0;
  for (float v : y.value()) sum += v;
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.05);
}

TEST(CrossEntropy, KnownValue) {
  // Uniform logits over 4 classes -> loss = log(4).
  Tensor logits = Tensor::zeros({2, 4}, true);
  Tensor loss = cross_entropy(logits, {1, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5);
}

TEST(CrossEntropy, IgnoreIndexSkipsRows) {
  Tensor logits = Tensor::from_data({2, 2}, {100.0f, 0.0f, 0.0f, 100.0f},
                                    true);
  // Second row ignored; first row is perfectly predicted.
  Tensor loss = cross_entropy(logits, {0, -1}, -1);
  EXPECT_NEAR(loss.item(), 0.0f, 1e-4);
}

TEST(CrossEntropy, GradientCheck) {
  MR_SEEDED_RNG(rng, 13);
  Tensor logits = Tensor::randn({3, 5}, rng, 1.0f, true);
  check_gradients(
      [](const std::vector<Tensor>& in) {
        return cross_entropy(in[0], {1, 4, 0});
      },
      {logits});
}

TEST(Accuracy, CountsArgmaxMatches) {
  Tensor logits =
      Tensor::from_data({3, 2}, {1.0f, 0.0f, 0.0f, 1.0f, 1.0f, 0.0f});
  EXPECT_NEAR(accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(accuracy(logits, {0, 1, -1}, -1), 1.0, 1e-9);
}

TEST(Attention, OutputShape) {
  MR_SEEDED_RNG(rng, 14);
  const int b = 2, t = 3, d = 8;
  Tensor q = Tensor::randn({b * t, d}, rng, 1.0f);
  Tensor k = Tensor::randn({b * t, d}, rng, 1.0f);
  Tensor v = Tensor::randn({b * t, d}, rng, 1.0f);
  Tensor o = multi_head_attention(q, k, v, b, 2, false);
  EXPECT_EQ(o.shape(), (std::vector<int>{b * t, d}));
}

TEST(Attention, CausalMaskBlocksFuture) {
  MR_SEEDED_RNG(rng, 15);
  const int t = 4, d = 8;
  Tensor q = Tensor::randn({t, d}, rng, 1.0f);
  Tensor k = Tensor::randn({t, d}, rng, 1.0f);
  Tensor v = Tensor::randn({t, d}, rng, 1.0f);
  Tensor o1 = multi_head_attention(q, k, v, 1, 2, /*causal=*/true);
  // Perturb the last key/value row; earlier outputs must not change.
  Tensor k2 = Tensor::from_data({t, d}, std::vector<float>(k.value()));
  Tensor v2 = Tensor::from_data({t, d}, std::vector<float>(v.value()));
  for (int j = 0; j < d; ++j) {
    k2.value()[(t - 1) * d + j] += 5.0f;
    v2.value()[(t - 1) * d + j] -= 3.0f;
  }
  Tensor o2 = multi_head_attention(q, k2, v2, 1, 2, /*causal=*/true);
  for (int i = 0; i < (t - 1) * d; ++i) {
    EXPECT_NEAR(o1.value()[i], o2.value()[i], 1e-6) << i;
  }
  // The last position must change (sanity that the perturbation matters).
  bool changed = false;
  for (int j = 0; j < d; ++j) {
    if (std::fabs(o1.value()[(t - 1) * d + j] -
                  o2.value()[(t - 1) * d + j]) > 1e-4) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(Attention, PaddingMaskBlocksInvalidKeys) {
  MR_SEEDED_RNG(rng, 16);
  const int t = 4, d = 4;
  Tensor q = Tensor::randn({t, d}, rng, 1.0f);
  Tensor k = Tensor::randn({t, d}, rng, 1.0f);
  Tensor v = Tensor::randn({t, d}, rng, 1.0f);
  const std::vector<int> kv_lens = {2};  // only first two keys valid
  Tensor o1 = multi_head_attention(q, k, v, 1, 1, false, nullptr, &kv_lens);
  // Changing keys beyond the valid length must not affect the output.
  Tensor k2 = Tensor::from_data({t, d}, std::vector<float>(k.value()));
  for (int j = 0; j < d; ++j) k2.value()[3 * d + j] = 99.0f;
  Tensor o2 = multi_head_attention(q, k2, v, 1, 1, false, nullptr, &kv_lens);
  for (std::size_t i = 0; i < o1.numel(); ++i) {
    EXPECT_NEAR(o1.value()[i], o2.value()[i], 1e-6);
  }
}

TEST(Attention, SingleKeyReturnsItsValue) {
  // With one key, softmax weight is 1 and output equals V regardless of Q.
  Tensor q = Tensor::from_data({1, 4}, {9, 9, 9, 9});
  Tensor k = Tensor::from_data({1, 4}, {1, 2, 3, 4});
  Tensor v = Tensor::from_data({1, 4}, {5, 6, 7, 8});
  Tensor o = multi_head_attention(q, k, v, 1, 2, false);
  EXPECT_EQ(o.value(), v.value());
}

TEST(Attention, GradientCheck) {
  MR_SEEDED_RNG(rng, 17);
  const int t = 3, d = 4;
  Tensor q = Tensor::randn({t, d}, rng, 0.7f, true);
  Tensor k = Tensor::randn({t, d}, rng, 0.7f, true);
  Tensor v = Tensor::randn({t, d}, rng, 0.7f, true);
  Tensor w = Tensor::randn({t, d}, rng, 1.0f, false);
  check_gradients(
      [w](const std::vector<Tensor>& in) {
        return sum_all(mul(
            multi_head_attention(in[0], in[1], in[2], 1, 2, true), w));
      },
      {q, k, v}, 1e-2f, 5e-2f);
}

TEST(Backward, AccumulatesAcrossUses) {
  Tensor x = Tensor::full({1, 2}, 2.0f, true);
  Tensor y = add(x, x);  // dy/dx = 2
  Tensor loss = sum_all(y);
  loss.backward();
  EXPECT_EQ(x.grad(), (std::vector<float>{2.0f, 2.0f}));
}

TEST(Backward, RequiresScalarRoot) {
  Tensor x = Tensor::zeros({2, 2}, true);
  EXPECT_THROW(add(x, x).backward(), Error);
}

TEST(Backward, NoGradInputsProduceNoTape) {
  Tensor a = Tensor::full({1, 2}, 1.0f);
  Tensor b = Tensor::full({1, 2}, 2.0f);
  Tensor c = add(a, b);
  EXPECT_FALSE(c.requires_grad());
}

TEST(GemvRow, MatchesMatmul) {
  MR_SEEDED_RNG(rng, 18);
  Tensor x = Tensor::randn({1, 5}, rng, 1.0f);
  Tensor w = Tensor::randn({5, 3}, rng, 1.0f);
  Tensor b = Tensor::randn({3}, rng, 1.0f);
  std::vector<float> y(3);
  gemv_row(x.value().data(), w.value().data(), b.value().data(), y.data(), 5,
           3);
  Tensor expected = add_bias(matmul(x, w), b);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], expected.value()[j], 1e-5);
  }
}

}  // namespace
}  // namespace mpirical::tensor
