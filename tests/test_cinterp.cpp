#include <gtest/gtest.h>

#include "cinterp/interp.hpp"
#include "cparse/parser.hpp"
#include "support/check.hpp"

namespace mpirical::interp {
namespace {

std::string run(const std::string& src, long long* exit_code = nullptr) {
  const auto tu = parse::parse_translation_unit(src);
  Interpreter interp(*tu, nullptr);
  const long long code = interp.run_main();
  if (exit_code) *exit_code = code;
  return interp.output();
}

TEST(Interp, ReturnCode) {
  long long code = -1;
  run("int main() { return 42; }", &code);
  EXPECT_EQ(code, 42);
}

TEST(Interp, ArithmeticAndPrecedence) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { printf(\"%d\", 2 + 3 * 4); return 0; }"),
            "14");
  EXPECT_EQ(run("#include <stdio.h>\nint main() { printf(\"%d\", (2 + 3) * 4); return 0; }"),
            "20");
}

TEST(Interp, IntegerDivisionAndModulo) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { printf(\"%d %d\", 7 / 2, 7 % 3); return 0; }"),
            "3 1");
}

TEST(Interp, DoubleArithmeticPromotion) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { printf(\"%.2f\", 7 / 2.0); return 0; }"),
            "3.50");
}

TEST(Interp, DivisionByZeroThrows) {
  EXPECT_THROW(run("int main() { int x = 1 / 0; return x; }"), Error);
}

TEST(Interp, CastTruncates) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { printf(\"%d\", (int)3.9); return 0; }"),
            "3");
}

TEST(Interp, ComparisonAndLogical) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { printf(\"%d%d%d\", 1 < 2, 2 <= 1, 1 && 0 || 1); return 0; }"),
            "101");
}

TEST(Interp, ShortCircuitSkipsSideEffects) {
  EXPECT_EQ(run("#include <stdio.h>\nint side(void) { printf(\"x\"); return 1; }\n"
                "int main() { int a = 0 && side(); int b = 1 || side(); "
                "printf(\"%d%d\", a, b); return 0; }"),
            "01");
}

TEST(Interp, WhileAndFor) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int s = 0; int i; "
                "for (i = 1; i <= 4; i++) { s += i; } "
                "while (s > 8) { s--; } printf(\"%d\", s); return 0; }"),
            "8");
}

TEST(Interp, DoWhileRunsOnce) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int n = 0; do { n++; } while (0); "
                "printf(\"%d\", n); return 0; }"),
            "1");
}

TEST(Interp, BreakAndContinue) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int i; int s = 0; "
                "for (i = 0; i < 10; i++) { if (i == 3) { continue; } "
                "if (i == 6) { break; } s += i; } printf(\"%d\", s); return 0; }"),
            "12");  // 0+1+2+4+5
}

TEST(Interp, SwitchFallThroughAndDefault) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int x = 2; switch (x) { "
                "case 1: printf(\"one\"); break; "
                "case 2: printf(\"two\"); "
                "case 3: printf(\"three\"); break; "
                "default: printf(\"other\"); } return 0; }"),
            "twothree");
}

TEST(Interp, ArraysAndSubscripts) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int a[5]; int i; "
                "for (i = 0; i < 5; i++) { a[i] = i * i; } "
                "printf(\"%d %d\", a[2], a[4]); return 0; }"),
            "4 16");
}

TEST(Interp, ArrayInitList) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int a[3] = {7, 8, 9}; "
                "printf(\"%d\", a[0] + a[2]); return 0; }"),
            "16");
}

TEST(Interp, OutOfBoundsThrows) {
  EXPECT_THROW(run("int main() { int a[3]; a[5] = 1; return 0; }"), Error);
}

TEST(Interp, PointersAndAddressOf) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int x = 3; int *p = &x; *p = 9; "
                "printf(\"%d\", x); return 0; }"),
            "9");
}

TEST(Interp, PointerArithmetic) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int a[4] = {1, 2, 3, 4}; int *p = a; "
                "p = p + 2; printf(\"%d %d\", *p, *(a + 1)); return 0; }"),
            "3 2");
}

TEST(Interp, MallocFreeRoundTrip) {
  EXPECT_EQ(run("#include <stdio.h>\n#include <stdlib.h>\n"
                "int main() { int n = 6; double *buf = (double *)malloc(n * sizeof(double)); "
                "int i; for (i = 0; i < n; i++) { buf[i] = (double)i * 1.5; } "
                "printf(\"%.1f\", buf[5]); free(buf); return 0; }"),
            "7.5");
}

TEST(Interp, FunctionsAndRecursion) {
  EXPECT_EQ(run("#include <stdio.h>\n"
                "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n"
                "int main() { printf(\"%d\", fact(6)); return 0; }"),
            "720");
}

TEST(Interp, FunctionsWithArrayArguments) {
  EXPECT_EQ(run("#include <stdio.h>\n"
                "void fill(int *dst, int count) { int i; for (i = 0; i < count; i++) { dst[i] = i + 10; } }\n"
                "int main() { int a[4]; fill(a, 4); printf(\"%d\", a[3]); return 0; }"),
            "13");
}

TEST(Interp, CallDepthLimited) {
  EXPECT_THROW(
      run("int loop(int n) { return loop(n + 1); }\nint main() { return loop(0); }"),
      Error);
}

TEST(Interp, StepBudgetStopsInfiniteLoop) {
  const auto tu = parse::parse_translation_unit(
      "int main() { while (1) { } return 0; }");
  InterpreterOptions opts;
  opts.max_steps = 10000;
  Interpreter interp(*tu, nullptr, opts);
  EXPECT_THROW(interp.run_main(), Error);
}

TEST(Interp, PrintfFormats) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { printf(\"%d|%.3f|%e|%c|%%|%ld\", "
                "42, 3.14159, 1000.0, 65, 7); return 0; }"),
            "42|3.142|1.000000e+03|A|%|7");
}

TEST(Interp, PrintfStringArgument) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { printf(\"%s!\", \"hi\"); return 0; }"),
            "hi!");
}

TEST(Interp, UpdateExpressions) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int i = 5; printf(\"%d\", i++); "
                "printf(\"%d\", i); printf(\"%d\", ++i); return 0; }"),
            "567");
}

TEST(Interp, CompoundAssignments) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int x = 10; x += 5; x -= 3; x *= 2; "
                "x /= 4; x %= 4; printf(\"%d\", x); return 0; }"),
            "2");
}

TEST(Interp, TernaryOperator) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int x = 7; "
                "printf(\"%d\", x > 5 ? 1 : 0); return 0; }"),
            "1");
}

TEST(Interp, MathBuiltins) {
  EXPECT_EQ(run("#include <stdio.h>\n#include <math.h>\nint main() { "
                "printf(\"%.1f %.1f %.1f\", sqrt(16.0), fabs(-2.5), pow(2.0, 3.0)); "
                "return 0; }"),
            "4.0 2.5 8.0");
}

TEST(Interp, RandIsDeterministic) {
  const std::string prog =
      "#include <stdio.h>\n#include <stdlib.h>\nint main() { srand(7); "
      "printf(\"%d %d\", rand() % 100, rand() % 100); return 0; }";
  EXPECT_EQ(run(prog), run(prog));
}

TEST(Interp, SizeofIsCellAddressed) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { printf(\"%d\", (int)sizeof(double)); return 0; }"),
            "1");
}

TEST(Interp, LongArithmetic) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { long big = 2147483648; big = big * 2; "
                "printf(\"%ld\", big); return 0; }"),
            "4294967296");
}

TEST(Interp, GlobalFunctionOrderIndependent) {
  // Functions may be defined after their callers (two-pass registration).
  EXPECT_EQ(run("#include <stdio.h>\n"
                "int main() { printf(\"%d\", helper()); return 0; }\n"
                "int helper(void) { return 5; }"),
            "5");
}

TEST(Interp, MpiCallWithoutRuntimeThrows) {
  EXPECT_THROW(run("int main() { MPI_Finalize(); return 0; }"), Error);
}

TEST(Interp, UndefinedIdentifierThrows) {
  EXPECT_THROW(run("int main() { return nope; }"), Error);
}

TEST(Interp, UndefinedFunctionThrows) {
  EXPECT_THROW(run("int main() { return mystery(1); }"), Error);
}

TEST(Interp, ScopesShadowAndExpire) {
  EXPECT_EQ(run("#include <stdio.h>\nint main() { int x = 1; "
                "{ int x = 2; printf(\"%d\", x); } printf(\"%d\", x); return 0; }"),
            "21");
}

}  // namespace
}  // namespace mpirical::interp
