#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <vector>

#include "nn/infer.hpp"
#include "nn/transformer.hpp"
#include "support/arena.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "testing.hpp"

namespace mpirical::tensor::kernels {
namespace {

void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                  float tol = 1e-4f) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol * std::max(1.0f, std::fabs(want[i])))
        << "element " << i;
  }
}

void check_gemm(Trans ta, Trans tb, int m, int n, int k, Rng& rng) {
  const int lda = ta == Trans::N ? k : m;
  const int ldb = tb == Trans::N ? n : k;
  const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
  const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
  // Non-zero initial C exercises the accumulate contract.
  auto c_blocked = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
  auto c_naive = c_blocked;
  gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, c_blocked.data(), n);
  naive::gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                  c_naive.data(), n);
  expect_close(c_blocked, c_naive);
}

TEST(Kernels, GemmRandomShapeSweep) {
  MR_SEEDED_RNG(rng, 1234);
  MR_SEEDED_RNG(shapes, 99);
  // Randomized sweep hitting sizes around and across the 6x16 micro-tile and
  // the cache-block boundaries, in all three hot orientations.
  for (int trial = 0; trial < 60; ++trial) {
    const int m = 1 + static_cast<int>(shapes.next_u64() % 40);
    const int n = 1 + static_cast<int>(shapes.next_u64() % 40);
    const int k = 1 + static_cast<int>(shapes.next_u64() % 40);
    check_gemm(Trans::N, Trans::N, m, n, k, rng);
    check_gemm(Trans::T, Trans::N, m, n, k, rng);
    check_gemm(Trans::N, Trans::T, m, n, k, rng);
    check_gemm(Trans::T, Trans::T, m, n, k, rng);
  }
}

TEST(Kernels, GemmTileEdgeShapes) {
  MR_SEEDED_RNG(rng, 77);
  // m/n/k deliberately not divisible by the register tile (6x16) or cache
  // blocks (72/128/256), plus degenerate m=1 / n=1 / k=1.
  const int shapes[][3] = {{1, 1, 1},    {1, 16, 96},  {6, 16, 256},
                           {7, 17, 129}, {73, 129, 257}, {96, 1, 96},
                           {1, 800, 96}, {130, 96, 1},  {65, 33, 300},
                           {144, 128, 96}};
  for (const auto& s : shapes) {
    check_gemm(Trans::N, Trans::N, s[0], s[1], s[2], rng);
    check_gemm(Trans::T, Trans::N, s[0], s[1], s[2], rng);
    check_gemm(Trans::N, Trans::T, s[0], s[1], s[2], rng);
    check_gemm(Trans::T, Trans::T, s[0], s[1], s[2], rng);
  }
}

TEST(Kernels, GemmLargeMatchesNaive) {
  MR_SEEDED_RNG(rng, 5);
  check_gemm(Trans::N, Trans::N, 256, 256, 256, rng);
  check_gemm(Trans::T, Trans::N, 200, 150, 300, rng);
  check_gemm(Trans::N, Trans::T, 150, 300, 200, rng);
  check_gemm(Trans::T, Trans::T, 150, 200, 170, rng);
}

TEST(Kernels, GemmSubMatrixLeadingDimensions) {
  // A 3x4 times 4x2 product embedded in larger row-major buffers.
  MR_SEEDED_RNG(rng, 11);
  const int lda = 9, ldb = 7, ldc = 5;
  const auto a = rng.gaussian_vec(3 * lda);
  const auto b = rng.gaussian_vec(4 * ldb);
  auto c_blocked = rng.gaussian_vec(3 * ldc);
  auto c_naive = c_blocked;
  gemm_acc(Trans::N, Trans::N, 3, 2, 4, a.data(), lda, b.data(), ldb,
           c_blocked.data(), ldc);
  naive::gemm_acc(Trans::N, Trans::N, 3, 2, 4, a.data(), lda, b.data(), ldb,
                  c_naive.data(), ldc);
  expect_close(c_blocked, c_naive);
}

TEST(Kernels, GemmZeroDimensionIsNoop) {
  std::vector<float> c(4, 1.5f);
  gemm_acc(Trans::N, Trans::N, 0, 2, 2, nullptr, 1, nullptr, 2, c.data(), 2);
  gemm_acc(Trans::N, Trans::N, 2, 2, 0, nullptr, 1, nullptr, 2, c.data(), 2);
  for (float v : c) EXPECT_EQ(v, 1.5f);
}

TEST(Kernels, GemvMatchesNaive) {
  MR_SEEDED_RNG(rng, 42);
  for (const auto m : {1, 7, 8, 9, 95, 96, 192, 257}) {
    for (const auto n : {1, 17, 96, 800}) {
      const auto x = rng.gaussian_vec(static_cast<std::size_t>(m));
      const auto w = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
      const auto bias = rng.gaussian_vec(static_cast<std::size_t>(n));
      std::vector<float> y_blocked(static_cast<std::size_t>(n));
      std::vector<float> y_naive(static_cast<std::size_t>(n));
      gemv(m, n, x.data(), w.data(), n, bias.data(), y_blocked.data());
      naive::gemv(m, n, x.data(), w.data(), n, bias.data(), y_naive.data());
      expect_close(y_blocked, y_naive);
      // Null bias means zero-initialized output.
      gemv(m, n, x.data(), w.data(), n, nullptr, y_blocked.data());
      naive::gemv(m, n, x.data(), w.data(), n, nullptr, y_naive.data());
      expect_close(y_blocked, y_naive);
    }
  }
}

TEST(Kernels, GemvStridedW) {
  MR_SEEDED_RNG(rng, 13);
  const int m = 10, n = 6, ldw = 11;
  const auto x = rng.gaussian_vec(m);
  const auto w = rng.gaussian_vec(static_cast<std::size_t>(m) * ldw);
  std::vector<float> y_blocked(n), y_naive(n);
  gemv(m, n, x.data(), w.data(), ldw, nullptr, y_blocked.data());
  naive::gemv(m, n, x.data(), w.data(), ldw, nullptr, y_naive.data());
  expect_close(y_blocked, y_naive);
}

// The parallel decomposition sizes each task's i-range from the pool width
// (sharing one packed B panel across its row blocks). Drive it with explicit
// multi-thread pools -- the host may be single-core -- and require bitwise
// identical results for every pool size: each C element accumulates its
// k-steps in the same order no matter how the i/j space is tiled.
TEST(Kernels, GemmParallelDecompositionMatchesAcrossPoolSizes) {
  MR_SEEDED_RNG(rng, 21);
  ThreadPool pool1(1);
  ThreadPool pool3(3);
  ThreadPool pool7(7);
  // Shapes above the 4 MFLOP parallel threshold with row/column counts that
  // do not divide the kMc=72 / kNc=128 blocks evenly.
  const int shapes[][3] = {{300, 160, 80}, {145, 257, 96}, {73, 640, 64}};
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1], k = s[2];
    for (Trans ta : {Trans::N, Trans::T}) {
      for (Trans tb : {Trans::N, Trans::T}) {
        const int lda = ta == Trans::N ? k : m;
        const int ldb = tb == Trans::N ? n : k;
        const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
        const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
        const auto c0 = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
        auto c1 = c0, c3 = c0, c7 = c0, c_naive = c0;
        gemm_acc_on(pool1, ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                    c1.data(), n);
        gemm_acc_on(pool3, ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                    c3.data(), n);
        gemm_acc_on(pool7, ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                    c7.data(), n);
        naive::gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                        c_naive.data(), n);
        expect_close(c3, c_naive);
        ASSERT_EQ(c3, c1) << "pool=3 diverged from pool=1";
        ASSERT_EQ(c7, c1) << "pool=7 diverged from pool=1";
      }
    }
  }
}

// gemm_acc_rowstable's contract: a C row's bits depend only on its own A row
// (and B), never on m or the row's position. Computing each row alone (m=1)
// must reproduce the full product's rows BITWISE, including shapes small
// enough that gemm_acc itself would fall back to the naive loops.
TEST(Kernels, GemmRowstableRowsAreBitStable) {
  MR_SEEDED_RNG(rng, 51);
  for (const auto& s :
       std::vector<std::array<int, 3>>{{1, 8, 8},    {5, 16, 24},
                                       {17, 96, 96}, {73, 96, 192},
                                       {96, 129, 96}, {200, 96, 300}}) {
    const int m = s[0], n = s[1], k = s[2];
    const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
    const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
    const auto c0 = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
    auto c_full = c0;
    gemm_acc_rowstable(Trans::N, Trans::N, m, n, k, a.data(), k, b.data(), n,
                       c_full.data(), n);
    // Numerically it is still the same product.
    auto c_naive = c0;
    naive::gemm_acc(Trans::N, Trans::N, m, n, k, a.data(), k, b.data(), n,
                    c_naive.data(), n);
    expect_close(c_full, c_naive);
    // Bitwise: any single row recomputed alone matches the full panel.
    for (const int i : {0, m / 2, m - 1}) {
      std::vector<float> c_row(c0.begin() + static_cast<std::size_t>(i) * n,
                               c0.begin() + static_cast<std::size_t>(i + 1) * n);
      gemm_acc_rowstable(Trans::N, Trans::N, 1, n, k,
                         a.data() + static_cast<std::size_t>(i) * k, k,
                         b.data(), n, c_row.data(), n);
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(c_row[static_cast<std::size_t>(j)],
                  c_full[static_cast<std::size_t>(i) * n + j])
            << "m=" << m << " n=" << n << " k=" << k << " row " << i
            << " col " << j << ": row bits depend on panel height";
      }
    }
  }
}

// gemm_acc_packed's contract: bit-identical to gemm_acc on the same
// operands for every shape, including sub-threshold products (which must
// take the same naive fallback) and multi-panel / multi-k-block shapes.
TEST(Kernels, GemmPackedMatchesUnpackedBitwise) {
  MR_SEEDED_RNG(rng, 53);
  for (Trans ta : {Trans::N, Trans::T}) {
    for (Trans tb : {Trans::N, Trans::T}) {
      for (const auto& s :
           std::vector<std::array<int, 3>>{{1, 8, 8},     {3, 96, 96},
                                           {24, 800, 96}, {24, 96, 96},
                                           {96, 129, 300}, {7, 17, 129}}) {
        const int m = s[0], n = s[1], k = s[2];
        const int lda = ta == Trans::N ? k : m;
        const int ldb = tb == Trans::N ? n : k;
        const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
        const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
        const auto c0 = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
        auto c_unpacked = c0;
        gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                 c_unpacked.data(), n);
        const PackedPanelB packed = pack_b_panels(tb, n, k, b.data(), ldb);
        auto c_packed = c0;
        gemm_acc_packed(ta, m, a.data(), lda, packed, c_packed.data(), n);
        ASSERT_EQ(c_packed, c_unpacked)
            << "m=" << m << " n=" << n << " k=" << k
            << " ta=" << (ta == Trans::T) << " tb=" << (tb == Trans::T);
      }
    }
  }
}

// ---- int8 weights-only path -------------------------------------------------

// Dequantized-B reference for the int8 GEMM: widen q back to f32 with the
// per-column scales and run the naive f32 oracle over it.
void naive_gemm_dequant(Trans ta, int m, int n, int k, const float* a, int lda,
                        const std::int8_t* q, const float* scales, float* c,
                        int ldc) {
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  for (int p = 0; p < k; ++p) {
    for (int j = 0; j < n; ++j) {
      b[static_cast<std::size_t>(p) * n + j] =
          scales[j] * static_cast<float>(q[static_cast<std::size_t>(p) * n + j]);
    }
  }
  naive::gemm_acc(ta, Trans::N, m, n, k, a, lda, b.data(), n, c, ldc);
}

TEST(KernelsI8, QuantizeWeightsPerColumnSymmetric) {
  MR_SEEDED_RNG(rng, 61);
  const int k = 37, n = 23;
  auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
  // One all-zero column must quantize to q=0 / scale=1 (not NaN).
  for (int p = 0; p < k; ++p) b[static_cast<std::size_t>(p) * n + 5] = 0.0f;
  std::vector<std::int8_t> q(b.size());
  std::vector<float> scales(static_cast<std::size_t>(n));
  quantize_weights_i8(Trans::N, n, k, b.data(), n, q.data(), scales.data());
  for (int j = 0; j < n; ++j) {
    float amax = 0.0f;
    for (int p = 0; p < k; ++p) {
      amax = std::max(amax,
                      std::fabs(b[static_cast<std::size_t>(p) * n + j]));
    }
    if (j == 5) {
      EXPECT_EQ(scales[static_cast<std::size_t>(j)], 1.0f);
    } else {
      EXPECT_FLOAT_EQ(scales[static_cast<std::size_t>(j)], amax / 127.0f);
    }
    for (int p = 0; p < k; ++p) {
      const std::size_t idx = static_cast<std::size_t>(p) * n + j;
      ASSERT_GE(q[idx], -127);
      ASSERT_LE(q[idx], 127);
      // Round-to-nearest: dequantized value within half a quantization step.
      ASSERT_NEAR(scales[static_cast<std::size_t>(j)] *
                      static_cast<float>(q[idx]),
                  b[idx], 0.5f * scales[static_cast<std::size_t>(j)] + 1e-7f);
    }
  }
  // Quantizing the transposed storage of the same logical matrix gives the
  // same q/scales: orientation is a storage detail, not a value change.
  std::vector<float> bt(b.size());
  for (int p = 0; p < k; ++p) {
    for (int j = 0; j < n; ++j) {
      bt[static_cast<std::size_t>(j) * k + p] =
          b[static_cast<std::size_t>(p) * n + j];
    }
  }
  std::vector<std::int8_t> qt(b.size());
  std::vector<float> scales_t(static_cast<std::size_t>(n));
  quantize_weights_i8(Trans::T, n, k, bt.data(), k, qt.data(),
                      scales_t.data());
  EXPECT_EQ(q, qt);
  EXPECT_EQ(scales, scales_t);
}

TEST(KernelsI8, GemmPackedI8MatchesDequantizedOracle) {
  MR_SEEDED_RNG(rng, 63);
  for (Trans ta : {Trans::N, Trans::T}) {
    for (const auto& s :
         std::vector<std::array<int, 3>>{{1, 8, 8},      {3, 96, 96},
                                         {24, 800, 96},  {7, 17, 129},
                                         {96, 129, 300}, {6, 16, 256}}) {
      const int m = s[0], n = s[1], k = s[2];
      const int lda = ta == Trans::N ? k : m;
      const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
      const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
      const PackedPanelBI8 packed = pack_b_panels_i8(Trans::N, n, k, b.data(), n);
      ASSERT_EQ(packed.scales.size(), static_cast<std::size_t>(n));
      const auto c0 = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
      auto c_i8 = c0;
      gemm_acc_packed_i8(ta, m, a.data(), lda, packed, c_i8.data(), n);
      // Reference: naive f32 product against the dequantized weights. The
      // int8 kernel accumulates the same values in a different (blocked)
      // order, so compare numerically, not bitwise.
      std::vector<std::int8_t> q(b.size());
      std::vector<float> scales(static_cast<std::size_t>(n));
      quantize_weights_i8(Trans::N, n, k, b.data(), n, q.data(), scales.data());
      auto c_ref = c0;
      naive_gemm_dequant(ta, m, n, k, a.data(), lda, q.data(), scales.data(),
                         c_ref.data(), n);
      SCOPED_TRACE(::testing::Message() << "m=" << m << " n=" << n
                                        << " k=" << k
                                        << " ta=" << (ta == Trans::T));
      expect_close(c_i8, c_ref, 2e-3f);
    }
  }
}

// gemm_acc_packed_i8's headline contract: rowstable BY CONSTRUCTION. Any C
// row recomputed alone (m=1) matches the full product's row bitwise for
// every shape -- including tiny ones, where the f32 path would take its
// naive fallback but the int8 path has none to take.
TEST(KernelsI8, GemmPackedI8RowsAreBitStable) {
  MR_SEEDED_RNG(rng, 67);
  for (const auto& s :
       std::vector<std::array<int, 3>>{{1, 8, 8},      {5, 16, 24},
                                       {17, 96, 96},   {73, 96, 192},
                                       {96, 129, 96},  {200, 96, 300}}) {
    const int m = s[0], n = s[1], k = s[2];
    const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
    const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
    const PackedPanelBI8 packed = pack_b_panels_i8(Trans::N, n, k, b.data(), n);
    const auto c0 = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
    auto c_full = c0;
    gemm_acc_packed_i8(Trans::N, m, a.data(), k, packed, c_full.data(), n);
    for (const int i : {0, m / 2, m - 1}) {
      std::vector<float> c_row(c0.begin() + static_cast<std::size_t>(i) * n,
                               c0.begin() + static_cast<std::size_t>(i + 1) * n);
      gemm_acc_packed_i8(Trans::N, 1, a.data() + static_cast<std::size_t>(i) * k,
                         k, packed, c_row.data(), n);
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(c_row[static_cast<std::size_t>(j)],
                  c_full[static_cast<std::size_t>(i) * n + j])
            << "m=" << m << " n=" << n << " k=" << k << " row " << i
            << " col " << j << ": int8 row bits depend on panel height";
      }
    }
  }
}

// The prequantized (snapshot-view) pack overload must produce bit-identical
// panels to the quantizing overload fed the same weights: decoding from a
// quantized snapshot and decoding from in-memory f32 weights share bits.
TEST(KernelsI8, ViewPackAndQuantizingPackAgreeBitwise) {
  MR_SEEDED_RNG(rng, 71);
  for (const auto& s : std::vector<std::array<int, 2>>{
           {8, 8}, {96, 96}, {129, 300}, {17, 40}}) {
    const int n = s[0], k = s[1];
    const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
    const PackedPanelBI8 direct = pack_b_panels_i8(Trans::N, n, k, b.data(), n);
    std::vector<std::int8_t> q(b.size());
    std::vector<float> scales(static_cast<std::size_t>(n));
    quantize_weights_i8(Trans::N, n, k, b.data(), n, q.data(), scales.data());
    const PackedPanelBI8 view = pack_b_panels_i8(n, k, q.data(), scales.data());
    EXPECT_EQ(direct.n, view.n);
    EXPECT_EQ(direct.k, view.k);
    EXPECT_EQ(direct.scales, view.scales);
    EXPECT_EQ(direct.data, view.data);
    // And the quarter-bytes claim: the packed int8 operand streams 1/4 the
    // bytes of the equivalent f32 panel.
    const PackedPanelB f32 = pack_b_panels(Trans::N, n, k, b.data(), n);
    EXPECT_EQ(direct.weight_bytes() * 4, f32.data.size() * sizeof(float));
  }
}

// Software prefetch is advisory: toggling it must not change a single bit of
// either the f32 or the int8 packed GEMM, on shapes large enough that the
// micro-kernel (where the prefetch lives) actually runs.
TEST(KernelsI8, PrefetchToggleKeepsGemmBitsIdentical) {
  MR_SEEDED_RNG(rng, 73);
  const bool saved = gemm_prefetch_enabled();
  const int m = 48, n = 640, k = 300;
  const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
  const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
  const auto c0 = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
  const PackedPanelB packed_f32 = pack_b_panels(Trans::N, n, k, b.data(), n);
  const PackedPanelBI8 packed_i8 = pack_b_panels_i8(Trans::N, n, k, b.data(), n);

  set_gemm_prefetch(false);
  auto c_f32_off = c0, c_i8_off = c0;
  gemm_acc_packed(Trans::N, m, a.data(), k, packed_f32, c_f32_off.data(), n);
  gemm_acc_packed_i8(Trans::N, m, a.data(), k, packed_i8, c_i8_off.data(), n);

  set_gemm_prefetch(true);
  auto c_f32_on = c0, c_i8_on = c0;
  gemm_acc_packed(Trans::N, m, a.data(), k, packed_f32, c_f32_on.data(), n);
  gemm_acc_packed_i8(Trans::N, m, a.data(), k, packed_i8, c_i8_on.data(), n);

  set_gemm_prefetch(saved);
  EXPECT_EQ(c_f32_off, c_f32_on) << "prefetch changed f32 GEMM bits";
  EXPECT_EQ(c_i8_off, c_i8_on) << "prefetch changed int8 GEMM bits";
}

// ---- scratch arena ----------------------------------------------------------

TEST(Arena, ReusesCapacityAcrossWaves) {
  ScratchArena arena;
  EXPECT_EQ(arena.capacity_floats(), 0u);

  // A wave-shaped allocation pattern, repeated: capacity and chunk count
  // must stop growing after the first wave, and the first allocation of
  // every wave must land on the same reused memory.
  const std::size_t sizes[] = {3840, 3840, 11520, 3840, 7680};
  float* first_wave_ptr = nullptr;
  std::size_t cap_after_first = 0, chunks_after_first = 0;
  for (int wave = 0; wave < 50; ++wave) {
    arena.reset();
    float* first = nullptr;
    for (const std::size_t n : sizes) {
      float* p = arena.floats(n);
      ASSERT_NE(p, nullptr);
      if (!first) first = p;
      p[0] = 1.0f;
      p[n - 1] = 2.0f;  // touch both ends
    }
    if (wave == 0) {
      first_wave_ptr = first;
      cap_after_first = arena.capacity_floats();
      chunks_after_first = arena.chunk_count();
      continue;
    }
    EXPECT_EQ(first, first_wave_ptr) << "wave " << wave;
    EXPECT_EQ(arena.capacity_floats(), cap_after_first) << "wave " << wave;
    EXPECT_EQ(arena.chunk_count(), chunks_after_first) << "wave " << wave;
  }
  EXPECT_EQ(arena.floats(0), nullptr);
}

// ThreadPool stress for the per-wave arena reuse: pool workers drive real
// encode waves (nn::encode_batch + cross-K/V precompute, exactly what
// evaluate_model's wave loop runs per chunk) back to back, and each
// worker's thread-local arena must stop growing after its first wave --
// repeated waves reallocate nothing.
TEST(Arena, ThreadPoolStressNoPerWaveAllocationGrowth) {
  MR_SEEDED_RNG(rng, 57);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 40;
  cfg.d_model = 24;
  cfg.heads = 4;
  cfg.ffn_dim = 48;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 64;
  cfg.dropout = 0.0f;
  nn::Transformer model(cfg, rng);
  std::vector<std::vector<int>> sources;
  for (const int len : {9, 33, 48, 17}) {
    std::vector<int> src(static_cast<std::size_t>(len));
    for (auto& id : src) id = 3 + static_cast<int>(rng.next_below(37));
    sources.push_back(std::move(src));
  }
  std::vector<const std::vector<int>*> ptrs;
  for (const auto& src : sources) ptrs.push_back(&src);

  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::string> failures;
  pool.for_range(
      0, 4,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t task = lo; task < hi; ++task) {
          // Warmup wave grows this worker's arena to steady state.
          (void)nn::precompute_cross_kv_batch(model, ptrs, /*batched=*/true);
          const std::size_t cap = ScratchArena::local().capacity_floats();
          const std::size_t chunks = ScratchArena::local().chunk_count();
          for (int wave = 0; wave < 12; ++wave) {
            (void)nn::precompute_cross_kv_batch(model, ptrs, /*batched=*/true);
            if (ScratchArena::local().capacity_floats() != cap ||
                ScratchArena::local().chunk_count() != chunks) {
              std::lock_guard<std::mutex> lock(mu);
              failures.push_back("task " + std::to_string(task) + " wave " +
                                 std::to_string(wave) +
                                 ": arena grew past the warmup wave");
              return;
            }
          }
        }
      },
      /*grain=*/1);
  for (const auto& f : failures) ADD_FAILURE() << f;
}

// ---- batched decode-step attention ------------------------------------------

// Naive per-row multi-head attention reference for the decode_step kernels.
void attend_reference(const float* q, int rows, int d, int heads,
                      const float* const* ks, const float* const* vs,
                      const int* kv_lens, float* out) {
  const int hd = d / heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  for (int r = 0; r < rows; ++r) {
    const float* qrow = q + static_cast<std::size_t>(r) * d;
    float* orow = out + static_cast<std::size_t>(r) * d;
    for (int h = 0; h < heads; ++h) {
      const int off = h * hd;
      std::vector<double> scores(static_cast<std::size_t>(kv_lens[r]));
      double mx = -1e30;
      for (int j = 0; j < kv_lens[r]; ++j) {
        const float* krow = ks[r] + static_cast<std::size_t>(j) * d + off;
        double s = 0.0;
        for (int c = 0; c < hd; ++c) {
          s += static_cast<double>(qrow[off + c]) * krow[c];
        }
        s *= inv_sqrt;
        scores[static_cast<std::size_t>(j)] = s;
        mx = std::max(mx, s);
      }
      double sum = 0.0;
      for (auto& s : scores) {
        s = std::exp(s - mx);
        sum += s;
      }
      for (int c = 0; c < hd; ++c) orow[off + c] = 0.0f;
      for (int j = 0; j < kv_lens[r]; ++j) {
        const double p = scores[static_cast<std::size_t>(j)] / sum;
        const float* vrow = vs[r] + static_cast<std::size_t>(j) * d + off;
        for (int c = 0; c < hd; ++c) {
          orow[off + c] += static_cast<float>(p * vrow[c]);
        }
      }
    }
  }
}

// Tile-edge shapes for the batched cross-attention step: beam-sized row
// blocks (1, 5, 7, 16) against KV lengths straddling the kNc=128 and
// kKc=256 cache-block boundaries the per-head GEMMs tile over.
TEST(Kernels, BatchedSharedAttentionTileEdgeShapes) {
  MR_SEEDED_RNG(rng, 31);
  for (const int d : {32, 96}) {
    const int heads = d == 32 ? 2 : 4;
    // 1..16 exercise the fused beam-sized path, 17/48 the per-head GEMMs.
    for (const int rows : {1, 5, 7, 16, 17, 48}) {
      for (const int kv_len : {1, 7, 127, 128, 129, 255, 256, 257, 300}) {
        const auto q = rng.gaussian_vec(static_cast<std::size_t>(rows) * d);
        const auto k = rng.gaussian_vec(static_cast<std::size_t>(kv_len) * d);
        const auto v = rng.gaussian_vec(static_cast<std::size_t>(kv_len) * d);
        // attention_shared takes the K panel transposed ([d, kv_len]).
        std::vector<float> kt(k.size());
        for (int j = 0; j < kv_len; ++j) {
          for (int i = 0; i < d; ++i) {
            kt[static_cast<std::size_t>(i) * kv_len + j] =
                k[static_cast<std::size_t>(j) * d + i];
          }
        }
        std::vector<float> got(static_cast<std::size_t>(rows) * d);
        std::vector<float> want(static_cast<std::size_t>(rows) * d);
        nn::decode_step::attention_shared(q.data(), rows, d, heads, kt.data(),
                                          v.data(), kv_len, got.data());
        std::vector<const float*> ks(static_cast<std::size_t>(rows), k.data());
        std::vector<const float*> vs(static_cast<std::size_t>(rows), v.data());
        std::vector<int> lens(static_cast<std::size_t>(rows), kv_len);
        attend_reference(q.data(), rows, d, heads, ks.data(), vs.data(),
                         lens.data(), want.data());
        SCOPED_TRACE(::testing::Message() << "d=" << d << " rows=" << rows
                                          << " kv_len=" << kv_len);
        expect_close(got, want, 2e-3f);
      }
    }
  }
}

// Ragged self-attention: every row owns a distinct cache with its own
// length (the beam fork layout), including length-1 degenerate rows.
TEST(Kernels, BatchedRaggedAttentionMatchesReference) {
  MR_SEEDED_RNG(rng, 37);
  const int d = 48, heads = 4;
  for (const int rows : {1, 5, 7, 16}) {
    std::vector<std::vector<float>> k_bufs, v_bufs;
    std::vector<const float*> ks, vs;
    std::vector<int> lens;
    for (int r = 0; r < rows; ++r) {
      const int len = 1 + static_cast<int>(rng.next_below(40));
      k_bufs.push_back(rng.gaussian_vec(static_cast<std::size_t>(len) * d));
      v_bufs.push_back(rng.gaussian_vec(static_cast<std::size_t>(len) * d));
      lens.push_back(len);
    }
    for (int r = 0; r < rows; ++r) {
      ks.push_back(k_bufs[static_cast<std::size_t>(r)].data());
      vs.push_back(v_bufs[static_cast<std::size_t>(r)].data());
    }
    const auto q = rng.gaussian_vec(static_cast<std::size_t>(rows) * d);
    std::vector<float> got(static_cast<std::size_t>(rows) * d);
    std::vector<float> want(static_cast<std::size_t>(rows) * d);
    nn::decode_step::attention_ragged(q.data(), rows, d, heads, ks.data(),
                                      vs.data(), lens.data(), got.data());
    attend_reference(q.data(), rows, d, heads, ks.data(), vs.data(),
                     lens.data(), want.data());
    SCOPED_TRACE(::testing::Message() << "rows=" << rows);
    expect_close(got, want, 2e-3f);
  }
}

}  // namespace
}  // namespace mpirical::tensor::kernels
