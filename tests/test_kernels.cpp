#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"
#include "tensor/kernels.hpp"

namespace mpirical::tensor::kernels {
namespace {

void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                  float tol = 1e-4f) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol * std::max(1.0f, std::fabs(want[i])))
        << "element " << i;
  }
}

void check_gemm(Trans ta, Trans tb, int m, int n, int k, Rng& rng) {
  const int lda = ta == Trans::N ? k : m;
  const int ldb = tb == Trans::N ? n : k;
  const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
  const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
  // Non-zero initial C exercises the accumulate contract.
  auto c_blocked = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
  auto c_naive = c_blocked;
  gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, c_blocked.data(), n);
  naive::gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                  c_naive.data(), n);
  expect_close(c_blocked, c_naive);
}

TEST(Kernels, GemmRandomShapeSweep) {
  Rng rng(1234);
  Rng shapes(99);
  // Randomized sweep hitting sizes around and across the 6x16 micro-tile and
  // the cache-block boundaries, in all three hot orientations.
  for (int trial = 0; trial < 60; ++trial) {
    const int m = 1 + static_cast<int>(shapes.next_u64() % 40);
    const int n = 1 + static_cast<int>(shapes.next_u64() % 40);
    const int k = 1 + static_cast<int>(shapes.next_u64() % 40);
    check_gemm(Trans::N, Trans::N, m, n, k, rng);
    check_gemm(Trans::T, Trans::N, m, n, k, rng);
    check_gemm(Trans::N, Trans::T, m, n, k, rng);
    check_gemm(Trans::T, Trans::T, m, n, k, rng);
  }
}

TEST(Kernels, GemmTileEdgeShapes) {
  Rng rng(77);
  // m/n/k deliberately not divisible by the register tile (6x16) or cache
  // blocks (72/128/256), plus degenerate m=1 / n=1 / k=1.
  const int shapes[][3] = {{1, 1, 1},    {1, 16, 96},  {6, 16, 256},
                           {7, 17, 129}, {73, 129, 257}, {96, 1, 96},
                           {1, 800, 96}, {130, 96, 1},  {65, 33, 300},
                           {144, 128, 96}};
  for (const auto& s : shapes) {
    check_gemm(Trans::N, Trans::N, s[0], s[1], s[2], rng);
    check_gemm(Trans::T, Trans::N, s[0], s[1], s[2], rng);
    check_gemm(Trans::N, Trans::T, s[0], s[1], s[2], rng);
    check_gemm(Trans::T, Trans::T, s[0], s[1], s[2], rng);
  }
}

TEST(Kernels, GemmLargeMatchesNaive) {
  Rng rng(5);
  check_gemm(Trans::N, Trans::N, 256, 256, 256, rng);
  check_gemm(Trans::T, Trans::N, 200, 150, 300, rng);
  check_gemm(Trans::N, Trans::T, 150, 300, 200, rng);
  check_gemm(Trans::T, Trans::T, 150, 200, 170, rng);
}

TEST(Kernels, GemmSubMatrixLeadingDimensions) {
  // A 3x4 times 4x2 product embedded in larger row-major buffers.
  Rng rng(11);
  const int lda = 9, ldb = 7, ldc = 5;
  const auto a = rng.gaussian_vec(3 * lda);
  const auto b = rng.gaussian_vec(4 * ldb);
  auto c_blocked = rng.gaussian_vec(3 * ldc);
  auto c_naive = c_blocked;
  gemm_acc(Trans::N, Trans::N, 3, 2, 4, a.data(), lda, b.data(), ldb,
           c_blocked.data(), ldc);
  naive::gemm_acc(Trans::N, Trans::N, 3, 2, 4, a.data(), lda, b.data(), ldb,
                  c_naive.data(), ldc);
  expect_close(c_blocked, c_naive);
}

TEST(Kernels, GemmZeroDimensionIsNoop) {
  std::vector<float> c(4, 1.5f);
  gemm_acc(Trans::N, Trans::N, 0, 2, 2, nullptr, 1, nullptr, 2, c.data(), 2);
  gemm_acc(Trans::N, Trans::N, 2, 2, 0, nullptr, 1, nullptr, 2, c.data(), 2);
  for (float v : c) EXPECT_EQ(v, 1.5f);
}

TEST(Kernels, GemvMatchesNaive) {
  Rng rng(42);
  for (const auto m : {1, 7, 8, 9, 95, 96, 192, 257}) {
    for (const auto n : {1, 17, 96, 800}) {
      const auto x = rng.gaussian_vec(static_cast<std::size_t>(m));
      const auto w = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
      const auto bias = rng.gaussian_vec(static_cast<std::size_t>(n));
      std::vector<float> y_blocked(static_cast<std::size_t>(n));
      std::vector<float> y_naive(static_cast<std::size_t>(n));
      gemv(m, n, x.data(), w.data(), n, bias.data(), y_blocked.data());
      naive::gemv(m, n, x.data(), w.data(), n, bias.data(), y_naive.data());
      expect_close(y_blocked, y_naive);
      // Null bias means zero-initialized output.
      gemv(m, n, x.data(), w.data(), n, nullptr, y_blocked.data());
      naive::gemv(m, n, x.data(), w.data(), n, nullptr, y_naive.data());
      expect_close(y_blocked, y_naive);
    }
  }
}

TEST(Kernels, GemvStridedW) {
  Rng rng(13);
  const int m = 10, n = 6, ldw = 11;
  const auto x = rng.gaussian_vec(m);
  const auto w = rng.gaussian_vec(static_cast<std::size_t>(m) * ldw);
  std::vector<float> y_blocked(n), y_naive(n);
  gemv(m, n, x.data(), w.data(), ldw, nullptr, y_blocked.data());
  naive::gemv(m, n, x.data(), w.data(), ldw, nullptr, y_naive.data());
  expect_close(y_blocked, y_naive);
}

}  // namespace
}  // namespace mpirical::tensor::kernels
