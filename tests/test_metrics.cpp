#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "mpidb/catalog.hpp"

namespace mpirical::metrics {
namespace {

using ast::CallSite;

std::vector<CallSite> sites(
    std::initializer_list<std::pair<const char*, int>> list) {
  std::vector<CallSite> out;
  for (const auto& [name, line] : list) out.push_back(CallSite{name, line});
  return out;
}

TEST(Match, PerfectPrediction) {
  const auto truth = sites({{"MPI_Init", 5}, {"MPI_Finalize", 20}});
  const auto counts = match_call_sites(truth, truth, 1);
  EXPECT_EQ(counts.tp, 2u);
  EXPECT_EQ(counts.fp, 0u);
  EXPECT_EQ(counts.fn, 0u);
  EXPECT_EQ(counts.f1(), 1.0);
}

TEST(Match, OneLineToleranceAccepts) {
  const auto pred = sites({{"MPI_Send", 10}});
  const auto truth = sites({{"MPI_Send", 11}});
  EXPECT_EQ(match_call_sites(pred, truth, 1).tp, 1u);
  EXPECT_EQ(match_call_sites(pred, truth, 0).tp, 0u);
}

TEST(Match, TwoLinesAwayRejectedAtToleranceOne) {
  const auto pred = sites({{"MPI_Send", 10}});
  const auto truth = sites({{"MPI_Send", 12}});
  const auto counts = match_call_sites(pred, truth, 1);
  EXPECT_EQ(counts.tp, 0u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);
  EXPECT_EQ(match_call_sites(pred, truth, 2).tp, 1u);
}

TEST(Match, WrongFunctionIsFalsePositive) {
  const auto pred = sites({{"MPI_Ssend", 10}});
  const auto truth = sites({{"MPI_Send", 10}});
  const auto counts = match_call_sites(pred, truth, 1);
  EXPECT_EQ(counts.tp, 0u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);
}

TEST(Match, DuplicateFunctionsMatchOneToOne) {
  const auto pred = sites({{"MPI_Send", 10}, {"MPI_Send", 10}});
  const auto truth = sites({{"MPI_Send", 10}});
  const auto counts = match_call_sites(pred, truth, 1);
  EXPECT_EQ(counts.tp, 1u);
  EXPECT_EQ(counts.fp, 1u);
}

TEST(Match, PrefersNearestCandidate) {
  const auto pred = sites({{"MPI_Recv", 10}});
  const auto truth = sites({{"MPI_Recv", 11}, {"MPI_Recv", 10}});
  const auto counts = match_call_sites(pred, truth, 1);
  EXPECT_EQ(counts.tp, 1u);
  EXPECT_EQ(counts.fn, 1u);
}

TEST(Match, EmptyPredictionsAllFalseNegatives) {
  const auto truth = sites({{"MPI_Init", 1}, {"MPI_Finalize", 9}});
  const auto counts = match_call_sites({}, truth, 1);
  EXPECT_EQ(counts.fn, 2u);
  EXPECT_EQ(counts.precision(), 0.0);
  EXPECT_EQ(counts.recall(), 0.0);
  EXPECT_EQ(counts.f1(), 0.0);
}

TEST(Match, FilteredToCommonCore) {
  const auto pred = sites({{"MPI_Init", 3}, {"MPI_Barrier", 7}});
  const auto truth = sites({{"MPI_Init", 3}, {"MPI_Barrier", 9}});
  const auto all = match_call_sites(pred, truth, 1);
  EXPECT_EQ(all.tp, 1u);
  EXPECT_EQ(all.fp, 1u);
  const auto core = match_call_sites_filtered(
      pred, truth, 1, [](const std::string& f) {
        return mpidb::is_common_core(f);
      });
  EXPECT_EQ(core.tp, 1u);
  EXPECT_EQ(core.fp, 0u);
  EXPECT_EQ(core.fn, 0u);
}

TEST(Match, CountsAggregate) {
  PrfCounts a{8, 2, 1};
  PrfCounts b{2, 0, 3};
  a += b;
  EXPECT_EQ(a.tp, 10u);
  EXPECT_NEAR(a.precision(), 10.0 / 12.0, 1e-12);
  EXPECT_NEAR(a.recall(), 10.0 / 14.0, 1e-12);
}

std::vector<std::string> words(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ' ') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

TEST(Bleu, IdenticalIsOne) {
  const auto ref = words("int main ( ) { return 0 ; }");
  EXPECT_NEAR(bleu(ref, ref), 1.0, 1e-9);
}

TEST(Bleu, DisjointNearZero) {
  EXPECT_LT(bleu(words("a b c d e"), words("v w x y z")), 0.01);
}

TEST(Bleu, BrevityPenaltyApplies) {
  const auto ref = words("a b c d e f g h");
  const auto short_cand = words("a b c d");
  const auto full_cand = ref;
  EXPECT_LT(bleu(short_cand, ref), bleu(full_cand, ref));
}

TEST(Bleu, OrderSensitivity) {
  const auto ref = words("a b c d e f");
  const auto shuffled = words("f e d c b a");
  EXPECT_GT(bleu(ref, ref), bleu(shuffled, ref));
}

TEST(Bleu, EmptyInputsScoreZero) {
  EXPECT_EQ(bleu({}, words("a")), 0.0);
  EXPECT_EQ(bleu(words("a"), {}), 0.0);
}

TEST(Meteor, IdenticalNearOne) {
  const auto ref = words("the quick brown fox jumps");
  EXPECT_GT(meteor(ref, ref), 0.98);
}

TEST(Meteor, NoMatchesIsZero) {
  EXPECT_EQ(meteor(words("a b"), words("c d")), 0.0);
}

TEST(Meteor, FragmentationPenalized) {
  const auto ref = words("a b c d e f");
  // Same unigrams, scrambled order -> more chunks -> lower score.
  const auto scrambled = words("b a d c f e");
  EXPECT_GT(meteor(ref, ref), meteor(scrambled, ref));
}

TEST(RougeL, IdenticalIsOne) {
  const auto ref = words("x y z w");
  EXPECT_NEAR(rouge_l(ref, ref), 1.0, 1e-9);
}

TEST(RougeL, SubsequenceScoring) {
  const auto ref = words("a b c d");
  const auto cand = words("a c d");
  // LCS = 3; P = 1, R = 3/4 -> F1 = 6/7.
  EXPECT_NEAR(rouge_l(cand, ref), 6.0 / 7.0, 1e-9);
}

TEST(RougeL, LcsLength) {
  EXPECT_EQ(lcs_length(words("a b c d e"), words("b d e")), 3u);
  EXPECT_EQ(lcs_length(words("a"), words("b")), 0u);
  EXPECT_EQ(lcs_length({}, words("a")), 0u);
}

TEST(ExactMatch, Strict) {
  EXPECT_TRUE(exact_match(words("a b"), words("a b")));
  EXPECT_FALSE(exact_match(words("a b"), words("a b c")));
}

}  // namespace
}  // namespace mpirical::metrics
