// bench_common regression suite: the nearest-rank percentile that replaced
// bench_serve's truncating interpolation (which read one rank high on even
// samples), and the crash/concurrency contract of append_json_line -- many
// processes appending to one BENCH_*.json file must never tear or
// interleave a line.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "support/io.hpp"
#include "support/strings.hpp"

namespace mpirical {
namespace {

// ---- percentile -------------------------------------------------------------

std::vector<double> iota_sample(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i + 1);
  return v;
}

TEST(BenchPercentile, EmptySampleIsZero) {
  EXPECT_EQ(bench::percentile({}, 0.5), 0.0);
}

TEST(BenchPercentile, SingleElement) {
  const auto v = iota_sample(1);
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(bench::percentile(v, p), 1.0) << "p=" << p;
  }
}

TEST(BenchPercentile, TwoElements) {
  const auto v = iota_sample(2);
  EXPECT_EQ(bench::percentile(v, 0.0), 1.0);
  EXPECT_EQ(bench::percentile(v, 0.5), 1.0);  // ceil(0.5*2) = rank 1
  EXPECT_EQ(bench::percentile(v, 0.99), 2.0);
  EXPECT_EQ(bench::percentile(v, 1.0), 2.0);
}

TEST(BenchPercentile, FourElements) {
  const auto v = iota_sample(4);
  EXPECT_EQ(bench::percentile(v, 0.0), 1.0);
  // The defining nearest-rank case: the median of [1,2,3,4] is the 2nd
  // value, not the 3rd the old `p*(n-1)+0.5` truncation produced.
  EXPECT_EQ(bench::percentile(v, 0.5), 2.0);
  EXPECT_EQ(bench::percentile(v, 0.99), 4.0);
  EXPECT_EQ(bench::percentile(v, 1.0), 4.0);
}

TEST(BenchPercentile, HundredElements) {
  const auto v = iota_sample(100);
  EXPECT_EQ(bench::percentile(v, 0.0), 1.0);
  EXPECT_EQ(bench::percentile(v, 0.5), 50.0);  // old code returned the 51st
  EXPECT_EQ(bench::percentile(v, 0.99), 99.0);
  EXPECT_EQ(bench::percentile(v, 1.0), 100.0);
}

// ---- append_json_line multi-process hammer ----------------------------------

TEST(BenchAppendJsonLine, ParallelWritersNeverTearOrInterleaveLines) {
  const std::string path = "/tmp/mpirical_append_hammer_" +
                           std::to_string(::getpid()) + ".json";
  std::remove(path.c_str());

  constexpr int kWriters = 8;
  constexpr int kLines = 200;
  // Long variable-length payloads so torn or interleaved writes could not
  // accidentally reassemble into a valid line.
  auto make_line = [](int writer, int n) {
    std::string line = "{\"writer\":" + std::to_string(writer) +
                       ",\"n\":" + std::to_string(n) + ",\"pad\":\"";
    line.append(static_cast<std::size_t>(64 + (writer * 37 + n * 11) % 192),
                'a' + static_cast<char>(writer));
    line += "\"}";
    return line;
  };

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: plain appends, no gtest machinery, leave via _exit so no
      // parent state (atexit hooks, buffered stdio) replays.
      int code = 0;
      try {
        for (int n = 0; n < kLines; ++n) {
          bench::append_json_line(path, make_line(w, n));
        }
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  // Every line written by any process must read back whole: exact count,
  // and the multiset of lines equals the multiset sent (order is free).
  std::set<std::string> expected;
  for (int w = 0; w < kWriters; ++w) {
    for (int n = 0; n < kLines; ++n) expected.insert(make_line(w, n));
  }
  const std::vector<std::string> got = split_lines(io::read_file(path));
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kWriters) * kLines);
  std::set<std::string> got_set(got.begin(), got.end());
  EXPECT_EQ(got_set.size(), got.size()) << "duplicate (torn?) lines";
  EXPECT_EQ(got_set, expected);
  std::remove(path.c_str());
}

TEST(BenchAppendJsonLine, CreatesTheFileOnFirstAppend) {
  const std::string path = "/tmp/mpirical_append_create_" +
                           std::to_string(::getpid()) + ".json";
  std::remove(path.c_str());
  bench::append_json_line(path, "{\"hello\":1}");
  ASSERT_TRUE(io::file_exists(path));
  EXPECT_EQ(io::read_file(path), "{\"hello\":1}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpirical
