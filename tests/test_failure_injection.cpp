// Failure-injection tests: corrupted checkpoints, malformed predictions,
// hostile inputs, and resource-limit behaviour. The library must fail loudly
// and precisely, never crash or silently mis-score.
#include <gtest/gtest.h>

#include "cinterp/interp.hpp"
#include "clex/lexer.hpp"
#include "core/model.hpp"
#include "cparse/parser.hpp"
#include "metrics/metrics.hpp"
#include "mpisim/runner.hpp"
#include "nn/transformer.hpp"
#include "support/check.hpp"
#include "toklib/vocab.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

TEST(FailureInjection, TruncatedTransformerCheckpoint) {
  MR_SEEDED_RNG(rng, 1);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 16;
  cfg.d_model = 8;
  cfg.heads = 2;
  cfg.ffn_dim = 16;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  nn::Transformer model(cfg, rng);
  std::string blob = model.serialize();
  blob.resize(blob.size() / 2);
  EXPECT_THROW(nn::Transformer::deserialize(blob), Error);
}

TEST(FailureInjection, TrailingGarbageInCheckpoint) {
  MR_SEEDED_RNG(rng, 2);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 16;
  cfg.d_model = 8;
  cfg.heads = 2;
  cfg.ffn_dim = 16;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  nn::Transformer model(cfg, rng);
  std::string blob = model.serialize() + "junk";
  EXPECT_THROW(nn::Transformer::deserialize(blob), Error);
}

TEST(FailureInjection, MissingModelFile) {
  EXPECT_THROW(core::MpiRical::load("/nonexistent/path/model.bin"), Error);
}

TEST(FailureInjection, VocabWithWrongSpecialOrderRejected) {
  EXPECT_THROW(tok::Vocab::deserialize("[SOS]\n[PAD]\n"), Error);
  EXPECT_THROW(tok::Vocab::deserialize(""), Error);
}

TEST(FailureInjection, DeeplyNestedExpressionParses) {
  std::string expr = "x";
  for (int i = 0; i < 80; ++i) expr = "(" + expr + " + 1)";
  EXPECT_NO_THROW(parse::parse_expression_string(expr));
}

TEST(FailureInjection, HugeArrayDeclarationRejectedByInterpreter) {
  const auto tu = parse::parse_translation_unit(
      "int main() { double a[200000000]; return 0; }");
  interp::Interpreter interp(*tu, nullptr);
  EXPECT_THROW(interp.run_main(), Error);
}

TEST(FailureInjection, NegativeArraySizeRejected) {
  const auto tu = parse::parse_translation_unit(
      "int main() { int n = 0 - 4; double a[n]; return 0; }");
  interp::Interpreter interp(*tu, nullptr);
  EXPECT_THROW(interp.run_main(), Error);
}

TEST(FailureInjection, NullPointerDereference) {
  const auto tu = parse::parse_translation_unit(
      "int main() { int *p = NULL; return *p; }");
  interp::Interpreter interp(*tu, nullptr);
  EXPECT_THROW(interp.run_main(), Error);
}

TEST(FailureInjection, RecvBufferTooSmallReported) {
  const std::string src = R"(#include <mpi.h>
int main(int argc, char **argv) {
    int rank;
    int size;
    int big[4];
    int small[2];
    MPI_Status status;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    if (rank == 0) {
        MPI_Send(big, 4, MPI_INT, 1, 0, MPI_COMM_WORLD);
    } else if (rank == 1) {
        MPI_Recv(small, 2, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);
    }
    MPI_Finalize();
    return 0;
}
)";
  mpisim::RunOptions opts;
  opts.num_ranks = 2;
  const auto result = mpisim::run_mpi_source(src, opts);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("longer than receive buffer"),
            std::string::npos);
}

TEST(FailureInjection, RankFailureUnblocksCollectivePeers) {
  // Rank 1 divides by zero before the collective; everyone else is inside
  // MPI_Barrier and must be released with an error, not hang.
  const std::string src = R"(#include <mpi.h>
int main(int argc, char **argv) {
    int rank;
    int size;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    if (rank == 1) {
        int x = 1 / (rank - rank);
        size = x;
    }
    MPI_Barrier(MPI_COMM_WORLD);
    MPI_Finalize();
    return 0;
}
)";
  mpisim::RunOptions opts;
  opts.num_ranks = 3;
  const auto result = mpisim::run_mpi_source(src, opts);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("rank 1"), std::string::npos);
}

TEST(FailureInjection, TokensToCodeHandlesPathologicalStreams) {
  // Directive jammed mid-line, double newlines, stray [SEP]-like text --
  // the rebuild must stay lexable.
  const std::vector<std::string> tokens = {
      "int", "x", ";", "#include <mpi.h>", "int", "y", ";",
      "[NL]", "[NL]", "z", "=", "1", ";"};
  const std::string code = tok::tokens_to_code(tokens);
  EXPECT_NO_THROW(lex::tokenize(code));
}

TEST(FailureInjection, MatchingToleratesAbsurdLines) {
  const std::vector<ast::CallSite> pred = {{"MPI_Send", 1000000}};
  const std::vector<ast::CallSite> truth = {{"MPI_Send", 1}};
  const auto counts = metrics::match_call_sites(pred, truth, 1);
  EXPECT_EQ(counts.tp, 0u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);
}

}  // namespace
}  // namespace mpirical
